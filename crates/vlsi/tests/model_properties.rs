//! Property-based tests of the cost model: invariants that must hold at
//! every point of the design space, not just the paper's samples.

use proptest::prelude::*;
use stream_vlsi::{calibration_anchors, CostModel, ProcessNode, Projection, Shape, TechParams};

fn shapes() -> impl Strategy<Value = Shape> {
    (1u32..=512, 1u32..=128).prop_map(|(c, n)| Shape::new(c, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Component areas and energies are positive and finite everywhere.
    #[test]
    fn costs_are_positive_and_finite(shape in shapes()) {
        let r = CostModel::paper().evaluate(shape);
        for v in [
            r.area.srf_bank.storage,
            r.area.srf_bank.streambuffers,
            r.area.cluster.lrfs,
            r.area.cluster.alus,
            r.area.cluster.scratchpads,
            r.area.cluster.intracluster_switch,
            r.area.microcontroller,
            r.area.intercluster_switch,
            r.energy.srf_bank,
            r.energy.microcontroller,
            r.energy.cluster,
            r.energy.intercluster,
            r.delay.intracluster_fo4,
            r.delay.intercluster_fo4,
        ] {
            prop_assert!(v.is_finite() && v > 0.0, "{shape}: {v}");
        }
    }

    /// Total area and energy are strictly monotone in both dimensions.
    #[test]
    fn totals_monotone(shape in shapes()) {
        let model = CostModel::paper();
        let base = model.evaluate(shape);
        let up_c = model.evaluate(Shape::new(shape.clusters + 1, shape.alus_per_cluster));
        let up_n = model.evaluate(Shape::new(shape.clusters, shape.alus_per_cluster + 1));
        prop_assert!(up_c.area.total() > base.area.total());
        prop_assert!(up_n.area.total() > base.area.total());
        prop_assert!(up_c.energy.total_per_cycle() > base.energy.total_per_cycle());
        prop_assert!(up_n.energy.total_per_cycle() > base.energy.total_per_cycle());
    }

    /// Delays are monotone: intracluster in N, intercluster in C.
    #[test]
    fn delays_monotone(shape in shapes()) {
        let model = CostModel::paper();
        let base = model.evaluate(shape);
        let up_n = model.evaluate(Shape::new(shape.clusters, shape.alus_per_cluster + 1));
        let up_c = model.evaluate(Shape::new(shape.clusters + 1, shape.alus_per_cluster));
        prop_assert!(up_n.delay.intracluster_fo4 >= base.delay.intracluster_fo4);
        prop_assert!(up_c.delay.intercluster_fo4 >= base.delay.intercluster_fo4);
        // Intracluster delay never depends on C.
        prop_assert!((up_c.delay.intracluster_fo4 - base.delay.intracluster_fo4).abs() < 1e-9);
    }

    /// Sparse crossbars only reduce area and energy, never increase, and
    /// never affect the non-switch components.
    #[test]
    fn sparse_crossbar_is_a_pure_discount(
        shape in shapes(),
        density in 0.05f64..1.0,
    ) {
        let dense = CostModel::paper().evaluate(shape);
        let sparse = CostModel::new(TechParams::sparse_crossbar(density)).evaluate(shape);
        prop_assert!(sparse.area.total() <= dense.area.total());
        prop_assert!(sparse.energy.total_per_cycle() <= dense.energy.total_per_cycle());
        prop_assert!(sparse.area.cluster.lrfs == dense.area.cluster.lrfs);
        prop_assert!(sparse.area.cluster.alus == dense.area.cluster.alus);
        prop_assert!(sparse.area.srf_bank == dense.area.srf_bank);
        prop_assert!(
            sparse.area.cluster.intracluster_switch < dense.area.cluster.intracluster_switch
        );
    }

    /// Physical projections scale consistently: smaller nodes mean smaller
    /// dies, faster clocks, and higher peak GOPS for the same shape.
    #[test]
    fn projections_follow_the_roadmap(shape in shapes()) {
        let nodes = ProcessNode::roadmap();
        for pair in nodes.windows(2) {
            let a = Projection::compute(shape, &pair[0]);
            let b = Projection::compute(shape, &pair[1]);
            prop_assert!(b.die_mm2 < a.die_mm2);
            prop_assert!(b.clock_ghz > a.clock_ghz);
            prop_assert!(b.peak_gops > a.peak_gops);
        }
    }

    /// Per-ALU area is bounded: it never exceeds a few times the N=5
    /// optimum within the paper's design space (the whole point of the
    /// scalability result).
    #[test]
    fn per_alu_area_stays_bounded_in_paper_space(
        c_exp in 3u32..=8, // C in 8..=256
        n in 2u32..=16,
    ) {
        let model = CostModel::paper();
        let shape = Shape::new(1 << c_exp, n);
        let opt = model.evaluate(Shape::new(32, 5)).area.per_alu();
        let here = model.evaluate(shape).area.per_alu();
        prop_assert!(here / opt < 2.0, "{shape}: {:.3}", here / opt);
    }
}

/// Calibration must hold for the default parameters regardless of proptest
/// seeds (plain test alongside the properties).
#[test]
fn calibration_always_passes_for_paper_params() {
    assert!(calibration_anchors(&CostModel::paper())
        .iter()
        .all(|a| a.passes()));
}
