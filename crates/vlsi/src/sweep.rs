//! Scaling sweeps: the data series behind paper Figures 6–12.
//!
//! Every figure plots a per-ALU cost, stacked by component, normalized to a
//! reference configuration. The sweep helpers here produce exactly those
//! series so the repro harness and benchmarks only have to print them.

use crate::{CostModel, Shape};

/// The four scaled components stacked in Figures 6, 7, 9, and 10.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Components {
    /// Stream register file (all banks).
    pub srf: f64,
    /// Microcontroller (microcode storage + distribution).
    pub microcontroller: f64,
    /// Arithmetic clusters (LRFs, ALUs, scratchpads, intracluster switch).
    pub clusters: f64,
    /// Intercluster switch.
    pub intercluster_switch: f64,
}

impl Components {
    /// Sum of the stacked components.
    pub fn total(&self) -> f64 {
        self.srf + self.microcontroller + self.clusters + self.intercluster_switch
    }

    /// Scales all components by `k` (used for normalization).
    pub fn scaled(&self, k: f64) -> Self {
        Self {
            srf: self.srf * k,
            microcontroller: self.microcontroller * k,
            clusters: self.clusters * k,
            intercluster_switch: self.intercluster_switch * k,
        }
    }
}

/// One point in a scaling sweep: per-ALU cost by component, normalized so the
/// reference shape's total is 1.0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The configuration at this point.
    pub shape: Shape,
    /// Normalized per-ALU component stack.
    pub components: Components,
}

impl SweepPoint {
    /// Normalized per-ALU total at this point.
    pub fn total(&self) -> f64 {
        self.components.total()
    }
}

/// A normalized sweep along one scaling axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// The configuration all points are normalized against (its total is
    /// exactly 1.0).
    pub reference: Shape,
    /// The swept points, in the order requested.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// The normalized total for `shape`, if it was part of the sweep.
    pub fn total_at(&self, shape: Shape) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.shape == shape)
            .map(SweepPoint::total)
    }

    /// The shape with the smallest normalized total.
    pub fn minimum(&self) -> &SweepPoint {
        self.points
            .iter()
            .min_by(|a, b| a.total().total_cmp(&b.total()))
            .expect("sweeps contain at least one point")
    }
}

/// Which cost dimension a sweep measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostKind {
    /// Area per ALU (Figures 6, 9, 12).
    Area,
    /// Energy per ALU operation (Figures 7, 10).
    Energy,
}

fn components_per_alu(model: &CostModel, shape: Shape, kind: CostKind) -> Components {
    let report = model.evaluate(shape);
    let alus = shape.total_alus() as f64;
    match kind {
        CostKind::Area => Components {
            srf: report.area.srf_total() / alus,
            microcontroller: report.area.microcontroller / alus,
            clusters: report.area.clusters_total() / alus,
            intercluster_switch: report.area.intercluster_switch / alus,
        },
        CostKind::Energy => Components {
            srf: shape.c() * report.energy.srf_bank / alus,
            microcontroller: report.energy.microcontroller / alus,
            clusters: shape.c() * report.energy.cluster / alus,
            intercluster_switch: report.energy.intercluster / alus,
        },
    }
}

/// Builds a sweep over arbitrary shapes, normalized to `reference`.
pub fn sweep(model: &CostModel, kind: CostKind, reference: Shape, shapes: &[Shape]) -> Sweep {
    let ref_total = components_per_alu(model, reference, kind).total();
    let points = shapes
        .iter()
        .map(|&shape| SweepPoint {
            shape,
            components: components_per_alu(model, shape, kind).scaled(1.0 / ref_total),
        })
        .collect();
    Sweep { reference, points }
}

/// The `N` values plotted in the intracluster figures (Figures 6–8 span
/// 2..128 ALUs per cluster).
pub const INTRACLUSTER_NS: [u32; 16] = [2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20, 24, 32, 48, 64, 128];

/// The cluster counts plotted in the intercluster figures (Figures 9–11).
pub const INTERCLUSTER_CS: [u32; 6] = [8, 16, 32, 64, 128, 256];

/// Figure 6 / Figure 7: intracluster scaling at fixed `C`, normalized to
/// `N = 5`.
///
/// # Examples
///
/// ```
/// use stream_vlsi::{intracluster_sweep, CostKind, CostModel, Shape};
///
/// let s = intracluster_sweep(&CostModel::paper(), CostKind::Area, 8);
/// // N = 5 is the most area-efficient cluster size (paper Section 4.1).
/// assert_eq!(s.minimum().shape, Shape::new(8, 5));
/// ```
pub fn intracluster_sweep(model: &CostModel, kind: CostKind, clusters: u32) -> Sweep {
    let shapes: Vec<Shape> = INTRACLUSTER_NS
        .iter()
        .map(|&n| Shape::new(clusters, n))
        .collect();
    sweep(model, kind, Shape::new(clusters, 5), &shapes)
}

/// Figure 9 / Figure 10: intercluster scaling at fixed `N`, normalized to
/// `C = 8`.
pub fn intercluster_sweep(model: &CostModel, kind: CostKind, alus_per_cluster: u32) -> Sweep {
    let shapes: Vec<Shape> = INTERCLUSTER_CS
        .iter()
        .map(|&c| Shape::new(c, alus_per_cluster))
        .collect();
    sweep(model, kind, Shape::new(8, alus_per_cluster), &shapes)
}

/// Figure 12: combined scaling — one sweep per `N` in `ns`, every cluster
/// count in [`INTERCLUSTER_CS`], all normalized to `C = 32, N = 5`.
pub fn combined_sweep(model: &CostModel, kind: CostKind, ns: &[u32]) -> Vec<Sweep> {
    let reference = Shape::new(32, 5);
    ns.iter()
        .map(|&n| {
            let shapes: Vec<Shape> = INTERCLUSTER_CS.iter().map(|&c| Shape::new(c, n)).collect();
            sweep(model, kind, reference, &shapes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::paper()
    }

    #[test]
    fn reference_point_normalizes_to_one() {
        for kind in [CostKind::Area, CostKind::Energy] {
            let s = intracluster_sweep(&model(), kind, 8);
            let at_ref = s.total_at(Shape::new(8, 5)).unwrap();
            assert!((at_ref - 1.0).abs() < 1e-12, "{kind:?}: {at_ref}");
        }
    }

    #[test]
    fn intracluster_area_min_is_n5() {
        let s = intracluster_sweep(&model(), CostKind::Area, 8);
        assert_eq!(s.minimum().shape, Shape::new(8, 5));
    }

    #[test]
    fn intracluster_energy_min_is_n5() {
        let s = intracluster_sweep(&model(), CostKind::Energy, 8);
        assert_eq!(s.minimum().shape, Shape::new(8, 5));
    }

    #[test]
    fn components_sum_to_total() {
        let s = intercluster_sweep(&model(), CostKind::Area, 5);
        for p in &s.points {
            let c = p.components;
            let sum = c.srf + c.microcontroller + c.clusters + c.intercluster_switch;
            assert!((sum - p.total()).abs() < 1e-12);
        }
    }

    #[test]
    fn intercluster_switch_share_grows_with_c() {
        let s = intercluster_sweep(&model(), CostKind::Area, 5);
        let share = |c: u32| {
            let p = s.points.iter().find(|p| p.shape.clusters == c).unwrap();
            p.components.intercluster_switch / p.total()
        };
        assert!(share(256) > share(64));
        assert!(share(64) > share(8));
    }

    #[test]
    fn microcontroller_share_shrinks_with_c() {
        let s = intercluster_sweep(&model(), CostKind::Area, 5);
        let share = |c: u32| {
            let p = s.points.iter().find(|p| p.shape.clusters == c).unwrap();
            p.components.microcontroller / p.total()
        };
        assert!(share(32) < share(8));
    }

    #[test]
    fn combined_sweep_shares_one_reference() {
        let sweeps = combined_sweep(&model(), CostKind::Area, &[2, 5, 16]);
        assert_eq!(sweeps.len(), 3);
        for s in &sweeps {
            assert_eq!(s.reference, Shape::new(32, 5));
            assert_eq!(s.points.len(), INTERCLUSTER_CS.len());
        }
        // N = 5 should be the cheapest of the three lines at every C
        // (Figure 12's conclusion).
        for (i, &c) in INTERCLUSTER_CS.iter().enumerate() {
            let n2 = sweeps[0].points[i].total();
            let n5 = sweeps[1].points[i].total();
            let n16 = sweeps[2].points[i].total();
            assert!(n5 < n2, "N=5 beats N=2 at C={c}");
            assert!(n5 < n16, "N=5 beats N=16 at C={c}");
        }
    }

    #[test]
    fn total_at_missing_shape_is_none() {
        let s = intracluster_sweep(&model(), CostKind::Area, 8);
        assert_eq!(s.total_at(Shape::new(999, 999)), None);
    }
}
