//! Technology and architecture parameters (paper Table 1).
//!
//! All values are process-independent, exactly as reported for the Imagine
//! prototype: areas in *grids* (squares of one wire track on a side), energies
//! normalized to the wire propagation energy per track `E_w`, and delays in
//! fan-out-of-4 inverter delays (FO4).

/// The full parameter set of Table 1.
///
/// `Default` yields the published values. The struct is plain data with public
/// fields so design-space studies can perturb individual parameters (e.g. a
/// full-custom 20-FO4 clock, a different LRF energy), which is exactly how the
/// paper discusses custom-methodology sensitivity in Section 4.3.
///
/// # Examples
///
/// ```
/// use stream_vlsi::TechParams;
///
/// let p = TechParams::default();
/// assert_eq!(p.data_width_bits, 32);
/// assert_eq!(p.fo4_per_cycle, 45.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TechParams {
    /// `A_SRAM`: area of one bit of SRAM used for the SRF or microcontroller
    /// (grids).
    pub sram_area_per_bit: f64,
    /// `A_SB`: area per word of streambuffer width (grids).
    pub sb_area_per_word: f64,
    /// `w_ALU`: datapath width of one ALU (tracks).
    pub alu_width: f64,
    /// `w_LRF`: datapath width of the two local register files feeding one
    /// functional unit (tracks).
    pub lrf_width: f64,
    /// `w_SP`: scratchpad datapath width (tracks).
    pub sp_width: f64,
    /// `h`: datapath height shared by all cluster components (tracks).
    pub datapath_height: f64,
    /// `v_0`: wire propagation velocity (tracks per FO4) with optimal
    /// repeatering.
    pub wire_velocity: f64,
    /// `t_cyc`: clock period in FO4 delays (45 for the standard-cell Imagine
    /// methodology; ~20 for full-custom designs).
    pub fo4_per_cycle: f64,
    /// `t_mux`: delay of a 2:1 mux in FO4.
    pub mux_delay_fo4: f64,
    /// `E_w`: wire propagation energy per wire track. The normalization unit;
    /// 1.0 by construction.
    pub wire_energy_per_track: f64,
    /// `E_ALU`: energy of one ALU operation (in units of `E_w`).
    pub alu_energy: f64,
    /// `E_SRAM`: SRAM access energy per bit of capacity (in units of `E_w`).
    ///
    /// A single-ported SRAM's access energy grows with its capacity (bitline
    /// and wordline capacitance), so the model charges this per bit of the
    /// array per access.
    pub sram_energy_per_bit: f64,
    /// `E_SB`: energy of one bit of streambuffer access (in units of `E_w`).
    pub sb_energy_per_bit: f64,
    /// `E_LRF`: energy of one LRF access (in units of `E_w`).
    pub lrf_energy: f64,
    /// `E_SP`: energy of one scratchpad access (in units of `E_w`).
    pub sp_energy: f64,
    /// `T`: external memory latency in cycles.
    pub memory_latency_cycles: u32,
    /// `b`: data width of the architecture in bits.
    pub data_width_bits: u32,
    /// `G_SRF`: width of an SRF bank per ALU (`N`), in words.
    pub srf_width_per_alu: f64,
    /// `G_SB`: average number of streambuffer accesses per ALU operation in
    /// typical kernels (Table 2).
    pub sb_accesses_per_op: f64,
    /// `G_COMM`: COMM units required per ALU (`N`).
    pub comm_units_per_alu: f64,
    /// `G_SP`: scratchpad units required per ALU (`N`).
    pub sp_units_per_alu: f64,
    /// `I_0`: base width of a VLIW instruction in bits (sequencing,
    /// conditional streams, immediates, SRF interfacing).
    pub vliw_base_bits: f64,
    /// `I_N`: additional VLIW instruction bits per functional unit.
    pub vliw_bits_per_fu: f64,
    /// `L_C`: initial number of cluster streambuffers.
    pub base_cluster_sbs: f64,
    /// `L_O`: number of non-cluster streambuffers (memory, host,
    /// microcontroller transfers).
    pub other_sbs: f64,
    /// `L_N`: additional streambuffers required per ALU.
    pub extra_sbs_per_alu: f64,
    /// `r_m`: SRF capacity needed per ALU for each cycle of memory latency
    /// (words).
    pub srf_words_per_alu_latency: f64,
    /// `r_uc`: number of VLIW instructions held in microcode storage.
    pub microcode_instructions: f64,
    /// Crossbar connectivity density in (0, 1]: the fraction of full
    /// intracluster/intercluster crossbar buses provided. 1.0 is the
    /// paper's fully-connected design; smaller values model the
    /// non-fully-connected switches the paper's conclusion proposes as
    /// future work. Scales the switch fabric area and traversal energy
    /// first-order; logic delay is unchanged (a sparse switch still
    /// selects among all sources).
    pub crossbar_density: f64,
}

impl TechParams {
    /// The published Table 1 parameter values.
    pub const fn paper() -> Self {
        Self {
            sram_area_per_bit: 16.1,
            sb_area_per_word: 2161.8,
            alu_width: 876.9,
            lrf_width: 437.0,
            sp_width: 708.9,
            datapath_height: 1400.0,
            wire_velocity: 1400.0,
            fo4_per_cycle: 45.0,
            mux_delay_fo4: 2.0,
            wire_energy_per_track: 1.0,
            alu_energy: 2.0e6,
            sram_energy_per_bit: 8.7,
            sb_energy_per_bit: 1936.0,
            lrf_energy: 8.9e5,
            sp_energy: 1.6e6,
            memory_latency_cycles: 55,
            data_width_bits: 32,
            srf_width_per_alu: 0.5,
            sb_accesses_per_op: 0.2,
            comm_units_per_alu: 0.2,
            sp_units_per_alu: 0.2,
            vliw_base_bits: 196.0,
            vliw_bits_per_fu: 40.0,
            base_cluster_sbs: 6.0,
            other_sbs: 6.0,
            extra_sbs_per_alu: 0.2,
            srf_words_per_alu_latency: 20.0,
            microcode_instructions: 2048.0,
            crossbar_density: 1.0,
        }
    }

    /// The paper's future-work variant: a non-fully-connected crossbar
    /// providing `density` of the full switch's buses.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < density <= 1`.
    pub fn sparse_crossbar(density: f64) -> Self {
        assert!(
            density > 0.0 && density <= 1.0,
            "crossbar density must be in (0, 1]"
        );
        Self {
            crossbar_density: density,
            ..Self::paper()
        }
    }

    /// A full-custom variant: ~20 FO4 clock period as discussed in Sections 3
    /// and 4.3. Relative scaling results are expected to match the
    /// standard-cell methodology; absolute latencies in cycles grow.
    pub fn full_custom() -> Self {
        Self {
            fo4_per_cycle: 20.0,
            ..Self::paper()
        }
    }

    /// A stable 64-bit fingerprint of every parameter, suitable as a cheap
    /// hash key for caches keyed by machine configuration (two parameter
    /// sets compare equal iff their fingerprints and fields match; the
    /// fingerprint hashes the exact bit patterns of the `f64` fields).
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the field bit patterns, in declaration order.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |bits: u64| {
            for byte in bits.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        for f in [
            self.sram_area_per_bit,
            self.sb_area_per_word,
            self.alu_width,
            self.lrf_width,
            self.sp_width,
            self.datapath_height,
            self.wire_velocity,
            self.fo4_per_cycle,
            self.mux_delay_fo4,
            self.wire_energy_per_track,
            self.alu_energy,
            self.sram_energy_per_bit,
            self.sb_energy_per_bit,
            self.lrf_energy,
            self.sp_energy,
            self.srf_width_per_alu,
            self.sb_accesses_per_op,
            self.comm_units_per_alu,
            self.sp_units_per_alu,
            self.vliw_base_bits,
            self.vliw_bits_per_fu,
            self.base_cluster_sbs,
            self.other_sbs,
            self.extra_sbs_per_alu,
            self.srf_words_per_alu_latency,
            self.microcode_instructions,
            self.crossbar_density,
        ] {
            mix(f.to_bits());
        }
        mix(u64::from(self.memory_latency_cycles));
        mix(u64::from(self.data_width_bits));
        h
    }

    /// `b` as `f64`, for formulae.
    pub(crate) fn b(&self) -> f64 {
        f64::from(self.data_width_bits)
    }

    /// `T` as `f64`, for formulae.
    pub(crate) fn t_mem(&self) -> f64 {
        f64::from(self.memory_latency_cycles)
    }
}

impl Default for TechParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let p = TechParams::default();
        assert_eq!(p, TechParams::paper());
        assert_eq!(p.sram_area_per_bit, 16.1);
        assert_eq!(p.sb_area_per_word, 2161.8);
        assert_eq!(p.alu_width, 876.9);
        assert_eq!(p.lrf_width, 437.0);
        assert_eq!(p.sp_width, 708.9);
        assert_eq!(p.datapath_height, 1400.0);
        assert_eq!(p.wire_velocity, 1400.0);
        assert_eq!(p.fo4_per_cycle, 45.0);
        assert_eq!(p.mux_delay_fo4, 2.0);
        assert_eq!(p.alu_energy, 2.0e6);
        assert_eq!(p.sram_energy_per_bit, 8.7);
        assert_eq!(p.sb_energy_per_bit, 1936.0);
        assert_eq!(p.lrf_energy, 8.9e5);
        assert_eq!(p.sp_energy, 1.6e6);
        assert_eq!(p.memory_latency_cycles, 55);
        assert_eq!(p.srf_width_per_alu, 0.5);
        assert_eq!(p.sb_accesses_per_op, 0.2);
        assert_eq!(p.comm_units_per_alu, 0.2);
        assert_eq!(p.sp_units_per_alu, 0.2);
        assert_eq!(p.vliw_base_bits, 196.0);
        assert_eq!(p.vliw_bits_per_fu, 40.0);
        assert_eq!(p.base_cluster_sbs, 6.0);
        assert_eq!(p.other_sbs, 6.0);
        assert_eq!(p.extra_sbs_per_alu, 0.2);
        assert_eq!(p.srf_words_per_alu_latency, 20.0);
        assert_eq!(p.microcode_instructions, 2048.0);
        assert_eq!(p.crossbar_density, 1.0);
    }

    #[test]
    fn sparse_crossbar_only_changes_density() {
        let sparse = TechParams::sparse_crossbar(0.5);
        assert_eq!(sparse.crossbar_density, 0.5);
        assert_eq!(
            TechParams {
                crossbar_density: 1.0,
                ..sparse
            },
            TechParams::paper()
        );
    }

    #[test]
    #[should_panic(expected = "density must be in")]
    fn zero_density_rejected() {
        let _ = TechParams::sparse_crossbar(0.0);
    }

    #[test]
    fn full_custom_only_changes_clock() {
        let fc = TechParams::full_custom();
        let paper = TechParams::paper();
        assert_eq!(fc.fo4_per_cycle, 20.0);
        assert_eq!(
            TechParams {
                fo4_per_cycle: 45.0,
                ..fc
            },
            paper
        );
    }

    #[test]
    fn normalization_unit_is_one() {
        assert_eq!(TechParams::default().wire_energy_per_track, 1.0);
    }

    #[test]
    fn fingerprint_tracks_every_parameter_family() {
        let paper = TechParams::paper().fingerprint();
        assert_eq!(paper, TechParams::default().fingerprint());
        assert_ne!(paper, TechParams::full_custom().fingerprint());
        assert_ne!(paper, TechParams::sparse_crossbar(0.5).fingerprint());
        let mut latency = TechParams::paper();
        latency.memory_latency_cycles += 1;
        assert_ne!(paper, latency.fingerprint());
    }
}
