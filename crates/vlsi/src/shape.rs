//! Machine shape: the two scaling knobs `(C, N)` and the unit counts derived
//! from them (paper Table 3, first section).

use crate::TechParams;
use std::fmt;

/// A stream processor configuration: `C` arithmetic clusters, each with `N`
/// ALUs. This pair is the entire design space explored by the paper.
///
/// # Examples
///
/// ```
/// use stream_vlsi::Shape;
///
/// let imagine_like = Shape::new(8, 5);
/// assert_eq!(imagine_like.total_alus(), 40);
/// let future = Shape::new(128, 5);
/// assert_eq!(future.total_alus(), 640);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Shape {
    /// `C`: number of SIMD arithmetic clusters.
    pub clusters: u32,
    /// `N`: number of ALUs per cluster.
    pub alus_per_cluster: u32,
}

impl Shape {
    /// Creates a shape with `clusters` clusters of `alus_per_cluster` ALUs.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(clusters: u32, alus_per_cluster: u32) -> Self {
        assert!(
            clusters > 0,
            "a stream processor needs at least one cluster"
        );
        assert!(alus_per_cluster > 0, "a cluster needs at least one ALU");
        Self {
            clusters,
            alus_per_cluster,
        }
    }

    /// The paper's baseline machine: `C = 8, N = 5` (40 ALUs), the
    /// configuration all speedups are reported against.
    pub const BASELINE: Shape = Shape {
        clusters: 8,
        alus_per_cluster: 5,
    };

    /// The headline 640-ALU machine: `C = 128, N = 5`.
    pub const HEADLINE_640: Shape = Shape {
        clusters: 128,
        alus_per_cluster: 5,
    };

    /// The 1280-ALU machine: `C = 128, N = 10`.
    pub const HEADLINE_1280: Shape = Shape {
        clusters: 128,
        alus_per_cluster: 10,
    };

    /// Total number of ALUs, `C * N`.
    pub fn total_alus(&self) -> u64 {
        u64::from(self.clusters) * u64::from(self.alus_per_cluster)
    }

    /// `C` as `f64` for formulae.
    pub fn c(&self) -> f64 {
        f64::from(self.clusters)
    }

    /// `N` as `f64` for formulae.
    pub fn n(&self) -> f64 {
        f64::from(self.alus_per_cluster)
    }

    /// Derives the per-cluster unit counts from the Table 1 ratios.
    pub fn derive(&self, params: &TechParams) -> DerivedCounts {
        DerivedCounts::new(*self, params)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C={} N={}", self.clusters, self.alus_per_cluster)
    }
}

/// Unit counts derived from a [`Shape`] (paper Table 3, "dependent
/// variables").
///
/// Fractional ratios are rounded up with a floor of one unit: every cluster
/// has at least one COMM unit and one scratchpad (Imagine's `N = 6` cluster
/// had exactly one of each). The ceiling creates the capacity steps at
/// `N = 5, 10, 15, ...` that make `N = 5` the most efficient cluster size —
/// "one COMM unit per arithmetic cluster" in the paper's words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DerivedCounts {
    /// The shape these counts were derived from.
    pub shape: Shape,
    /// `N_COMM = max(1, ceil(G_COMM * N))`: intercluster communication units
    /// per cluster.
    pub comm_units: u32,
    /// `N_SP = max(1, ceil(G_SP * N))`: scratchpad units per cluster.
    pub sp_units: u32,
    /// `N_FU = N + N_SP + N_COMM`: total functional units per cluster (every
    /// FU has LRFs and ports on the intracluster switch).
    pub fus_per_cluster: u32,
    /// `N_CLSB = L_C + ceil(L_N * N)`: cluster streambuffers.
    pub cluster_sbs: u32,
    /// `N_SB = L_O + N_CLSB`: total streambuffers.
    pub total_sbs: u32,
    /// `P_e = N_CLSB`: external ports per cluster into the SRF.
    pub external_ports: u32,
}

impl DerivedCounts {
    fn new(shape: Shape, params: &TechParams) -> Self {
        let n = shape.n();
        let ratio_units = |g: f64| -> u32 { ((g * n).ceil() as u32).max(1) };
        let comm_units = ratio_units(params.comm_units_per_alu);
        let sp_units = ratio_units(params.sp_units_per_alu);
        let fus_per_cluster = shape.alus_per_cluster + sp_units + comm_units;
        let cluster_sbs =
            params.base_cluster_sbs as u32 + (params.extra_sbs_per_alu * n).ceil() as u32;
        let total_sbs = params.other_sbs as u32 + cluster_sbs;
        Self {
            shape,
            comm_units,
            sp_units,
            fus_per_cluster,
            cluster_sbs,
            total_sbs,
            external_ports: cluster_sbs,
        }
    }

    /// `N_FU` as `f64` for formulae.
    pub fn n_fu(&self) -> f64 {
        f64::from(self.fus_per_cluster)
    }

    /// `N_COMM` as `f64` for formulae.
    pub fn n_comm(&self) -> f64 {
        f64::from(self.comm_units)
    }

    /// `N_SP` as `f64` for formulae.
    pub fn n_sp(&self) -> f64 {
        f64::from(self.sp_units)
    }

    /// `P_e` as `f64` for formulae.
    pub fn p_e(&self) -> f64 {
        f64::from(self.external_ports)
    }

    /// Width of one VLIW instruction in bits: `I_0 + I_N * N_FU`.
    pub fn vliw_width_bits(&self, params: &TechParams) -> f64 {
        params.vliw_base_bits + params.vliw_bits_per_fu * self.n_fu()
    }

    /// SRF bank capacity in words: `r_m * T * N` (sized to cover memory
    /// latency at full ALU consumption rate).
    pub fn srf_bank_words(&self, params: &TechParams) -> u64 {
        (params.srf_words_per_alu_latency * params.t_mem() * self.shape.n()).round() as u64
    }

    /// Total SRF capacity in words across all `C` banks.
    pub fn srf_total_words(&self, params: &TechParams) -> u64 {
        self.srf_bank_words(params) * u64::from(self.shape.clusters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(c: u32, n: u32) -> DerivedCounts {
        Shape::new(c, n).derive(&TechParams::paper())
    }

    #[test]
    fn baseline_is_imagine_scale() {
        assert_eq!(Shape::BASELINE.total_alus(), 40);
        assert_eq!(Shape::HEADLINE_640.total_alus(), 640);
        assert_eq!(Shape::HEADLINE_1280.total_alus(), 1280);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        let _ = Shape::new(0, 5);
    }

    #[test]
    #[should_panic(expected = "at least one ALU")]
    fn zero_alus_rejected() {
        let _ = Shape::new(8, 0);
    }

    #[test]
    fn n5_has_one_comm_and_one_sp() {
        let d = counts(8, 5);
        assert_eq!(d.comm_units, 1);
        assert_eq!(d.sp_units, 1);
        assert_eq!(d.fus_per_cluster, 7);
    }

    #[test]
    fn unit_counts_step_at_multiples_of_five() {
        assert_eq!(counts(8, 5).comm_units, 1);
        assert_eq!(counts(8, 6).comm_units, 2);
        assert_eq!(counts(8, 10).comm_units, 2);
        assert_eq!(counts(8, 11).comm_units, 3);
        assert_eq!(counts(8, 14).comm_units, 3);
        assert_eq!(counts(8, 16).comm_units, 4);
    }

    #[test]
    fn minimum_one_unit_each() {
        let d = counts(8, 1);
        assert_eq!(d.comm_units, 1);
        assert_eq!(d.sp_units, 1);
        assert_eq!(d.fus_per_cluster, 3);
    }

    #[test]
    fn streambuffer_counts() {
        // N = 5: N_CLSB = 6 + ceil(0.2 * 5) = 7; N_SB = 6 + 7 = 13.
        let d = counts(8, 5);
        assert_eq!(d.cluster_sbs, 7);
        assert_eq!(d.total_sbs, 13);
        assert_eq!(d.external_ports, 7);
        // N = 16: N_CLSB = 6 + ceil(3.2) = 10.
        let d = counts(8, 16);
        assert_eq!(d.cluster_sbs, 10);
        assert_eq!(d.total_sbs, 16);
    }

    #[test]
    fn vliw_width_matches_formula() {
        let p = TechParams::paper();
        let d = counts(8, 5);
        // I_0 + I_N * N_FU = 196 + 40 * 7 = 476.
        assert_eq!(d.vliw_width_bits(&p), 476.0);
    }

    #[test]
    fn srf_capacity_covers_memory_latency() {
        let p = TechParams::paper();
        let d = counts(8, 5);
        // r_m * T * N = 20 * 55 * 5 = 5500 words per bank.
        assert_eq!(d.srf_bank_words(&p), 5500);
        assert_eq!(d.srf_total_words(&p), 44_000);
    }

    #[test]
    fn derived_counts_scale_with_n_not_c() {
        let a = counts(8, 5);
        let b = counts(128, 5);
        assert_eq!(a.comm_units, b.comm_units);
        assert_eq!(a.fus_per_cluster, b.fus_per_cluster);
        assert_eq!(a.total_sbs, b.total_sbs);
    }

    #[test]
    fn display_is_paper_notation() {
        assert_eq!(Shape::new(128, 5).to_string(), "C=128 N=5");
    }
}
