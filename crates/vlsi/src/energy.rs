//! Energy model (paper Table 3, "Total Energy" block; Figures 7 and 10).
//!
//! Energies are normalized to `E_w`, the propagation energy of one wire
//! track. The model charges, per executed cycle at full ALU issue: SRF-bank
//! traffic, microcode fetch and instruction distribution, cluster datapath
//! activity (LRFs, ALUs, scratchpads, intracluster switch), and intercluster
//! communications at the measured kernel rate `G_COMM`.

use crate::{AreaBreakdown, DerivedCounts, Shape, TechParams};

/// Energy breakdown per machine cycle at full ALU utilization.
///
/// Dividing [`EnergyBreakdown::total_per_cycle`] by `C * N` gives the paper's
/// "energy dissipated per ALU operation" metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// The shape this breakdown was computed for.
    pub shape: Shape,
    /// One SRF bank's energy per cycle (storage block accesses plus
    /// streambuffer traffic).
    pub srf_bank: f64,
    /// Microcontroller energy per cycle: microcode fetch plus instruction
    /// distribution across the cluster grid.
    pub microcontroller: f64,
    /// One cluster's energy per cycle (LRFs, ALUs, scratchpads, intracluster
    /// switch traversals).
    pub cluster: f64,
    /// Intercluster communication energy per cycle across the whole machine
    /// (`G_COMM * N * C` communications of `b` bits each).
    pub intercluster: f64,
}

impl EnergyBreakdown {
    /// Computes the breakdown for `shape` under `params`.
    pub fn compute(shape: Shape, params: &TechParams) -> Self {
        let areas = AreaBreakdown::compute(shape, params);
        Self::from_areas(&areas, params)
    }

    /// Computes the breakdown reusing an existing area model (wire energies
    /// depend on physical distances, hence on areas).
    pub fn from_areas(areas: &AreaBreakdown, params: &TechParams) -> Self {
        let shape = areas.shape;
        let d = shape.derive(params);
        let e_intra = intracluster_traversal_energy(&d, params);
        let e_inter = intercluster_traversal_energy(
            &d,
            params,
            areas.cluster.total(),
            areas.srf_bank.total(),
        );

        Self {
            shape,
            srf_bank: srf_bank_energy(&d, params, e_intra),
            microcontroller: microcontroller_energy(&d, params, areas),
            cluster: cluster_energy(&d, params, e_intra),
            intercluster: params.comm_units_per_alu * shape.n() * shape.c() * params.b() * e_inter,
        }
    }

    /// `E_TOT = C*E_SRF + E_UC + C*E_CLST + G_COMM*N*C*b*E_inter`.
    pub fn total_per_cycle(&self) -> f64 {
        self.shape.c() * self.srf_bank
            + self.microcontroller
            + self.shape.c() * self.cluster
            + self.intercluster
    }

    /// Energy per ALU operation, the paper's efficiency metric (Figures 7
    /// and 10).
    pub fn per_alu_op(&self) -> f64 {
        self.total_per_cycle() / self.shape.total_alus() as f64
    }
}

/// `E_intra`: wire energy of one bit traversing the intracluster switch
/// (row bus to the destination column, then down the column).
fn intracluster_traversal_energy(d: &DerivedCounts, p: &TechParams) -> f64 {
    let root = d.n_fu().sqrt();
    let b = p.b();
    let h = p.datapath_height;
    p.crossbar_density
        * p.wire_energy_per_track
        * (root * (h + 2.0 * root * b) + 2.0 * root * (p.alu_width + p.lrf_width + root * b))
}

/// `E_inter`: wire energy of one bit of intercluster communication — a row
/// bus and the destination's column bus, each spanning `sqrt(C)` cluster
/// pitches.
fn intercluster_traversal_energy(
    d: &DerivedCounts,
    p: &TechParams,
    a_clst: f64,
    a_srf: f64,
) -> f64 {
    let c = d.shape.c();
    let bundle = d.n_comm() * p.b() * c.sqrt();
    p.crossbar_density
        * p.wire_energy_per_track
        * 2.0
        * c.sqrt()
        * (a_clst.sqrt() + a_srf.sqrt() + bundle)
}

/// `E_SRF`: one bank, per cycle. The storage term charges a capacity-
/// proportional SRAM access per block transfer (`G_SB / G_SRF` block accesses
/// per cycle); the SB term charges `G_SB * N` word accesses, half of which
/// (reads) also traverse the intracluster switch.
fn srf_bank_energy(d: &DerivedCounts, p: &TechParams, e_intra: f64) -> f64 {
    let n = d.shape.n();
    let b = p.b();
    let storage = p.srf_words_per_alu_latency
        * p.t_mem()
        * n
        * b
        * p.sram_energy_per_bit
        * (p.sb_accesses_per_op / p.srf_width_per_alu);
    let sbs = p.sb_accesses_per_op * n * b * (p.sb_energy_per_bit + e_intra / 2.0);
    storage + sbs
}

/// `E_CLST`: one cluster, per cycle: every FU exercises its LRFs, `N` ALU
/// operations execute, scratchpads are charged at their unit count, and every
/// FU result crosses the intracluster switch.
fn cluster_energy(d: &DerivedCounts, p: &TechParams, e_intra: f64) -> f64 {
    d.n_fu() * p.lrf_energy
        + d.shape.n() * p.alu_energy
        + d.n_sp() * p.sp_energy
        + d.n_fu() * p.b() * e_intra
}

/// `E_UC`: per cycle — one microcode fetch (capacity-proportional) plus
/// driving the per-FU instruction bits across the cluster array.
fn microcontroller_energy(d: &DerivedCounts, p: &TechParams, areas: &AreaBreakdown) -> f64 {
    let c = d.shape.c();
    let fetch = p.microcode_instructions * d.vliw_width_bits(p) * p.sram_energy_per_bit;
    let array_side =
        (c * (areas.cluster.total() + areas.srf_bank.total()) + areas.intercluster_switch).sqrt();
    let distribution = p.vliw_bits_per_fu * d.n_fu() * p.wire_energy_per_track * array_side;
    fetch + distribution
}

/// Convenience: energy per ALU operation for `shape`.
///
/// # Examples
///
/// ```
/// use stream_vlsi::{energy_per_alu_op, Shape, TechParams};
///
/// let p = TechParams::paper();
/// let base = energy_per_alu_op(Shape::BASELINE, &p);
/// let big = energy_per_alu_op(Shape::HEADLINE_640, &p);
/// // Intercluster scaling costs a few percent per op, not integer factors.
/// assert!(big / base < 1.25);
/// ```
pub fn energy_per_alu_op(shape: Shape, params: &TechParams) -> f64 {
    EnergyBreakdown::compute(shape, params).per_alu_op()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(c: u32, n: u32) -> EnergyBreakdown {
        EnergyBreakdown::compute(Shape::new(c, n), &TechParams::paper())
    }

    #[test]
    fn baseline_magnitudes() {
        // Hand-computed for C=8, N=5 from Table 1 constants.
        let e = breakdown(8, 5);
        assert!(
            (e.srf_bank - 8.6e5).abs() < 0.3e5,
            "E_SRF = {:e}",
            e.srf_bank
        );
        assert!(
            (e.cluster - 2.04e7).abs() < 0.05e7,
            "E_CLST = {:e}",
            e.cluster
        );
        // ALUs should be the single largest cluster consumer at N=5.
        let alus = 5.0 * 2.0e6;
        assert!(alus / e.cluster > 0.4);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let e = breakdown(16, 8);
        let sum =
            e.shape.c() * e.srf_bank + e.microcontroller + e.shape.c() * e.cluster + e.intercluster;
        assert!((e.total_per_cycle() - sum).abs() < 1e-6 * e.total_per_cycle());
    }

    #[test]
    fn cluster_energy_independent_of_c() {
        assert_eq!(breakdown(8, 5).cluster, breakdown(256, 5).cluster);
    }

    #[test]
    fn intercluster_energy_superlinear_in_c() {
        // Per-op intercluster energy grows with machine span.
        let per_op = |c: u32| {
            let e = breakdown(c, 5);
            e.intercluster / e.shape.total_alus() as f64
        };
        assert!(per_op(32) > per_op(8));
        assert!(per_op(128) > per_op(32));
    }

    #[test]
    fn microcode_fetch_amortizes_over_clusters() {
        let per_op = |c: u32| {
            let e = breakdown(c, 5);
            e.microcontroller / e.shape.total_alus() as f64
        };
        // Fetch dominates at C=8 and is shared; distribution grows slower
        // than C here, so per-op UC energy must fall from C=8 to C=32.
        assert!(per_op(32) < per_op(8));
    }

    #[test]
    fn per_op_positive_and_finite_across_design_space() {
        for &c in &[1u32, 8, 64, 256] {
            for &n in &[1u32, 2, 5, 16, 64, 128] {
                let e = breakdown(c, n);
                assert!(e.per_alu_op().is_finite() && e.per_alu_op() > 0.0);
            }
        }
    }

    #[test]
    fn alu_energy_is_significant_fraction_at_baseline() {
        // The whole point of stream processors: most energy goes to real
        // work. At the baseline the ALUs burn >30% of total machine energy.
        let e = breakdown(8, 5);
        let alu = 8.0 * 5.0 * 2.0e6;
        assert!(alu / e.total_per_cycle() > 0.3);
    }
}
