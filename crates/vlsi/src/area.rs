//! Area model (paper Table 3, "Total Area" block).
//!
//! All areas are in *grids* (one wire track squared). The model decomposes a
//! stream processor into the four components that scale with `(C, N)`: the
//! SRF banks, the microcontroller, the arithmetic clusters (including the
//! intracluster switch), and the intercluster switch. The stream controller
//! and memory system are constant-factor and excluded, as in the paper.

use crate::{DerivedCounts, Shape, TechParams};

/// Area of one arithmetic cluster, broken into its Table 3 terms.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusterArea {
    /// LRF area: `N_FU * w_LRF * h` (two LRFs per functional unit).
    pub lrfs: f64,
    /// ALU datapath area: `N * w_ALU * h`.
    pub alus: f64,
    /// Scratchpad area: `N_SP * w_SP * h`.
    pub scratchpads: f64,
    /// Intracluster switch area `A_SW`: the grid crossbar connecting FU
    /// outputs and external ports to LRF inputs.
    pub intracluster_switch: f64,
}

impl ClusterArea {
    /// Total cluster area `A_CLST`.
    pub fn total(&self) -> f64 {
        self.lrfs + self.alus + self.scratchpads + self.intracluster_switch
    }
}

/// Area of one SRF bank, broken into storage and streambuffers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SrfBankArea {
    /// Stream storage: `r_m * T * N * b * A_SRAM` (single-ported SRAM sized
    /// to cover memory latency).
    pub storage: f64,
    /// Streambuffers: `(2 * G_SRF * N) * N_SB * A_SB` (each SB double-buffers
    /// one SRF block).
    pub streambuffers: f64,
}

impl SrfBankArea {
    /// Total bank area `A_SRF`.
    pub fn total(&self) -> f64 {
        self.storage + self.streambuffers
    }
}

/// Complete area breakdown of a stream processor (paper Figures 6, 9, 12 plot
/// `total / total_alus`, stacked by these components).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// The shape this breakdown was computed for.
    pub shape: Shape,
    /// One SRF bank (there are `C` of them).
    pub srf_bank: SrfBankArea,
    /// One arithmetic cluster (there are `C` of them).
    pub cluster: ClusterArea,
    /// The microcontroller: microcode storage plus instruction-distribution
    /// wiring to the cluster grid.
    pub microcontroller: f64,
    /// The intercluster switch `A_COMM`.
    pub intercluster_switch: f64,
}

impl AreaBreakdown {
    /// Computes the breakdown for `shape` under `params`.
    pub fn compute(shape: Shape, params: &TechParams) -> Self {
        let d = shape.derive(params);
        let srf_bank = srf_bank_area(&d, params);
        let cluster = cluster_area(&d, params);
        let intercluster_switch =
            intercluster_switch_area(&d, params, cluster.total(), srf_bank.total());
        let microcontroller = microcontroller_area(
            &d,
            params,
            cluster.total(),
            srf_bank.total(),
            intercluster_switch,
        );
        Self {
            shape,
            srf_bank,
            cluster,
            microcontroller,
            intercluster_switch,
        }
    }

    /// All `C` SRF banks.
    pub fn srf_total(&self) -> f64 {
        self.shape.c() * self.srf_bank.total()
    }

    /// All `C` clusters.
    pub fn clusters_total(&self) -> f64 {
        self.shape.c() * self.cluster.total()
    }

    /// Total scaled area `A_TOT = C*A_SRF + A_UC + C*A_CLST + A_COMM`.
    pub fn total(&self) -> f64 {
        self.srf_total() + self.microcontroller + self.clusters_total() + self.intercluster_switch
    }

    /// Area per ALU, the paper's efficiency metric (Figures 6, 9, 12).
    pub fn per_alu(&self) -> f64 {
        self.total() / self.shape.total_alus() as f64
    }

    /// Fraction of the total occupied by raw ALU datapaths — a utilization
    /// measure used by Table 5's performance-per-area normalization.
    pub fn alu_area_fraction(&self) -> f64 {
        self.clusters_total() * (self.cluster.alus / self.cluster.total()) / self.total()
    }
}

/// `A_SRF`: one SRF bank.
fn srf_bank_area(d: &DerivedCounts, p: &TechParams) -> SrfBankArea {
    let n = d.shape.n();
    let storage = p.srf_words_per_alu_latency * p.t_mem() * n * p.b() * p.sram_area_per_bit;
    let streambuffers = 2.0 * p.srf_width_per_alu * n * f64::from(d.total_sbs) * p.sb_area_per_word;
    SrfBankArea {
        storage,
        streambuffers,
    }
}

/// `A_CLST`: one arithmetic cluster.
fn cluster_area(d: &DerivedCounts, p: &TechParams) -> ClusterArea {
    let h = p.datapath_height;
    ClusterArea {
        lrfs: d.n_fu() * p.lrf_width * h,
        alus: d.shape.n() * p.alu_width * h,
        scratchpads: d.n_sp() * p.sp_width * h,
        intracluster_switch: intracluster_switch_area(d, p),
    }
}

/// `A_SW`: the intracluster switch, laid out as a square grid of FUs
/// (Figure 5). Row buses carry FU outputs, column buses carry LRF inputs;
/// the two Table 3 terms are (rows x columns cross-point fabric) and the
/// external-port wiring.
fn intracluster_switch_area(d: &DerivedCounts, p: &TechParams) -> f64 {
    let n_fu = d.n_fu();
    let b = p.b();
    let root = n_fu.sqrt();
    let h = p.datapath_height;
    let fabric = n_fu * (root * b) * (2.0 * root * b + h + 2.0 * p.alu_width + 2.0 * p.lrf_width);
    let ports = root * (3.0 * root * b + h + p.alu_width + p.lrf_width) * d.p_e() * b;
    p.crossbar_density * fabric + ports
}

/// `A_COMM`: the intercluster switch. Clusters sit in a `sqrt(C) x sqrt(C)`
/// grid (Figure 4); each cluster broadcasts on `N_COMM` row buses and reads
/// from `N_COMM` column buses, so a bundle of `N_COMM * b * sqrt(C)` wires
/// runs between adjacent grid positions, and each bus spans the cluster/SRF
/// pitch.
fn intercluster_switch_area(d: &DerivedCounts, p: &TechParams, a_clst: f64, a_srf: f64) -> f64 {
    let c = d.shape.c();
    let b = p.b();
    let bundle = d.n_comm() * b * c.sqrt();
    let pitch = bundle + 2.0 * a_clst.sqrt() + a_srf.sqrt();
    p.crossbar_density * c * d.n_comm() * b * c.sqrt() * pitch
}

/// `A_UC`: microcode storage plus instruction distribution.
///
/// Storage holds `r_uc` VLIW instructions of `I_0 + I_N * N_FU` bits. The
/// per-FU instruction bits (`I_N * N_FU` wires) are then driven from the
/// microcontroller across the cluster array — one trunk spanning the array
/// side. Further in-grid distribution (repeaters, pipeline registers inside
/// the cluster rows) is already accounted for in the Table 1 component areas,
/// exactly as the paper notes in Section 3.1.2.
fn microcontroller_area(
    d: &DerivedCounts,
    p: &TechParams,
    a_clst: f64,
    a_srf: f64,
    a_comm: f64,
) -> f64 {
    let c = d.shape.c();
    let storage = p.microcode_instructions * d.vliw_width_bits(p) * p.sram_area_per_bit;
    let array_side = (c * (a_clst + a_srf) + a_comm).sqrt();
    let distribution = p.vliw_bits_per_fu * d.n_fu() * array_side;
    storage + distribution
}

/// Convenience: total area for `shape`.
///
/// # Examples
///
/// ```
/// use stream_vlsi::{area_total, Shape, TechParams};
///
/// let p = TechParams::paper();
/// let small = area_total(Shape::new(8, 5), &p);
/// let big = area_total(Shape::new(128, 5), &p);
/// assert!(big > 10.0 * small);
/// ```
pub fn area_total(shape: Shape, params: &TechParams) -> f64 {
    AreaBreakdown::compute(shape, params).total()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> TechParams {
        TechParams::paper()
    }

    fn breakdown(c: u32, n: u32) -> AreaBreakdown {
        AreaBreakdown::compute(Shape::new(c, n), &paper())
    }

    #[test]
    fn baseline_component_magnitudes() {
        // Hand-computed from the Table 1 constants for C=8, N=5.
        let a = breakdown(8, 5);
        assert!((a.srf_bank.storage - 2.8336e6).abs() < 1e3);
        assert!((a.srf_bank.streambuffers - 140_517.0).abs() < 1.0);
        let clst = a.cluster.total();
        assert!((clst - 15.66e6).abs() < 0.05e6, "A_CLST = {clst:e}");
        assert!(
            (a.intercluster_switch - 7.0e6).abs() < 0.2e6,
            "A_COMM = {:e}",
            a.intercluster_switch
        );
        // Microcode storage alone: 2048 * 476 * 16.1 = 15.69e6.
        assert!(a.microcontroller > 15.69e6);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let a = breakdown(16, 8);
        let sum = a.srf_total() + a.microcontroller + a.clusters_total() + a.intercluster_switch;
        assert!((a.total() - sum).abs() < 1e-6 * a.total());
    }

    #[test]
    fn srf_storage_linear_in_n() {
        let p = paper();
        let a5 = AreaBreakdown::compute(Shape::new(8, 5), &p)
            .srf_bank
            .storage;
        let a10 = AreaBreakdown::compute(Shape::new(8, 10), &p)
            .srf_bank
            .storage;
        assert!((a10 / a5 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cluster_area_independent_of_c() {
        let a = breakdown(8, 5).cluster.total();
        let b = breakdown(256, 5).cluster.total();
        assert_eq!(a, b);
    }

    #[test]
    fn intracluster_switch_superlinear_in_n() {
        // A_SW is dominated by the N_FU^(3/2) crossbar fabric term: doubling
        // N should more than double switch area once N is large.
        let s16 = breakdown(8, 16).cluster.intracluster_switch;
        let s32 = breakdown(8, 32).cluster.intracluster_switch;
        let s64 = breakdown(8, 64).cluster.intracluster_switch;
        assert!(s32 > 2.0 * s16);
        assert!(s64 > 2.0 * s32);
    }

    #[test]
    fn intercluster_switch_superlinear_in_c() {
        let a32 = breakdown(32, 5).intercluster_switch;
        let a128 = breakdown(128, 5).intercluster_switch;
        // 4x clusters -> more than 4x switch area (C^(3/2) growth).
        assert!(a128 > 4.0 * a32);
    }

    #[test]
    fn microcode_storage_amortizes_over_clusters() {
        // Per-ALU microcontroller area should drop substantially from C=8 to
        // C=32 (the paper's explanation for C=32 beating C=8).
        let p = paper();
        let per_alu = |c: u32| {
            let a = AreaBreakdown::compute(Shape::new(c, 5), &p);
            a.microcontroller / a.shape.total_alus() as f64
        };
        assert!(per_alu(32) < 0.5 * per_alu(8));
    }

    #[test]
    fn per_alu_positive_and_finite_across_design_space() {
        for &c in &[1u32, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
            for &n in &[1u32, 2, 3, 5, 8, 10, 14, 16, 32, 64, 128] {
                let a = breakdown(c, n);
                assert!(a.per_alu().is_finite());
                assert!(
                    a.per_alu() > 0.0,
                    "per-ALU area must be positive at C={c} N={n}"
                );
            }
        }
    }

    #[test]
    fn alu_area_fraction_is_a_fraction() {
        for &(c, n) in &[(8u32, 5u32), (128, 5), (8, 64), (256, 2)] {
            let f = breakdown(c, n).alu_area_fraction();
            assert!(
                f > 0.0 && f < 1.0,
                "fraction {f} out of range at C={c} N={n}"
            );
        }
    }
}
