//! One-stop cost model bundling area, energy, and delay.

use crate::{AreaBreakdown, DelayModel, EnergyBreakdown, Shape, TechParams};

/// The complete Section 3 cost model: evaluates area, energy, and delay for
/// any `(C, N)` under a parameter set.
///
/// # Examples
///
/// ```
/// use stream_vlsi::{CostModel, Shape};
///
/// let model = CostModel::paper();
/// let report = model.evaluate(Shape::new(128, 5));
/// assert_eq!(report.shape(), Shape::new(128, 5));
/// assert!(report.area.per_alu() > 0.0);
/// assert!(report.delay.intercluster_cycles() >= 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostModel {
    params: TechParams,
}

impl CostModel {
    /// Builds a cost model over the given parameters.
    pub fn new(params: TechParams) -> Self {
        Self { params }
    }

    /// The published Table 1 parameterization.
    pub fn paper() -> Self {
        Self::new(TechParams::paper())
    }

    /// The parameter set this model evaluates with.
    pub fn params(&self) -> &TechParams {
        &self.params
    }

    /// Evaluates all three cost dimensions for `shape`.
    pub fn evaluate(&self, shape: Shape) -> CostReport {
        let area = AreaBreakdown::compute(shape, &self.params);
        let energy = EnergyBreakdown::from_areas(&area, &self.params);
        let delay = DelayModel::from_areas(&area, &self.params);
        CostReport {
            area,
            energy,
            delay,
        }
    }
}

/// The area/energy/delay triple for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Area breakdown in grids.
    pub area: AreaBreakdown,
    /// Energy breakdown in units of `E_w` per cycle.
    pub energy: EnergyBreakdown,
    /// Switch delays in FO4.
    pub delay: DelayModel,
}

impl CostReport {
    /// The configuration this report describes.
    pub fn shape(&self) -> Shape {
        self.area.shape
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_dimensions_agree() {
        let model = CostModel::paper();
        let r = model.evaluate(Shape::new(64, 10));
        assert_eq!(r.area.shape, r.energy.shape);
        assert_eq!(r.area.shape, r.delay.shape);
        assert_eq!(r.shape(), Shape::new(64, 10));
    }

    #[test]
    fn evaluate_is_deterministic() {
        let model = CostModel::paper();
        let a = model.evaluate(Shape::BASELINE);
        let b = model.evaluate(Shape::BASELINE);
        assert_eq!(a, b);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(CostModel::default(), CostModel::paper());
    }
}
