//! Physical projection: converting the process-independent model (grids,
//! `E_w`, FO4) into millimeters, gigahertz, and watts for a concrete
//! technology node — how the paper turns Table 3 into its conclusion
//! ("by 2007, stream processors with 1280 ALUs ... over 1 TFLOPs while
//! dissipating less than 10 Watts").

use crate::{CostModel, Shape, TechParams};

/// A CMOS technology node: the four constants needed to de-normalize the
/// model. Values follow the paper's sources (Imagine measurements for
/// 180 nm; ITRS-2001-style projections for the rest).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessNode {
    /// Human name, e.g. `"180nm"`.
    pub name: &'static str,
    /// Drawn feature size in nanometers.
    pub feature_nm: f64,
    /// Wire track pitch in micrometers (one grid = one pitch squared).
    pub track_pitch_um: f64,
    /// FO4 inverter delay in picoseconds (clock = `fo4_ps * t_cyc`).
    pub fo4_ps: f64,
    /// Wire propagation energy per track in femtojoules — the physical
    /// value of `E_w` (0.093 fJ measured at 180 nm, footnote 1).
    pub wire_energy_fj: f64,
}

impl ProcessNode {
    /// The Imagine prototype's 0.18 micron process (Section 2.2).
    pub const fn n180() -> Self {
        Self {
            name: "180nm",
            feature_nm: 180.0,
            track_pitch_um: 0.80,
            fo4_ps: 90.0,
            wire_energy_fj: 0.093,
        }
    }

    /// 130 nm (2001-2002 era).
    pub const fn n130() -> Self {
        Self {
            name: "130nm",
            feature_nm: 130.0,
            track_pitch_um: 0.56,
            fo4_ps: 65.0,
            wire_energy_fj: 0.044,
        }
    }

    /// 90 nm (~2004).
    pub const fn n90() -> Self {
        Self {
            name: "90nm",
            feature_nm: 90.0,
            track_pitch_um: 0.40,
            fo4_ps: 45.0,
            wire_energy_fj: 0.021,
        }
    }

    /// The paper's 2007 target: 45 nm, where a 45-FO4 clock is 1 GHz
    /// (Section 5: "a 45 FO4 inverter delay clock period would have a
    /// 1 GHz processor clock rate").
    pub const fn n45() -> Self {
        Self {
            name: "45nm",
            feature_nm: 45.0,
            track_pitch_um: 0.20,
            fo4_ps: 22.2,
            wire_energy_fj: 0.0058,
        }
    }

    /// Nodes in scaling order.
    pub fn roadmap() -> [ProcessNode; 4] {
        [Self::n180(), Self::n130(), Self::n90(), Self::n45()]
    }

    /// Clock frequency in GHz for a `t_cyc`-FO4 cycle.
    pub fn clock_ghz(&self, fo4_per_cycle: f64) -> f64 {
        1000.0 / (self.fo4_ps * fo4_per_cycle)
    }
}

/// A machine projected onto a process node.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// The configuration projected.
    pub shape: Shape,
    /// The node projected onto.
    pub node: ProcessNode,
    /// Scaled die area (SRF + clusters + switches + microcontroller) in
    /// square millimeters.
    pub die_mm2: f64,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Peak arithmetic performance in GOPS (`C * N * clock`).
    pub peak_gops: f64,
    /// Dynamic power in watts at full ALU issue (activity factor 1.0).
    pub full_activity_watts: f64,
}

impl Projection {
    /// Projects `shape` (under the paper's Table 1 parameters) onto `node`.
    pub fn compute(shape: Shape, node: &ProcessNode) -> Self {
        Self::compute_with(shape, node, &TechParams::paper())
    }

    /// Projects with explicit model parameters (e.g. a 20-FO4 full-custom
    /// clock or a sparse crossbar).
    pub fn compute_with(shape: Shape, node: &ProcessNode, params: &TechParams) -> Self {
        let report = CostModel::new(params.clone()).evaluate(shape);
        let pitch_mm = node.track_pitch_um * 1e-3;
        let die_mm2 = report.area.total() * pitch_mm * pitch_mm;
        let clock_ghz = node.clock_ghz(params.fo4_per_cycle);
        let peak_gops = shape.total_alus() as f64 * clock_ghz;
        // E_TOT is per cycle in units of E_w; power = E * f.
        let joules_per_cycle = report.energy.total_per_cycle() * node.wire_energy_fj * 1e-15;
        let full_activity_watts = joules_per_cycle * clock_ghz * 1e9;
        Self {
            shape,
            node: node.clone(),
            die_mm2,
            clock_ghz,
            peak_gops,
            full_activity_watts,
        }
    }

    /// Power at a given ALU activity factor (media kernels sustain well
    /// under full issue on every unit every cycle; the paper's sub-10 W
    /// figure corresponds to application-level activity).
    pub fn watts_at_activity(&self, activity: f64) -> f64 {
        self.full_activity_watts * activity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imagine_projection_matches_the_prototype() {
        // Imagine: 0.18um, 40 ALUs, ~250 MHz class clock, several watts,
        // on the order of 100 mm^2 of scaled components.
        let p = Projection::compute(Shape::BASELINE, &ProcessNode::n180());
        assert!(
            p.clock_ghz > 0.2 && p.clock_ghz < 0.3,
            "clock {} GHz",
            p.clock_ghz
        );
        assert!(
            p.die_mm2 > 60.0 && p.die_mm2 < 200.0,
            "die {} mm^2",
            p.die_mm2
        );
        assert!(
            p.full_activity_watts > 1.0 && p.full_activity_watts < 10.0,
            "power {} W",
            p.full_activity_watts
        );
        assert!((p.peak_gops - 40.0 * p.clock_ghz).abs() < 1e-9);
    }

    #[test]
    fn the_2007_node_runs_at_one_gigahertz() {
        let node = ProcessNode::n45();
        let clock = node.clock_ghz(45.0);
        assert!((clock - 1.0).abs() < 0.01, "clock {clock} GHz");
    }

    #[test]
    fn conclusion_claims_hold_at_45nm() {
        // "stream processors with 1280 ALUs will be able to provide a peak
        // performance of over 1 TFLOPs while dissipating less than 10
        // Watts" — peak is direct; power corresponds to application-level
        // activity (full-issue power is higher).
        let p = Projection::compute(Shape::HEADLINE_1280, &ProcessNode::n45());
        assert!(p.peak_gops > 1000.0, "peak {} GOPS", p.peak_gops);
        assert!(p.die_mm2 < 400.0, "die {} mm^2", p.die_mm2);
        assert!(
            p.full_activity_watts < 60.0,
            "full-activity power {} W",
            p.full_activity_watts
        );
        assert!(p.watts_at_activity(0.2) < 10.0);
    }

    #[test]
    fn power_and_area_shrink_with_the_roadmap() {
        let mut last_area = f64::MAX;
        let mut last_power = f64::MAX;
        for node in ProcessNode::roadmap() {
            let p = Projection::compute(Shape::HEADLINE_640, &node);
            assert!(p.die_mm2 < last_area, "{}", node.name);
            // Power at iso-activity: energy shrinks faster than clock rises
            // on this roadmap until the last step; just require the 45nm
            // point to beat the 180nm point.
            last_area = p.die_mm2;
            last_power = last_power.min(p.full_activity_watts);
        }
        let p180 = Projection::compute(Shape::HEADLINE_640, &ProcessNode::n180());
        let p45 = Projection::compute(Shape::HEADLINE_640, &ProcessNode::n45());
        assert!(p45.full_activity_watts < p180.full_activity_watts);
    }

    #[test]
    fn sparse_crossbar_projection_composes() {
        let dense = Projection::compute(Shape::HEADLINE_1280, &ProcessNode::n45());
        let sparse = Projection::compute_with(
            Shape::HEADLINE_1280,
            &ProcessNode::n45(),
            &TechParams::sparse_crossbar(0.5),
        );
        assert!(sparse.die_mm2 < dense.die_mm2);
        assert!(sparse.full_activity_watts < dense.full_activity_watts);
    }
}
