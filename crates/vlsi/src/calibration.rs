//! Calibration of the reconstructed cost model against the paper's prose
//! anchors.
//!
//! Table 3 of the available paper text is typographically damaged (radicals
//! and grouping were lost), so several formulae were reconstructed from their
//! stated physical derivations (see `DESIGN.md`). This module pins the
//! reconstruction to every quantitative claim the paper makes in prose, and
//! the unit tests below fail if a model change drifts away from the paper.

use crate::{energy_per_alu_op, intracluster_sweep, CostKind, CostModel, Shape};

/// One paper claim, the model's measured value, and the acceptance band.
#[derive(Debug, Clone, PartialEq)]
pub struct Anchor {
    /// Short identifier, e.g. `"area_c128_vs_c8"`.
    pub id: &'static str,
    /// The paper's claim, quoted or paraphrased.
    pub claim: &'static str,
    /// The value the paper reports.
    pub paper_value: f64,
    /// The value measured from this model.
    pub measured: f64,
    /// Inclusive acceptance band for `measured`.
    pub band: (f64, f64),
}

impl Anchor {
    /// Whether the measured value lies in the acceptance band.
    pub fn passes(&self) -> bool {
        self.measured >= self.band.0 && self.measured <= self.band.1
    }
}

/// Evaluates all Section 4 anchors against `model`.
///
/// # Examples
///
/// ```
/// use stream_vlsi::{calibration_anchors, CostModel};
///
/// let anchors = calibration_anchors(&CostModel::paper());
/// assert!(anchors.iter().all(|a| a.passes()));
/// ```
pub fn calibration_anchors(model: &CostModel) -> Vec<Anchor> {
    let p = model.params();
    let area_per_alu = |c: u32, n: u32| model.evaluate(Shape::new(c, n)).area.per_alu();
    let energy_per_op = |c: u32, n: u32| energy_per_alu_op(Shape::new(c, n), p);

    let mut anchors = Vec::new();

    // --- Intracluster scaling, C = 8 (Section 4.1) ---
    let area_sweep = intracluster_sweep(model, CostKind::Area, 8);
    let min_n = area_sweep.minimum().shape.alus_per_cluster;
    anchors.push(Anchor {
        id: "area_min_at_n5",
        claim: "N = 5 is the most area-efficient cluster size",
        paper_value: 5.0,
        measured: f64::from(min_n),
        band: (5.0, 5.0),
    });

    let area_n16 = area_per_alu(8, 16) / area_per_alu(8, 5);
    anchors.push(Anchor {
        id: "area_n16_within_16pct",
        claim: "area per ALU stays within 16% of the minimum up to N = 16",
        paper_value: 1.16,
        measured: area_n16,
        band: (1.0, 1.22),
    });

    let energy_n16 = energy_per_op(8, 16) / energy_per_op(8, 5);
    anchors.push(Anchor {
        id: "energy_n16_1.23x",
        claim: "by N = 16 energy per ALU op grows to 1.23x of the minimum",
        paper_value: 1.23,
        measured: energy_n16,
        band: (1.10, 1.36),
    });

    // --- Intercluster scaling, N = 5 (Section 4.2) ---
    let area_c32 = area_per_alu(32, 5) / area_per_alu(8, 5);
    anchors.push(Anchor {
        id: "area_c32_3pct_better",
        claim: "C = 32 has 3% improved area per ALU over C = 8",
        paper_value: 0.97,
        measured: area_c32,
        band: (0.94, 1.00),
    });

    let area_c128 = area_per_alu(128, 5) / area_per_alu(8, 5);
    anchors.push(Anchor {
        id: "area_c128_2pct_worse",
        claim: "C = 128 area per ALU is 2% worse than C = 8",
        paper_value: 1.02,
        measured: area_c128,
        band: (0.99, 1.08),
    });

    let energy_c128 = energy_per_op(128, 5) / energy_per_op(8, 5);
    anchors.push(Anchor {
        id: "energy_c128_7pct_worse",
        claim: "C = 128 dissipates 7% more energy per ALU op than C = 8",
        paper_value: 1.07,
        measured: energy_c128,
        band: (1.03, 1.13),
    });

    // --- Combined scaling (Section 4.3) ---
    // "for each C, the additional cost of scaling from N = 5 to N = 10 is
    // only 5-11% [area] and 14-21% [energy] worse per ALU".
    let mut worst_area: f64 = 0.0;
    let mut worst_energy: f64 = 0.0;
    for &c in &[8u32, 16, 32, 64, 128] {
        worst_area = worst_area.max(area_per_alu(c, 10) / area_per_alu(c, 5));
        worst_energy = worst_energy.max(energy_per_op(c, 10) / energy_per_op(c, 5));
    }
    anchors.push(Anchor {
        id: "area_n10_5_to_11pct",
        claim: "scaling N = 5 -> 10 costs 5-11% area per ALU across C",
        paper_value: 1.11,
        measured: worst_area,
        band: (1.03, 1.13),
    });
    anchors.push(Anchor {
        id: "energy_n10_14_to_21pct",
        claim: "scaling N = 5 -> 10 costs 14-21% energy per ALU op across C",
        paper_value: 1.21,
        measured: worst_energy,
        band: (1.05, 1.25),
    });

    // --- Delay anchors (Section 4.1, 5.1) ---
    let baseline = model.evaluate(Shape::BASELINE).delay;
    anchors.push(Anchor {
        id: "intra_n5_half_cycle",
        claim: "half of a 45 FO4 cycle suffices for intracluster delay at N = 5",
        paper_value: 22.5,
        measured: baseline.intracluster_fo4,
        band: (0.0, 22.5),
    });
    let n14 = model.evaluate(Shape::new(8, 14)).delay;
    anchors.push(Anchor {
        id: "intra_n14_extra_stage",
        claim: "N = 14 requires an additional pipeline stage",
        paper_value: 1.0,
        measured: f64::from(n14.extra_intracluster_stages()),
        band: (1.0, 1.0),
    });
    let c128 = model.evaluate(Shape::HEADLINE_640).delay;
    anchors.push(Anchor {
        id: "inter_c128_pipelined",
        claim: "intercluster delay at C = 128 spans multiple pipelined cycles",
        paper_value: 3.0,
        measured: f64::from(c128.intercluster_cycles()),
        band: (2.0, 4.0),
    });

    anchors
}

/// True if every anchor passes for `model`.
pub fn model_is_calibrated(model: &CostModel) -> bool {
    calibration_anchors(model).iter().all(Anchor::passes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_passes_every_anchor() {
        let anchors = calibration_anchors(&CostModel::paper());
        let failures: Vec<String> = anchors
            .iter()
            .filter(|a| !a.passes())
            .map(|a| {
                format!(
                    "{}: measured {:.4} outside [{:.4}, {:.4}] (paper: {:.4}) — {}",
                    a.id, a.measured, a.band.0, a.band.1, a.paper_value, a.claim
                )
            })
            .collect();
        assert!(
            failures.is_empty(),
            "anchor failures:\n{}",
            failures.join("\n")
        );
    }

    #[test]
    fn anchor_count_is_stable() {
        // Every Section 4 prose claim is pinned; adding/removing anchors is a
        // deliberate act.
        assert_eq!(calibration_anchors(&CostModel::paper()).len(), 11);
    }

    #[test]
    fn model_is_calibrated_convenience() {
        assert!(model_is_calibrated(&CostModel::paper()));
    }
}
