//! Register organization comparison (paper Section 3, citing Rixner et al.,
//! HPCA 2000): why the stream register hierarchy exists at all.
//!
//! A conventional VLIW machine feeding `A` ALUs from one unified register
//! file needs `2A` read ports and `A` write ports. Register-file cells grow
//! quadratically with port count (each port adds a wordline and a bitline
//! pair to every cell) and access energy grows with the port-widened array,
//! which is how the paper gets to "195 times less area, 430 times less
//! energy" for the partitioned stream organization at 48 ALUs.
//!
//! Both sides here use the same first-order wire model — cell dimensions
//! `(d0 + p)` tracks per side, access energy proportional to the lines
//! driven — so the *ratios* are meaningful even though the absolute
//! constants are coarse. The stream side is reported both as bare LRFs and
//! with the intracluster switch that partitioning requires.

use crate::{CostModel, EnergyBreakdown, Shape, TechParams};

/// Fixed cell overhead (decoder, sense, contacts) in tracks per side.
const CELL_BASE_TRACKS: f64 = 10.0;

/// Area in grids of a register array of `words * b` bits with `ports`
/// ports, under the quadratic port model.
fn array_area(words: f64, b: f64, ports: f64) -> f64 {
    let side = CELL_BASE_TRACKS + ports;
    words * b * side * side
}

/// Energy (in `E_w`) of one `b`-bit access to that array: one wordline plus
/// `b` bitlines, each spanning the square array's side.
fn access_energy(words: f64, b: f64, ports: f64) -> f64 {
    let side_tracks = (words * b).sqrt() * (CELL_BASE_TRACKS + ports);
    (1.0 + b) * side_tracks
}

/// A unified-register-file machine with `alus` ALUs: the strawman the
/// stream organization is compared against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnifiedRf {
    /// Number of ALUs fed from the single register file.
    pub alus: u32,
    /// Register words in the file.
    pub words: u32,
}

impl UnifiedRf {
    /// A unified file sized to hold the same register state as a stream
    /// processor's LRFs (the capacity-matched comparison).
    pub fn matching(shape: Shape, params: &TechParams) -> Self {
        let derived = shape.derive(params);
        // 2 LRFs x 16 words per functional unit, all clusters.
        let words = derived.fus_per_cluster * 32 * shape.clusters;
        Self {
            alus: shape.clusters * shape.alus_per_cluster,
            words,
        }
    }

    /// Read + write port count: two reads and one write per ALU.
    pub fn ports(&self) -> u32 {
        3 * self.alus
    }

    /// Register file area in grids.
    pub fn area(&self, params: &TechParams) -> f64 {
        array_area(f64::from(self.words), params.b(), f64::from(self.ports()))
    }

    /// Energy per cycle at full issue: every ALU performs two reads and a
    /// write each cycle.
    pub fn energy_per_cycle(&self, params: &TechParams) -> f64 {
        f64::from(self.ports())
            * access_energy(f64::from(self.words), params.b(), f64::from(self.ports()))
            * params.wire_energy_per_track
    }
}

/// The stream-vs-unified comparison for one shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegisterOrgComparison {
    /// The stream processor shape compared.
    pub shape: Shape,
    /// Unified RF area / stream LRF area (register structures only).
    pub area_ratio: f64,
    /// Unified RF energy / stream LRF energy (register structures only).
    pub energy_ratio: f64,
    /// Area ratio with the stream side charged for its intracluster
    /// switches (the price of partitioning).
    pub area_ratio_with_switch: f64,
    /// Energy ratio with the switch traversals charged.
    pub energy_ratio_with_switch: f64,
}

impl RegisterOrgComparison {
    /// Compares a unified register file against `shape`'s LRF organization,
    /// modeling both sides with the same port-scaled array formulae.
    pub fn compute(shape: Shape, params: &TechParams) -> Self {
        let unified = UnifiedRf::matching(shape, params);
        let report = CostModel::new(params.clone()).evaluate(shape);
        let d = shape.derive(params);
        let c = shape.c();
        let b = params.b();

        // Stream side: 2 LRFs per FU, 16 words each, 1 read + 1 write port.
        let lrf_words = 16.0;
        let lrf_ports = 2.0;
        let lrfs = 2.0 * d.n_fu() * c;
        let lrf_area = lrfs * array_area(lrf_words, b, lrf_ports);
        // Per cycle each FU makes two reads and one write across its LRFs.
        let lrf_energy = 3.0
            * d.n_fu()
            * c
            * access_energy(lrf_words, b, lrf_ports)
            * params.wire_energy_per_track;

        // The switch that partitioning requires.
        let switch_area = c * report.area.cluster.intracluster_switch;
        let e_intra_per_result = EnergyBreakdown::from_areas(&report.area, params);
        // Cluster switch energy: every FU result crosses the switch.
        let switch_energy = c
            * (e_intra_per_result.cluster
                - d.n_fu() * params.lrf_energy
                - shape.n() * params.alu_energy
                - d.n_sp() * params.sp_energy)
                .max(0.0);

        let ua = unified.area(params);
        let ue = unified.energy_per_cycle(params);
        Self {
            shape,
            area_ratio: ua / lrf_area,
            energy_ratio: ue / lrf_energy,
            area_ratio_with_switch: ua / (lrf_area + switch_area),
            energy_ratio_with_switch: ue / (lrf_energy + switch_energy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_rf_explodes_quadratically() {
        let p = TechParams::paper();
        let small = UnifiedRf {
            alus: 8,
            words: 256,
        };
        let big = UnifiedRf {
            alus: 48,
            words: 256,
        };
        // 6x the ALUs -> roughly 36x the area at fixed capacity.
        let ratio = big.area(&p) / small.area(&p);
        assert!(ratio > 15.0 && ratio < 40.0, "ratio {ratio}");
    }

    #[test]
    fn paper_comparison_is_in_the_claimed_regime() {
        // Section 3: "a C = 8 N = 6 stream processor takes 195 times less
        // area, 430 times less energy" than a 48-ALU unified-RF machine.
        // The register-structure ratios land in the same two-orders-of-
        // magnitude regime under our coarser model.
        let cmp = RegisterOrgComparison::compute(Shape::new(8, 6), &TechParams::paper());
        assert!(
            cmp.area_ratio > 80.0 && cmp.area_ratio < 500.0,
            "area ratio {:.0} (paper 195)",
            cmp.area_ratio
        );
        assert!(
            cmp.energy_ratio > 40.0 && cmp.energy_ratio < 1000.0,
            "energy ratio {:.0} (paper 430)",
            cmp.energy_ratio
        );
        // Even paying for the intracluster switch, partitioning wins by an
        // order of magnitude or more.
        assert!(cmp.area_ratio_with_switch > 10.0);
        assert!(cmp.energy_ratio_with_switch > 3.0);
    }

    #[test]
    fn partitioning_advantage_grows_with_scale() {
        let p = TechParams::paper();
        let small = RegisterOrgComparison::compute(Shape::new(8, 6), &p);
        let big = RegisterOrgComparison::compute(Shape::new(32, 6), &p);
        assert!(big.area_ratio > small.area_ratio);
        assert!(big.energy_ratio > small.energy_ratio);
    }

    #[test]
    fn matching_capacity_tracks_the_shape() {
        let p = TechParams::paper();
        let rf = UnifiedRf::matching(Shape::new(8, 6), &p);
        assert_eq!(rf.alus, 48);
        assert_eq!(rf.words, 10 * 32 * 8); // N_FU = 10 at N = 6 (ceil rule)
        assert_eq!(rf.ports(), 144);
    }
}
