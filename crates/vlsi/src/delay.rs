//! Delay model (paper Table 3, wire-delay block; Figures 8 and 11).
//!
//! Delays are in FO4 inverter delays. Wire traversal is assumed pipelined
//! (Section 4.1): increasing a switch delay past cycle boundaries adds
//! operation latency in cycles but never lowers the clock rate.

use crate::{AreaBreakdown, Shape, TechParams};

/// Switch delays for a configuration, plus the cycle-count consequences used
/// by the kernel scheduler (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    /// The shape these delays were computed for.
    pub shape: Shape,
    /// `t_intra`: worst-case intracluster switch traversal (FO4) — wire
    /// propagation across the cluster plus the cross-point mux logic.
    pub intracluster_fo4: f64,
    /// `t_inter`: worst-case intercluster switch traversal (FO4), which
    /// includes an intracluster traversal at the destination.
    pub intercluster_fo4: f64,
    /// Clock period in FO4 (copied from the parameters).
    pub cycle_fo4: f64,
}

impl DelayModel {
    /// Computes switch delays for `shape` under `params`.
    pub fn compute(shape: Shape, params: &TechParams) -> Self {
        let areas = AreaBreakdown::compute(shape, params);
        Self::from_areas(&areas, params)
    }

    /// Computes delays reusing an existing area breakdown (the intercluster
    /// delay depends on the physical size of the cluster array).
    pub fn from_areas(areas: &AreaBreakdown, params: &TechParams) -> Self {
        let shape = areas.shape;
        let d = shape.derive(params);
        let b = params.b();
        let n_fu = d.n_fu();
        let root = n_fu.sqrt();
        let h = params.datapath_height;

        // t_intra: (cluster width + height) wire propagation, then a
        // sqrt(N_FU):1 row-select mux plus one 2:1 mux per additional row.
        let wire_tracks =
            root * (h + 2.0 * root * b + params.alu_width + params.lrf_width + root * b);
        let intra_wire = wire_tracks / params.wire_velocity;
        let intra_logic = params.mux_delay_fo4 * (n_fu.log2() + root);
        let intracluster_fo4 = intra_wire + intra_logic;

        // t_inter: cross the whole cluster array, select among C * N_COMM
        // buses, then complete an intracluster traversal at the destination.
        let c = shape.c();
        let array_span = (c * (areas.cluster.total() + areas.srf_bank.total())
            + areas.intercluster_switch)
            .sqrt();
        let inter_wire = 2.0 * array_span / params.wire_velocity;
        let inter_logic = params.mux_delay_fo4 * ((c * d.n_comm()).log2() + c.sqrt());
        let intercluster_fo4 = intracluster_fo4 + inter_wire + inter_logic;

        Self {
            shape,
            intracluster_fo4,
            intercluster_fo4,
            cycle_fo4: params.fo4_per_cycle,
        }
    }

    /// Extra pipeline stages added to ALU results and streambuffer reads when
    /// the intracluster traversal no longer fits in the half cycle Imagine
    /// allocated for it (Section 5.1: the `N = 14` configurations pay +1).
    pub fn extra_intracluster_stages(&self) -> u32 {
        let budget = self.cycle_fo4 / 2.0;
        if self.intracluster_fo4 <= budget {
            0
        } else {
            ((self.intracluster_fo4 - budget) / self.cycle_fo4).floor() as u32 + 1
        }
    }

    /// Pipelined intercluster traversal latency in whole cycles (at least
    /// one). Determines COMM unit operation latency and conditional-stream
    /// routing cost.
    pub fn intercluster_cycles(&self) -> u32 {
        (self.intercluster_fo4 / self.cycle_fo4).ceil().max(1.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delays(c: u32, n: u32) -> DelayModel {
        DelayModel::compute(Shape::new(c, n), &TechParams::paper())
    }

    #[test]
    fn baseline_intracluster_fits_in_half_cycle() {
        // Imagine allocated half a 45-FO4 cycle; the N=5 cluster fits.
        let d = delays(8, 5);
        assert!(
            d.intracluster_fo4 < 22.5,
            "t_intra = {}",
            d.intracluster_fo4
        );
        assert_eq!(d.extra_intracluster_stages(), 0);
    }

    #[test]
    fn n14_needs_an_extra_stage() {
        // Section 5.1: at N = 14 an additional pipeline stage was added.
        let d = delays(8, 14);
        assert!(
            d.intracluster_fo4 > 22.5,
            "t_intra = {}",
            d.intracluster_fo4
        );
        assert_eq!(d.extra_intracluster_stages(), 1);
    }

    #[test]
    fn baseline_intercluster_is_about_one_cycle() {
        // Figure 8 puts t_inter at N=5 right at the 45-FO4 cycle boundary;
        // pipelined, that is one to two cycles of COMM latency.
        let d = delays(8, 5);
        assert!(
            d.intercluster_fo4 > 35.0 && d.intercluster_fo4 < 60.0,
            "t_inter = {}",
            d.intercluster_fo4
        );
        assert!(d.intercluster_cycles() <= 2);
    }

    #[test]
    fn c128_intercluster_takes_multiple_cycles() {
        // Figure 11: intercluster delay grows to ~3 cycles at C = 128.
        let d = delays(128, 5);
        assert!(
            d.intercluster_fo4 > 100.0 && d.intercluster_fo4 < 200.0,
            "t_inter = {}",
            d.intercluster_fo4
        );
        assert!(d.intercluster_cycles() >= 2);
    }

    #[test]
    fn intracluster_delay_monotonic_in_n() {
        let mut last = 0.0;
        for &n in &[2u32, 5, 10, 14, 16, 32, 64, 128] {
            let d = delays(8, n);
            assert!(d.intracluster_fo4 > last);
            last = d.intracluster_fo4;
        }
    }

    #[test]
    fn intercluster_delay_monotonic_in_c() {
        let mut last = 0.0;
        for &c in &[8u32, 16, 32, 64, 128, 256] {
            let d = delays(c, 5);
            assert!(d.intercluster_fo4 > last);
            last = d.intercluster_fo4;
        }
    }

    #[test]
    fn intracluster_delay_constant_under_intercluster_scaling() {
        // Figure 11: cluster size does not change with C.
        let a = delays(8, 5).intracluster_fo4;
        let b = delays(256, 5).intracluster_fo4;
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn intercluster_includes_intracluster() {
        for &(c, n) in &[(8u32, 5u32), (64, 10), (256, 2)] {
            let d = delays(c, n);
            assert!(d.intercluster_fo4 > d.intracluster_fo4);
        }
    }

    #[test]
    fn full_custom_clock_needs_stages_earlier() {
        // With a 20-FO4 custom clock the same wires cost more cycles.
        let p = TechParams::full_custom();
        let d = DelayModel::compute(Shape::new(8, 5), &p);
        assert!(d.extra_intracluster_stages() >= 1);
    }
}
