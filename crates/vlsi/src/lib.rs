#![warn(missing_docs)]
//! Analytical VLSI cost models for stream processors.
//!
//! This crate implements Section 3 of *Exploring the VLSI Scalability of
//! Stream Processors* (Khailany et al., HPCA 2003): closed-form area, delay,
//! and energy models for an Imagine-style stream processor as a function of
//! `C` (the number of SIMD arithmetic clusters) and `N` (the number of ALUs
//! per cluster).
//!
//! The model covers the four components that scale with `(C, N)`:
//!
//! * the **stream register file** (SRF) — `C` single-ported SRAM banks plus
//!   streambuffers,
//! * the **microcontroller** — VLIW microcode storage and instruction
//!   distribution,
//! * the **arithmetic clusters** — LRFs, ALUs, scratchpads, and the grid
//!   intracluster switch,
//! * the **intercluster switch** — the `sqrt(C) x sqrt(C)` grid of COMM
//!   buses.
//!
//! Units follow the paper exactly: areas in *grids* (wire-track squared),
//! energies normalized to the per-track wire energy `E_w`, delays in FO4.
//!
//! # Quick start
//!
//! ```
//! use stream_vlsi::{CostModel, Shape};
//!
//! let model = CostModel::paper();
//! let base = model.evaluate(Shape::BASELINE);       // C=8,  N=5 (40 ALUs)
//! let big = model.evaluate(Shape::HEADLINE_640);    // C=128, N=5 (640 ALUs)
//!
//! // The paper's headline: 16x the ALUs for ~2% area and ~7% energy per ALU.
//! let area_ratio = big.area.per_alu() / base.area.per_alu();
//! let energy_ratio = big.energy.per_alu_op() / base.energy.per_alu_op();
//! assert!(area_ratio < 1.08);
//! assert!(energy_ratio < 1.13);
//! ```

mod area;
mod calibration;
mod cost;
mod delay;
mod energy;
mod params;
mod process;
mod register_org;
mod shape;
mod sweep;

pub use area::{area_total, AreaBreakdown, ClusterArea, SrfBankArea};
pub use calibration::{calibration_anchors, model_is_calibrated, Anchor};
pub use cost::{CostModel, CostReport};
pub use delay::DelayModel;
pub use energy::{energy_per_alu_op, EnergyBreakdown};
pub use params::TechParams;
pub use process::{ProcessNode, Projection};
pub use register_org::{RegisterOrgComparison, UnifiedRf};
pub use shape::{DerivedCounts, Shape};
pub use sweep::{
    combined_sweep, intercluster_sweep, intracluster_sweep, sweep, Components, CostKind, Sweep,
    SweepPoint, INTERCLUSTER_CS, INTRACLUSTER_NS,
};
