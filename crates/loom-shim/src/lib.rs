//! Offline stand-in for the `loom` concurrency model checker.
//!
//! [`model`] runs a closure repeatedly, exploring **every** interleaving of
//! the shim atomics' operations across the threads the closure spawns via
//! [`thread::spawn`]. Exploration is a depth-first search over scheduling
//! decision paths: execution is fully serialized by a baton-passing
//! scheduler (only one model thread runs at a time), every atomic operation
//! is a yield point, and after each execution the recorded decision path is
//! advanced to the next unexplored branch. Because exactly one thread runs
//! between yield points, the decision sequence is deterministic and replay
//! is exact.
//!
//! Decisions are recorded *only* at atomic-op yields — each decision picks
//! which thread executes its next operation. Thread spawn, join handback,
//! and exit transfer the baton deterministically without branching: those
//! transitions touch no shared state, so branching on them would multiply
//! the tree by orders of magnitude without adding one distinguishable
//! schedule (a simple partial-order reduction). The DFS leaf count is
//! therefore exactly the number of distinct operation interleavings, e.g.
//! 6!/(2!·2!·2!) = 90 executions for three threads of two operations each.
//!
//! Outside a model run the shim types are inert: [`sync::atomic::AtomicUsize`]
//! is a `#[repr(transparent)]`-equivalent wrapper over the std atomic whose
//! operations first check a thread-local for an active model (a no-op check
//! in production code paths), so a crate can switch its atomic imports to the
//! shim under a cargo feature without changing runtime behavior of normal
//! builds.
//!
//! The scope is deliberately small — just what the permit pool and the
//! strip/cache models need: `AtomicUsize`, `AtomicBool`, `thread::spawn`
//! with value-returning joins, deadlock detection, and panic propagation.
//! Like the sibling `proptest-shim`/`criterion-shim` crates, this exists so
//! the repository model-checks offline; swap in the real `loom` when a
//! registry is available.
//!
//! ```
//! use loom_shim::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let executions = loom_shim::model(|| {
//!     let x = Arc::new(AtomicUsize::new(0));
//!     let x2 = Arc::clone(&x);
//!     let h = loom_shim::thread::spawn(move || x2.fetch_add(1, Ordering::SeqCst));
//!     x.fetch_add(2, Ordering::SeqCst);
//!     h.join();
//!     assert_eq!(x.load(Ordering::SeqCst), 3);
//! });
//! assert!(executions > 1, "both spawn orders must be explored");
//! ```

#![warn(missing_docs)]

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Hard ceiling on executions explored per [`model`] call. Hitting it means
/// the modeled closure has too many yield points to enumerate exhaustively;
/// shrink the model rather than raising the cap.
const EXECUTION_CAP: usize = 200_000;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    Runnable,
    /// Blocked joining the thread with this id.
    Blocked(usize),
    Finished,
}

struct Inner {
    states: Vec<ThreadState>,
    /// Threads owed a *free* (decision-less) resumption: a joiner whose
    /// target finished, or a spawner whose child reached its first park.
    /// Resuming them runs no shared-memory operation — they advance to
    /// their next atomic-op yield and only *that* placement is a decision —
    /// so branching on the resume order would multiply the DFS tree without
    /// adding distinguishable schedules (partial-order reduction).
    pass: Vec<bool>,
    /// Id of the thread currently holding the baton.
    current: usize,
    /// Decision prefix to replay from the previous execution.
    replay: Vec<usize>,
    /// Decisions taken this execution: (choice, number of options).
    taken: Vec<(usize, usize)>,
    abort: bool,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Model {
    inner: Mutex<Inner>,
    cv: Condvar,
    /// OS threads reused across this model call's executions. Exploration
    /// runs thousands of executions, each spawning the same few model
    /// threads — per-execution `std::thread::spawn` would dominate the
    /// wall clock by an order of magnitude.
    pool: Arc<WorkerPool>,
}

enum Job {
    Run(Box<dyn FnOnce() + Send>),
    Exit,
}

struct WorkerPool {
    tx: Mutex<std::sync::mpsc::Sender<Job>>,
    rx: Arc<Mutex<std::sync::mpsc::Receiver<Job>>>,
    idle: Arc<std::sync::atomic::AtomicUsize>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl WorkerPool {
    fn new() -> Self {
        let (tx, rx) = std::sync::mpsc::channel();
        Self {
            tx: Mutex::new(tx),
            rx: Arc::new(Mutex::new(rx)),
            idle: Arc::new(std::sync::atomic::AtomicUsize::new(0)),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Runs `job` on an idle worker, growing the pool if none is free.
    /// Dispatch happens only from the baton holder, so the idle count can
    /// at worst lag behind (spawning a spare worker), never deadlock.
    fn dispatch(&self, job: Box<dyn FnOnce() + Send>) {
        use std::sync::atomic::Ordering::SeqCst;
        if self.idle.load(SeqCst) > 0 {
            self.idle.fetch_sub(1, SeqCst);
        } else {
            let rx = Arc::clone(&self.rx);
            let idle = Arc::clone(&self.idle);
            let worker = std::thread::spawn(move || loop {
                let job = {
                    let g = rx.lock().unwrap_or_else(|p| p.into_inner());
                    g.recv()
                };
                match job {
                    Ok(Job::Run(f)) => {
                        f();
                        idle.fetch_add(1, SeqCst);
                    }
                    Ok(Job::Exit) | Err(_) => return,
                }
            });
            self.handles
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(worker);
        }
        self.tx
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .send(Job::Run(job))
            .expect("loom-shim: worker pool channel closed");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let handles = std::mem::take(&mut *self.handles.lock().unwrap_or_else(|p| p.into_inner()));
        if let Ok(tx) = self.tx.lock() {
            for _ in 0..handles.len() {
                let _ = tx.send(Job::Exit);
            }
        }
        for h in handles {
            let _ = h.join();
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Model>, usize)>> = const { RefCell::new(None) };
}

fn current() -> Option<(Arc<Model>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Model>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// Yield point invoked by every shim atomic operation. A no-op unless the
/// calling thread belongs to an active model run.
pub(crate) fn yield_point() {
    if let Some((model, me)) = current() {
        model.schedule(me);
    }
}

impl Model {
    fn new(replay: Vec<usize>, pool: Arc<WorkerPool>) -> Self {
        Self {
            inner: Mutex::new(Inner {
                states: vec![ThreadState::Runnable],
                pass: vec![false],
                current: 0,
                replay,
                taken: Vec::new(),
                abort: false,
                panic: None,
            }),
            cv: Condvar::new(),
            pool,
        }
    }

    /// Locks the scheduler state, shrugging off poisoning: a panicking model
    /// thread must not cascade into aborts in sibling threads' teardown.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Hands the baton onward after the caller parked (at an op yield, in a
    /// blocked join, in spawn, or by finishing).
    ///
    /// Free-pass threads are resumed first, deterministically: their
    /// resumption executes no shared-memory operation, so branching on it
    /// would only duplicate schedules. A *decision* is recorded exactly when
    /// the baton goes to a thread parked at an atomic-op yield, because the
    /// chosen thread immediately executes its operation — the DFS tree's
    /// leaves are therefore precisely the distinct operation interleavings.
    fn advance(&self, g: &mut Inner) {
        // Joiners whose target finished get a free resumption.
        loop {
            let mut changed = false;
            for i in 0..g.states.len() {
                if let ThreadState::Blocked(t) = g.states[i] {
                    if g.states[t] == ThreadState::Finished {
                        g.states[i] = ThreadState::Runnable;
                        g.pass[i] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if let Some(t) =
            (0..g.states.len()).find(|&i| g.states[i] == ThreadState::Runnable && g.pass[i])
        {
            g.current = t;
            return;
        }
        let options: Vec<usize> = g
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == ThreadState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if options.is_empty() {
            if !g.states.iter().all(|s| *s == ThreadState::Finished) {
                g.abort = true;
                if g.panic.is_none() {
                    g.panic = Some(Box::new(
                        "loom-shim: deadlock — every unfinished thread is blocked in join",
                    ));
                }
            }
            return;
        }
        let d = g.taken.len();
        let choice = if d < g.replay.len() { g.replay[d] } else { 0 };
        debug_assert!(choice < options.len(), "replayed divergent decision path");
        let choice = choice.min(options.len() - 1);
        g.taken.push((choice, options.len()));
        g.current = options[choice];
    }

    /// The atomic-op yield point: decide who executes the next operation,
    /// and if the baton went elsewhere, sleep until a later decision picks
    /// this thread (its operation then runs immediately on wake).
    fn schedule(self: &Arc<Self>, me: usize) {
        let mut g = self.lock();
        if g.abort {
            drop(g);
            panic!("loom-shim: model aborted");
        }
        self.advance(&mut g);
        if g.current != me || g.abort {
            self.cv.notify_all();
            while g.current != me && !g.abort {
                g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
            }
        }
        if g.abort {
            drop(g);
            panic!("loom-shim: model aborted");
        }
    }

    /// Registers a new model thread; it starts runnable but does not run
    /// until spawn hands it the baton.
    fn register(&self) -> usize {
        let mut g = self.lock();
        g.states.push(ThreadState::Runnable);
        g.pass.push(false);
        g.states.len() - 1
    }

    /// First wait of a freshly spawned model thread: park until spawn hands
    /// over the baton. Returns false if the model aborted before this
    /// thread ever ran.
    fn first_wait(&self, me: usize) -> bool {
        let mut g = self.lock();
        while g.current != me && !g.abort {
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        !g.abort
    }

    /// Parks the spawning thread while its child runs to the child's first
    /// yield (or to completion), then resumes the spawner with a free pass.
    /// Starting a child is not a decision: nothing shared happens before
    /// the child's first op yield, and that yield decides placement.
    fn spawn_handoff(self: &Arc<Self>, me: usize, child: usize) {
        let mut g = self.lock();
        if g.abort {
            drop(g);
            panic!("loom-shim: model aborted");
        }
        g.pass[me] = true;
        g.current = child;
        self.cv.notify_all();
        while g.current != me && !g.abort {
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        g.pass[me] = false;
        if g.abort {
            drop(g);
            panic!("loom-shim: model aborted");
        }
    }

    /// Blocks `me` until `target` finishes. An already-finished target
    /// means join is invisible — no park, no decision.
    fn join_wait(self: &Arc<Self>, me: usize, target: usize) {
        let mut g = self.lock();
        if g.abort {
            drop(g);
            panic!("loom-shim: model aborted");
        }
        if g.states[target] == ThreadState::Finished {
            return;
        }
        g.states[me] = ThreadState::Blocked(target);
        self.advance(&mut g);
        self.cv.notify_all();
        while g.current != me && !g.abort {
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        g.pass[me] = false;
        if g.abort {
            drop(g);
            panic!("loom-shim: model aborted");
        }
    }

    /// Marks `me` finished (recording its panic payload, if any) and passes
    /// the baton onward.
    fn thread_exit(self: &Arc<Self>, me: usize, panicked: Option<Box<dyn std::any::Any + Send>>) {
        let mut g = self.lock();
        g.states[me] = ThreadState::Finished;
        if let Some(p) = panicked {
            if g.panic.is_none() {
                g.panic = Some(p);
            }
            g.abort = true;
        }
        if !g.abort {
            // Deadlock here is recorded in `panic` and surfaced by model();
            // nothing to unwind — this thread is already done.
            self.advance(&mut g);
        }
        self.cv.notify_all();
    }

    /// Blocks the driver until every model thread has finished.
    fn wait_all_finished(&self) {
        let mut g = self.lock();
        while !g.states.iter().all(|s| *s == ThreadState::Finished) {
            if g.abort {
                self.cv.notify_all();
            }
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Advances the DFS: next decision path after `taken`, or `None` when the
/// whole tree is explored.
fn next_replay(taken: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut path = taken.to_vec();
    while let Some((choice, options)) = path.pop() {
        if choice + 1 < options {
            let mut replay: Vec<usize> = path.iter().map(|&(c, _)| c).collect();
            replay.push(choice + 1);
            return Some(replay);
        }
    }
    None
}

/// Exhaustively explores every interleaving of `f`'s model threads,
/// returning the number of executions. Panics (with the original payload)
/// if any execution panics, including assertion failures inside `f` and
/// join deadlocks.
pub fn model<F: Fn()>(f: F) -> usize {
    assert!(
        current().is_none(),
        "loom-shim: model() calls cannot nest inside a model thread"
    );
    let pool = Arc::new(WorkerPool::new());
    let mut replay: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= EXECUTION_CAP,
            "loom-shim: exceeded {EXECUTION_CAP} executions — shrink the model"
        );
        let m = Arc::new(Model::new(std::mem::take(&mut replay), Arc::clone(&pool)));
        set_current(Some((Arc::clone(&m), 0)));
        let outcome = catch_unwind(AssertUnwindSafe(&f));
        m.thread_exit(0, outcome.err());
        m.wait_all_finished();
        set_current(None);
        let mut g = m.lock();
        if let Some(p) = g.panic.take() {
            drop(g);
            resume_unwind(p);
        }
        match next_replay(&g.taken) {
            Some(next) => replay = next,
            None => break,
        }
    }
    executions
}

/// Model-aware threads. Inside [`model`], spawned threads are scheduled by
/// the interleaving explorer; outside, they are plain `std::thread` threads.
pub mod thread {
    use super::*;

    enum HandleInner<T> {
        Native(std::thread::JoinHandle<T>),
        Model {
            model: Arc<Model>,
            id: usize,
            result: Arc<Mutex<Option<T>>>,
        },
    }

    /// Owned permission to join a thread, mirroring `std::thread::JoinHandle`
    /// except that `join` returns the value directly (a panicked child
    /// aborts the whole model run, so there is no `Err` arm to handle).
    pub struct JoinHandle<T>(HandleInner<T>);

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its value.
        pub fn join(self) -> T {
            match self.0 {
                HandleInner::Native(h) => h.join().unwrap_or_else(|p| resume_unwind(p)),
                HandleInner::Model { model, id, result } => {
                    let (_, me) = current()
                        .expect("loom-shim: model thread handles must be joined inside the model");
                    model.join_wait(me, id);
                    let value = result.lock().unwrap_or_else(|p| p.into_inner()).take();
                    value.expect("loom-shim: joined thread produced no value")
                }
            }
        }
    }

    /// Spawns a thread. Inside a model run the new thread participates in
    /// exhaustive interleaving (spawning is itself a yield point); outside,
    /// this is `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match current() {
            None => JoinHandle(HandleInner::Native(std::thread::spawn(f))),
            Some((model, me)) => {
                let id = model.register();
                let result = Arc::new(Mutex::new(None));
                let slot = Arc::clone(&result);
                let child_model = Arc::clone(&model);
                model.pool.dispatch(Box::new(move || {
                    if !child_model.first_wait(id) {
                        child_model.thread_exit(id, None);
                        return;
                    }
                    set_current(Some((Arc::clone(&child_model), id)));
                    let outcome = catch_unwind(AssertUnwindSafe(f));
                    set_current(None);
                    match outcome {
                        Ok(v) => {
                            *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(v);
                            child_model.thread_exit(id, None);
                        }
                        Err(p) => child_model.thread_exit(id, Some(p)),
                    }
                }));
                model.spawn_handoff(me, id);
                JoinHandle(HandleInner::Model { model, id, result })
            }
        }
    }
}

/// Model-aware drop-ins for `std::sync::atomic`.
pub mod sync {
    /// Shim atomics: each operation is a scheduler yield point inside a
    /// model run and delegates to the identical std operation either way.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        macro_rules! shim_atomic {
            ($(#[$doc:meta])* $name:ident, $std:ident, $prim:ty) => {
                $(#[$doc])*
                #[derive(Debug, Default)]
                pub struct $name(std::sync::atomic::$std);

                impl $name {
                    /// Creates a new atomic with the given initial value.
                    pub const fn new(v: $prim) -> Self {
                        Self(std::sync::atomic::$std::new(v))
                    }

                    /// Loads the value (yield point under a model).
                    pub fn load(&self, order: Ordering) -> $prim {
                        crate::yield_point();
                        self.0.load(order)
                    }

                    /// Stores a value (yield point under a model).
                    pub fn store(&self, v: $prim, order: Ordering) {
                        crate::yield_point();
                        self.0.store(v, order);
                    }

                    /// Swaps the value (yield point under a model).
                    pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                        crate::yield_point();
                        self.0.swap(v, order)
                    }

                    /// Compare-exchange (one yield point: the operation is a
                    /// single atomic transition).
                    pub fn compare_exchange(
                        &self,
                        cur: $prim,
                        new: $prim,
                        ok: Ordering,
                        err: Ordering,
                    ) -> Result<$prim, $prim> {
                        crate::yield_point();
                        self.0.compare_exchange(cur, new, ok, err)
                    }

                    /// Weak compare-exchange; the shim never fails spuriously,
                    /// so this is `compare_exchange`.
                    pub fn compare_exchange_weak(
                        &self,
                        cur: $prim,
                        new: $prim,
                        ok: Ordering,
                        err: Ordering,
                    ) -> Result<$prim, $prim> {
                        self.compare_exchange(cur, new, ok, err)
                    }
                }
            };
        }

        shim_atomic!(
            /// Model-aware `AtomicUsize`.
            AtomicUsize,
            AtomicUsize,
            usize
        );
        shim_atomic!(
            /// Model-aware `AtomicBool`.
            AtomicBool,
            AtomicBool,
            bool
        );

        impl AtomicUsize {
            /// Adds to the value, returning the previous value.
            pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
                crate::yield_point();
                self.0.fetch_add(v, order)
            }

            /// Subtracts from the value, returning the previous value.
            pub fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
                crate::yield_point();
                self.0.fetch_sub(v, order)
            }

            /// Computes the minimum, returning the previous value.
            pub fn fetch_min(&self, v: usize, order: Ordering) -> usize {
                crate::yield_point();
                self.0.fetch_min(v, order)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::*;

    /// A racy read-modify-write (load then store, not fetch_add) must lose
    /// updates in *some* interleaving — if the explorer were not exhaustive
    /// it could miss the bug this test requires it to find.
    #[test]
    fn exhaustive_exploration_finds_the_lost_update() {
        let lost = Arc::new(std::sync::Mutex::new(0usize));
        let witness = Arc::clone(&lost);
        let executions = model(move || {
            let x = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let x = Arc::clone(&x);
                    thread::spawn(move || {
                        let v = x.load(Ordering::SeqCst);
                        x.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            if x.load(Ordering::SeqCst) == 1 {
                *witness.lock().unwrap() += 1;
            }
        });
        assert!(executions > 1);
        assert!(
            *lost.lock().unwrap() > 0,
            "exhaustive exploration must surface the lost update"
        );
    }

    #[test]
    fn fetch_add_is_atomic_in_every_interleaving() {
        model(|| {
            let x = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let x = Arc::clone(&x);
                    thread::spawn(move || x.fetch_add(1, Ordering::SeqCst))
                })
                .collect();
            let prevs: Vec<usize> = hs.into_iter().map(|h| h.join()).collect();
            assert_eq!(x.load(Ordering::SeqCst), 2);
            // The two increments observed distinct previous values.
            assert_ne!(prevs[0], prevs[1]);
        });
    }

    #[test]
    fn assertion_failures_propagate_with_their_payload() {
        let r = std::panic::catch_unwind(|| {
            model(|| {
                let x = AtomicUsize::new(7);
                assert_eq!(x.load(Ordering::SeqCst), 8, "intentional");
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn child_panics_abort_the_run_and_propagate() {
        let r = std::panic::catch_unwind(|| {
            model(|| {
                let h = thread::spawn(|| panic!("child failure"));
                // The parent may or may not reach the join before the abort.
                h.join();
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn interleaving_count_matches_closed_form() {
        // Two threads racing one fetch_add each: exactly the 2 operation
        // orders, nothing more — spawn/join/exit must not branch the DFS.
        let two_ops = || {
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = Arc::clone(&x);
            let h = thread::spawn(move || x2.fetch_add(1, Ordering::SeqCst));
            x.fetch_add(1, Ordering::SeqCst);
            h.join();
        };
        assert_eq!(model(two_ops), 2);
        assert_eq!(model(two_ops), 2, "exploration must be deterministic");
    }

    #[test]
    fn shim_atomics_are_inert_outside_a_model() {
        let x = AtomicUsize::new(41);
        assert_eq!(x.fetch_add(1, Ordering::SeqCst), 41);
        assert_eq!(x.load(Ordering::SeqCst), 42);
        assert_eq!(
            x.compare_exchange(42, 7, Ordering::SeqCst, Ordering::SeqCst),
            Ok(42)
        );
        let h = thread::spawn(|| 3usize);
        assert_eq!(h.join(), 3);
    }

    /// Three threads with two yield points each: exercises the DFS deep
    /// enough that replay paths of mixed length are advanced and popped,
    /// and pins the leaf count to the multinomial 6!/(2!·2!·2!).
    #[test]
    fn three_thread_model_conserves_the_counter() {
        let executions = model(|| {
            let x = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..3)
                .map(|_| {
                    let x = Arc::clone(&x);
                    thread::spawn(move || {
                        x.fetch_add(1, Ordering::SeqCst);
                        x.fetch_sub(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(x.load(Ordering::SeqCst), 0);
        });
        assert_eq!(executions, 90, "6!/(2!·2!·2!) operation interleavings");
    }
}
