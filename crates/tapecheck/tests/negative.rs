//! Negative fixtures for the tape translation validator: every `E2xx` and
//! `W2xx` code must demonstrably fire with the exact stable code asserted,
//! mirroring the per-code discipline of `stream-verify`'s own fixtures.
//! Each error fixture corrupts a correctly compiled tape with one targeted
//! miscompile (`TapeMutation`) and asserts the validator rejects it with
//! the designated code.

use stream_ir::{KernelBuilder, Scalar, Tape, TapeConfig, TapeMutation, Ty};
use stream_tapecheck::{validate_tape, Code};

fn saxpy() -> Tape {
    let mut b = KernelBuilder::new("saxpy");
    let sx = b.in_stream(Ty::F32);
    let sy = b.in_stream(Ty::F32);
    let out = b.out_stream(Ty::F32);
    let a = b.param(Ty::F32);
    let x = b.read(sx);
    let y = b.read(sy);
    let ax = b.mul(a, x);
    let r = b.add(ax, y);
    let half = b.const_f(0.5);
    let scaled = b.mul(r, half);
    b.write(out, scaled);
    Tape::compile(&b.finish().unwrap())
}

/// A single-use read whose consumer sits past another fallible read — the
/// shape whose fusion the validator must prove was *not* performed.
fn gap(fuse: bool) -> Tape {
    let mut b = KernelBuilder::new("gap");
    let sa = b.in_stream(Ty::I32);
    let sb = b.in_stream(Ty::I32);
    let out = b.out_stream(Ty::I32);
    let x = b.read(sa);
    let y = b.read(sb);
    let s = b.add(y, y);
    let r = b.add(x, s);
    b.write(out, r);
    Tape::compile_with(
        &b.finish().unwrap(),
        TapeConfig {
            fuse,
            ..TapeConfig::default()
        },
    )
}

fn accum() -> Tape {
    let mut b = KernelBuilder::new("accum");
    let s = b.in_stream(Ty::I32);
    let out = b.out_stream(Ty::I32);
    let oc = b.out_stream(Ty::I32);
    let acc = b.recurrence(Scalar::I32(1));
    let x = b.read(s);
    let sum = b.add(acc, x);
    b.bind_next(acc, sum);
    b.write(out, sum);
    let one = b.const_i(1);
    let odd = b.and(sum, one);
    b.cond_write(oc, odd, sum);
    Tape::compile(&b.finish().unwrap())
}

fn fsub() -> Tape {
    let mut b = KernelBuilder::new("fsub");
    let sa = b.in_stream(Ty::F32);
    let sb = b.in_stream(Ty::F32);
    let out = b.out_stream(Ty::F32);
    let x = b.read(sa);
    let y = b.read(sb);
    let d = b.sub(x, y);
    b.write(out, d);
    Tape::compile(&b.finish().unwrap())
}

fn planar_copy() -> Tape {
    let mut b = KernelBuilder::new("copy");
    let s = b.in_stream(Ty::I32);
    let out = b.out_stream(Ty::I32);
    let x = b.read(s);
    b.write(out, x);
    Tape::compile_with(
        &b.finish().unwrap(),
        TapeConfig {
            fuse: false,
            planar: true,
            ..TapeConfig::default()
        },
    )
}

fn assert_rejected(tape: &Tape, mutation: TapeMutation, code: Code) {
    let r = validate_tape(&tape.corrupted(mutation));
    assert!(r.has(code), "{mutation:?} must fire {code}, got:\n{r}");
}

// ------------------------------------------------------------ E2xx errors

#[test]
fn e201_swapped_float_sub_operands() {
    // Float subtraction does not commute: a tape that swaps the operands
    // computes different bits for any x != y.
    assert_rejected(
        &fsub(),
        TapeMutation::SwapSubOperands,
        Code::TapeWriteMismatch,
    );
}

#[test]
fn e201_corrupted_constant_bits() {
    assert_rejected(
        &saxpy(),
        TapeMutation::CorruptConstBits,
        Code::TapeWriteMismatch,
    );
}

#[test]
fn e202_dropped_write() {
    assert_rejected(&saxpy(), TapeMutation::DropWrite, Code::TapeWriteCoverage);
}

#[test]
fn e203_reordered_bounds_checks() {
    // Swapping a paired read's halves flips which stream's bounds check
    // runs first: with both streams exhausted, the wrong one is blamed.
    assert_rejected(
        &saxpy(),
        TapeMutation::SwapPairedReads,
        Code::TapeErrorOrder,
    );
}

#[test]
fn e203_dropped_fusion_guard() {
    // Re-fusing a read past an intervening fallible instruction is the
    // exact rewrite the fuser's fallibility gap check forbids.
    assert_rejected(
        &gap(false),
        TapeMutation::FuseReadAcrossFallible,
        Code::TapeErrorOrder,
    );
}

#[test]
fn e204_rewired_recurrence_feed() {
    assert_rejected(
        &accum(),
        TapeMutation::RewireRecurrence,
        Code::TapeRecurrence,
    );
}

#[test]
fn e204_corrupted_recurrence_init() {
    assert_rejected(
        &accum(),
        TapeMutation::CorruptRecurrenceInit,
        Code::TapeRecurrence,
    );
}

#[test]
fn e205_self_referential_operand() {
    assert_rejected(
        &gap(false),
        TapeMutation::SelfOperand,
        Code::TapeOperandOrder,
    );
}

#[test]
fn e206_dropped_definition() {
    assert_rejected(&gap(false), TapeMutation::DropDef, Code::TapeUndefinedSlot);
}

#[test]
fn e207_hoisted_fallible_instruction() {
    assert_rejected(
        &gap(true),
        TapeMutation::HoistFallible,
        Code::TapeHoistedEffect,
    );
}

#[test]
fn e208_overclaimed_strip_eligibility() {
    assert_rejected(
        &accum(),
        TapeMutation::ClaimStripEligible,
        Code::TapeFlagOverclaim,
    );
}

#[test]
fn e208_overclaimed_batchability() {
    assert_rejected(
        &accum(),
        TapeMutation::ClaimBatchable,
        Code::TapeFlagOverclaim,
    );
}

#[test]
fn e209_swapped_conditional_write_operands() {
    assert_rejected(
        &accum(),
        TapeMutation::SwapCondWriteOperands,
        Code::TapeCondStream,
    );
}

#[test]
fn e210_shifted_planar_plane() {
    assert_rejected(
        &planar_copy(),
        TapeMutation::ShiftPlanarPlane,
        Code::TapePlanarMap,
    );
}

#[test]
fn e211_retargeted_write_offset() {
    assert_rejected(&saxpy(), TapeMutation::RetargetWrite, Code::TapeAccessShape);
}

// --------------------------------------------------------- W2xx warnings

#[test]
fn w201_cleared_strip_eligibility() {
    let r = validate_tape(&saxpy().corrupted(TapeMutation::ClearStripEligible));
    assert!(r.has(Code::TapeMissedEligibility), "{r}");
    assert!(!r.has_errors(), "{r}");
}

#[test]
fn w202_dead_scratchpad_bounds_check() {
    let mut b = KernelBuilder::new("lut");
    let s = b.in_stream(Ty::I32);
    let out = b.out_stream(Ty::I32);
    b.require_sp(8);
    let x = b.read(s);
    let seven = b.const_i(7);
    let addr = b.and(x, seven);
    b.sp_write(addr, x);
    let y = b.sp_read(addr, Ty::I32);
    b.write(out, y);
    let r = validate_tape(&Tape::compile(&b.finish().unwrap()));
    assert_eq!(r.count(Code::TapeDeadCheck), 2, "{r}");
    assert!(!r.has_errors(), "{r}");
}

#[test]
fn w203_division_by_constant_zero() {
    let mut b = KernelBuilder::new("divz");
    let s = b.in_stream(Ty::I32);
    let out = b.out_stream(Ty::I32);
    let x = b.read(s);
    let zero = b.const_i(0);
    let q = b.div(x, zero);
    b.write(out, q);
    let r = validate_tape(&Tape::compile(&b.finish().unwrap()));
    assert!(r.has(Code::TapeStaticFault), "{r}");
    assert!(!r.has_errors(), "{r}");
}

// ------------------------------------------------------------- catalogue

#[test]
fn trunk_tapes_are_clean() {
    for tape in [
        saxpy(),
        gap(true),
        gap(false),
        accum(),
        fsub(),
        planar_copy(),
    ] {
        let r = validate_tape(&tape);
        assert!(!r.has_errors(), "{r}");
    }
}

#[test]
fn every_tape_code_has_a_fixture_here() {
    // Sixteen distinct corruptions above cover all eleven E2xx codes; the
    // three W2xx codes have dedicated fixtures. Keep this count in sync
    // when extending the family.
    let tape_codes = Code::ALL
        .iter()
        .filter(|c| c.as_str().as_bytes()[1] == b'2')
        .count();
    assert_eq!(tape_codes, 14);
}
