//! Translation validation for compiled execution tapes, surfaced through
//! the [`stream_verify`] diagnostic discipline.
//!
//! The analysis itself lives next to the tape compiler
//! ([`stream_ir::Tape::validate`]): it symbolically re-executes the kernel
//! IR and its compiled tape over one abstract iteration and proves them
//! equivalent (write expressions, ordered fault sites, recurrence wiring,
//! eligibility flags, SSA slot layout), then classifies each fallible site
//! with an interval analysis. This crate maps those findings onto the
//! stable `E2xx`/`W2xx` codes of [`stream_verify::Code`] so tape
//! validation composes with the schedule verifier and IR linter in one
//! [`Report`]: same severities, same `has`/`count` assertions, same
//! rendering. See `docs/lint_codes.md` for the catalog and DESIGN.md §12
//! for the abstract domain.
//!
//! ```
//! use stream_ir::{KernelBuilder, Tape, Ty};
//!
//! let mut b = KernelBuilder::new("double");
//! let s = b.in_stream(Ty::I32);
//! let out = b.out_stream(Ty::I32);
//! let x = b.read(s);
//! let two = b.const_i(2);
//! let y = b.mul(x, two);
//! b.write(out, y);
//! let tape = Tape::compile(&b.finish().unwrap());
//!
//! let report = stream_tapecheck::validate_tape(&tape);
//! assert!(report.is_clean(), "{report}");
//! ```

#![warn(missing_docs)]

use stream_ir::{Tape, TapeCheckKind, TapeFinding};
pub use stream_verify::{Code, Diagnostic, Report, Severity};

/// The stable diagnostic code each finding kind maps to. Total: every
/// kind has exactly one code, and the mapping never changes.
pub fn code_for(kind: TapeCheckKind) -> Code {
    match kind {
        TapeCheckKind::WriteMismatch => Code::TapeWriteMismatch,
        TapeCheckKind::WriteCoverage => Code::TapeWriteCoverage,
        TapeCheckKind::ErrorOrder => Code::TapeErrorOrder,
        TapeCheckKind::RecurrenceWiring => Code::TapeRecurrence,
        TapeCheckKind::OperandOrder => Code::TapeOperandOrder,
        TapeCheckKind::UndefinedSlot => Code::TapeUndefinedSlot,
        TapeCheckKind::HoistedEffect => Code::TapeHoistedEffect,
        TapeCheckKind::FlagOverclaim => Code::TapeFlagOverclaim,
        TapeCheckKind::CondStreamMismatch => Code::TapeCondStream,
        TapeCheckKind::PlanarMap => Code::TapePlanarMap,
        TapeCheckKind::AccessShape => Code::TapeAccessShape,
        TapeCheckKind::MissedEligibility => Code::TapeMissedEligibility,
        TapeCheckKind::DeadCheck => Code::TapeDeadCheck,
        TapeCheckKind::StaticFault => Code::TapeStaticFault,
    }
}

/// Converts raw validator findings into a [`Report`], prefixing each
/// message with the kernel name in `context`.
pub fn report_findings(context: &str, findings: &[TapeFinding]) -> Report {
    let mut report = Report::new();
    for f in findings {
        report.push(code_for(f.kind), format!("{context}: {}", f.message), None);
    }
    report
}

/// Translation-validates `tape` and returns the findings as a standard
/// diagnostic report. A clean report is a proof of per-iteration
/// equivalence between the tape and the legacy interpreter semantics (up
/// to wrapping-integer-add canonicalization); error-severity diagnostics
/// are miscompiles, warnings come from the value-range and eligibility
/// analyses.
pub fn validate_tape(tape: &Tape) -> Report {
    report_findings(tape.kernel().name(), &tape.validate())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_code_mapping_is_injective_and_severity_preserving() {
        let mut seen = std::collections::BTreeSet::new();
        for kind in TapeCheckKind::ALL {
            let code = code_for(kind);
            assert!(seen.insert(code.as_str()), "duplicate code for {kind:?}");
            let expect = if kind.is_error() {
                Severity::Error
            } else {
                Severity::Warning
            };
            assert_eq!(code.severity(), expect, "{kind:?} -> {code}");
            assert!(
                code.as_str().as_bytes()[1] == b'2',
                "{kind:?} must map into the 2xx family, got {code}"
            );
        }
    }
}
