use stream_apps::AppId;
use stream_machine::{Machine, SystemParams};
use stream_sim::simulate;
use stream_vlsi::Shape;

fn main() {
    let sys = SystemParams::paper_2007();
    for id in AppId::ALL {
        let small = Machine::baseline();
        let big = Machine::paper(Shape::new(128, 10));
        let rs = simulate(&id.program(&small).program, &small, &sys).unwrap();
        let rb = simulate(&id.program(&big).program, &big, &sys).unwrap();
        let (pb, pg, px) = id.paper_fig15();
        println!("{:<8} base {:>9}cyc ({:>6.1} GOPS, util {:.2}, mem {:>8}) | big {:>8}cyc ({:>6.1} GOPS, util {:.2}, mem {:>8}) | speedup {:>5.1} (paper {px:.1}: {pb:.0}->{pg:.0})",
            id.name(), rs.cycles, rs.gops(1.0), rs.cluster_utilization(), rs.memory_busy,
            rb.cycles, rb.gops(1.0), rb.cluster_utilization(), rb.memory_busy,
            rs.cycles as f64 / rb.cycles as f64);
    }
}
