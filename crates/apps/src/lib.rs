#![warn(missing_docs)]
//! The paper's application suite (Table 4, Figure 15) as stream programs.
//!
//! Each application module provides:
//!
//! * `program(cfg, machine)` — the paper-scale [`stream_sim::StreamProgram`]
//!   (strip-mined to the machine's SRF capacity) for timing simulation,
//! * `run_functional(cfg, clusters)` — end-to-end execution of the same
//!   kernels through the `stream-ir` interpreter,
//! * `reference(...)` — an independent scalar implementation the functional
//!   output is verified against.
//!
//! [`AppId`] enumerates the suite for the Figure 15 reproduction.
//!
//! # Examples
//!
//! ```
//! use stream_apps::AppId;
//! use stream_machine::{Machine, SystemParams};
//! use stream_sim::simulate;
//!
//! let machine = Machine::baseline();
//! let app = AppId::Fft1k.program(&machine);
//! let report = simulate(&app.program, &machine, &SystemParams::paper_2007())?;
//! assert!(report.gops(1.0) > 0.0);
//! # Ok::<(), stream_sim::SimError>(())
//! ```

// Matrix/strip layouts index by (row, column, cluster) throughout.
#![allow(clippy::needless_range_loop)]

pub mod conv;
pub mod depth;
pub mod fft_app;
pub mod kernels;
pub mod qrd;
pub mod render;

mod suite;

use stream_sim::StreamProgram;
pub use suite::AppId;

/// A named, paper-scale application program ready to simulate.
#[derive(Debug, Clone)]
pub struct AppProgram {
    /// Display name (Figure 15 labels).
    pub name: &'static str,
    /// The stream program.
    pub program: StreamProgram,
}
