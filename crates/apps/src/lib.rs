#![warn(missing_docs)]
//! The paper's application suite (Table 4, Figure 15) as stream programs.
//!
//! Each application module provides:
//!
//! * `program(cfg, machine)` — the paper-scale [`stream_sim::StreamProgram`]
//!   (strip-mined to the machine's SRF capacity) for timing simulation,
//! * `run_functional(cfg, clusters)` — end-to-end execution of the same
//!   kernels through the `stream-ir` interpreter,
//! * `reference(...)` — an independent scalar implementation the functional
//!   output is verified against.
//!
//! [`AppId`] enumerates the suite for the Figure 15 reproduction.
//!
//! # Examples
//!
//! ```
//! use stream_apps::AppId;
//! use stream_machine::{Machine, SystemParams};
//! use stream_sim::simulate;
//!
//! let machine = Machine::baseline();
//! let app = AppId::Fft1k.program(&machine);
//! let report = simulate(&app.program, &machine, &SystemParams::paper_2007())?;
//! assert!(report.gops(1.0) > 0.0);
//! # Ok::<(), stream_sim::SimError>(())
//! ```

// Matrix/strip layouts index by (row, column, cluster) throughout.
#![allow(clippy::needless_range_loop)]

pub mod conv;
pub mod depth;
pub mod fft_app;
pub mod kernels;
pub mod qrd;
pub mod render;

mod suite;

use std::sync::Arc;
use stream_machine::Machine;
use stream_sched::{CompileOptions, CompiledKernel};
use stream_sim::StreamProgram;
pub use suite::AppId;

/// Compiles one of an application's kernels, with explicit scheduler
/// options, through the process-wide compiled-kernel cache
/// ([`stream_grid::global_cache`]): building the same application on the
/// same machine twice — or sweeping many applications that share kernels —
/// schedules each kernel once. The options participate in the cache key,
/// so the auto-tuner's candidate compiles share the same process-wide (and
/// disk) cache as default builds and a warm restart replays tuned programs
/// with zero scheduler runs too.
pub(crate) fn compile_cached_opts(
    kernel: &stream_ir::Kernel,
    machine: &Machine,
    opts: &CompileOptions,
    what: &str,
) -> Arc<CompiledKernel> {
    stream_grid::global_cache()
        .get_or_compile(kernel, machine, opts)
        .unwrap_or_else(|e| panic!("{what} schedules: {e}"))
}

/// A named, paper-scale application program ready to simulate.
#[derive(Debug, Clone)]
pub struct AppProgram {
    /// Display name (Figure 15 labels).
    pub name: &'static str,
    /// The stream program.
    pub program: StreamProgram,
}
