//! CONV: convolution filter on a 512x384 image (Table 4).
//!
//! The image streams through in row bands sized to the SRF; each output row
//! is one `convolve` kernel call over seven resident row streams (rows are
//! loaded once per band and reused by up to seven output rows — the
//! producer-consumer locality the SRF exists for).

use crate::AppProgram;
use stream_ir::{ExecConfig, Tape};
use stream_kernels::convolve::{self, Taps};
use stream_kernels::util::{to_f32, XorShift32};
use stream_machine::Machine;
use stream_sim::{fits_in_srf, ProgramBuilder};

/// 16-bit pixels pack two to a 32-bit word in memory and the SRF; the
/// interpreter operates on widened words, but transfer sizes use the packed
/// layout (see DESIGN.md substitutions).
const PACK: u64 = 2;

/// CONV configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Image width in pixels (one word per pixel).
    pub width: usize,
    /// Image height in rows.
    pub height: usize,
}

impl Config {
    /// The paper's dataset: a 512x384 image.
    pub fn paper() -> Self {
        Self {
            width: 512,
            height: 384,
        }
    }

    /// A reduced size for functional tests.
    pub fn small() -> Self {
        Self {
            width: 64,
            height: 24,
        }
    }
}

/// Rows of filter support on each side.
const HALO: usize = 3;

/// Picks the largest row band whose resident set fits the SRF comfortably.
fn band_rows(cfg: &Config, machine: &Machine) -> usize {
    let mut band = cfg.height - 2 * HALO;
    while band > 1 {
        // Input rows + two output rows in flight (double buffering slack).
        let words = ((band + 2 * HALO) + 4) as u64 * cfg.width as u64;
        if fits_in_srf(machine, words, 0.25) {
            return band;
        }
        band /= 2;
    }
    1
}

/// Builds the CONV stream program for `machine`.
pub fn program(cfg: &Config, machine: &Machine) -> AppProgram {
    program_with(cfg, machine, &stream_sched::CompileOptions::default(), 1)
}

/// [`program`] with explicit scheduler options and a strip-batching factor:
/// `strip_scale` output rows share one kernel call (fewer pipeline fills and
/// host issues per band). `strip_scale = 1` with default options is exactly
/// [`program`].
pub fn program_with(
    cfg: &Config,
    machine: &Machine,
    opts: &stream_sched::CompileOptions,
    strip_scale: u32,
) -> AppProgram {
    let kernel = crate::compile_cached_opts(&convolve::kernel(machine), machine, opts, "convolve");
    let mut p = ProgramBuilder::new();
    let band = band_rows(cfg, machine);
    let width = cfg.width as u64;
    let scale = (strip_scale.max(1) as usize).min(band);

    let mut y = HALO;
    while y < cfg.height - HALO {
        let rows_out = band.min(cfg.height - HALO - y);
        // Load the band's input rows (y - HALO .. y + rows_out + HALO).
        let rows_in = rows_out + 2 * HALO;
        let row_streams: Vec<_> = (0..rows_in)
            .map(|r| p.load(format!("row{}", y + r - HALO), width / PACK))
            .collect();
        let mut r = 0usize;
        while r < rows_out {
            let rows = scale.min(rows_out - r);
            // The kernel takes four streams (center + three row pairs);
            // for timing, dependencies resolve through the band's loaded
            // rows — include the latest-loaded of the batch's whole window
            // (r + rows + 5) so the call starts only once it is resident.
            let inputs = [
                row_streams[r + 3],
                row_streams[r + rows + 5],
                row_streams[r + rows + 4],
                row_streams[r + rows + 3],
            ];
            let out_words = rows as u64 * width / PACK;
            let outs = p.kernel(
                &kernel,
                &inputs,
                &[out_words, out_words],
                rows as u64 * width,
            );
            p.store(outs[0]);
            p.store(outs[1]);
            r += rows;
        }
        y += rows_out;
    }

    AppProgram {
        name: "CONV",
        program: p.finish(),
    }
}

/// Functional end-to-end run: filters a deterministic image and returns the
/// `(smoothed, laplacian)` planes for the interior rows.
pub fn run_functional(cfg: &Config, clusters: usize) -> (Vec<f32>, Vec<f32>) {
    let machine = Machine::paper(stream_vlsi::Shape::new(clusters as u32, 5));
    // One tape compile serves every row of the image.
    let kernel = Tape::compile(&convolve::kernel(&machine));
    let taps = Taps::gaussian();
    let image = sample_image(cfg, 42);
    let mut smooth = Vec::new();
    let mut lap = Vec::new();
    for y in HALO..cfg.height - HALO {
        let rows: [Vec<f32>; 7] = std::array::from_fn(|k| image[y - HALO + k].clone());
        let outs = kernel
            .execute(
                &convolve::params(&taps),
                &convolve::input_streams(&rows),
                &ExecConfig::with_clusters(clusters),
            )
            .expect("convolve executes");
        smooth.extend(to_f32(&outs[0]));
        lap.extend(to_f32(&outs[1]));
    }
    (smooth, lap)
}

/// Scalar reference matching [`run_functional`].
pub fn reference(cfg: &Config, clusters: usize) -> (Vec<f32>, Vec<f32>) {
    let taps = Taps::gaussian();
    let image = sample_image(cfg, 42);
    let mut smooth = Vec::new();
    let mut lap = Vec::new();
    for y in HALO..cfg.height - HALO {
        let rows: [Vec<f32>; 7] = std::array::from_fn(|k| image[y - HALO + k].clone());
        let (s, l) = convolve::reference(&rows, &taps, clusters);
        smooth.extend(s);
        lap.extend(l);
    }
    (smooth, lap)
}

fn sample_image(cfg: &Config, seed: u32) -> Vec<Vec<f32>> {
    let mut rng = XorShift32(seed);
    (0..cfg.height)
        .map(|_| (0..cfg.width).map(|_| rng.next_f32() * 255.0).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_machine::SystemParams;
    use stream_sim::simulate;
    use stream_vlsi::Shape;

    #[test]
    fn functional_matches_reference() {
        let cfg = Config::small();
        let (s, l) = run_functional(&cfg, 8);
        let (rs, rl) = reference(&cfg, 8);
        assert_eq!(s.len(), rs.len());
        for i in 0..s.len() {
            assert!((s[i] - rs[i]).abs() < 1e-3 * (1.0 + rs[i].abs()), "i={i}");
            assert!((l[i] - rl[i]).abs() < 1e-3 * (1.0 + rl[i].abs()), "i={i}");
        }
    }

    #[test]
    fn paper_scale_program_simulates_on_all_machines() {
        let cfg = Config::paper();
        for &(c, n) in &[(8u32, 5u32), (32, 5), (128, 10)] {
            let m = Machine::paper(Shape::new(c, n));
            let app = program(&cfg, &m);
            let r = simulate(&app.program, &m, &SystemParams::paper_2007()).unwrap();
            assert!(r.cycles > 0, "C={c} N={n}");
            assert!(r.gops(1.0) > 1.0, "C={c} N={n}: {}", r.gops(1.0));
        }
    }

    #[test]
    fn bigger_machines_are_faster() {
        let cfg = Config::paper();
        let small = Machine::baseline();
        let big = Machine::paper(Shape::new(128, 10));
        let sys = SystemParams::paper_2007();
        let rs = simulate(&program(&cfg, &small).program, &small, &sys).unwrap();
        let rb = simulate(&program(&cfg, &big).program, &big, &sys).unwrap();
        let speedup = rs.cycles as f64 / rb.cycles as f64;
        assert!(speedup > 3.0, "speedup {speedup}");
    }

    #[test]
    fn band_respects_srf() {
        let cfg = Config::paper();
        let m = Machine::baseline();
        let b = band_rows(&cfg, &m);
        assert!(b >= 1);
        assert!(((b + 2 * HALO + 4) * cfg.width) as u64 <= m.srf_total_words());
    }
}
