//! The six-application suite of Table 4/Figure 15 behind one enumeration.

use crate::{conv, depth, fft_app, qrd, render, AppProgram};
use std::fmt;
use stream_machine::Machine;

/// The paper's application suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppId {
    /// Polygon rendering of a bowling pin with a marble shader.
    Render,
    /// Stereo depth extraction on a 512x384 image.
    Depth,
    /// Convolution filter on a 512x384 image.
    Conv,
    /// 256x256 matrix QR decomposition.
    Qrd,
    /// 1024-point complex FFT.
    Fft1k,
    /// 4096-point complex FFT.
    Fft4k,
}

impl AppId {
    /// All six applications, in Figure 15 order.
    pub const ALL: [AppId; 6] = [
        AppId::Render,
        AppId::Depth,
        AppId::Conv,
        AppId::Qrd,
        AppId::Fft1k,
        AppId::Fft4k,
    ];

    /// Display name, as in Figure 15.
    pub fn name(&self) -> &'static str {
        match self {
            AppId::Render => "RENDER",
            AppId::Depth => "DEPTH",
            AppId::Conv => "CONV",
            AppId::Qrd => "QRD",
            AppId::Fft1k => "FFT1K",
            AppId::Fft4k => "FFT4K",
        }
    }

    /// Builds this application's paper-scale stream program for `machine`.
    pub fn program(&self, machine: &Machine) -> AppProgram {
        self.program_with(machine, &stream_sched::CompileOptions::default(), 1)
    }

    /// [`Self::program`] with explicit scheduler options and a
    /// strip-batching factor — the auto-tuner's entry point. With default
    /// options and `strip_scale = 1` the built program is identical to
    /// [`Self::program`] (the tuner's baseline candidate relies on this).
    pub fn program_with(
        &self,
        machine: &Machine,
        opts: &stream_sched::CompileOptions,
        strip_scale: u32,
    ) -> AppProgram {
        match self {
            AppId::Render => {
                render::program_with(&render::Config::paper(), machine, opts, strip_scale)
            }
            AppId::Depth => {
                depth::program_with(&depth::Config::paper(), machine, opts, strip_scale)
            }
            AppId::Conv => conv::program_with(&conv::Config::paper(), machine, opts, strip_scale),
            AppId::Qrd => qrd::program_with(&qrd::Config::paper(), machine, opts, strip_scale),
            AppId::Fft1k => {
                fft_app::program_with(&fft_app::Config::fft1k(), machine, opts, strip_scale)
            }
            AppId::Fft4k => {
                fft_app::program_with(&fft_app::Config::fft4k(), machine, opts, strip_scale)
            }
        }
    }

    /// The IR kernels this application's program calls, built for
    /// `machine`, keyed by their kernel names (the same names the compiled
    /// program's kernel instructions report). The auto-tuner uses this to
    /// bound candidate configurations without compiling them.
    pub fn kernels(&self, machine: &Machine) -> Vec<stream_ir::Kernel> {
        use crate::kernels as ak;
        use stream_kernels::{blocksad, convolve, fft, irast, noise};
        match self {
            AppId::Render => vec![
                ak::transform(machine),
                irast::kernel(machine),
                ak::decode_frag(machine),
                noise::kernel(machine),
                ak::blend(machine),
            ],
            AppId::Depth => vec![
                blocksad::kernel(machine),
                ak::sad_init(machine),
                ak::sad_min(machine),
            ],
            AppId::Conv => vec![convolve::kernel(machine)],
            AppId::Qrd => vec![
                ak::colnorm(machine),
                ak::vscale(machine),
                ak::coldot(machine),
                ak::colaxpy(machine),
            ],
            AppId::Fft1k | AppId::Fft4k => vec![fft::kernel(machine)],
        }
    }

    /// Paper Figure 15 anchors: `(baseline GOPS at C=8 N=5, GOPS at C=128
    /// N=10, speedup at C=128 N=10)`.
    pub fn paper_fig15(&self) -> (f64, f64, f64) {
        match self {
            AppId::Render => (15.4, 311.0, 20.5),
            AppId::Depth => (28.0, 328.0, 11.6),
            AppId::Conv => (41.2, 469.0, 11.4),
            AppId::Qrd => (25.6, 138.0, 5.4),
            AppId::Fft1k => (14.6, 103.0, 7.1),
            AppId::Fft4k => (18.3, 211.0, 11.5),
        }
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_machine::SystemParams;
    use stream_sim::simulate;

    #[test]
    fn all_apps_build_and_simulate_on_baseline() {
        let m = Machine::baseline();
        let sys = SystemParams::paper_2007();
        for id in AppId::ALL {
            let app = id.program(&m);
            let r = simulate(&app.program, &m, &sys).unwrap_or_else(|e| panic!("{id} failed: {e}"));
            assert!(r.cycles > 0, "{id}");
        }
    }

    #[test]
    fn program_with_defaults_is_program() {
        let m = Machine::baseline();
        let opts = stream_sched::CompileOptions::default();
        for id in AppId::ALL {
            let a = format!("{:?}", id.program(&m).program);
            let b = format!("{:?}", id.program_with(&m, &opts, 1).program);
            assert_eq!(a, b, "{id}: strip_scale=1 must rebuild the default");
        }
    }

    #[test]
    fn strip_batched_programs_simulate() {
        let m = Machine::baseline();
        let sys = SystemParams::paper_2007();
        let opts = stream_sched::CompileOptions::default();
        for id in AppId::ALL {
            let app = id.program_with(&m, &opts, 2);
            let r = simulate(&app.program, &m, &sys).unwrap_or_else(|e| panic!("{id}: {e}"));
            assert!(r.cycles > 0, "{id}");
        }
    }

    #[test]
    fn names_match_figure_15() {
        let names: Vec<_> = AppId::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["RENDER", "DEPTH", "CONV", "QRD", "FFT1K", "FFT4K"]
        );
    }
}
