//! RENDER: polygon rendering of a bowling pin with a procedural marble
//! shader (Table 4).
//!
//! The pipeline chains five kernels: `transform` (vertex geometry), `irast`
//! (span expansion through conditional streams), `decode_frag`,
//! `noise` (the Perlin marble shader), and `blend` (depth attenuation).
//! The scene is a procedurally generated bowling-pin silhouette — span
//! setup between transform and rasterization runs on the host, a documented
//! substitution (see DESIGN.md). Stream lengths are set by the scene's
//! triangle/fragment counts, which dwarf `C` — why RENDER scales so well in
//! the paper's Figure 15.

use crate::kernels::{blend, blend_reference, decode_frag, decode_frag_reference, transform};
use crate::AppProgram;
use stream_ir::{execute, execute_with, ExecConfig, ExecOptions, Scalar};
use stream_kernels::irast::{self, Span};
use stream_kernels::noise;
use stream_kernels::util::{to_f32, to_i32, words_f32, words_i32};
use stream_machine::Machine;
use stream_sim::ProgramBuilder;

/// RENDER configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Scanlines of the pin silhouette.
    pub scanlines: usize,
    /// Triangles in the model (vertex-stream length is three per triangle).
    pub triangles: usize,
}

impl Config {
    /// The paper-scale scene: a pin of 512 scanlines, ~2k triangles.
    pub fn paper() -> Self {
        Self {
            scanlines: 512,
            triangles: 2048,
        }
    }

    /// Reduced size for functional tests.
    pub fn small() -> Self {
        Self {
            scanlines: 24,
            triangles: 64,
        }
    }
}

/// Depth-attenuation coefficient of the blend kernel.
pub const BLEND_K: f32 = 0.02;

/// The procedural bowling-pin spans: for each scanline, spans of at most
/// [`irast::STEPS`] pixels covering the pin's silhouette at that height.
pub fn pin_spans(cfg: &Config) -> Vec<Span> {
    let mut spans = Vec::new();
    let h = cfg.scanlines as f32;
    for y in 0..cfg.scanlines {
        let t = y as f32 / h;
        // A pin-ish profile: wide body, narrow neck, bulbous head.
        let profile =
            0.18 + 0.65 * (1.0 - t) * t * 2.0 + 0.35 * (-((t - 0.82) * 6.0).powi(2)).exp();
        let half = (profile * 120.0).max(1.0) as i32;
        let cx = 512i32;
        let mut x = cx - half;
        while x < cx + half {
            let width = (cx + half - x).min(irast::STEPS as i32);
            spans.push(Span {
                x0: x,
                width,
                y: y as i32,
                color: (y % 7) as i32,
                z0: 10.0 + 20.0 * t + 0.01 * (x - cx) as f32,
                dzdx: 0.01,
            });
            x += width;
        }
    }
    spans
}

/// Procedural vertex soup for the transform stage (three vertices per
/// triangle).
pub fn pin_vertices(cfg: &Config) -> Vec<(f32, f32, f32)> {
    (0..3 * cfg.triangles)
        .map(|i| {
            let t = i as f32 / (3 * cfg.triangles) as f32;
            (
                (t * 37.0).sin() * 30.0,
                t * 200.0,
                40.0 + (t * 17.0).cos() * 10.0,
            )
        })
        .collect()
}

/// The viewing transform used by the program and references.
pub fn view_matrix() -> ([f32; 12], f32) {
    (
        [
            1.0, 0.0, 0.1, 0.0, //
            0.0, 1.0, 0.0, -100.0, //
            0.0, 0.05, 1.0, 5.0,
        ],
        64.0,
    )
}

fn pad_to_multiple(mut v: Vec<Scalar>, m: usize, fill: Scalar) -> Vec<Scalar> {
    while !v.len().is_multiple_of(m) {
        v.push(fill);
    }
    v
}

/// Builds the RENDER stream program for `machine`.
pub fn program(cfg: &Config, machine: &Machine) -> AppProgram {
    program_with(cfg, machine, &stream_sched::CompileOptions::default(), 1)
}

/// [`program`] with explicit scheduler options and a strip-batching factor:
/// `strip_scale` multiplies the SRF-fitted span batch (larger batches trade
/// SRF slack for fewer pipeline fills; infeasible sizes are rejected by the
/// simulator's residency check). `strip_scale = 1` with default options is
/// exactly [`program`].
pub fn program_with(
    cfg: &Config,
    machine: &Machine,
    opts: &stream_sched::CompileOptions,
    strip_scale: u32,
) -> AppProgram {
    let ktrans = crate::compile_cached_opts(&transform(machine), machine, opts, "transform");
    let kirast = crate::compile_cached_opts(&irast::kernel(machine), machine, opts, "irast");
    let kdecode = crate::compile_cached_opts(&decode_frag(machine), machine, opts, "decode");
    let knoise = crate::compile_cached_opts(&noise::kernel(machine), machine, opts, "noise");
    let kblend = crate::compile_cached_opts(&blend(machine), machine, opts, "blend");

    let spans = pin_spans(cfg);
    let n_verts = (3 * cfg.triangles) as u64;

    let mut p = ProgramBuilder::new();
    // Geometry.
    let vx = p.load("vx", n_verts);
    let vy = p.load("vy", n_verts);
    let vz = p.load("vz", n_verts);
    // The transformed vertices feed host-side span setup (a documented
    // substitution); they are consumed from the SRF, not stored.
    let _screen = p.kernel(
        &ktrans,
        &[vx, vy, vz],
        &[n_verts, n_verts, n_verts],
        n_verts,
    );

    // Rasterize/shade/blend in span batches sized to the SRF: a batch of S
    // spans holds ~6S span words plus ~7 fragment-sized streams in flight.
    let mut batch = 4096usize;
    while batch > 64
        && !stream_sim::fits_in_srf(machine, (6 + 7 * irast::STEPS) as u64 * batch as u64, 0.4)
    {
        batch /= 2;
    }
    // The tuner can trade the remaining SRF slack for fewer, larger batches;
    // sizes that no longer fit fail the simulator's residency check and the
    // candidate is discarded there.
    batch = batch.saturating_mul(strip_scale.max(1) as usize);
    for chunk in spans.chunks(batch) {
        let n_spans = chunk.len() as u64;
        let n_frags: u64 = chunk.iter().map(|s| s.width as u64).sum();
        // 16-bit span fields pack two to a word in memory; fragment colors
        // store packed as well (see DESIGN.md substitutions).
        let ints = p.load("span_ints", 4 * n_spans / 2);
        let floats = p.load("span_floats", 2 * n_spans);
        let rast = p.kernel(&kirast, &[ints, floats], &[n_frags, n_frags], n_spans);
        let coords = p.kernel(&kdecode, &[rast[0]], &[n_frags, n_frags], n_frags);
        let shade = p.kernel(&knoise, &[coords[0], coords[1]], &[n_frags], n_frags);
        let color = p.kernel(
            &kblend,
            &[shade[0], rast[1]],
            &[n_frags.div_ceil(2)],
            n_frags,
        );
        p.store(color[0]);
    }

    AppProgram {
        name: "RENDER",
        program: p.finish(),
    }
}

/// Functional end-to-end RENDER; returns the blended fragment colors.
pub fn run_functional(cfg: &Config, clusters: usize) -> Vec<f32> {
    let machine = Machine::paper(stream_vlsi::Shape::new(clusters as u32, 5));
    let exec = ExecConfig::with_clusters(clusters);
    let spans = pin_spans(cfg);

    // Transform (result feeds host-side span setup; computed for fidelity).
    let verts = pin_vertices(cfg);
    let (mat, focal) = view_matrix();
    let mut tparams: Vec<Scalar> = mat.iter().map(|&v| Scalar::F32(v)).collect();
    tparams.push(Scalar::F32(focal));
    let vx = pad_to_multiple(
        words_f32(verts.iter().map(|v| v.0)),
        clusters,
        Scalar::F32(0.0),
    );
    let vy = pad_to_multiple(
        words_f32(verts.iter().map(|v| v.1)),
        clusters,
        Scalar::F32(0.0),
    );
    let vz = pad_to_multiple(
        words_f32(verts.iter().map(|v| v.2)),
        clusters,
        Scalar::F32(1.0),
    );
    let _screen =
        execute(&transform(&machine), &tparams, &[vx, vy, vz], &exec).expect("transform executes");

    // Rasterize (pad span records to a SIMD strip).
    let mut padded = spans.clone();
    while !padded.len().is_multiple_of(clusters) {
        padded.push(Span {
            x0: 0,
            width: 0,
            y: 0,
            color: 0,
            z0: 0.0,
            dzdx: 0.0,
        });
    }
    let rast = execute(
        &irast::kernel(&machine),
        &[],
        &irast::input_streams(&padded),
        &exec,
    )
    .expect("irast executes");
    let frags = to_i32(&rast[0]);
    let depth = to_f32(&rast[1]);

    // Decode / shade / blend (pad fragment streams to a strip).
    let packed = pad_to_multiple(words_i32(frags.clone()), clusters, Scalar::I32(0));
    let coords = execute(&decode_frag(&machine), &[], &[packed], &exec).expect("decode executes");
    let sp = noise::sp_init();
    let shade = execute_with(
        &noise::kernel(&machine),
        &ExecOptions {
            params: &[],
            sp_init: Some(&sp),
            iterations: None,
        },
        &[coords[0].clone(), coords[1].clone()],
        &exec,
    )
    .expect("noise executes");
    let zpad = pad_to_multiple(words_f32(depth.clone()), clusters, Scalar::F32(0.0));
    let blended = execute(
        &blend(&machine),
        &[Scalar::F32(BLEND_K)],
        &[shade[0].clone(), zpad],
        &exec,
    )
    .expect("blend executes");
    to_f32(&blended[0])[..frags.len()].to_vec()
}

/// Scalar reference for [`run_functional`].
pub fn reference(cfg: &Config, clusters: usize) -> Vec<f32> {
    let spans = pin_spans(cfg);
    let mut padded = spans;
    while !padded.len().is_multiple_of(clusters) {
        padded.push(Span {
            x0: 0,
            width: 0,
            y: 0,
            color: 0,
            z0: 0.0,
            dzdx: 0.0,
        });
    }
    let frags = irast::reference(&padded, clusters);
    let packed: Vec<i32> = frags.iter().map(|f| f.packed).collect();
    let depth: Vec<f32> = frags.iter().map(|f| f.z).collect();
    let coords = decode_frag_reference(&packed);
    let xs: Vec<f32> = coords.iter().map(|c| c.0).collect();
    let ys: Vec<f32> = coords.iter().map(|c| c.1).collect();
    let shade = noise::reference(&xs, &ys);
    blend_reference(&shade, &depth, BLEND_K)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_machine::SystemParams;
    use stream_sim::simulate;
    use stream_vlsi::Shape;

    #[test]
    fn functional_matches_reference() {
        let cfg = Config::small();
        let got = run_functional(&cfg, 8);
        let want = reference(&cfg, 8);
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() < 1e-3 * (1.0 + w.abs()),
                "frag {i}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn pin_has_plausible_fragment_counts() {
        let cfg = Config::paper();
        let spans = pin_spans(&cfg);
        let frags: i64 = spans.iter().map(|s| i64::from(s.width)).sum();
        assert!(spans.len() > 3_000, "spans {}", spans.len());
        assert!(frags > 10_000, "frags {frags}");
    }

    #[test]
    fn paper_scale_program_simulates() {
        let cfg = Config::paper();
        let sys = SystemParams::paper_2007();
        for &(c, n) in &[(8u32, 5u32), (128, 10)] {
            let m = Machine::paper(Shape::new(c, n));
            let app = program(&cfg, &m);
            let r = simulate(&app.program, &m, &sys).unwrap();
            assert!(r.cycles > 0);
        }
    }

    #[test]
    fn render_scales_very_well() {
        // Paper: 20.5x at C=128 N=10. Long fragment streams, all kernels.
        let cfg = Config::paper();
        let sys = SystemParams::paper_2007();
        let small = Machine::baseline();
        let big = Machine::paper(Shape::new(128, 10));
        let rs = simulate(&program(&cfg, &small).program, &small, &sys).unwrap();
        let rb = simulate(&program(&cfg, &big).program, &big, &sys).unwrap();
        let speedup = rs.cycles as f64 / rb.cycles as f64;
        assert!(speedup > 6.0, "speedup {speedup}");
    }
}
