//! DEPTH: stereo depth extraction on a 512x384 pixel pair (Table 4,
//! Kanade-style video-rate stereo).
//!
//! For each scanline and candidate disparity the `blocksad` kernel produces
//! a windowed SAD map (right rows are disparity-shifted views of the same
//! SRF-resident row — no reload); `sad_init`/`sad_min` kernels reduce across
//! disparities to the best disparity per pixel. Row bands are sized to the
//! SRF, and rows are reused across the whole disparity sweep — the heavy
//! producer-consumer locality that makes DEPTH scale in the paper.

use crate::kernels::{sad_init, sad_min};
use crate::AppProgram;
use stream_ir::{ExecConfig, Scalar, Tape};
use stream_kernels::blocksad;
use stream_kernels::util::{to_i32, words_i32, XorShift32};
use stream_machine::Machine;
use stream_sim::{fits_in_srf, ProgramBuilder};

/// 16-bit pixels pack two to a word in memory (see DESIGN.md).
const PACK: u64 = 2;

/// DEPTH configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Image width (output SAD window width).
    pub width: usize,
    /// Image height in rows.
    pub height: usize,
    /// Candidate disparities searched.
    pub disparities: usize,
}

impl Config {
    /// The paper's dataset: 512x384 with a 16-disparity search.
    pub fn paper() -> Self {
        Self {
            width: 512,
            height: 384,
            disparities: 16,
        }
    }

    /// Reduced size for functional tests.
    pub fn small() -> Self {
        Self {
            width: 32,
            height: 8,
            disparities: 4,
        }
    }
}

/// Picks a row band that keeps both images' rows resident.
fn band_rows(cfg: &Config, machine: &Machine) -> usize {
    let mut band = cfg.height - 2;
    let right_width = (cfg.width + cfg.disparities) as u64;
    while band > 1 {
        let words = (band as u64 + 2) * (cfg.width as u64 + right_width) + 8 * cfg.width as u64;
        if fits_in_srf(machine, words, 0.25) {
            return band;
        }
        band /= 2;
    }
    1
}

/// Builds the DEPTH stream program for `machine`.
pub fn program(cfg: &Config, machine: &Machine) -> AppProgram {
    program_with(cfg, machine, &stream_sched::CompileOptions::default(), 1)
}

/// [`program`] with explicit scheduler options and a strip-batching factor:
/// `strip_scale` output rows share each SAD/arg-min call, so one disparity
/// chain covers the whole batch. `strip_scale = 1` with default options is
/// exactly [`program`].
pub fn program_with(
    cfg: &Config,
    machine: &Machine,
    opts: &stream_sched::CompileOptions,
    strip_scale: u32,
) -> AppProgram {
    let sad = crate::compile_cached_opts(&blocksad::kernel(machine), machine, opts, "blocksad");
    let init = crate::compile_cached_opts(&sad_init(machine), machine, opts, "sad_init");
    let kmin = crate::compile_cached_opts(&sad_min(machine), machine, opts, "sad_min");

    let mut p = ProgramBuilder::new();
    let band = band_rows(cfg, machine);
    let width = cfg.width as u64;
    let right_width = (cfg.width + cfg.disparities) as u64;
    let scale = (strip_scale.max(1) as usize).min(band);

    let mut y = 1usize;
    while y < cfg.height - 1 {
        let rows_out = band.min(cfg.height - 1 - y);
        let rows_in = rows_out + 2;
        let left: Vec<_> = (0..rows_in)
            .map(|r| p.load(format!("L{}", y + r - 1), width / PACK))
            .collect();
        let right: Vec<_> = (0..rows_in)
            .map(|r| p.load(format!("R{}", y + r - 1), right_width / PACK))
            .collect();
        let mut r = 0usize;
        while r < rows_out {
            let batch = scale.min(rows_out - r);
            let recs = batch as u64 * width;
            // d = 0 seeds the arg-min chain; the input set spans the
            // batch's whole row window so the call waits for all of it.
            let rows = [
                left[r],
                left[r + batch],
                left[r + batch + 1],
                right[r],
                right[r + batch],
                right[r + batch + 1],
            ];
            let sad0 = p.kernel(&sad, &rows, &[recs], recs);
            let mut best = p.kernel(&init, &[sad0[0]], &[recs, recs], recs);
            for _d in 1..cfg.disparities {
                // The shifted right-row views are the same SRF streams.
                let sd = p.kernel(&sad, &rows, &[recs], recs);
                best = p.kernel(&kmin, &[best[0], best[1], sd[0]], &[recs, recs], recs);
            }
            p.store(best[1]); // disparity map rows
            r += batch;
        }
        y += rows_out;
    }

    AppProgram {
        name: "DEPTH",
        program: p.finish(),
    }
}

/// Deterministic stereo pair: left rows of `width + disparities` pixels
/// (so shifted views exist) — right image is the left shifted with noise.
fn sample_pair(cfg: &Config, seed: u32) -> (Vec<Vec<i32>>, Vec<Vec<i32>>) {
    let mut rng = XorShift32(seed);
    let w = cfg.width + cfg.disparities;
    let true_shift = 2usize.min(cfg.disparities - 1);
    let left: Vec<Vec<i32>> = (0..cfg.height)
        .map(|_| (0..w).map(|_| rng.next_below(256) as i32).collect())
        .collect();
    // A pixel at left column x reappears in the right image at x + shift,
    // so right[x + d] matches left[x] when d equals the true shift.
    let right: Vec<Vec<i32>> = left
        .iter()
        .map(|row| (0..w).map(|x| row[x.saturating_sub(true_shift)]).collect())
        .collect();
    (left, right)
}

/// Functional end-to-end DEPTH over the kernels: returns the disparity map
/// (rows 1..height-1).
pub fn run_functional(cfg: &Config, clusters: usize) -> Vec<Vec<i32>> {
    let machine = Machine::paper(stream_vlsi::Shape::new(clusters as u32, 5));
    // Each kernel runs once per (row, disparity) cell: compile its
    // execution tape once and reuse it across the whole sweep.
    let sadk = Tape::compile(&blocksad::kernel(&machine));
    let initk = Tape::compile(&sad_init(&machine));
    let mink = Tape::compile(&sad_min(&machine));
    let (left, right) = sample_pair(cfg, 77);
    let exec = ExecConfig::with_clusters(clusters);

    let mut map = Vec::new();
    for y in 1..cfg.height - 1 {
        let lrows: [Vec<i32>; 3] = std::array::from_fn(|k| left[y - 1 + k][..cfg.width].to_vec());
        let sad_for = |d: usize| -> Vec<i32> {
            let rrows: [Vec<i32>; 3] =
                std::array::from_fn(|k| right[y - 1 + k][d..d + cfg.width].to_vec());
            let outs = sadk
                .execute(&[], &blocksad::input_streams(&lrows, &rrows), &exec)
                .expect("blocksad executes");
            to_i32(&outs[0])
        };
        let s0 = sad_for(0);
        let outs = initk
            .execute(&[Scalar::I32(0)], &[words_i32(s0)], &exec)
            .expect("sad_init executes");
        let mut best_sad = to_i32(&outs[0]);
        let mut best_d = to_i32(&outs[1]);
        for d in 1..cfg.disparities {
            let sd = sad_for(d);
            let outs = mink
                .execute(
                    &[Scalar::I32(d as i32)],
                    &[
                        words_i32(best_sad.clone()),
                        words_i32(best_d.clone()),
                        words_i32(sd),
                    ],
                    &exec,
                )
                .expect("sad_min executes");
            best_sad = to_i32(&outs[0]);
            best_d = to_i32(&outs[1]);
        }
        map.push(best_d);
    }
    map
}

/// Scalar reference for [`run_functional`].
pub fn reference(cfg: &Config, clusters: usize) -> Vec<Vec<i32>> {
    let (left, right) = sample_pair(cfg, 77);
    let mut map = Vec::new();
    for y in 1..cfg.height - 1 {
        let lrows: [Vec<i32>; 3] = std::array::from_fn(|k| left[y - 1 + k][..cfg.width].to_vec());
        let mut best_sad = vec![i32::MAX; cfg.width];
        let mut best_d = vec![0i32; cfg.width];
        for d in 0..cfg.disparities {
            let rrows: [Vec<i32>; 3] =
                std::array::from_fn(|k| right[y - 1 + k][d..d + cfg.width].to_vec());
            let sad = blocksad::reference(&lrows, &rrows, clusters);
            for x in 0..cfg.width {
                if sad[x] < best_sad[x] {
                    best_sad[x] = sad[x];
                    best_d[x] = d as i32;
                }
            }
        }
        map.push(best_d);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_machine::SystemParams;
    use stream_sim::simulate;
    use stream_vlsi::Shape;

    #[test]
    fn functional_matches_reference() {
        let cfg = Config::small();
        assert_eq!(run_functional(&cfg, 8), reference(&cfg, 8));
    }

    #[test]
    fn recovers_the_true_shift_mostly() {
        // The right image is the left shifted by 2: most pixels should pick
        // disparity 2.
        let cfg = Config {
            width: 64,
            height: 8,
            disparities: 4,
        };
        let map = run_functional(&cfg, 8);
        let total: usize = map.iter().map(Vec::len).sum();
        let hits: usize = map
            .iter()
            .flat_map(|r| r.iter())
            .filter(|&&d| d == 2)
            .count();
        assert!(hits * 10 > total * 6, "{hits}/{total} at true disparity");
    }

    #[test]
    fn paper_scale_program_is_kernel_bound_at_baseline() {
        let cfg = Config::paper();
        let m = Machine::baseline();
        let app = program(&cfg, &m);
        let r = simulate(&app.program, &m, &SystemParams::paper_2007()).unwrap();
        assert!(r.cluster_utilization() > 0.7, "{}", r.cluster_utilization());
    }

    #[test]
    fn scales_well_to_many_clusters() {
        let cfg = Config::paper();
        let small = Machine::baseline();
        let big = Machine::paper(Shape::new(128, 10));
        let sys = SystemParams::paper_2007();
        let rs = simulate(&program(&cfg, &small).program, &small, &sys).unwrap();
        let rb = simulate(&program(&cfg, &big).program, &big, &sys).unwrap();
        let speedup = rs.cycles as f64 / rb.cycles as f64;
        assert!(speedup > 5.0, "speedup {speedup}");
    }
}
