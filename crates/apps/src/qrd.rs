//! QRD: Householder QR decomposition of a 256x256 matrix (Table 4).
//!
//! Each reflector is computed by the panel kernels (`colnorm`, `vscale`) —
//! a step over one short column that parallelizes poorly — and applied to
//! the trailing matrix by the two-pass `coldot`/`colaxpy` kernels in
//! column-per-cluster layout. The timing program is panel-blocked (eight
//! reflectors share one strip-mined sweep over the trailing matrix, the
//! standard blocking that keeps QR from being pure memory traffic); the
//! functional path runs the mathematically identical unblocked sequence at
//! test sizes. Exactly as in the paper, the panel step's fraction of
//! runtime grows with `C`, capping QRD's speedup (Section 5.3).

use crate::kernels::{colaxpy, coldot, colnorm, vscale};
use crate::AppProgram;
use stream_ir::{execute_with, ExecConfig, ExecOptions, Scalar};
use stream_kernels::util::{to_f32, words_f32, XorShift32};
use stream_machine::Machine;
use stream_sim::{AccessPattern, ProgramBuilder};

/// QRD configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
}

impl Config {
    /// The paper's 256x256 decomposition.
    pub fn paper() -> Self {
        Self {
            rows: 256,
            cols: 256,
        }
    }

    /// Reduced size for functional tests.
    pub fn small() -> Self {
        Self { rows: 32, cols: 24 }
    }
}

/// Panel width of the blocked timing program.
const PANEL: usize = 8;

fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

/// Builds the (panel-blocked) QRD stream program for `machine`.
pub fn program(cfg: &Config, machine: &Machine) -> AppProgram {
    program_with(cfg, machine, &stream_sched::CompileOptions::default(), 1)
}

/// [`program`] with explicit scheduler options and a strip-batching factor:
/// the trailing-matrix sweep uses column strips of `strip_scale * C` columns
/// (fewer, longer kernel calls per reflector). `strip_scale = 1` with
/// default options is exactly [`program`].
pub fn program_with(
    cfg: &Config,
    machine: &Machine,
    opts: &stream_sched::CompileOptions,
    strip_scale: u32,
) -> AppProgram {
    let c = machine.clusters() as usize;
    let sc = c * strip_scale.max(1) as usize;
    let knorm = crate::compile_cached_opts(&colnorm(machine), machine, opts, "colnorm");
    let kscale = crate::compile_cached_opts(&vscale(machine), machine, opts, "vscale");
    let kdot = crate::compile_cached_opts(&coldot(machine), machine, opts, "coldot");
    let kaxpy = crate::compile_cached_opts(&colaxpy(machine), machine, opts, "colaxpy");

    let mut p = ProgramBuilder::new();
    let reflectors = cfg.cols.min(cfg.rows - 1);

    let mut j0 = 0usize;
    while j0 < reflectors {
        let panel_cols = PANEL.min(reflectors - j0);
        let sub_rows = cfg.rows - j0;
        let padded_norm = round_up(sub_rows, 8 * c);
        let row_iters = round_up(sub_rows, 8) / 8;

        // Panel factorization: load the panel once, then per column compute
        // the reflector and update the rest of the panel.
        let panel_words = (panel_cols * round_up(sub_rows, 8) * 8 / 8) as u64;
        let panel = p.load(format!("panel{j0}"), panel_words);
        let mut vs = Vec::new();
        for jj in 0..panel_cols {
            let col_records = (padded_norm / 8) as u64;
            let nrm = p.kernel(&knorm, &[panel], &[1, 1], col_records * 8 / 8);
            let v = p.kernel(&kscale, &[panel], &[padded_norm as u64], col_records);
            // Update remaining panel columns with this reflector.
            let remaining = (panel_cols - jj - 1).max(1) as u64;
            let recs = remaining * row_iters as u64;
            let dots = p.kernel(&kdot, &[panel, v[0]], &[remaining], recs);
            let _upd = p.kernel(&kaxpy, &[panel, v[0], dots[0]], &[recs * 8], recs);
            let _ = nrm;
            vs.push(v[0]);
        }

        // Trailing sweep: strips of `strip_scale * C` columns, all panel
        // reflectors applied while the strip is resident.
        let trailing = cfg.cols.saturating_sub(j0 + panel_cols);
        let strips = round_up(trailing, sc) / sc;
        for s in 0..strips {
            let strip_words = (sc * row_iters * 8) as u64;
            // Column strips gather with the panel stride through the
            // row-major matrix (memory-access-scheduling territory).
            let mut strip = p.load_patterned(
                format!("strip{j0}_{s}"),
                strip_words,
                AccessPattern::Strided,
            );
            for &v in &vs {
                let recs = (sc * row_iters) as u64;
                let dots = p.kernel(&kdot, &[strip, v], &[sc as u64], recs);
                let upd = p.kernel(&kaxpy, &[strip, v, dots[0]], &[strip_words], recs);
                strip = upd[0];
            }
            p.store_patterned(strip, AccessPattern::Strided);
        }
        j0 += panel_cols;
    }

    AppProgram {
        name: "QRD",
        program: p.finish(),
    }
}

/// Functional unblocked Householder QR through the kernels; returns the
/// final matrix (column-major), whose upper triangle is `R`.
pub fn run_functional(cfg: &Config, clusters: usize) -> Vec<Vec<f32>> {
    let machine = Machine::paper(stream_vlsi::Shape::new(clusters as u32, 5));
    let knorm = colnorm(&machine);
    let kscale = vscale(&machine);
    let kdot = coldot(&machine);
    let kaxpy = colaxpy(&machine);
    let exec = ExecConfig::with_clusters(clusters);
    let (m, n) = (cfg.rows, cfg.cols);
    let mut a = sample_matrix(cfg, 99);

    for j in 0..n.min(m - 1) {
        let sub_rows = m - j;
        // --- colnorm over the padded column ---
        let padded = round_up(sub_rows, 8 * clusters);
        let mut col = vec![0f32; padded];
        col[..sub_rows].copy_from_slice(&a[j][j..]);
        let iters = (padded / (8 * clusters)) as i32;
        let outs = execute_with(
            &knorm,
            &ExecOptions {
                params: &[Scalar::I32(iters)],
                ..Default::default()
            },
            &[words_f32(col.clone())],
            &exec,
        )
        .expect("colnorm executes");
        let ssq = to_f32(&outs[0])[0];
        let x0 = to_f32(&outs[1])[0];
        let norm = ssq.sqrt();
        if norm < 1e-12 {
            continue;
        }
        let alpha = if x0 >= 0.0 { -norm } else { norm };
        let vnorm2 = ssq - 2.0 * alpha * x0 + alpha * alpha;
        if vnorm2 < 1e-20 {
            continue;
        }
        let inv = 1.0 / vnorm2.sqrt();

        // --- vscale ---
        let outs = execute_with(
            &kscale,
            &ExecOptions {
                params: &[Scalar::F32(alpha), Scalar::F32(inv)],
                ..Default::default()
            },
            &[words_f32(col)],
            &exec,
        )
        .expect("vscale executes");
        let v_full = to_f32(&outs[0]);
        let row8 = round_up(sub_rows, 8);
        let v: Vec<f32> = v_full[..row8.min(v_full.len())]
            .iter()
            .copied()
            .chain(std::iter::repeat(0.0))
            .take(row8)
            .collect();
        let row_iters = row8 / 8;

        // --- two-pass trailing update (columns j..n), strip-mined by C ---
        let trailing: Vec<usize> = (j..n).collect();
        for strip in trailing.chunks(clusters) {
            let mut a_stream = Vec::with_capacity(clusters * row8);
            let mut v_stream = Vec::with_capacity(clusters * row8);
            for b in 0..row_iters {
                for cc in 0..clusters {
                    for r in 0..8 {
                        let row = 8 * b + r;
                        let val = strip
                            .get(cc)
                            .and_then(|&k| a[k].get(j + row).copied())
                            .unwrap_or(0.0);
                        a_stream.push(val);
                        v_stream.push(v[row]);
                    }
                }
            }
            let douts = execute_with(
                &kdot,
                &ExecOptions {
                    params: &[Scalar::I32(row_iters as i32)],
                    ..Default::default()
                },
                &[words_f32(a_stream.clone()), words_f32(v_stream.clone())],
                &exec,
            )
            .expect("coldot executes");
            let dots = to_f32(&douts[0]);
            let uouts = execute_with(
                &kaxpy,
                &ExecOptions {
                    params: &[Scalar::I32(row_iters as i32), Scalar::F32(2.0)],
                    ..Default::default()
                },
                &[words_f32(a_stream), words_f32(v_stream), words_f32(dots)],
                &exec,
            )
            .expect("colaxpy executes");
            let updated = to_f32(&uouts[0]);
            for b in 0..row_iters {
                for (cc, &k) in strip.iter().enumerate() {
                    for r in 0..8 {
                        let row = 8 * b + r;
                        if j + row < m {
                            let idx = (b * clusters + cc) * 8 + r;
                            a[k][j + row] = updated[idx];
                        }
                    }
                }
            }
        }
    }
    a
}

/// `f64` scalar Householder QR of the same matrix; returns `R` entries
/// (column-major, full matrix with near-zero subdiagonal).
pub fn reference(cfg: &Config) -> Vec<Vec<f64>> {
    let (m, n) = (cfg.rows, cfg.cols);
    let mut a: Vec<Vec<f64>> = sample_matrix(cfg, 99)
        .into_iter()
        .map(|col| col.into_iter().map(f64::from).collect())
        .collect();
    for j in 0..n.min(m - 1) {
        let ssq: f64 = a[j][j..].iter().map(|x| x * x).sum();
        let norm = ssq.sqrt();
        if norm < 1e-300 {
            continue;
        }
        let x0 = a[j][j];
        let alpha = if x0 >= 0.0 { -norm } else { norm };
        let vnorm2 = ssq - 2.0 * alpha * x0 + alpha * alpha;
        if vnorm2 < 1e-300 {
            continue;
        }
        let inv = 1.0 / vnorm2.sqrt();
        let v: Vec<f64> = a[j][j..]
            .iter()
            .enumerate()
            .map(|(r, &x)| (if r == 0 { x - alpha } else { x }) * inv)
            .collect();
        for k in j..n {
            let dot: f64 = v.iter().zip(&a[k][j..]).map(|(vv, aa)| vv * aa).sum();
            for (r, vv) in v.iter().enumerate() {
                a[k][j + r] -= 2.0 * dot * vv;
            }
        }
    }
    a
}

/// Deterministic sample matrix, column-major.
pub fn sample_matrix(cfg: &Config, seed: u32) -> Vec<Vec<f32>> {
    let mut rng = XorShift32(seed);
    (0..cfg.cols)
        .map(|_| (0..cfg.rows).map(|_| rng.next_f32() * 2.0 - 1.0).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_machine::SystemParams;
    use stream_sim::simulate;
    use stream_vlsi::Shape;

    #[test]
    fn functional_r_matches_f64_reference() {
        let cfg = Config::small();
        let got = run_functional(&cfg, 8);
        let want = reference(&cfg);
        // Compare the upper triangle; signs follow the same convention, so
        // entries compare directly.
        for k in 0..cfg.cols {
            for r in 0..=k.min(cfg.rows - 1) {
                let g = f64::from(got[k][r]);
                let w = want[k][r];
                assert!(
                    (g - w).abs() < 2e-2 * (1.0 + w.abs()),
                    "R[{r},{k}]: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn functional_subdiagonal_is_annihilated() {
        let cfg = Config::small();
        let got = run_functional(&cfg, 8);
        for k in 0..cfg.cols {
            for r in (k + 1)..cfg.rows {
                assert!(
                    got[k][r].abs() < 1e-2,
                    "A[{r},{k}] = {} not annihilated",
                    got[k][r]
                );
            }
        }
    }

    #[test]
    fn frobenius_norm_is_preserved() {
        // Householder transforms are orthogonal: column norms of R match A.
        let cfg = Config::small();
        let a = sample_matrix(&cfg, 99);
        let r = run_functional(&cfg, 8);
        let na: f32 = a.iter().flatten().map(|x| x * x).sum();
        let nr: f32 = r.iter().flatten().map(|x| x * x).sum();
        assert!((na - nr).abs() < 1e-2 * na, "{na} vs {nr}");
    }

    #[test]
    fn paper_scale_program_simulates() {
        let cfg = Config::paper();
        let sys = SystemParams::paper_2007();
        for &(c, n) in &[(8u32, 5u32), (128, 10)] {
            let m = Machine::paper(Shape::new(c, n));
            let app = program(&cfg, &m);
            let r = simulate(&app.program, &m, &sys).unwrap();
            assert!(r.cycles > 0);
        }
    }

    #[test]
    fn qrd_scales_poorly() {
        // The paper's observation: QRD speedup saturates well below linear.
        let cfg = Config::paper();
        let sys = SystemParams::paper_2007();
        let small = Machine::baseline();
        let big = Machine::paper(Shape::new(128, 10));
        let rs = simulate(&program(&cfg, &small).program, &small, &sys).unwrap();
        let rb = simulate(&program(&cfg, &big).program, &big, &sys).unwrap();
        let speedup = rs.cycles as f64 / rb.cycles as f64;
        assert!(speedup > 1.2 && speedup < 10.0, "speedup {speedup}");
    }
}
