//! FFT1K / FFT4K: 1024- and 4096-point complex FFTs (Table 4).
//!
//! As in the paper, input data starts in the SRF and bit-(digit-)reversed
//! stores are not simulated. Each radix-4 stage is one kernel call over
//! `n/4` butterfly records with a streamed twiddle stream. When the SRF can
//! hold all stages' twiddles alongside the double-buffered data they are
//! preloaded; otherwise each stage's twiddles stream from memory — the
//! spill that makes FFT4K slower than FFT1K on the baseline machine
//! (Section 5.3).

use crate::AppProgram;
use stream_ir::execute;
use stream_kernels::fft::{
    self, digit_reverse4, fft_reference, scatter_stage_outputs, stage_streams, C32,
};
use stream_kernels::util::XorShift32;
use stream_machine::Machine;
use stream_sim::{fits_in_srf, ProgramBuilder};

/// FFT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Transform size (a power of four).
    pub points: usize,
}

impl Config {
    /// The paper's 1024-point FFT.
    pub fn fft1k() -> Self {
        Self { points: 1024 }
    }

    /// The paper's 4096-point FFT.
    pub fn fft4k() -> Self {
        Self { points: 4096 }
    }

    /// Number of radix-4 stages.
    pub fn stages(&self) -> usize {
        (self.points.trailing_zeros() / 2) as usize
    }
}

/// Builds the FFT stream program for `machine`.
pub fn program(cfg: &Config, machine: &Machine) -> AppProgram {
    program_with(cfg, machine, &stream_sched::CompileOptions::default(), 1)
}

/// [`program`] with explicit scheduler options. Each radix-4 stage is
/// already a single whole-array kernel call, so there is nothing for strip
/// batching to merge: `strip_scale` is accepted for interface uniformity and
/// clamped to 1.
pub fn program_with(
    cfg: &Config,
    machine: &Machine,
    opts: &stream_sched::CompileOptions,
    _strip_scale: u32,
) -> AppProgram {
    let kernel = crate::compile_cached_opts(&fft::kernel(machine), machine, opts, "fft");
    let n = cfg.points as u64;
    let stages = cfg.stages();
    let data_words = 2 * n;
    let twiddle_words_per_stage = 6 * (n / 4);
    let records = n / 4;

    // Twiddles resident only if they fit next to double-buffered data.
    let all_twiddles = twiddle_words_per_stage * stages as u64;
    let twiddles_resident = fits_in_srf(machine, 2 * data_words + all_twiddles, 0.1);

    let mut p = ProgramBuilder::new();
    let mut data = p.resident(data_words);
    let resident_twiddles: Vec<_> = if twiddles_resident {
        (0..stages)
            .map(|_| p.resident(twiddle_words_per_stage))
            .collect()
    } else {
        Vec::new()
    };
    for s in 0..stages {
        let tw = if twiddles_resident {
            resident_twiddles[s]
        } else {
            p.load(format!("twiddle{s}"), twiddle_words_per_stage)
        };
        let outs = p.kernel(&kernel, &[data, tw], &[data_words], records);
        data = outs[0];
    }

    AppProgram {
        name: if cfg.points >= 4096 { "FFT4K" } else { "FFT1K" },
        program: p.finish(),
    }
}

/// True if this machine keeps all twiddles SRF-resident for `cfg` — exposed
/// so experiments can report the spill boundary.
pub fn twiddles_resident(cfg: &Config, machine: &Machine) -> bool {
    let n = cfg.points as u64;
    let all = 6 * (n / 4) * cfg.stages() as u64;
    fits_in_srf(machine, 4 * n + all, 0.1)
}

/// Functional full FFT through the stage kernel; returns the spectrum.
pub fn run_functional(cfg: &Config, clusters: usize) -> Vec<C32> {
    let machine = Machine::paper(stream_vlsi::Shape::new(clusters as u32, 5));
    let kernel = fft::kernel(&machine);
    let input = sample_signal(cfg.points, 5);
    let n = cfg.points;
    let mut pts: Vec<C32> = (0..n).map(|i| input[digit_reverse4(i, n)]).collect();
    let mut span = 1usize;
    while span < n {
        let (streams, layout) = stage_streams(&pts, span, &machine);
        let outs = execute(
            &kernel,
            &[],
            &streams,
            &stream_ir::ExecConfig::with_clusters(clusters),
        )
        .expect("fft stage executes");
        let mut next = pts.clone();
        scatter_stage_outputs(&outs, &layout, &mut next, &machine);
        pts = next;
        span *= 4;
    }
    pts
}

/// Reference spectrum of the same deterministic signal.
pub fn reference(cfg: &Config) -> Vec<C32> {
    fft_reference(&sample_signal(cfg.points, 5))
}

fn sample_signal(n: usize, seed: u32) -> Vec<C32> {
    let mut rng = XorShift32(seed);
    (0..n)
        .map(|_| (rng.next_f32() * 2.0 - 1.0, rng.next_f32() * 2.0 - 1.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_machine::SystemParams;
    use stream_sim::simulate;
    use stream_vlsi::Shape;

    #[test]
    fn functional_small_fft_matches_reference() {
        let cfg = Config { points: 256 };
        let got = run_functional(&cfg, 8);
        let want = reference(&cfg);
        for i in 0..cfg.points {
            assert!(
                (got[i].0 - want[i].0).abs() < 1e-2 && (got[i].1 - want[i].1).abs() < 1e-2,
                "bin {i}: {:?} vs {:?}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    fn fft4k_spills_twiddles_at_baseline_but_not_at_scale() {
        // The Section 5.3 effect: FFT4K's working set exceeds the baseline
        // SRF, so twiddles stream from memory; the big machine holds them.
        let small = Machine::baseline();
        let big = Machine::paper(Shape::new(128, 10));
        assert!(!twiddles_resident(&Config::fft4k(), &small));
        assert!(twiddles_resident(&Config::fft4k(), &big));
        // FFT1K fits even on the baseline.
        assert!(twiddles_resident(&Config::fft1k(), &small));
    }

    #[test]
    fn programs_simulate() {
        let sys = SystemParams::paper_2007();
        for cfg in [Config::fft1k(), Config::fft4k()] {
            for &(c, n) in &[(8u32, 5u32), (128, 10)] {
                let m = Machine::paper(Shape::new(c, n));
                let app = program(&cfg, &m);
                let r = simulate(&app.program, &m, &sys).unwrap();
                assert!(r.cycles > 0);
            }
        }
    }

    #[test]
    fn fft4k_sustains_more_than_fft1k_on_the_big_machine() {
        // Pure stream-length effect (Section 5.3): same kernel, longer
        // streams amortize per-call overheads.
        let big = Machine::paper(Shape::new(128, 10));
        let sys = SystemParams::paper_2007();
        let r1 = simulate(&program(&Config::fft1k(), &big).program, &big, &sys).unwrap();
        let r4 = simulate(&program(&Config::fft4k(), &big).program, &big, &sys).unwrap();
        assert!(r4.gops(1.0) > r1.gops(1.0));
    }
}
