//! Application-private kernels: the small glue kernels the six applications
//! need beyond the Table 2 suite (every real StreamC application carried a
//! handful of these).

use stream_ir::{Kernel, KernelBuilder, Scalar, Ty, ValueId};
use stream_kernels::util::xor_cluster;
use stream_machine::Machine;

/// `sad_min`: running arg-min over disparity SAD maps (DEPTH).
/// Inputs: `best_sad`, `best_d`, `sad`; param: current disparity `d`;
/// outputs: updated `(best_sad, best_d)`.
pub fn sad_min(_machine: &Machine) -> Kernel {
    let mut b = KernelBuilder::new("sad_min");
    let best_sad_in = b.in_stream(Ty::I32);
    let best_d_in = b.in_stream(Ty::I32);
    let sad_in = b.in_stream(Ty::I32);
    let best_sad_out = b.out_stream(Ty::I32);
    let best_d_out = b.out_stream(Ty::I32);
    let d = b.param(Ty::I32);

    let bs = b.read(best_sad_in);
    let bd = b.read(best_d_in);
    let s = b.read(sad_in);
    let better = b.lt(s, bs);
    let ns = b.select(better, s, bs);
    let nd = b.select(better, d, bd);
    b.write(best_sad_out, ns);
    b.write(best_d_out, nd);
    b.finish().expect("sad_min is structurally valid")
}

/// `sad_init`: seeds the arg-min chain with the first disparity's SAD.
pub fn sad_init(_machine: &Machine) -> Kernel {
    let mut b = KernelBuilder::new("sad_init");
    let sad_in = b.in_stream(Ty::I32);
    let best_sad_out = b.out_stream(Ty::I32);
    let best_d_out = b.out_stream(Ty::I32);
    let d = b.param(Ty::I32);
    let s = b.read(sad_in);
    b.write(best_sad_out, s);
    b.write(best_d_out, d);
    b.finish().expect("sad_init is structurally valid")
}

/// `transform`: affine vertex transform with perspective divide (RENDER).
/// Inputs: x, y, z streams; params: a 3x4 matrix (row-major) and a focal
/// scale; outputs: screen x, y and depth.
pub fn transform(_machine: &Machine) -> Kernel {
    let mut b = KernelBuilder::new("transform");
    let xs = b.in_stream(Ty::F32);
    let ys = b.in_stream(Ty::F32);
    let zs = b.in_stream(Ty::F32);
    let sx_out = b.out_stream(Ty::F32);
    let sy_out = b.out_stream(Ty::F32);
    let sz_out = b.out_stream(Ty::F32);
    let m: Vec<ValueId> = (0..12).map(|_| b.param(Ty::F32)).collect();
    let focal = b.param(Ty::F32);

    let x = b.read(xs);
    let y = b.read(ys);
    let z = b.read(zs);
    let row = |b: &mut KernelBuilder, r: usize, x: ValueId, y: ValueId, z: ValueId| {
        let t0 = b.mul(m[4 * r], x);
        let t1 = b.mul(m[4 * r + 1], y);
        let t2 = b.mul(m[4 * r + 2], z);
        let s01 = b.add(t0, t1);
        let s012 = b.add(s01, t2);
        b.add(s012, m[4 * r + 3])
    };
    let tx = row(&mut b, 0, x, y, z);
    let ty = row(&mut b, 1, x, y, z);
    let tz = row(&mut b, 2, x, y, z);
    // Perspective divide with focal scale.
    let fx = b.mul(focal, tx);
    let fy = b.mul(focal, ty);
    let sx = b.div(fx, tz);
    let sy = b.div(fy, tz);
    b.write(sx_out, sx);
    b.write(sy_out, sy);
    b.write(sz_out, tz);
    b.finish().expect("transform is structurally valid")
}

/// Reference for [`transform`].
pub fn transform_reference(
    verts: &[(f32, f32, f32)],
    m: &[f32; 12],
    focal: f32,
) -> Vec<(f32, f32, f32)> {
    verts
        .iter()
        .map(|&(x, y, z)| {
            let row = |r: usize| m[4 * r] * x + m[4 * r + 1] * y + m[4 * r + 2] * z + m[4 * r + 3];
            let (tx, ty, tz) = (row(0), row(1), row(2));
            (focal * tx / tz, focal * ty / tz, tz)
        })
        .collect()
}

/// `decode_frag`: unpack rasterizer fragments into float coordinates
/// (RENDER shading front-end).
pub fn decode_frag(_machine: &Machine) -> Kernel {
    let mut b = KernelBuilder::new("decode_frag");
    let frags = b.in_stream(Ty::I32);
    let fx_out = b.out_stream(Ty::F32);
    let fy_out = b.out_stream(Ty::F32);
    let p = b.read(frags);
    let mask = b.const_i(0x7ff);
    let eleven = b.const_i(11);
    let x = b.and(p, mask);
    let ys = b.shr(p, eleven);
    let y = b.and(ys, mask);
    let fx = b.itof(x);
    let fy = b.itof(y);
    b.write(fx_out, fx);
    b.write(fy_out, fy);
    b.finish().expect("decode_frag is structurally valid")
}

/// Reference for [`decode_frag`].
pub fn decode_frag_reference(packed: &[i32]) -> Vec<(f32, f32)> {
    packed
        .iter()
        .map(|&p| (((p & 0x7ff) as f32), (((p >> 11) & 0x7ff) as f32)))
        .collect()
}

/// `blend`: depth-attenuated shading (RENDER back-end):
/// `out = shade / (1 + z * k)`.
pub fn blend(_machine: &Machine) -> Kernel {
    let mut b = KernelBuilder::new("blend");
    let shade_in = b.in_stream(Ty::F32);
    let z_in = b.in_stream(Ty::F32);
    let out = b.out_stream(Ty::F32);
    let k = b.param(Ty::F32);
    let s = b.read(shade_in);
    let z = b.read(z_in);
    let zk = b.mul(z, k);
    let one = b.const_f(1.0);
    let d = b.add(one, zk);
    let v = b.div(s, d);
    b.write(out, v);
    b.finish().expect("blend is structurally valid")
}

/// Reference for [`blend`].
pub fn blend_reference(shade: &[f32], z: &[f32], k: f32) -> Vec<f32> {
    shade
        .iter()
        .zip(z)
        .map(|(&s, &zz)| s / (1.0 + zz * k))
        .collect()
}

/// `colnorm`: one-column reduction (QRD panel step). The column is padded to
/// a multiple of `8 * C` rows; each record holds 8 rows. Emits the column's
/// sum of squares (one conditional word) and its first element (another).
/// Params: `iters` (SIMD iterations over the padded column).
pub fn colnorm(machine: &Machine) -> Kernel {
    let c = machine.clusters();
    let mut b = KernelBuilder::new("colnorm");
    let col = b.in_stream(Ty::F32);
    let ssq_out = b.out_stream(Ty::F32);
    let head_out = b.out_stream(Ty::F32);
    let iters = b.param(Ty::I32);

    let e: Vec<ValueId> = (0..8).map(|_| b.read(col)).collect();
    // Emit the global first element (iteration 0, cluster 0).
    let iter = b.iter_index();
    let cid = b.cluster_id();
    let zero_i = b.const_i(0);
    let iter0 = b.eq(iter, zero_i);
    let cid0 = b.eq(cid, zero_i);
    let first = b.and(iter0, cid0);
    b.cond_write(head_out, first, e[0]);

    // Partial sum of squares for this record.
    let mut ssq = b.mul(e[0], e[0]);
    for &x in &e[1..] {
        let sq = b.mul(x, x);
        ssq = b.add(ssq, sq);
    }
    // Butterfly all-reduce across clusters.
    let mut bit = 1i32;
    while (bit as u32) < c {
        let partner = xor_cluster(&mut b, cid, bit);
        let other = b.comm(ssq, partner);
        ssq = b.add(ssq, other);
        bit <<= 1;
    }
    // Accumulate across iterations.
    let acc = b.recurrence(Scalar::F32(0.0));
    let total = b.add(acc, ssq);
    b.bind_next(acc, total);
    // Emit from cluster 0 on the last iteration.
    let one_i = b.const_i(1);
    let last_idx = b.sub(iters, one_i);
    let is_last = b.eq(iter, last_idx);
    let emit = b.and(is_last, cid0);
    b.cond_write(ssq_out, emit, total);

    b.finish().expect("colnorm is structurally valid")
}

/// `vscale`: forms the normalized Householder vector
/// `v = (a - alpha*e1) * inv_norm` over a padded column (QRD panel step).
/// Params: `alpha`, `inv_norm`.
pub fn vscale(_machine: &Machine) -> Kernel {
    let mut b = KernelBuilder::new("vscale");
    let col = b.in_stream(Ty::F32);
    let v_out = b.out_stream(Ty::F32);
    let alpha = b.param(Ty::F32);
    let inv_norm = b.param(Ty::F32);

    let iter = b.iter_index();
    let cid = b.cluster_id();
    let zero_i = b.const_i(0);
    let iter0 = b.eq(iter, zero_i);
    let cid0 = b.eq(cid, zero_i);
    let first_record = b.and(iter0, cid0);

    for k in 0..8 {
        let e = b.read(col);
        let v = if k == 0 {
            let adj = b.sub(e, alpha);
            b.select(first_record, adj, e)
        } else {
            e
        };
        let scaled = b.mul(v, inv_norm);
        b.write(v_out, scaled);
    }
    b.finish().expect("vscale is structurally valid")
}

/// `coldot`: trailing-matrix inner products, column-per-cluster layout (QRD
/// pass 1). Each cluster accumulates `v^T a` for its column over
/// `row_iters` iterations and emits the dot on the last one.
/// Params: `row_iters`.
pub fn coldot(_machine: &Machine) -> Kernel {
    let mut b = KernelBuilder::new("coldot");
    let a_col = b.in_stream(Ty::F32);
    let v_col = b.in_stream(Ty::F32);
    let dots_out = b.out_stream(Ty::F32);
    let row_iters = b.param(Ty::I32);

    let iter = b.iter_index();
    let phase = modulo(&mut b, iter, row_iters);
    let zero_i = b.const_i(0);
    let first = b.eq(phase, zero_i);
    let one_i = b.const_i(1);
    let last_idx = b.sub(row_iters, one_i);
    let last = b.eq(phase, last_idx);

    let mut contrib: Option<ValueId> = None;
    for _ in 0..8 {
        let a = b.read(a_col);
        let v = b.read(v_col);
        let p = b.mul(a, v);
        contrib = Some(match contrib {
            Some(acc) => b.add(acc, p),
            None => p,
        });
    }
    let contrib = contrib.expect("eight products");
    let acc = b.recurrence(Scalar::F32(0.0));
    let zero_f = b.const_f(0.0);
    let base = b.select(first, zero_f, acc);
    let total = b.add(base, contrib);
    b.bind_next(acc, total);
    b.cond_write(dots_out, last, total);

    b.finish().expect("coldot is structurally valid")
}

/// `colaxpy`: trailing-matrix update `a -= tau * dot * v`, column-per-cluster
/// layout (QRD pass 2). Reads each column's dot on its first iteration.
/// Params: `row_iters`, `tau`.
pub fn colaxpy(_machine: &Machine) -> Kernel {
    let mut b = KernelBuilder::new("colaxpy");
    let a_col = b.in_stream(Ty::F32);
    let v_col = b.in_stream(Ty::F32);
    let dots_in = b.in_stream(Ty::F32);
    let a_out = b.out_stream(Ty::F32);
    let row_iters = b.param(Ty::I32);
    let tau = b.param(Ty::F32);

    let iter = b.iter_index();
    let phase = modulo(&mut b, iter, row_iters);
    let zero_i = b.const_i(0);
    let first = b.eq(phase, zero_i);

    let fresh = b.cond_read(dots_in, first);
    let held = b.recurrence(Scalar::F32(0.0));
    let dot = b.select(first, fresh, held);
    b.bind_next(held, dot);
    let s = b.mul(tau, dot);

    for _ in 0..8 {
        let a = b.read(a_col);
        let v = b.read(v_col);
        let sv = b.mul(s, v);
        let o = b.sub(a, sv);
        b.write(a_out, o);
    }
    b.finish().expect("colaxpy is structurally valid")
}

/// Emits `x mod m` for non-negative `x` (div/mul/sub — the scratch integer
/// arithmetic real kernels use for periodic addressing).
fn modulo(b: &mut KernelBuilder, x: ValueId, m: ValueId) -> ValueId {
    let q = b.div(x, m);
    let qm = b.mul(q, m);
    b.sub(x, qm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_ir::{execute, execute_with, ExecConfig, ExecOptions};
    use stream_kernels::util::{to_f32, to_i32, words_f32, words_i32};

    fn m() -> Machine {
        Machine::baseline()
    }

    #[test]
    fn sad_min_tracks_minimum() {
        let k = sad_min(&m());
        let best = words_i32(vec![10, 5, 8, 9, 10, 5, 8, 9]);
        let bd = words_i32(vec![0; 8]);
        let sad = words_i32(vec![7, 9, 8, 2, 7, 9, 8, 2]);
        let outs = execute(
            &k,
            &[Scalar::I32(3)],
            &[best, bd, sad],
            &ExecConfig::with_clusters(8),
        )
        .unwrap();
        assert_eq!(to_i32(&outs[0]), vec![7, 5, 8, 2, 7, 5, 8, 2]);
        assert_eq!(to_i32(&outs[1]), vec![3, 0, 0, 3, 3, 0, 0, 3]);
    }

    #[test]
    fn transform_matches_reference() {
        let k = transform(&m());
        let verts: Vec<(f32, f32, f32)> = (0..8)
            .map(|i| (i as f32, 2.0 * i as f32, 5.0 + i as f32))
            .collect();
        let mat: [f32; 12] = [
            1.0, 0.1, 0.0, 0.5, //
            0.0, 1.0, 0.2, -0.5, //
            0.0, 0.0, 1.0, 2.0,
        ];
        let params: Vec<Scalar> = mat
            .iter()
            .chain(&[2.0f32])
            .map(|&v| Scalar::F32(v))
            .collect();
        let xs = words_f32(verts.iter().map(|v| v.0));
        let ys = words_f32(verts.iter().map(|v| v.1));
        let zs = words_f32(verts.iter().map(|v| v.2));
        let outs = execute(&k, &params, &[xs, ys, zs], &ExecConfig::with_clusters(8)).unwrap();
        let want = transform_reference(&verts, &mat, 2.0);
        for i in 0..verts.len() {
            assert!((to_f32(&outs[0])[i] - want[i].0).abs() < 1e-4);
            assert!((to_f32(&outs[1])[i] - want[i].1).abs() < 1e-4);
            assert!((to_f32(&outs[2])[i] - want[i].2).abs() < 1e-4);
        }
    }

    #[test]
    fn decode_round_trips_irast_packing() {
        let k = decode_frag(&m());
        let packed: Vec<i32> = vec![
            100 | (7 << 11) | (5 << 22),
            2000 | (1023 << 11),
            0,
            1 | (1 << 11),
            5,
            6,
            7,
            8,
        ];
        let outs = execute(
            &k,
            &[],
            &[words_i32(packed.clone())],
            &ExecConfig::with_clusters(8),
        )
        .unwrap();
        let want = decode_frag_reference(&packed);
        for i in 0..packed.len() {
            assert_eq!(to_f32(&outs[0])[i], want[i].0);
            assert_eq!(to_f32(&outs[1])[i], want[i].1);
        }
    }

    #[test]
    fn colnorm_computes_column_ssq() {
        let mach = m();
        let k = colnorm(&mach);
        // 128 rows = 16 records = 2 iterations on 8 clusters.
        let col: Vec<f32> = (0..128).map(|i| (i % 7) as f32 - 3.0).collect();
        let outs = execute_with(
            &k,
            &ExecOptions {
                params: &[Scalar::I32(2)],
                sp_init: None,
                iterations: None,
            },
            &[words_f32(col.clone())],
            &ExecConfig::with_clusters(8),
        )
        .unwrap();
        let ssq: f32 = col.iter().map(|x| x * x).sum();
        let got = to_f32(&outs[0]);
        assert_eq!(got.len(), 1);
        assert!((got[0] - ssq).abs() < 1e-2, "{} vs {}", got[0], ssq);
        assert_eq!(to_f32(&outs[1]), vec![col[0]]);
    }

    #[test]
    fn vscale_normalizes_and_shifts_head() {
        let mach = m();
        let k = vscale(&mach);
        let col: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let outs = execute(
            &k,
            &[Scalar::F32(10.0), Scalar::F32(0.5)],
            &[words_f32(col.clone())],
            &ExecConfig::with_clusters(8),
        )
        .unwrap();
        let got = to_f32(&outs[0]);
        assert!((got[0] - (0.0 - 10.0) * 0.5).abs() < 1e-6);
        for i in 1..64 {
            assert!((got[i] - col[i] * 0.5).abs() < 1e-5, "i={i}");
        }
    }

    #[test]
    fn coldot_and_colaxpy_update_columns() {
        let mach = m();
        let clusters = 8usize;
        let row_iters = 2i32; // 16 records of 8 rows per column
        let _rows = 8 * clusters * row_iters as usize / clusters; // 16 records -> 128 rows? no:
                                                                  // Each column has row_iters * 8 rows; C columns per strip.
        let rows_per_col = 8 * row_iters as usize;
        let cols = clusters; // one strip
                             // Build strip layout: iteration i, cluster c reads rowblock i of
                             // column c -> record index i*C + c = rowblock i of column c.
        let mut a_stream = Vec::new();
        let mut v_stream = Vec::new();
        let a_mat: Vec<Vec<f32>> = (0..cols)
            .map(|c| (0..rows_per_col).map(|r| (c + r) as f32 * 0.1).collect())
            .collect();
        let v: Vec<f32> = (0..rows_per_col).map(|r| 1.0 / (1.0 + r as f32)).collect();
        for i in 0..row_iters as usize {
            for c in 0..cols {
                for r in 0..8 {
                    a_stream.push(a_mat[c][i * 8 + r]);
                    v_stream.push(v[i * 8 + r]);
                }
            }
        }
        let dk = coldot(&mach);
        let outs = execute(
            &dk,
            &[Scalar::I32(row_iters)],
            &[words_f32(a_stream.clone()), words_f32(v_stream.clone())],
            &ExecConfig::with_clusters(clusters),
        )
        .unwrap();
        let dots = to_f32(&outs[0]);
        assert_eq!(dots.len(), cols);
        for c in 0..cols {
            let want: f32 = (0..rows_per_col).map(|r| a_mat[c][r] * v[r]).sum();
            assert!(
                (dots[c] - want).abs() < 1e-3,
                "col {c}: {} vs {want}",
                dots[c]
            );
        }

        let ak = colaxpy(&mach);
        let tau = 0.8f32;
        let outs2 = execute(
            &ak,
            &[Scalar::I32(row_iters), Scalar::F32(tau)],
            &[
                words_f32(a_stream.clone()),
                words_f32(v_stream.clone()),
                words_f32(dots.clone()),
            ],
            &ExecConfig::with_clusters(clusters),
        )
        .unwrap();
        let updated = to_f32(&outs2[0]);
        // Check one element: column c, row r.
        for (c, dot) in dots.iter().enumerate() {
            for r in 0..rows_per_col {
                let i = (r / 8) * cols * 8 + c * 8 + (r % 8);
                let want = a_mat[c][r] - tau * dot * v[r];
                assert!((updated[i] - want).abs() < 1e-3, "c={c} r={r}");
            }
        }
    }
}
