//! Interpreter fast path: compiled execution tape vs the legacy tree-walk.
//!
//! Besides the criterion display benches, this harness self-times both
//! paths (the offline criterion shim has no machine-readable output) and
//! writes `BENCH_interp.json` at the repository root so CI can assert the
//! tape's speedup without scraping bench stdout.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use stream_ir::{execute_legacy, ExecConfig, Kernel, Scalar, Tape, Ty};
use stream_kernels::{convolve, KernelId};
use stream_machine::Machine;

/// Synthesizes deterministic well-typed input streams sized for
/// `iterations` loop iterations at `clusters` clusters.
fn synth_inputs(kernel: &Kernel, iterations: usize, clusters: usize) -> Vec<Vec<Scalar>> {
    kernel
        .inputs()
        .iter()
        .map(|decl| {
            let words = iterations * clusters * decl.record_width as usize;
            (0..words)
                .map(|i| match decl.ty {
                    Ty::I32 => Scalar::I32((i % 251) as i32 - 125),
                    Ty::F32 => Scalar::F32((i % 17) as f32 * 0.125 - 1.0),
                })
                .collect()
        })
        .collect()
}

struct Case {
    name: &'static str,
    kernel: Kernel,
    params: Vec<Scalar>,
    inputs: Vec<Vec<Scalar>>,
    cfg: ExecConfig,
}

fn cases() -> Vec<Case> {
    let machine = Machine::baseline();

    // Convolve over one 512-column row strip — the interpreter benchmark
    // the tape's >=5x acceptance criterion is judged on.
    let conv = convolve::kernel(&machine);
    let taps = convolve::Taps::gaussian();
    let rows = convolve::sample_rows(512, 3);
    let conv_inputs = convolve::input_streams(&rows);
    let conv_params = convolve::params(&taps);

    // FFT radix-4 stage over a 1K-point-sized strip (256 butterflies =
    // 32 iterations x 8 clusters), with synthetic but well-typed data.
    let fft = KernelId::Fft.build(&machine);
    let fft_inputs = synth_inputs(&fft, 32, 8);

    vec![
        Case {
            name: "convolve_512px",
            kernel: conv,
            params: conv_params,
            inputs: conv_inputs,
            cfg: ExecConfig::with_clusters(8),
        },
        Case {
            name: "fft_1k",
            kernel: fft,
            params: Vec::new(),
            inputs: fft_inputs,
            cfg: ExecConfig::with_clusters(8),
        },
    ]
}

/// Mean ns/call over enough calls to fill ~200ms, after warmup.
fn time_ns(mut f: impl FnMut()) -> f64 {
    f();
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_nanos().max(1);
    let samples = ((200_000_000 / once) as usize).clamp(10, 20_000);
    let t0 = Instant::now();
    for _ in 0..samples {
        f();
    }
    t0.elapsed().as_nanos() as f64 / samples as f64
}

/// Self-times both paths and writes `BENCH_interp.json` at the repo root.
fn emit_json(cases: &[Case]) {
    let mut bench_entries = Vec::new();
    let mut speedup_entries = Vec::new();
    for case in cases {
        let tape = Tape::compile(&case.kernel);
        let expect = execute_legacy(&case.kernel, &case.params, &case.inputs, &case.cfg)
            .expect("legacy path executes");
        assert_eq!(
            tape.execute(&case.params, &case.inputs, &case.cfg)
                .expect("tape path executes"),
            expect,
            "tape and legacy outputs diverge on {}",
            case.name
        );

        let legacy_ns = time_ns(|| {
            execute_legacy(&case.kernel, &case.params, &case.inputs, &case.cfg).unwrap();
        });
        let tape_ns = time_ns(|| {
            tape.execute(&case.params, &case.inputs, &case.cfg).unwrap();
        });
        let speedup = legacy_ns / tape_ns;
        println!(
            "interp/{}: legacy {:.0} ns, tape {:.0} ns, speedup {:.2}x",
            case.name, legacy_ns, tape_ns, speedup
        );
        bench_entries.push(format!(
            "    \"legacy_{}\": {{\"mean_ns\": {:.1}}},\n    \"tape_{}\": {{\"mean_ns\": {:.1}}}",
            case.name, legacy_ns, case.name, tape_ns
        ));
        speedup_entries.push(format!("    \"{}\": {:.3}", case.name, speedup));
    }
    let json = format!
        ("{{\n  \"bench\": \"interp\",\n  \"unit\": \"ns_per_call\",\n  \"benchmarks\": {{\n{}\n  }},\n  \"speedup\": {{\n{}\n  }}\n}}\n",
        bench_entries.join(",\n"),
        speedup_entries.join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_interp.json");
    std::fs::write(&path, json).expect("write BENCH_interp.json");
    println!("wrote {}", path.display());
}

fn bench_interp(c: &mut Criterion) {
    let cases = cases();
    emit_json(&cases);
    for case in &cases {
        let tape = Tape::compile(&case.kernel);
        c.bench_function(&format!("interp/tape_{}", case.name), |b| {
            b.iter(|| tape.execute(&case.params, &case.inputs, &case.cfg).unwrap())
        });
        c.bench_function(&format!("interp/legacy_{}", case.name), |b| {
            b.iter(|| execute_legacy(&case.kernel, &case.params, &case.inputs, &case.cfg).unwrap())
        });
    }
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
