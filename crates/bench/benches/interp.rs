//! Interpreter fast path: compiled execution tape vs the legacy tree-walk.
//!
//! Besides the criterion display benches, this harness self-times both
//! paths (the offline criterion shim has no machine-readable output) and
//! writes `BENCH_interp.json` at the repository root so CI can assert the
//! tape's speedup without scraping bench stdout.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use stream_ir::{execute_legacy, ExecConfig, Kernel, NativeMode, Scalar, Tape, TapeConfig, Ty};
use stream_kernels::{convolve, KernelId};
use stream_machine::Machine;

/// Synthesizes deterministic well-typed input streams sized for
/// `iterations` loop iterations at `clusters` clusters.
fn synth_inputs(kernel: &Kernel, iterations: usize, clusters: usize) -> Vec<Vec<Scalar>> {
    kernel
        .inputs()
        .iter()
        .map(|decl| {
            let words = iterations * clusters * decl.record_width as usize;
            (0..words)
                .map(|i| match decl.ty {
                    Ty::I32 => Scalar::I32((i % 251) as i32 - 125),
                    Ty::F32 => Scalar::F32((i % 17) as f32 * 0.125 - 1.0),
                })
                .collect()
        })
        .collect()
}

struct Case {
    name: &'static str,
    kernel: Kernel,
    params: Vec<Scalar>,
    inputs: Vec<Vec<Scalar>>,
    cfg: ExecConfig,
}

fn cases() -> Vec<Case> {
    let machine = Machine::baseline();

    // Convolve over one 512-column row strip — the interpreter benchmark
    // the tape's >=5x acceptance criterion is judged on.
    let conv = convolve::kernel(&machine);
    let taps = convolve::Taps::gaussian();
    let rows = convolve::sample_rows(512, 3);
    let conv_inputs = convolve::input_streams(&rows);
    let conv_params = convolve::params(&taps);

    // FFT radix-4 stage over a 1K-point-sized strip (256 butterflies =
    // 32 iterations x 8 clusters), with synthetic but well-typed data.
    let fft = KernelId::Fft.build(&machine);
    let fft_inputs = synth_inputs(&fft, 32, 8);

    vec![
        Case {
            name: "convolve_512px",
            kernel: conv,
            params: conv_params,
            inputs: conv_inputs,
            cfg: ExecConfig::with_clusters(8),
        },
        Case {
            name: "fft_1k",
            kernel: fft,
            params: Vec::new(),
            inputs: fft_inputs,
            cfg: ExecConfig::with_clusters(8),
        },
    ]
}

/// Per-call ns for each path, as interleaved min-of-k windows: every
/// round times one short (~3ms) window per path back to back, and each
/// path keeps its best window mean. Interleaving plus the minimum makes
/// the *ratios* robust to background load — a noise burst inflates whole
/// windows, which the minimum then discards, instead of biasing one
/// path's single long run as a mean would.
fn time_paths<const N: usize>(mut fs: [&mut dyn FnMut(); N]) -> [f64; N] {
    let mut per = [0usize; N];
    for (i, f) in fs.iter_mut().enumerate() {
        f();
        let probe = Instant::now();
        f();
        let once = probe.elapsed().as_nanos().max(1);
        per[i] = ((3_000_000 / once) as usize).clamp(5, 2_000);
    }
    let mut best = [f64::INFINITY; N];
    for _ in 0..24 {
        for (i, f) in fs.iter_mut().enumerate() {
            let t0 = Instant::now();
            for _ in 0..per[i] {
                f();
            }
            best[i] = best[i].min(t0.elapsed().as_nanos() as f64 / per[i] as f64);
        }
    }
    best
}

/// Self-times all four paths (legacy tree-walk, PR-3 tape v1 baseline,
/// tape v2 with fusion and lane specialization, and the tier-3 native
/// backend) and writes `BENCH_interp.json` at the repo root.
/// `tape_<case>` is always the current default interpreter tape, so the
/// original `speedup` gate keeps meaning "tape over legacy";
/// `speedup_v2_over_v1` and `speedup_native_over_v2` isolate each tier's
/// gain. The v1/v2 tapes pin `NativeMode::Off` so the hot timing loops
/// cannot auto-promote them; the native tape is forced and pre-warmed so
/// the one-time `rustc` build never lands inside a timing window.
/// `recorder_overhead` times the v2 tape with the flight recorder off vs
/// on and gates the ratio, so "always-on" observability stays cheap enough
/// to actually leave always on.
fn emit_json(cases: &[Case]) {
    let mut bench_entries = Vec::new();
    let mut speedup_entries = Vec::new();
    let mut v2_entries = Vec::new();
    let mut native_entries = Vec::new();
    let mut recorder_entries = Vec::new();
    for case in cases {
        let tape_v1 = Tape::compile_with(&case.kernel, TapeConfig::v1_baseline());
        let tape_v2 = Tape::compile(&case.kernel).with_native_mode(NativeMode::Off);
        let tape_native = Tape::compile(&case.kernel).with_native_mode(NativeMode::Force);
        let expect = execute_legacy(&case.kernel, &case.params, &case.inputs, &case.cfg)
            .expect("legacy path executes");
        for (label, tape) in [("v1", &tape_v1), ("v2", &tape_v2), ("native", &tape_native)] {
            assert_eq!(
                tape.execute(&case.params, &case.inputs, &case.cfg)
                    .expect("tape path executes"),
                expect,
                "tape {} and legacy outputs diverge on {}",
                label,
                case.name
            );
        }
        let built = stream_ir::native_stats();
        assert_eq!(
            built.fallbacks, 0,
            "native backend fell back on {}; the native column would silently \
             time the interpreter",
            case.name
        );

        let [legacy_ns, v1_ns, v2_ns, native_ns] = time_paths([
            &mut || {
                execute_legacy(&case.kernel, &case.params, &case.inputs, &case.cfg).unwrap();
            },
            &mut || {
                tape_v1
                    .execute(&case.params, &case.inputs, &case.cfg)
                    .unwrap();
            },
            &mut || {
                tape_v2
                    .execute(&case.params, &case.inputs, &case.cfg)
                    .unwrap();
            },
            &mut || {
                tape_native
                    .execute(&case.params, &case.inputs, &case.cfg)
                    .unwrap();
            },
        ]);
        // Flight-recorder overhead guard: the same tape-v2 hot loop with
        // the always-on recorder off vs on. Each closure re-asserts its own
        // recorder state (one relaxed RMW, symmetric across both paths) so
        // the interleaved windows can share the process-global bit. The
        // ratio is a hard bench gate: the recorder's pitch is "cheap enough
        // to leave on", so a regression past noise fails loudly here.
        let [rec_off_ns, rec_on_ns] = time_paths([
            &mut || {
                stream_trace::disable_flight_recorder();
                tape_v2
                    .execute(&case.params, &case.inputs, &case.cfg)
                    .unwrap();
            },
            &mut || {
                stream_trace::enable_flight_recorder();
                tape_v2
                    .execute(&case.params, &case.inputs, &case.cfg)
                    .unwrap();
            },
        ]);
        stream_trace::disable_flight_recorder();
        let recorder_ratio = rec_on_ns / rec_off_ns;
        assert!(
            recorder_ratio < 1.25,
            "flight recorder costs {:.2}x on {} (off {:.0} ns, on {:.0} ns); \
             the always-on path must stay within noise",
            recorder_ratio,
            case.name,
            rec_off_ns,
            rec_on_ns
        );

        let speedup = legacy_ns / v2_ns;
        let v2_over_v1 = v1_ns / v2_ns;
        let native_over_v2 = v2_ns / native_ns;
        println!(
            "interp/{}: legacy {:.0} ns, tape v1 {:.0} ns, tape v2 {:.0} ns, \
             native {:.0} ns, v2/legacy {:.2}x, v2/v1 {:.2}x, native/v2 {:.2}x, \
             recorder on/off {:.3}x",
            case.name,
            legacy_ns,
            v1_ns,
            v2_ns,
            native_ns,
            speedup,
            v2_over_v1,
            native_over_v2,
            recorder_ratio
        );
        bench_entries.push(format!(
            "    \"legacy_{0}\": {{\"mean_ns\": {1:.1}}},\n    \
             \"tape_v1_{0}\": {{\"mean_ns\": {2:.1}}},\n    \
             \"tape_{0}\": {{\"mean_ns\": {3:.1}}},\n    \
             \"tape_native_{0}\": {{\"mean_ns\": {4:.1}}}",
            case.name, legacy_ns, v1_ns, v2_ns, native_ns
        ));
        speedup_entries.push(format!("    \"{}\": {:.3}", case.name, speedup));
        v2_entries.push(format!("    \"{}\": {:.3}", case.name, v2_over_v1));
        native_entries.push(format!("    \"{}\": {:.3}", case.name, native_over_v2));
        recorder_entries.push(format!("    \"{}\": {:.3}", case.name, recorder_ratio));
    }
    let json = format!
        ("{{\n  \"bench\": \"interp\",\n  \"unit\": \"ns_per_call\",\n  \"benchmarks\": {{\n{}\n  }},\n  \"speedup\": {{\n{}\n  }},\n  \"speedup_v2_over_v1\": {{\n{}\n  }},\n  \"speedup_native_over_v2\": {{\n{}\n  }},\n  \"recorder_overhead\": {{\n{}\n  }}\n}}\n",
        bench_entries.join(",\n"),
        speedup_entries.join(",\n"),
        v2_entries.join(",\n"),
        native_entries.join(",\n"),
        recorder_entries.join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_interp.json");
    std::fs::write(&path, json).expect("write BENCH_interp.json");
    println!("wrote {}", path.display());
}

fn bench_interp(c: &mut Criterion) {
    let cases = cases();
    emit_json(&cases);
    for case in &cases {
        let tape = Tape::compile(&case.kernel).with_native_mode(NativeMode::Off);
        let native = Tape::compile(&case.kernel).with_native_mode(NativeMode::Force);
        c.bench_function(&format!("interp/tape_{}", case.name), |b| {
            b.iter(|| tape.execute(&case.params, &case.inputs, &case.cfg).unwrap())
        });
        c.bench_function(&format!("interp/tape_native_{}", case.name), |b| {
            b.iter(|| {
                native
                    .execute(&case.params, &case.inputs, &case.cfg)
                    .unwrap()
            })
        });
        c.bench_function(&format!("interp/legacy_{}", case.name), |b| {
            b.iter(|| execute_legacy(&case.kernel, &case.params, &case.inputs, &case.cfg).unwrap())
        });
    }
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
