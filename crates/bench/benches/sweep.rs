//! Benchmarks for the parallel sweep engine and the shared compiled-kernel
//! cache: cold vs warm compiles, and a figure-13-shaped grid at different
//! worker counts.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;
use stream_grid::{Engine, KernelCache};
use stream_kernels::KernelId;
use stream_machine::Machine;
use stream_repro::ExperimentId;
use stream_sched::CompileOptions;
use stream_vlsi::Shape;

fn bench_cache(c: &mut Criterion) {
    let machine = Machine::baseline();
    let kernel = KernelId::Fft.build(&machine);
    let opts = CompileOptions::default();

    let mut g = c.benchmark_group("kernel_cache");
    g.measurement_time(Duration::from_secs(5));
    // Cold: a fresh cache per iteration, so every lookup compiles.
    g.bench_function("cold_compile_fft", |b| {
        b.iter_batched(
            KernelCache::new,
            |cache| cache.get_or_compile(&kernel, &machine, &opts).unwrap(),
            BatchSize::SmallInput,
        )
    });
    // Warm: the same cache every iteration, so every lookup is a hit.
    let warm = KernelCache::new();
    warm.get_or_compile(&kernel, &machine, &opts).unwrap();
    g.bench_function("warm_lookup_fft", |b| {
        b.iter(|| warm.get_or_compile(&kernel, &machine, &opts).unwrap())
    });
    g.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_engine");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    // The figure-13 compile grid end to end — cache hits dominate after the
    // first iteration, so this mostly measures the sweep machinery.
    g.bench_function("fig13_serial", |b| {
        b.iter(|| stream_repro::run_with(ExperimentId::Fig13, &Engine::new(1)))
    });
    g.bench_function("fig13_default_parallelism", |b| {
        let engine = Engine::with_default_parallelism();
        b.iter(|| stream_repro::run_with(ExperimentId::Fig13, &engine))
    });
    // A figure-15-shaped app cell on the functional path: CONV end to end
    // through the engine — interpreter-bound, so it rides the compiled
    // execution tape.
    g.bench_function("fig15_functional_conv_cell_tape", |b| {
        let engine = Engine::new(1);
        b.iter(|| {
            engine
                .map(vec![8usize], |c| {
                    stream_apps::conv::run_functional(&stream_apps::conv::Config::small(), c)
                        .0
                        .len()
                })
                .results
        })
    });
    // The raw engine without any compilation: dispatch overhead per job.
    g.bench_function("dispatch_256_trivial_jobs", |b| {
        let engine = Engine::new(4);
        b.iter(|| {
            engine
                .map((0u64..256).collect::<Vec<_>>(), |i| {
                    Shape::new(1 + (i % 128) as u32, 1 + (i % 10) as u32).clusters
                })
                .results
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_sweep);
criterion_main!(benches);
