//! Benchmarks for the parallel sweep engine and the shared compiled-kernel
//! cache: cold vs warm compiles, and a figure-13-shaped grid at different
//! worker counts.
//!
//! Besides the criterion display benches, this harness self-times the
//! cold-compile and warm-lookup cache paths (the offline criterion shim has
//! no machine-readable output) and writes `BENCH_sweep.json` at the
//! repository root so CI can assert the cache actually caches without
//! scraping bench stdout.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::{Duration, Instant};
use stream_grid::{Engine, KernelCache};
use stream_kernels::KernelId;
use stream_machine::Machine;
use stream_repro::ExperimentId;
use stream_sched::CompileOptions;
use stream_vlsi::Shape;

/// Mean ns/call over enough calls to fill ~200ms, after warmup.
fn time_ns(mut f: impl FnMut()) -> f64 {
    f();
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_nanos().max(1);
    let samples = ((200_000_000 / once) as usize).clamp(10, 20_000);
    let t0 = Instant::now();
    for _ in 0..samples {
        f();
    }
    t0.elapsed().as_nanos() as f64 / samples as f64
}

/// Self-times the cache paths and writes `BENCH_sweep.json` at the repo
/// root, in the same schema style as `BENCH_interp.json`.
fn emit_json() {
    let machine = Machine::baseline();
    let kernel = KernelId::Fft.build(&machine);
    let opts = CompileOptions::default();

    // Cold: a fresh cache per call, so every lookup runs the compiler.
    let cold_ns = time_ns(|| {
        let cache = KernelCache::new();
        cache.get_or_compile(&kernel, &machine, &opts).unwrap();
    });
    // Warm: the same cache every call, so every lookup is a hit.
    let warm_cache = KernelCache::new();
    warm_cache.get_or_compile(&kernel, &machine, &opts).unwrap();
    let warm_ns = time_ns(|| {
        warm_cache.get_or_compile(&kernel, &machine, &opts).unwrap();
    });

    let speedup = cold_ns / warm_ns;
    // Cold scheduler throughput, the number the auto-tuner's pruned search
    // spends: with the DDG build and height analysis hoisted out of the
    // per-factor loop, this is schedules (not kernels) per second.
    let cold_compiles_per_sec = 1e9 / cold_ns;
    println!(
        "sweep/kernel_cache: cold {cold_ns:.0} ns ({cold_compiles_per_sec:.1} compiles/s), \
         warm {warm_ns:.0} ns, speedup {speedup:.1}x"
    );
    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"unit\": \"ns_per_call\",\n  \"benchmarks\": {{\n    \"cold_compile_fft\": {{\"mean_ns\": {cold_ns:.1}}},\n    \"warm_lookup_fft\": {{\"mean_ns\": {warm_ns:.1}}}\n  }},\n  \"cold_compiles_per_sec\": {cold_compiles_per_sec:.1},\n  \"speedup\": {{\n    \"warm_over_cold\": {speedup:.3}\n  }}\n}}\n"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json");
    std::fs::write(&path, json).expect("write BENCH_sweep.json");
    println!("wrote {}", path.display());
}

fn bench_cache(c: &mut Criterion) {
    emit_json();

    let machine = Machine::baseline();
    let kernel = KernelId::Fft.build(&machine);
    let opts = CompileOptions::default();

    let mut g = c.benchmark_group("kernel_cache");
    g.measurement_time(Duration::from_secs(5));
    // Cold: a fresh cache per iteration, so every lookup compiles.
    g.bench_function("cold_compile_fft", |b| {
        b.iter_batched(
            KernelCache::new,
            |cache| cache.get_or_compile(&kernel, &machine, &opts).unwrap(),
            BatchSize::SmallInput,
        )
    });
    // Warm: the same cache every iteration, so every lookup is a hit.
    let warm = KernelCache::new();
    warm.get_or_compile(&kernel, &machine, &opts).unwrap();
    g.bench_function("warm_lookup_fft", |b| {
        b.iter(|| warm.get_or_compile(&kernel, &machine, &opts).unwrap())
    });
    g.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_engine");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    // The figure-13 compile grid end to end — cache hits dominate after the
    // first iteration, so this mostly measures the sweep machinery.
    g.bench_function("fig13_serial", |b| {
        b.iter(|| stream_repro::run_with(ExperimentId::Fig13, &Engine::new(1)))
    });
    g.bench_function("fig13_default_parallelism", |b| {
        let engine = Engine::with_default_parallelism();
        b.iter(|| stream_repro::run_with(ExperimentId::Fig13, &engine))
    });
    // A figure-15-shaped app cell on the functional path: CONV end to end
    // through the engine — interpreter-bound, so it rides the compiled
    // execution tape.
    g.bench_function("fig15_functional_conv_cell_tape", |b| {
        let engine = Engine::new(1);
        b.iter(|| {
            engine
                .map(vec![8usize], |c| {
                    stream_apps::conv::run_functional(&stream_apps::conv::Config::small(), c)
                        .0
                        .len()
                })
                .results
        })
    });
    // The raw engine without any compilation: dispatch overhead per job.
    g.bench_function("dispatch_256_trivial_jobs", |b| {
        let engine = Engine::new(4);
        b.iter(|| {
            engine
                .map((0u64..256).collect::<Vec<_>>(), |i| {
                    Shape::new(1 + (i % 128) as u32, 1 + (i % 10) as u32).clusters
                })
                .results
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_sweep);
criterion_main!(benches);
