//! Benchmarks for the kernel toolchain (IR, interpreter, scheduler) and the
//! Section 5.1/5.2 experiment generators (Table 2, Figures 13/14, Table 5).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use stream_ir::{execute, unroll, ExecConfig};
use stream_kernels::util::words_f32;
use stream_kernels::{convolve, KernelId};
use stream_machine::Machine;
use stream_sched::{modulo_schedule, CompiledKernel, Ddg};
use stream_vlsi::Shape;

fn bench_toolchain(c: &mut Criterion) {
    let machine = Machine::baseline();
    let kernel = KernelId::Fft.build(&machine);

    c.bench_function("sched/ddg_build_fft", |b| {
        b.iter(|| Ddg::build(std::hint::black_box(&kernel), &machine))
    });
    let ddg = Ddg::build(&kernel, &machine);
    c.bench_function("sched/modulo_schedule_fft", |b| {
        b.iter(|| modulo_schedule(std::hint::black_box(&ddg), &machine))
    });
    c.bench_function("sched/compile_fft_with_unroll_search", |b| {
        b.iter(|| CompiledKernel::compile_default(&kernel, &machine))
    });
    c.bench_function("ir/unroll_x4_fft", |b| b.iter(|| unroll(&kernel, 4)));

    // Interpreter throughput: convolve over one 512-column row.
    let conv = convolve::kernel(&machine);
    let taps = convolve::Taps::gaussian();
    let rows = convolve::sample_rows(512, 3);
    let inputs = convolve::input_streams(&rows);
    let params = convolve::params(&taps);
    c.bench_function("ir/interpret_convolve_512px", |b| {
        b.iter(|| execute(&conv, &params, &inputs, &ExecConfig::with_clusters(8)))
    });

    // Raw stream scatter/gather cost.
    let flat = words_f32((0..4096).map(|i| i as f32));
    c.bench_function("ir/scatter_gather_4k_words", |b| {
        b.iter(|| {
            let s = stream_kernels::split::scatter_words(&flat, 8, 3);
            stream_kernels::split::gather_words(&s, 8)
        })
    });
}

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_figures");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    g.bench_function("table2_kernel_stats", |b| b.iter(stream_repro::table2));
    g.bench_function("fig13_intracluster_kernels", |b| {
        b.iter(stream_repro::fig13)
    });
    g.bench_function("fig14_intercluster_kernels", |b| {
        b.iter(stream_repro::fig14)
    });
    g.bench_function("table5_perf_per_area", |b| b.iter(stream_repro::table5));
    g.finish();

    // Per-kernel compile cost on the big machine.
    let big = Machine::paper(Shape::HEADLINE_1280);
    let mut g = c.benchmark_group("compile_1280alu");
    g.sample_size(10);
    for id in KernelId::ALL {
        let kernel = id.build(&big);
        g.bench_function(id.name(), |b| {
            b.iter(|| CompiledKernel::compile_default(&kernel, &big))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_toolchain, bench_experiments);
criterion_main!(benches);
