//! Benchmarks for the VLSI cost model and the Section 3/4 experiment
//! generators (Tables 1/3, Figures 6-12).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;
use stream_vlsi::{
    calibration_anchors, intercluster_sweep, intracluster_sweep, CostKind, CostModel, Shape,
};

fn bench_model(c: &mut Criterion) {
    let model = CostModel::paper();
    c.bench_function("cost_model/evaluate_baseline", |b| {
        b.iter(|| model.evaluate(std::hint::black_box(Shape::BASELINE)))
    });
    c.bench_function("cost_model/evaluate_1280_alu", |b| {
        b.iter(|| model.evaluate(std::hint::black_box(Shape::HEADLINE_1280)))
    });
    c.bench_function("cost_model/design_space_1k_points", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for c in 1..=32u32 {
                for n in 1..=32u32 {
                    acc += model.evaluate(Shape::new(c * 8, n)).area.per_alu();
                }
            }
            acc
        })
    });
    c.bench_function("cost_model/calibration_anchors", |b| {
        b.iter(|| calibration_anchors(&model))
    });
}

fn bench_figures(c: &mut Criterion) {
    let model = CostModel::paper();
    let mut g = c.benchmark_group("cost_figures");
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("fig06_intracluster_area", |b| {
        b.iter(|| intracluster_sweep(&model, CostKind::Area, 8))
    });
    g.bench_function("fig07_intracluster_energy", |b| {
        b.iter(|| intracluster_sweep(&model, CostKind::Energy, 8))
    });
    g.bench_function("fig08_intracluster_delay", |b| b.iter(stream_repro::fig8));
    g.bench_function("fig09_intercluster_area", |b| {
        b.iter(|| intercluster_sweep(&model, CostKind::Area, 5))
    });
    g.bench_function("fig10_intercluster_energy", |b| {
        b.iter(|| intercluster_sweep(&model, CostKind::Energy, 5))
    });
    g.bench_function("fig11_intercluster_delay", |b| b.iter(stream_repro::fig11));
    g.bench_function("fig12_combined_area", |b| b.iter(stream_repro::fig12));
    g.bench_function("table1_parameters", |b| b.iter(stream_repro::table1));
    g.bench_function("table3_cost_formulae", |b| {
        b.iter_batched(|| (), |()| stream_repro::table3(), BatchSize::SmallInput)
    });
    g.finish();
}

criterion_group!(benches, bench_model, bench_figures);
criterion_main!(benches);
