//! Benchmarks for the stream-level simulator and the Section 5.3 experiment
//! generators (Figure 15 and the headline claims).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use stream_apps::AppId;
use stream_machine::{Machine, SystemParams};
use stream_sim::simulate;
use stream_vlsi::Shape;

fn bench_simulator(c: &mut Criterion) {
    let sys = SystemParams::paper_2007();
    let machine = Machine::baseline();

    // Program construction and simulation per application on the baseline.
    let mut g = c.benchmark_group("app_baseline");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    for id in AppId::ALL {
        g.bench_function(format!("build_{}", id.name()), |b| {
            b.iter(|| id.program(&machine))
        });
        let app = id.program(&machine);
        g.bench_function(format!("simulate_{}", id.name()), |b| {
            b.iter(|| simulate(&app.program, &machine, &sys))
        });
    }
    g.finish();

    // The big machine: build + simulate DEPTH (the instruction-heaviest).
    let big = Machine::paper(Shape::HEADLINE_1280);
    let mut g = c.benchmark_group("app_1280alu");
    g.sample_size(10);
    g.bench_function("simulate_DEPTH", |b| {
        let app = AppId::Depth.program(&big);
        b.iter(|| simulate(&app.program, &big, &sys))
    });
    g.finish();
}

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("app_figures");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    g.bench_function("fig15_applications", |b| b.iter(stream_repro::fig15));
    g.bench_function("headline_claims", |b| b.iter(stream_repro::headline));
    g.finish();
}

criterion_group!(benches, bench_simulator, bench_experiments);
criterion_main!(benches);
