//! Benchmarks for the auto-tuner (`stream-tune`): what tuning buys per
//! application, and what a search costs.
//!
//! Besides the criterion display benches, this harness runs the full
//! six-application suite through `tune_app` at the C=64, N=8 design point
//! and writes `BENCH_tune.json` at the repository root, so CI can assert
//! the tuner never loses to the default configuration (and actually wins
//! somewhere) without scraping bench stdout.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use stream_apps::AppId;
use stream_machine::{Machine, SystemParams};
use stream_tune::tune_app;
use stream_vlsi::Shape;

/// Runs the suite at the shape CI gates on and writes `BENCH_tune.json`.
fn emit_json() {
    let shape = Shape::new(64, 8);
    let machine = Machine::paper(shape);
    let sys = SystemParams::paper_2007();

    let mut apps = String::new();
    let (mut evaluated, mut pruned, mut compiles) = (0u64, 0u64, 0u64);
    for (i, id) in AppId::ALL.into_iter().enumerate() {
        let t = tune_app(id, &machine, &sys);
        println!(
            "tune/{}: default {} cyc, tuned {} cyc, {:.3}x ({})",
            id.name(),
            t.default_cycles,
            t.tuned_cycles,
            t.speedup(),
            t.candidate.describe()
        );
        if i > 0 {
            apps.push_str(",\n");
        }
        apps.push_str(&format!(
            "    \"{}\": {{\"default_cycles\": {}, \"tuned_cycles\": {}, \"tuned_over_default\": {:.4}}}",
            id.name(),
            t.default_cycles,
            t.tuned_cycles,
            t.speedup()
        ));
        evaluated += t.evaluated;
        pruned += t.pruned;
        compiles += t.sched_compiles;
    }

    let json = format!(
        "{{\n  \"bench\": \"tune\",\n  \"unit\": \"simulated_cycles\",\n  \"shape\": {{\"clusters\": {}, \"alus_per_cluster\": {}}},\n  \"apps\": {{\n{apps}\n  }},\n  \"search\": {{\"evaluated\": {evaluated}, \"pruned\": {pruned}, \"sched_compiles\": {compiles}}}\n}}\n",
        shape.clusters, shape.alus_per_cluster
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_tune.json");
    std::fs::write(&path, json).expect("write BENCH_tune.json");
    println!("wrote {}", path.display());
}

fn bench_tune(c: &mut Criterion) {
    emit_json();

    let mut g = c.benchmark_group("tune");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(10));
    // One full pruned search on a small machine. Candidate compiles ride
    // the process-global kernel cache, so after the first iteration this
    // measures the search loop, cost model, and simulator — the part that
    // runs even when every schedule is already cached.
    let machine = Machine::paper(Shape::new(4, 4));
    let sys = SystemParams::paper_2007();
    g.bench_function("search_conv_c4n4", |b| {
        b.iter(|| tune_app(AppId::Conv, &machine, &sys))
    });
    g.finish();
}

criterion_group!(benches, bench_tune);
criterion_main!(benches);
