//! Benchmarks live in `benches/`; see the workspace README.
