//! Thread-permit accounting, shared by every component that spawns worker
//! threads.
//!
//! A [`PermitPool`] holds a budget of *extra* threads (beyond the calling
//! thread) that concurrent parallel regions may borrow from. The sweep
//! engine ([`stream-grid`]) owns one pool per engine so nested sweeps stay
//! bounded by that engine's configured parallelism; the execution tape's
//! strip-parallel runner draws from the process-wide [`global`] pool so
//! kernel-level parallelism composes with sweep-level parallelism without
//! oversubscribing the host.
//!
//! Permits are advisory capacity, not locks: `take` never blocks, it just
//! returns however many permits (possibly zero) are free right now. Callers
//! run serial on a zero grant.

// Under the `model` feature the pool's atomic comes from `loom-shim`, whose
// operations are scheduler yield points inside a `loom_shim::model` run (and
// identical std atomics otherwise). This lets `tests/model.rs` exhaustively
// check every interleaving of the *real* take/give code, not a copy of it.
#[cfg(feature = "model")]
use loom_shim::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(feature = "model"))]
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A counting pool of thread permits. Taking permits never blocks; a taker
/// gets between zero and `want` permits and must [`give`](PermitPool::give)
/// the same number back when its parallel region ends.
#[derive(Debug)]
pub struct PermitPool {
    permits: AtomicUsize,
    // Configured size, for occupancy gauges (`capacity - available` =
    // permits out on loan). Plain std atomic even under the `model`
    // feature: it is written only at configuration time, so it adds no
    // interleavings worth model-checking.
    capacity: std::sync::atomic::AtomicUsize,
}

impl PermitPool {
    /// Creates a pool holding `capacity` permits.
    pub const fn new(capacity: usize) -> Self {
        Self {
            permits: AtomicUsize::new(capacity),
            capacity: std::sync::atomic::AtomicUsize::new(capacity),
        }
    }

    /// Takes up to `want` permits, returning how many were actually
    /// granted (possibly zero). Never blocks.
    pub fn take(&self, want: usize) -> usize {
        if want == 0 {
            return 0;
        }
        let mut current = self.permits.load(Ordering::Relaxed);
        loop {
            let take = current.min(want);
            if take == 0 {
                return 0;
            }
            match self.permits.compare_exchange(
                current,
                current - take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(now) => current = now,
            }
        }
    }

    /// Returns `n` permits to the pool.
    pub fn give(&self, n: usize) {
        self.permits.fetch_add(n, Ordering::Relaxed);
    }

    /// Permits currently free.
    pub fn available(&self) -> usize {
        self.permits.load(Ordering::SeqCst)
    }

    /// The configured permit budget (free + on loan), for occupancy
    /// reporting.
    pub fn capacity(&self) -> usize {
        self.capacity.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Resets the pool to hold exactly `capacity` free permits. Only
    /// meaningful while no permits are outstanding (e.g. process startup).
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity
            .store(capacity, std::sync::atomic::Ordering::Relaxed);
        self.permits.store(capacity, Ordering::SeqCst);
    }
}

/// The host's available parallelism (1 if it cannot be determined).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

static GLOBAL: OnceLock<PermitPool> = OnceLock::new();

/// The process-wide permit pool. First use sizes it to the host's
/// available parallelism minus the calling thread; [`configure_global`]
/// overrides that (the `repro` binary maps `--jobs N` onto it).
pub fn global() -> &'static PermitPool {
    GLOBAL.get_or_init(|| PermitPool::new(default_parallelism().saturating_sub(1)))
}

/// Sizes the global pool for `workers` total threads (so `workers - 1`
/// extra permits; `workers` is clamped to a minimum of 1). Call at startup,
/// before any permits are taken.
pub fn configure_global(workers: usize) {
    global().set_capacity(workers.max(1) - 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_bounded_and_give_restores() {
        let pool = PermitPool::new(3);
        assert_eq!(pool.take(2), 2);
        assert_eq!(pool.available(), 1);
        assert_eq!(pool.take(5), 1);
        assert_eq!(pool.take(1), 0);
        pool.give(3);
        assert_eq!(pool.available(), 3);
    }

    #[test]
    fn zero_want_takes_nothing() {
        let pool = PermitPool::new(2);
        assert_eq!(pool.take(0), 0);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn concurrent_takers_never_overdraw() {
        let pool = PermitPool::new(4);
        let taken: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        let got = pool.take(2);
                        std::thread::yield_now();
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert!(taken <= 4, "overdrew: {taken}");
        pool.give(taken);
        assert_eq!(pool.available(), 4);
    }

    #[test]
    fn set_capacity_resizes() {
        let pool = PermitPool::new(1);
        assert_eq!(pool.capacity(), 1);
        pool.set_capacity(7);
        assert_eq!(pool.available(), 7);
        assert_eq!(pool.capacity(), 7);
        assert_eq!(pool.take(10), 7);
        // Loans shrink availability, never the configured capacity.
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.capacity(), 7);
    }
}
