//! Exhaustive interleaving checks for the permit pool, run under the
//! loom-shim model: every schedule of the real `take`/`give` code across
//! the modeled threads is explored, so the invariants below are proved for
//! the small configurations modeled here, not just sampled.
//!
//! Requires the `model` feature (`cargo test -p stream-pool --features
//! model`), which swaps the pool's atomic onto the shim. The same tests
//! also run from the workspace root suite via the root crate's
//! dev-dependency, so tier-1 `cargo test` includes them.
#![cfg(feature = "model")]

use loom_shim::thread;
use std::sync::Arc;
use stream_pool::PermitPool;

/// Two takers racing for a pool of two: no interleaving may overdraw, and
/// returning every grant must restore the pool exactly.
#[test]
fn concurrent_acquire_never_overdraws() {
    let executions = loom_shim::model(|| {
        let pool = Arc::new(PermitPool::new(2));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                thread::spawn(move || pool.take(2))
            })
            .collect();
        let grants: Vec<usize> = handles.into_iter().map(|h| h.join()).collect();
        let total: usize = grants.iter().sum();
        assert!(total <= 2, "overdraw: grants {grants:?}");
        pool.give(total);
        assert_eq!(pool.available(), 2, "permits not conserved");
    });
    assert!(executions > 1, "more than one interleaving must exist");
}

/// Release racing acquire: a taker that loses the CAS race against a
/// concurrent `give` retries and may steal the freshly returned permit.
/// In every interleaving the pool ends balanced and no grant exceeds what
/// was ever free.
#[test]
fn release_racing_acquire_stays_balanced() {
    loom_shim::model(|| {
        let pool = Arc::new(PermitPool::new(1));
        let holder = Arc::clone(&pool);
        let giver = thread::spawn(move || holder.give(1));
        let taker = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.take(2))
        };
        giver.join();
        let got = taker.join();
        assert!(got <= 2);
        pool.give(got);
        assert_eq!(pool.available(), 2);
    });
}

/// The work-stealing shape: two strip runners contend for one permit while
/// a third thread (a finished sweep) returns its own. Exactly the permits
/// that exist are ever granted, in every schedule.
#[test]
fn steal_interleavings_conserve_permits() {
    loom_shim::model(|| {
        let pool = Arc::new(PermitPool::new(1));
        let a = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.take(1))
        };
        let b = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.take(1))
        };
        let returner = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.give(1))
        };
        let (ga, gb) = (a.join(), b.join());
        returner.join();
        // Capacity 1 plus the returned permit: at most 2 grants total, and
        // if both takers won they must have won *different* permits.
        assert!(ga + gb <= 2, "granted {ga}+{gb} from 2 permits");
        pool.give(ga + gb);
        assert_eq!(pool.available(), 2);
    });
}

/// Zero-want takers are inert in every interleaving: they never perturb
/// the counter even mid-race.
#[test]
fn zero_want_is_inert_under_contention() {
    loom_shim::model(|| {
        let pool = Arc::new(PermitPool::new(1));
        let z = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.take(0))
        };
        let t = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.take(1))
        };
        assert_eq!(z.join(), 0);
        let got = t.join();
        pool.give(got);
        assert_eq!(pool.available(), 1);
    });
}
