//! Chrome trace-event JSON exporter.
//!
//! Produces the [Trace Event Format] object form — a `traceEvents` array of
//! `"X"` (complete span), `"i"` (instant), `"C"` (counter), and `"M"`
//! (metadata) events — loadable directly in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev) (open the file with *Open trace
//! file*; no conversion needed).
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::span::{Phase, SpanEvent};
use crate::{counters, histograms};
use std::fmt::Write as _;

/// Escapes `s` into a JSON string body (no surrounding quotes).
fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    escape_into(out, key);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push('"');
}

/// Renders `events` plus every registered counter and histogram as one
/// Chrome trace-event JSON document.
///
/// Spans become `"X"` events and instants `"i"` events on their recording
/// thread's track. Counters become one `"C"` event each (their final
/// value, on a synthetic `tid 0` track); histograms are attached to the
/// process metadata as `name: [count, mean, p99-bound]` args so they
/// survive the round trip without inventing per-sample events.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 1024);
    out.push_str("{\"traceEvents\":[\n");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"stream-scaling\"}}",
    );

    let last_ts = events.iter().map(|e| e.start_us + e.dur_us).max();

    for e in events {
        out.push_str(",\n{");
        match e.ph {
            Phase::Complete => {
                let _ = write!(
                    out,
                    "\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},",
                    e.tid, e.start_us, e.dur_us
                );
            }
            Phase::Instant => {
                let _ = write!(
                    out,
                    "\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},",
                    e.tid, e.start_us
                );
            }
        }
        push_str_field(&mut out, "cat", e.cat);
        out.push(',');
        push_str_field(&mut out, "name", &e.name);
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_str_field(&mut out, k, v);
            }
            out.push('}');
        }
        out.push('}');
    }

    let counter_ts = last_ts.unwrap_or(0);
    for (name, value) in counters() {
        out.push_str(",\n{");
        let _ = write!(
            out,
            "\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{counter_ts},\"cat\":\"counter\","
        );
        push_str_field(&mut out, "name", name);
        let _ = write!(out, ",\"args\":{{\"value\":{value}}}}}");
    }

    let hists = histograms();
    if !hists.is_empty() {
        out.push_str(",\n{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"histograms\",\"args\":{");
        for (i, (name, snap)) in hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, name);
            let _ = write!(
                out,
                "\":[{},{:.3},{}]",
                snap.count(),
                snap.mean(),
                snap.quantile_bound(0.99)
            );
        }
        out.push_str("}}");
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn escaping_handles_specials() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn json_has_required_chrome_keys() {
        let _g = test_lock::hold();
        crate::enable();
        let _ = crate::take_events();
        {
            let mut s = crate::span("chrome-test", "unit \"quoted\"");
            s.arg("shape", "8x5");
        }
        crate::instant("chrome-test", "mark");
        crate::count("chrome.test.counter", 3);
        crate::record("chrome.test.hist", 17);
        crate::disable();
        let events = crate::take_events();
        let json = chrome_trace_json(&events);
        for key in [
            "\"traceEvents\"",
            "\"ph\":\"X\"",
            "\"ph\":\"i\"",
            "\"ph\":\"C\"",
            "\"ph\":\"M\"",
            "\"ts\":",
            "\"dur\":",
            "\"pid\":1",
            "\"tid\":",
            "\"displayTimeUnit\"",
            "unit \\\"quoted\\\"",
            "chrome.test.counter",
            "chrome.test.hist",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Structurally sound enough to round-trip through a strict parser:
        // balanced braces/brackets outside strings.
        let mut depth = 0i32;
        let mut in_str = false;
        let mut esc = false;
        for ch in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match ch {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
