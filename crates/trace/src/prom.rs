//! Prometheus text exposition (format version 0.0.4) over the metrics
//! registry: counters, gauges, and log2 histograms with cumulative
//! `_bucket` series plus `_sum`/`_count`.
//!
//! Registry names use dots (`cache.hits`); Prometheus names must match
//! `[a-zA-Z_:][a-zA-Z0-9_:]*`, so dots (and any other illegal byte)
//! become underscores. The schema is intentionally boring and stable:
//! every metric gets a `# HELP` and a `# TYPE` line, histograms always
//! emit all 65 log2 buckets plus `+Inf` so scrape-to-scrape series never
//! appear or vanish with traffic, and metrics are sorted by name.
//! Counter names are exported as-is (no `_total` suffix is appended) —
//! the mapping from registry name to exported name must stay greppable.

#[cfg(test)]
use crate::metrics::HISTOGRAM_BUCKETS;
use crate::metrics::{bucket_upper_bound, counters, gauges, histograms};
use std::fmt::Write;

/// Rewrites a registry metric name into the Prometheus name charset:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. Dots become underscores; an illegal
/// leading byte gets an underscore prefix.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, b) in name.bytes().enumerate() {
        let ok = b.is_ascii_alphabetic() || b == b'_' || b == b':' || (i > 0 && b.is_ascii_digit());
        if ok {
            out.push(b as char);
        } else if i == 0 && b.is_ascii_digit() {
            out.push('_');
            out.push(b as char);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// One-line help text for well-known metric families; generic fallback
/// otherwise. Keyed on the *registry* name prefix so the table survives
/// sanitization changes.
fn help_for(name: &str) -> &'static str {
    for (prefix, help) in [
        (
            "cache.",
            "Kernel schedule cache activity (process-global cache).",
        ),
        (
            "native.",
            "Native (tier-3) backend build/cache/fallback activity.",
        ),
        ("grid.", "Sweep engine job and work-stealing activity."),
        ("pool.", "Global thread-permit pool state."),
        ("store.", "Persistent on-disk store state."),
        ("serve.", "stream-serve daemon request handling."),
        ("sched.", "Modulo scheduler search effort."),
        ("sim.", "Cycle-level simulation accounting."),
        ("tape.", "Tape interpreter execution accounting."),
    ] {
        if name.starts_with(prefix) {
            return help;
        }
    }
    "Stream workspace metric."
}

/// Renders every registered counter, gauge, and histogram in Prometheus
/// text exposition format 0.0.4. Pure read: rendering never mutates the
/// registry, and the output is deterministic for a frozen registry
/// state (sorted by metric name).
pub fn render_prometheus() -> String {
    let mut out = String::new();
    for (name, value) in counters() {
        let n = sanitize(name);
        let _ = writeln!(out, "# HELP {n} {}", help_for(name));
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in gauges() {
        let n = sanitize(name);
        let _ = writeln!(out, "# HELP {n} {}", help_for(name));
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, snap) in histograms() {
        let n = sanitize(name);
        let _ = writeln!(out, "# HELP {n} {}", help_for(name));
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for (idx, &c) in snap.buckets.iter().enumerate() {
            cumulative += c;
            let _ = writeln!(
                out,
                "{n}_bucket{{le=\"{}\"}} {cumulative}",
                bucket_upper_bound(idx)
            );
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{n}_sum {}", snap.sum);
        let _ = writeln!(out, "{n}_count {cumulative}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn sanitize_rewrites_to_prometheus_charset() {
        assert_eq!(sanitize("cache.disk_hit"), "cache_disk_hit");
        assert_eq!(sanitize("serve.latency.v1/run"), "serve_latency_v1_run");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn exposition_covers_all_metric_kinds() {
        let _g = test_lock::hold();
        crate::enable();
        crate::count("prom.test.counter", 2);
        crate::record("prom.test.hist", 5);
        crate::disable();
        crate::set_gauge("prom.test.gauge", 11);
        let text = render_prometheus();
        assert!(text.contains("# TYPE prom_test_counter counter"));
        assert!(text.contains("prom_test_counter 2"));
        assert!(text.contains("# TYPE prom_test_gauge gauge"));
        assert!(text.contains("prom_test_gauge 11"));
        assert!(text.contains("# TYPE prom_test_hist histogram"));
        // All 65 buckets plus +Inf, cumulative, ending at the count.
        let buckets: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("prom_test_hist_bucket"))
            .collect();
        assert_eq!(buckets.len(), HISTOGRAM_BUCKETS + 1);
        assert!(text.contains("prom_test_hist_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains(&format!("prom_test_hist_bucket{{le=\"{}\"}} 1", u64::MAX)));
        assert!(text.contains("prom_test_hist_sum 5"));
        assert!(text.contains("prom_test_hist_count 1"));
        // 5 lands in bucket 3 ([4,8), le="7"): everything below is 0.
        assert!(text.contains("prom_test_hist_bucket{le=\"3\"} 0"));
        assert!(text.contains("prom_test_hist_bucket{le=\"7\"} 1"));
        // Every HELP line has a TYPE line and the names are legal.
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap();
                assert!(name
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':'));
                assert!(!name.as_bytes()[0].is_ascii_digit());
            }
        }
    }
}
