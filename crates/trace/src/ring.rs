//! The flight recorder: a bounded per-thread ring of recent span/instant
//! events that stays on even when full tracing is off, so a crashed or
//! wedged run leaves a loadable post-mortem.
//!
//! # Design
//!
//! Each thread owns an [`Arc`]-shared ring holding the last
//! [`set_flight_capacity`] events it produced; old events are overwritten,
//! never flushed, and memory is bounded at `capacity × threads`. The
//! global registry keeps a clone of every ring's `Arc` — including rings
//! of threads that have already exited — so a post-mortem dump sees the
//! whole process, not just the panicking thread.
//!
//! The hot path is the same discipline as the rest of the crate: when the
//! recorder (and tracing) is off, a span site pays one relaxed atomic
//! load and nothing else. When the recorder is on, a finished span takes
//! its own thread's ring mutex — uncontended in steady state, since only
//! a dump reads other threads' rings — via `try_lock`, *dropping the
//! event* rather than blocking if a dump happens to hold the lock. The
//! recorder prefers losing one event to ever stalling a worker.
//!
//! Dumps ([`dump_flight_recorder`], or the panic hook installed by
//! [`install_panic_dump`]) merge every ring, sort by start time, and
//! write Chrome trace-event JSON loadable in Perfetto. Dumps go to a
//! file or stderr — never stdout — preserving the crate's determinism
//! contract.

use crate::span::SpanEvent;
use crate::{set_state_bit, state, STATE_FLIGHT};
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock, PoisonError};

/// Default per-thread ring capacity (events retained per thread).
const DEFAULT_CAPACITY: usize = 256;

/// Rings of exited threads retained for post-mortem. Beyond this, the
/// oldest orphaned rings are pruned at registration time so a long-lived
/// daemon spawning scoped workers per sweep doesn't grow without bound.
const MAX_ORPHANED_RINGS: usize = 64;

/// Per-thread ring capacity; applies to rings created after the change.
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

/// One thread's bounded event ring. Shared between the owning thread's
/// TLS slot and the global registry so events survive thread exit.
struct ThreadRing {
    events: Mutex<VecDeque<SpanEvent>>,
    capacity: usize,
}

fn rings() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static RING: Arc<ThreadRing> = {
        let ring = Arc::new(ThreadRing {
            events: Mutex::new(VecDeque::new()),
            capacity: CAPACITY.load(Ordering::Relaxed).max(1),
        });
        let mut all = rings().lock().unwrap_or_else(PoisonError::into_inner);
        // Keep only the newest MAX_ORPHANED_RINGS rings whose owning
        // thread has exited (registry Arc is the sole holder); live
        // threads' rings are never pruned.
        let orphaned = all.iter().filter(|r| Arc::strong_count(r) == 1).count();
        if orphaned > MAX_ORPHANED_RINGS {
            let mut to_drop = orphaned - MAX_ORPHANED_RINGS;
            all.retain(|r| {
                if to_drop > 0 && Arc::strong_count(r) == 1 {
                    to_drop -= 1;
                    false
                } else {
                    true
                }
            });
        }
        all.push(Arc::clone(&ring));
        ring
    };
}

/// Appends `event` to the calling thread's ring, evicting the oldest
/// entry when full. Never blocks: if the ring mutex is held (a dump in
/// progress) the event is dropped.
pub(crate) fn push(event: SpanEvent) {
    // `try_with`: during thread teardown the TLS slot may be gone.
    let _ = RING.try_with(|ring| {
        if let Ok(mut events) = ring.events.try_lock() {
            if events.len() >= ring.capacity {
                events.pop_front();
            }
            events.push_back(event);
        }
    });
}

/// Turns the flight recorder on process-wide: span/instant sites start
/// retaining their last events per thread even while full tracing stays
/// off. Also pins the trace epoch so ring timestamps are meaningful.
pub fn enable_flight_recorder() {
    crate::span::init_epoch();
    set_state_bit(STATE_FLIGHT, true);
}

/// Turns the flight recorder off. Already-retained events are kept until
/// the next dump or process exit.
pub fn disable_flight_recorder() {
    set_state_bit(STATE_FLIGHT, false);
}

/// Whether the flight recorder is on (one relaxed load).
pub fn flight_recorder_enabled() -> bool {
    state() & STATE_FLIGHT != 0
}

/// Sets the per-thread ring capacity for rings created **after** this
/// call (threads that already recorded keep their ring as sized).
/// Clamped to at least 1.
pub fn set_flight_capacity(events_per_thread: usize) {
    CAPACITY.store(events_per_thread.max(1), Ordering::Relaxed);
}

/// A merged snapshot of every thread's ring (including exited threads),
/// sorted by start time. Does not drain the rings — a dump is a read,
/// so a wedged process can be dumped repeatedly.
pub fn flight_events() -> Vec<SpanEvent> {
    let rings = rings().lock().unwrap_or_else(PoisonError::into_inner);
    let mut out = Vec::new();
    for ring in rings.iter() {
        // Plain `lock`, not `try_lock`: writers only ever `try_lock`, so
        // the dump waiting here cannot deadlock against them.
        let events = ring.events.lock().unwrap_or_else(PoisonError::into_inner);
        out.extend(events.iter().cloned());
    }
    out.sort_by_key(|e| (e.start_us, e.tid));
    out
}

/// Writes the flight recorder's current contents as Chrome trace-event
/// JSON to `path` (Perfetto-loadable). Returns the number of events
/// dumped.
///
/// # Errors
///
/// Propagates file creation/write failures.
pub fn dump_flight_recorder(path: &Path) -> std::io::Result<usize> {
    let events = flight_events();
    let json = crate::chrome::chrome_trace_json(&events);
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    f.sync_all()?;
    Ok(events.len())
}

static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Installs (once) a panic hook that dumps the flight recorder to `path`
/// before delegating to the previous hook. Calling again just retargets
/// the dump path. The dump itself writes only to the file and stderr.
pub fn install_panic_dump(path: &Path) {
    *DUMP_PATH.lock().unwrap_or_else(PoisonError::into_inner) = Some(path.to_path_buf());
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let path = DUMP_PATH
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone();
            if let Some(path) = path {
                match dump_flight_recorder(&path) {
                    Ok(n) => eprintln!(
                        "stream-trace: flight recorder dumped {n} event(s) to {}",
                        path.display()
                    ),
                    Err(e) => eprintln!(
                        "stream-trace: flight recorder dump to {} failed: {e}",
                        path.display()
                    ),
                }
            }
            prev(info);
        }));
    });
}

/// Standard binary wiring for the flight recorder, driven by environment
/// variables so operators can flip it without a rebuild:
///
/// - `STREAM_FLIGHT_RECORDER`: `off`/`0`/`false` disables it; anything
///   else (including unset) enables it — the recorder is **on by
///   default** in binaries that call this, which is the point of a
///   flight recorder.
/// - `STREAM_FLIGHT_DUMP`: when set, installs the panic hook dumping to
///   this path.
///
/// Library code and tests never call this, so the recorder stays off by
/// default under `cargo test`.
pub fn init_flight_from_env() {
    let on = !matches!(
        std::env::var("STREAM_FLIGHT_RECORDER").as_deref(),
        Ok("off") | Ok("0") | Ok("false")
    );
    if on {
        enable_flight_recorder();
        if let Ok(path) = std::env::var("STREAM_FLIGHT_DUMP") {
            if !path.is_empty() {
                install_panic_dump(Path::new(&path));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn recorder_retains_spans_while_tracing_is_off() {
        let _g = test_lock::hold();
        crate::disable();
        enable_flight_recorder();
        {
            let mut s = crate::span("flight", "ring-only");
            s.arg("k", 7);
        }
        crate::instant("flight", "ring-instant");
        disable_flight_recorder();
        // Nothing reached the trace collector…
        assert!(crate::take_events()
            .iter()
            .all(|e| e.name != "ring-only" && e.name != "ring-instant"));
        // …but the ring has both.
        let events = flight_events();
        assert!(events
            .iter()
            .any(|e| e.name == "ring-only" && e.args.contains(&(("k"), "7".to_string()))));
        assert!(events.iter().any(|e| e.name == "ring-instant"));
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let _g = test_lock::hold();
        crate::disable();
        enable_flight_recorder();
        // Fill from a dedicated thread so its fresh ring gets the small
        // capacity and no other test's events share it.
        set_flight_capacity(8);
        let handle = std::thread::spawn(|| {
            for i in 0..100 {
                let mut s = crate::span("flight", "bounded");
                s.arg("i", i);
            }
        });
        handle.join().unwrap();
        set_flight_capacity(DEFAULT_CAPACITY);
        disable_flight_recorder();
        let kept: Vec<_> = flight_events()
            .into_iter()
            .filter(|e| e.name == "bounded")
            .collect();
        assert_eq!(kept.len(), 8, "ring kept exactly its capacity");
        // The survivors are the most recent 92..=99.
        assert!(kept.iter().all(|e| e
            .args
            .iter()
            .any(|(k, v)| *k == "i" && v.parse::<u32>().unwrap() >= 92)));
    }

    #[test]
    fn both_consumers_get_the_event_when_both_are_on() {
        let _g = test_lock::hold();
        crate::enable();
        enable_flight_recorder();
        let _ = crate::take_events();
        {
            let _s = crate::span("flight", "dual");
        }
        disable_flight_recorder();
        crate::disable();
        assert!(crate::take_events().iter().any(|e| e.name == "dual"));
        assert!(flight_events().iter().any(|e| e.name == "dual"));
    }

    #[test]
    fn dump_writes_loadable_chrome_json() {
        let _g = test_lock::hold();
        crate::disable();
        enable_flight_recorder();
        {
            let _s = crate::span("flight", "dumped");
        }
        disable_flight_recorder();
        let dir = std::env::temp_dir().join(format!("flight-dump-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.json");
        let n = dump_flight_recorder(&path).expect("dump writes");
        assert!(n >= 1);
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"dumped\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn request_scope_annotates_spans_and_restores() {
        let _g = test_lock::hold();
        crate::disable();
        enable_flight_recorder();
        {
            let _outer = crate::request_scope(Some(41));
            {
                let _inner = crate::request_scope(Some(42));
                assert_eq!(crate::request_id(), Some(42));
                let _s = crate::span("flight", "req-tagged");
            }
            assert_eq!(crate::request_id(), Some(41));
        }
        assert_eq!(crate::request_id(), None);
        disable_flight_recorder();
        let events = flight_events();
        let tagged = events
            .iter()
            .find(|e| e.name == "req-tagged")
            .expect("span retained");
        assert!(tagged.args.contains(&("req", "42".to_string())));
    }
}
