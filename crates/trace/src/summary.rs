//! Human-readable summary exporter: aggregates spans by category/name and
//! appends every registered counter and histogram. Output is meant for
//! stderr or a log file — never stdout, per the determinism contract.

use crate::span::{Phase, SpanEvent};
use crate::{counters, histograms};
use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_us: u64,
    max_us: u64,
}

/// Renders `events` plus the global metrics registry as an aligned text
/// table: one row per `(category, name)` span aggregate (count, total µs,
/// max µs), then counters, then histogram stats (count / mean / p99 bound).
pub fn summary(events: &[SpanEvent]) -> String {
    let mut spans: BTreeMap<(&'static str, &str), SpanAgg> = BTreeMap::new();
    let mut instants: BTreeMap<(&'static str, &str), u64> = BTreeMap::new();
    for e in events {
        match e.ph {
            Phase::Complete => {
                let agg = spans.entry((e.cat, e.name.as_str())).or_default();
                agg.count += 1;
                agg.total_us += e.dur_us;
                agg.max_us = agg.max_us.max(e.dur_us);
            }
            Phase::Instant => {
                *instants.entry((e.cat, e.name.as_str())).or_default() += 1;
            }
        }
    }

    let mut out = String::new();
    out.push_str("== trace summary ==\n");

    if !spans.is_empty() {
        out.push_str("spans (cat/name: count, total us, max us)\n");
        let width = spans
            .keys()
            .map(|(c, n)| c.len() + n.len() + 1)
            .max()
            .unwrap_or(0);
        for ((cat, name), agg) in &spans {
            let label = format!("{cat}/{name}");
            let _ = writeln!(
                out,
                "  {label:<width$}  {:>8}  {:>10}  {:>10}",
                agg.count, agg.total_us, agg.max_us
            );
        }
    }

    if !instants.is_empty() {
        out.push_str("instants (cat/name: count)\n");
        for ((cat, name), n) in &instants {
            let _ = writeln!(out, "  {cat}/{name}  {n}");
        }
    }

    let counter_rows = counters();
    if !counter_rows.is_empty() {
        out.push_str("counters\n");
        let width = counter_rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &counter_rows {
            let _ = writeln!(out, "  {name:<width$}  {value:>12}");
        }
    }

    let hist_rows = histograms();
    if !hist_rows.is_empty() {
        out.push_str("histograms (count, mean, p99 bound)\n");
        let width = hist_rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, snap) in &hist_rows {
            let _ = writeln!(
                out,
                "  {name:<width$}  {:>8}  {:>12.2}  {:>10}",
                snap.count(),
                snap.mean(),
                snap.quantile_bound(0.99)
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn summary_aggregates_spans_and_lists_metrics() {
        let _g = test_lock::hold();
        crate::enable();
        let _ = crate::take_events();
        for _ in 0..3 {
            let _s = crate::span("sum-test", "job");
        }
        crate::instant("sum-test", "tick");
        crate::count("summary.test.counter", 2);
        crate::record("summary.test.hist", 100);
        crate::disable();
        let events = crate::take_events();
        let text = summary(&events);
        assert!(text.contains("== trace summary =="), "{text}");
        assert!(text.contains("sum-test/job"), "{text}");
        assert!(text.contains("sum-test/tick"), "{text}");
        assert!(text.contains("summary.test.counter"), "{text}");
        assert!(text.contains("summary.test.hist"), "{text}");
        // The span row reports count 3.
        let row = text
            .lines()
            .find(|l| l.contains("sum-test/job"))
            .expect("span row");
        assert!(row.split_whitespace().any(|w| w == "3"), "{row}");
    }

    #[test]
    fn empty_summary_is_just_the_header() {
        let text = summary(&[]);
        assert!(text.starts_with("== trace summary =="));
    }
}
