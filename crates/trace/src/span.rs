//! Spans and structured instant events, buffered per thread.
//!
//! A [`Span`] is an RAII guard: created by [`span`], finished on drop. The
//! finished event goes into a **thread-local** buffer; the buffer drains
//! into the process-global collector when it reaches [`FLUSH_AT`] events,
//! when the thread exits (TLS destructor), or when [`flush_thread`] /
//! [`take_events`] run. Worker threads therefore touch the collector mutex
//! once per batch, not once per span.
//!
//! While tracing is disabled, [`span`] returns an inert guard without
//! reading the clock or allocating, and drop does nothing.

use crate::{state, STATE_FLIGHT, STATE_TRACE};
use std::cell::{Cell, RefCell};
use std::fmt::Display;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Thread-local buffer capacity before a flush to the global collector.
const FLUSH_AT: usize = 256;

/// Chrome trace-event phase of a [`SpanEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete span (`"ph": "X"`): start + duration.
    Complete,
    /// An instant event (`"ph": "i"`): a point in time.
    Instant,
}

/// One finished span or instant event.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Category (the instrumented layer: `"sched"`, `"tape"`, `"grid"`,
    /// `"sim"`, ...).
    pub cat: &'static str,
    /// Event name.
    pub name: String,
    /// Chrome phase.
    pub ph: Phase,
    /// Microseconds since the trace epoch.
    pub start_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Small dense thread id (assigned per thread at first use).
    pub tid: u64,
    /// Key/value annotations.
    pub args: Vec<(&'static str, String)>,
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

pub(crate) fn init_epoch() {
    let _ = EPOCH.get_or_init(Instant::now);
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn collector() -> &'static Mutex<Vec<SpanEvent>> {
    static COLLECTOR: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

fn next_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

struct LocalBuf {
    tid: u64,
    events: Vec<SpanEvent>,
}

impl LocalBuf {
    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        collector()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .append(&mut self.events);
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUF: RefCell<LocalBuf> = RefCell::new(LocalBuf {
        tid: next_tid(),
        events: Vec::new(),
    });
}

/// Routes a finished event to the consumers named in `to` (a [`state`]
/// byte captured when the event began): the trace collector, the flight
/// ring, or both. The event is built at most once; when both consumers
/// want it, the flight ring takes a clone.
fn push_event(to: u8, make: impl FnOnce(u64) -> SpanEvent) {
    // During thread teardown the TLS slot may already be gone; drop the
    // event rather than panic (`try_with`).
    let _ = BUF.try_with(move |buf| {
        let mut buf = buf.borrow_mut();
        let tid = buf.tid;
        let event = make(tid);
        if to & STATE_FLIGHT != 0 {
            if to & STATE_TRACE != 0 {
                crate::ring::push(event.clone());
            } else {
                crate::ring::push(event);
                return;
            }
        }
        buf.events.push(event);
        if buf.events.len() >= FLUSH_AT {
            buf.flush();
        }
    });
}

thread_local! {
    /// The request id correlated with work on this thread, if any.
    static REQUEST: Cell<Option<u64>> = const { Cell::new(None) };
}

/// The request id currently correlated with this thread (set by
/// [`request_scope`]), if any. Engines that spawn worker threads read
/// this on the caller and re-establish it on each worker so spans keep
/// their `req` attribute across the fan-out.
pub fn request_id() -> Option<u64> {
    REQUEST.with(|r| r.get())
}

/// Correlates the current thread with request `id` for the guard's
/// lifetime: every span opened while the guard lives carries a
/// `req=<id>` annotation. Passing `None` clears the correlation (useful
/// for background work inside a request). Scopes nest — the previous id
/// is restored on drop.
pub fn request_scope(id: Option<u64>) -> RequestScope {
    let prev = REQUEST.with(|r| r.replace(id));
    RequestScope { prev }
}

/// RAII guard from [`request_scope`]; restores the previous request id
/// on drop.
#[derive(Debug)]
pub struct RequestScope {
    prev: Option<u64>,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        REQUEST.with(|r| r.set(self.prev));
    }
}

/// An RAII span guard: finishes (and records) the span when dropped. Inert
/// — a no-op holding no clock reading — when tracing was disabled at
/// creation.
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct Span(Option<ActiveSpan>);

#[derive(Debug)]
struct ActiveSpan {
    cat: &'static str,
    name: String,
    start: Instant,
    args: Vec<(&'static str, String)>,
    /// The [`state`] byte captured at creation: which consumers (trace
    /// collector, flight ring) get the finished event.
    to: u8,
}

impl Span {
    /// An inert span (what [`span`] returns while tracing is off).
    pub fn inert() -> Self {
        Span(None)
    }

    /// Whether this span is actually recording.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Attaches a key/value annotation; no-op (and `value` is never
    /// formatted) on an inert span.
    pub fn arg(&mut self, key: &'static str, value: impl Display) {
        if let Some(s) = &mut self.0 {
            s.args.push((key, value.to_string()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            let start_us = s.start.duration_since(epoch()).as_micros() as u64;
            let dur_us = s.start.elapsed().as_micros() as u64;
            push_event(s.to, move |tid| SpanEvent {
                cat: s.cat,
                name: s.name,
                ph: Phase::Complete,
                start_us,
                dur_us,
                tid,
                args: s.args,
            });
        }
    }
}

/// Opens a span in category `cat` named `name`. Returns an inert guard
/// (no clock read, no allocation) while both tracing and the flight
/// recorder are off. Active spans carry the thread's request id (see
/// [`request_scope`]) as a `req` annotation.
pub fn span(cat: &'static str, name: &str) -> Span {
    let to = state();
    if to == 0 {
        return Span(None);
    }
    let mut args = Vec::new();
    if let Some(id) = request_id() {
        args.push(("req", id.to_string()));
    }
    Span(Some(ActiveSpan {
        cat,
        name: name.to_owned(),
        start: Instant::now(),
        args,
        to,
    }))
}

/// Records a structured instant event (a point in time, no duration).
pub fn instant(cat: &'static str, name: &str) {
    let to = state();
    if to == 0 {
        return;
    }
    let start_us = Instant::now().duration_since(epoch()).as_micros() as u64;
    let name = name.to_owned();
    let mut args = Vec::new();
    if let Some(id) = request_id() {
        args.push(("req", id.to_string()));
    }
    push_event(to, move |tid| SpanEvent {
        cat,
        name,
        ph: Phase::Instant,
        start_us,
        dur_us: 0,
        tid,
        args,
    });
}

/// Flushes the calling thread's span buffer into the global collector.
pub fn flush_thread() {
    let _ = BUF.try_with(|buf| buf.borrow_mut().flush());
}

/// Drains every collected event (flushing the calling thread's buffer
/// first). Buffers of other still-live threads flush on their own cadence.
/// A worker's exit flush is only guaranteed visible after an **explicit**
/// `join()` of its handle: `thread::scope`'s implicit join waits for the
/// closure, not for TLS destructors. `stream-grid` joins every worker
/// handle, so sweep spans are always collected by the time a sweep
/// returns.
pub fn take_events() -> Vec<SpanEvent> {
    flush_thread();
    std::mem::take(&mut *collector().lock().unwrap_or_else(PoisonError::into_inner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn spans_record_duration_and_args() {
        let _g = test_lock::hold();
        crate::enable();
        let _ = take_events();
        {
            let mut s = span("test", "outer");
            s.arg("k", "v");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        instant("test", "tick");
        crate::disable();
        let events = take_events();
        let outer = events
            .iter()
            .find(|e| e.name == "outer")
            .expect("span recorded");
        assert_eq!(outer.cat, "test");
        assert_eq!(outer.ph, Phase::Complete);
        assert!(outer.dur_us >= 1_000, "dur {}", outer.dur_us);
        assert_eq!(outer.args, vec![("k", "v".to_string())]);
        assert!(events
            .iter()
            .any(|e| e.name == "tick" && e.ph == Phase::Instant));
    }

    #[test]
    fn worker_thread_buffers_flush_on_exit() {
        let _g = test_lock::hold();
        crate::enable();
        let _ = take_events();
        std::thread::scope(|s| {
            // Explicit joins: the scope's implicit join waits only for the
            // closures, not for the TLS destructors that flush the buffers.
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    s.spawn(move || {
                        let mut sp = span("test", "worker");
                        sp.arg("i", i);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker panicked");
            }
        });
        crate::disable();
        let events = take_events();
        assert_eq!(events.iter().filter(|e| e.name == "worker").count(), 3);
        // Distinct threads got distinct tids.
        let mut tids: Vec<u64> = events
            .iter()
            .filter(|e| e.name == "worker")
            .map(|e| e.tid)
            .collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3);
    }

    #[test]
    fn inert_span_is_silent() {
        let _g = test_lock::hold();
        crate::disable();
        let _ = take_events();
        {
            let mut s = Span::inert();
            assert!(!s.is_active());
            s.arg("ignored", 1);
        }
        assert!(take_events().is_empty());
    }
}
