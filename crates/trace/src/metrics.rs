//! Typed metrics: monotonic `u64` counters and log2-bucket histograms,
//! usable either standalone (owned by a consumer, always counting — e.g.
//! the kernel cache's per-instance hit/miss counters) or through the
//! process-global **registry** (gated on the trace flag, exported by the
//! summary and Chrome writers).

use crate::enabled;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// A monotonic `u64` counter. Cheap (`Relaxed` fetch-add) and shareable;
/// standalone counters always count — gating on the trace flag is the
/// registry helpers' job ([`count`]), not the counter's.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and re-runs).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: one for zero plus one per power of two up
/// to `u64::MAX`.
const BUCKETS: usize = 65;

/// A log2-bucket histogram: bucket 0 holds zeros, bucket `k` holds values
/// in `[2^(k-1), 2^k)`. Lossy but allocation-free, lock-free, and wide
/// enough for anything from backtrack counts to cycle totals.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Resets every bucket (tests and re-runs).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A frozen [`Histogram`] reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation counts per log2 bucket (`buckets[0]` = zeros,
    /// `buckets[k]` = values in `[2^(k-1), 2^k)`).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Upper bound of the bucket holding quantile `q` (e.g. 0.5, 0.99):
    /// a conservative percentile estimate from the log2 distribution.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if idx == 0 { 0 } else { (1u64 << idx) - 1 };
            }
        }
        u64::MAX
    }
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

/// The process-global counter named `name`, registered on first use.
/// Entries are interned for the process lifetime (names are `'static` and
/// the set of instrumentation sites is finite).
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = registry()
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// The process-global histogram named `name`, registered on first use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut map = registry()
        .histograms
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// Adds `n` to the registry counter `name` — if tracing is enabled,
/// otherwise a no-op after one relaxed flag load.
#[inline]
pub fn count(name: &'static str, n: u64) {
    if enabled() && n > 0 {
        counter(name).add(n);
    }
}

/// Records `value` into the registry histogram `name` — if tracing is
/// enabled, otherwise a no-op after one relaxed flag load.
#[inline]
pub fn record(name: &'static str, value: u64) {
    if enabled() {
        histogram(name).record(value);
    }
}

/// Snapshot of every registered counter, sorted by name.
pub fn counters() -> Vec<(&'static str, u64)> {
    registry()
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(&name, c)| (name, c.get()))
        .collect()
}

/// Snapshot of every registered histogram, sorted by name.
pub fn histograms() -> Vec<(&'static str, HistogramSnapshot)> {
    registry()
        .histograms
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(&name, h)| (name, h.snapshot()))
        .collect()
}

/// Zeroes every registered counter and histogram (the registry itself is
/// kept — handles stay valid).
pub fn reset_metrics() {
    for (_, c) in registry()
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
    {
        c.reset();
    }
    for (_, h) in registry()
        .histograms
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
    {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn standalone_counter_counts_without_tracing() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1023, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 7);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[3], 1); // 4
        assert_eq!(s.buckets[10], 1); // 1023 in [512, 1024)
        assert_eq!(s.buckets[11], 1); // 1024 in [1024, 2048)
        assert_eq!(s.sum, 2057);
        assert!((s.mean() - 2057.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_bound_is_monotone_and_conservative() {
        let h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile_bound(0.5);
        let p99 = s.quantile_bound(0.99);
        assert!(p50 >= 49, "p50 bound {p50} below true median");
        assert!(p99 >= p50);
        assert!(p99 <= 127, "p99 bound {p99} beyond max bucket for <100");
        assert_eq!(HistogramSnapshot::default_empty().quantile_bound(0.5), 0);
    }

    impl HistogramSnapshot {
        fn default_empty() -> Self {
            Histogram::new().snapshot()
        }
    }

    #[test]
    fn registry_interns_and_gates_on_the_flag() {
        let _g = test_lock::hold();
        crate::disable();
        count("metrics.test.gated", 7);
        assert_eq!(
            counters()
                .iter()
                .find(|(n, _)| *n == "metrics.test.gated")
                .map(|&(_, v)| v),
            None
        );
        crate::enable();
        count("metrics.test.gated", 7);
        record("metrics.test.hist", 8);
        crate::disable();
        let c = counters();
        assert!(c.contains(&("metrics.test.gated", 7)));
        let h = histograms();
        let (_, snap) = h
            .iter()
            .find(|(n, _)| *n == "metrics.test.hist")
            .expect("registered");
        assert_eq!(snap.count(), 1);
        // Same name returns the same interned counter.
        assert!(std::ptr::eq(
            counter("metrics.test.gated"),
            counter("metrics.test.gated")
        ));
        reset_metrics();
        assert_eq!(counter("metrics.test.gated").get(), 0);
    }
}
