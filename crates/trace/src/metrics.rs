//! Typed metrics: monotonic `u64` counters, gauges, and log2-bucket
//! histograms, usable either standalone (owned by a consumer, always
//! counting — e.g. the kernel cache's per-instance hit/miss counters) or
//! through the process-global **registry** (exported by the summary,
//! Chrome, and Prometheus writers).
//!
//! The registry has two tiers. The *gated* tier is what [`count`] /
//! [`record`] feed: no-ops while tracing is off. The *always-on* tier is
//! entered via [`register_counter`]: a consumer that owns an always-exact
//! standalone [`Counter`] (the kernel cache, the native tier) registers
//! that same counter under its metric name, making the registry the
//! single source of truth without any mirror writes on the hot path.

use crate::enabled;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// A monotonic `u64` counter. Cheap (`Relaxed` fetch-add) and shareable;
/// standalone counters always count — gating on the trace flag is the
/// registry helpers' job ([`count`]), not the counter's.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and re-runs).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-written-wins `u64` gauge for sampled state (pool occupancy,
/// resident cells, disk bytes). Like [`Counter`], standalone gauges
/// always record; the registry helpers decide policy.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Sets the current value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per power of two up
/// to `u64::MAX`.
const BUCKETS: usize = 65;

/// Number of histogram buckets, public for exporters and tests: bucket 0
/// holds zeros, bucket `k` (1..=64) holds values in `[2^(k-1), 2^k)`,
/// with bucket 64's upper edge saturating at `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = BUCKETS;

/// Inclusive upper bound of log2 bucket `idx`: 0 for bucket 0,
/// `2^idx - 1` for buckets 1..=63, and `u64::MAX` for bucket 64 (whose
/// nominal edge `2^64 - 1` is exactly `u64::MAX`). Every `u64` — 0 and
/// `u64::MAX` included — lands in a bucket with a defined bound.
pub fn bucket_upper_bound(idx: usize) -> u64 {
    assert!(idx < BUCKETS, "bucket index {idx} out of range");
    match idx {
        0 => 0,
        64 => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

/// A log2-bucket histogram: bucket 0 holds zeros, bucket `k` holds values
/// in `[2^(k-1), 2^k)`. Lossy but allocation-free, lock-free, and wide
/// enough for anything from backtrack counts to cycle totals.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation. Any `u64` lands in a defined bucket:
    /// 0 in bucket 0, `u64::MAX` in bucket 64. The running sum saturates
    /// at `u64::MAX` instead of wrapping, so extreme observations leave
    /// the mean pessimistic rather than nonsensical.
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(value);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Resets every bucket (tests and re-runs).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A frozen [`Histogram`] reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation counts per log2 bucket (`buckets[0]` = zeros,
    /// `buckets[k]` = values in `[2^(k-1), 2^k)`).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Upper bound of the bucket holding quantile `q` (e.g. 0.5, 0.99):
    /// a conservative percentile estimate from the log2 distribution.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Bucket 64's bound is u64::MAX, not `(1 << 64) - 1`,
                // which would overflow the shift.
                return bucket_upper_bound(idx);
            }
        }
        u64::MAX
    }
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

/// The process-global counter named `name`, registered on first use.
/// Entries are interned for the process lifetime (names are `'static` and
/// the set of instrumentation sites is finite).
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = registry()
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// Registers an externally-owned counter under `name` in the always-on
/// tier: the owner keeps bumping its own `Counter` unconditionally (no
/// trace-flag gate, no mirror writes), and every exporter reads the very
/// same cells through the registry. Returns `false` (keeping the
/// existing entry) if `name` is already registered — registration is
/// first-wins, so process-global singletons register exactly once.
pub fn register_counter(name: &'static str, counter: &'static Counter) -> bool {
    let mut map = registry()
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if map.contains_key(name) {
        return false;
    }
    map.insert(name, counter);
    true
}

/// The process-global gauge named `name`, registered on first use.
/// Gauges sample current state (occupancy, bytes, residency), so they
/// are always-on: reading state to publish it costs nothing on any hot
/// path.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut map = registry()
        .gauges
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// Sets the registry gauge `name` to `value` (always-on; see [`gauge`]).
pub fn set_gauge(name: &'static str, value: u64) {
    gauge(name).set(value);
}

/// The process-global histogram named `name`, registered on first use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut map = registry()
        .histograms
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// Adds `n` to the registry counter `name` — if tracing is enabled,
/// otherwise a no-op after one relaxed flag load.
#[inline]
pub fn count(name: &'static str, n: u64) {
    if enabled() && n > 0 {
        counter(name).add(n);
    }
}

/// Records `value` into the registry histogram `name` — if tracing is
/// enabled, otherwise a no-op after one relaxed flag load.
#[inline]
pub fn record(name: &'static str, value: u64) {
    if enabled() {
        histogram(name).record(value);
    }
}

/// Snapshot of every registered counter, sorted by name.
pub fn counters() -> Vec<(&'static str, u64)> {
    registry()
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(&name, c)| (name, c.get()))
        .collect()
}

/// Snapshot of every registered gauge, sorted by name.
pub fn gauges() -> Vec<(&'static str, u64)> {
    registry()
        .gauges
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(&name, g)| (name, g.get()))
        .collect()
}

/// Snapshot of every registered histogram, sorted by name.
pub fn histograms() -> Vec<(&'static str, HistogramSnapshot)> {
    registry()
        .histograms
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(&name, h)| (name, h.snapshot()))
        .collect()
}

/// Zeroes every registered counter and histogram (the registry itself is
/// kept — handles stay valid).
pub fn reset_metrics() {
    for (_, c) in registry()
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
    {
        c.reset();
    }
    for (_, h) in registry()
        .histograms
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
    {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn standalone_counter_counts_without_tracing() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1023, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 7);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[3], 1); // 4
        assert_eq!(s.buckets[10], 1); // 1023 in [512, 1024)
        assert_eq!(s.buckets[11], 1); // 1024 in [1024, 2048)
        assert_eq!(s.sum, 2057);
        assert!((s.mean() - 2057.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_bound_is_monotone_and_conservative() {
        let h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile_bound(0.5);
        let p99 = s.quantile_bound(0.99);
        assert!(p50 >= 49, "p50 bound {p50} below true median");
        assert!(p99 >= p50);
        assert!(p99 <= 127, "p99 bound {p99} beyond max bucket for <100");
        assert_eq!(HistogramSnapshot::default_empty().quantile_bound(0.5), 0);
    }

    impl HistogramSnapshot {
        fn default_empty() -> Self {
            Histogram::new().snapshot()
        }
    }

    #[test]
    fn extremes_land_in_defined_buckets() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1, "0 lands in bucket 0");
        assert_eq!(s.buckets[64], 1, "u64::MAX lands in bucket 64");
        assert_eq!(s.count(), 2);
        // Both quantile extremes resolve without shift overflow.
        assert_eq!(s.quantile_bound(0.0), 0);
        assert_eq!(s.quantile_bound(1.0), u64::MAX);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(17);
        let s = h.snapshot();
        assert_eq!(s.sum, u64::MAX, "sum pins at u64::MAX");
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn all_65_bucket_boundaries_are_pinned() {
        // Bucket 0 is exactly {0}; bucket k (1..=64) is [2^(k-1), 2^k),
        // with bucket 64 closed at u64::MAX. Check every boundary from
        // both sides: the first value in each bucket and the last.
        let h = Histogram::new();
        h.record(0);
        for k in 1..=64usize {
            let lo = 1u64 << (k - 1);
            let hi = bucket_upper_bound(k);
            h.record(lo);
            h.record(hi);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        for k in 1..=64usize {
            // Two recorded values per bucket (for bucket 1, {1}, the same
            // value twice): both edges land in bucket k and nowhere else.
            assert_eq!(s.buckets[k], 2, "bucket {k} holds its own edges");
        }
        // And the bounds themselves are the documented closed-form.
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(63), (1u64 << 63) - 1);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        for k in 1..64usize {
            assert!(bucket_upper_bound(k) < bucket_upper_bound(k + 1));
        }
        assert_eq!(HISTOGRAM_BUCKETS, 65);
    }

    #[test]
    fn registered_counters_are_always_on_and_first_wins() {
        let _g = test_lock::hold();
        crate::disable();
        static OWNED: Counter = Counter::new();
        assert!(register_counter("metrics.test.registered", &OWNED));
        // Second registration under the same name keeps the first.
        static OTHER: Counter = Counter::new();
        assert!(!register_counter("metrics.test.registered", &OTHER));
        OWNED.add(3); // owner bumps directly, tracing still off
        let c = counters();
        assert!(
            c.contains(&("metrics.test.registered", 3)),
            "registered counter visible while tracing is off: {c:?}"
        );
        assert!(std::ptr::eq(counter("metrics.test.registered"), &OWNED));
    }

    #[test]
    fn gauges_are_always_on_last_write_wins() {
        let _g = test_lock::hold();
        crate::disable();
        set_gauge("metrics.test.gauge", 9);
        set_gauge("metrics.test.gauge", 4);
        assert!(gauges().contains(&("metrics.test.gauge", 4)));
        assert_eq!(gauge("metrics.test.gauge").get(), 4);
    }

    #[test]
    fn registry_interns_and_gates_on_the_flag() {
        let _g = test_lock::hold();
        crate::disable();
        count("metrics.test.gated", 7);
        assert_eq!(
            counters()
                .iter()
                .find(|(n, _)| *n == "metrics.test.gated")
                .map(|&(_, v)| v),
            None
        );
        crate::enable();
        count("metrics.test.gated", 7);
        record("metrics.test.hist", 8);
        crate::disable();
        let c = counters();
        assert!(c.contains(&("metrics.test.gated", 7)));
        let h = histograms();
        let (_, snap) = h
            .iter()
            .find(|(n, _)| *n == "metrics.test.hist")
            .expect("registered");
        assert_eq!(snap.count(), 1);
        // Same name returns the same interned counter.
        assert!(std::ptr::eq(
            counter("metrics.test.gated"),
            counter("metrics.test.gated")
        ));
        reset_metrics();
        assert_eq!(counter("metrics.test.gated").get(), 0);
    }
}
