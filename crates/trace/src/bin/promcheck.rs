//! `promcheck`: offline validator for Prometheus text exposition, used
//! by CI to check `GET /metrics` output without a real Prometheus.
//!
//! Usage: `promcheck [--require PREFIX]... [FILE]` — reads `FILE` (or
//! stdin when absent), exits 0 when the exposition is well-formed and
//! every `--require` prefix matches at least one sample family, exits 1
//! with one diagnostic per violation otherwise.
//!
//! Checks, per format version 0.0.4:
//! - every non-comment line parses as `name[{labels}] value`;
//! - metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`;
//! - every sample family has a `# TYPE` line, appearing before samples;
//! - `# TYPE` kinds are `counter`, `gauge`, or `histogram`;
//! - histogram `_bucket` series are cumulative (non-decreasing) in
//!   ascending `le` order, end with `le="+Inf"`, and the `+Inf` bucket
//!   equals `_count`.

use std::collections::BTreeMap;
use std::io::Read;
use std::process::ExitCode;

fn legal_name(name: &str) -> bool {
    let bytes = name.as_bytes();
    !bytes.is_empty()
        && (bytes[0].is_ascii_alphabetic() || bytes[0] == b'_' || bytes[0] == b':')
        && bytes
            .iter()
            .all(|&b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
}

/// `x_bucket`/`x_sum`/`x_count` belong to histogram family `x`; other
/// samples are their own family.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

struct Sample {
    name: String,
    le: Option<String>,
    value: f64,
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, value_part) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label set: {line:?}"))?;
            (&line[..open], line[close + 1..].trim())
        }
        None => {
            let mut it = line.splitn(2, char::is_whitespace);
            let n = it.next().unwrap_or("");
            (n, it.next().unwrap_or("").trim())
        }
    };
    let le = line.find('{').and_then(|open| {
        let close = line.rfind('}').unwrap();
        line[open + 1..close].split(',').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k.trim() == "le").then(|| v.trim().trim_matches('"').to_string())
        })
    });
    let value: f64 = value_part
        .split_whitespace()
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| format!("unparsable sample value: {line:?}"))?;
    Ok(Sample {
        name: name_part.trim().to_string(),
        le,
        value,
    })
}

fn le_key(le: &str) -> f64 {
    if le == "+Inf" {
        f64::INFINITY
    } else {
        le.parse().unwrap_or(f64::NAN)
    }
}

fn check(text: &str, require: &[String]) -> Vec<String> {
    let mut errors = Vec::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();

    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            if !legal_name(name) {
                errors.push(format!("line {ln}: illegal metric name in TYPE: {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                errors.push(format!("line {ln}: unknown TYPE kind {kind:?} for {name}"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                errors.push(format!("line {ln}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free comment
        }
        match parse_sample(line) {
            Ok(s) => {
                if !legal_name(&s.name) {
                    errors.push(format!("line {ln}: illegal metric name {:?}", s.name));
                }
                if !types.contains_key(family_of(&s.name, &types)) {
                    errors.push(format!(
                        "line {ln}: sample {} has no preceding # TYPE line",
                        s.name
                    ));
                }
                samples.push(s);
            }
            Err(e) => errors.push(format!("line {ln}: {e}")),
        }
    }

    // Histogram shape: cumulative buckets in le order, +Inf == _count.
    for (name, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == format!("{name}_bucket"))
            .collect();
        if buckets.is_empty() {
            errors.push(format!("histogram {name}: no _bucket samples"));
            continue;
        }
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_cum = -1.0f64;
        for b in &buckets {
            let Some(le) = &b.le else {
                errors.push(format!("histogram {name}: bucket without le label"));
                continue;
            };
            let k = le_key(le);
            if k.is_nan() || k <= prev_le {
                errors.push(format!(
                    "histogram {name}: le {le:?} not in ascending order"
                ));
            }
            if b.value < prev_cum {
                errors.push(format!(
                    "histogram {name}: cumulative count decreases at le={le}"
                ));
            }
            prev_le = k;
            prev_cum = b.value;
        }
        match buckets.last().and_then(|b| b.le.as_deref()) {
            Some("+Inf") => {}
            other => errors.push(format!(
                "histogram {name}: last bucket le is {other:?}, expected \"+Inf\""
            )),
        }
        let count = samples
            .iter()
            .find(|s| s.name == format!("{name}_count"))
            .map(|s| s.value);
        match count {
            None => errors.push(format!("histogram {name}: missing _count")),
            Some(c) if Some(c) != buckets.last().map(|b| b.value) => errors.push(format!(
                "histogram {name}: +Inf bucket != _count ({:?} vs {c})",
                buckets.last().map(|b| b.value)
            )),
            _ => {}
        }
        if !samples.iter().any(|s| s.name == format!("{name}_sum")) {
            errors.push(format!("histogram {name}: missing _sum"));
        }
    }

    for prefix in require {
        let hit = samples.iter().any(|s| s.name.starts_with(prefix.as_str()));
        if !hit {
            errors.push(format!("required series prefix {prefix:?} has no samples"));
        }
    }

    errors
}

fn main() -> ExitCode {
    let mut require = Vec::new();
    let mut file = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require" => match args.next() {
                Some(p) => require.push(p),
                None => {
                    eprintln!("promcheck: --require needs a prefix argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: promcheck [--require PREFIX]... [FILE]");
                return ExitCode::SUCCESS;
            }
            other => file = Some(other.to_string()),
        }
    }
    let text = match &file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("promcheck: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut t = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut t) {
                eprintln!("promcheck: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            t
        }
    };
    let errors = check(&text, &require);
    if errors.is_empty() {
        let families = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
        eprintln!("promcheck: OK ({families} metric families)");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("promcheck: {e}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_the_renderers_output() {
        stream_trace::counter("promcheck.test.hits").add(3);
        stream_trace::set_gauge("promcheck.test.free", 2);
        stream_trace::histogram("promcheck.test.lat").record(9);
        let text = stream_trace::render_prometheus();
        let errors = check(&text, &["promcheck_test_".into()]);
        assert!(errors.is_empty(), "renderer output rejected: {errors:?}");
    }

    #[test]
    fn rejects_malformed_exposition() {
        assert!(!check("no_type_line 5\n", &[]).is_empty());
        assert!(!check("# TYPE m counter\n9bad 5\n", &[]).is_empty());
        assert!(!check("# TYPE m weird\nm 5\n", &[]).is_empty());
        let shrinking = "# TYPE h histogram\n\
                         h_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\n\
                         h_bucket{le=\"+Inf\"} 2\nh_sum 4\nh_count 2\n";
        assert!(check(shrinking, &[])
            .iter()
            .any(|e| e.contains("cumulative count decreases")));
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(check(no_inf, &[]).iter().any(|e| e.contains("+Inf")));
    }

    #[test]
    fn missing_required_prefix_is_an_error() {
        let text = "# TYPE a counter\na 1\n";
        assert!(check(text, &["native_".into()])
            .iter()
            .any(|e| e.contains("native_")));
        assert!(check(text, &["a".into()]).is_empty());
    }
}
