#![warn(missing_docs)]
//! Offline observability for the stream-scaling workspace: lightweight
//! spans, monotonic counters, log2-bucket histograms, and two exporters
//! (a human-readable summary and Chrome trace-event JSON loadable in
//! `chrome://tracing` or Perfetto). Zero registry dependencies, in keeping
//! with the workspace's shim-crate policy.
//!
//! # Design
//!
//! Tracing is **off by default** and the whole layer compiles to inert
//! no-ops while it stays off: [`span`] returns an empty guard without
//! reading the clock, [`count`]/[`record`] return after one relaxed flag
//! load, and instrumented hot loops are expected to accumulate into plain
//! locals and flush **once** at scope exit (see the determinism contract in
//! `DESIGN.md` §10). Nothing here ever writes to stdout, so traced and
//! untraced runs of a deterministic program render byte-identical output.
//!
//! Finished spans land in a thread-local buffer and are aggregated into the
//! process-global collector when the buffer fills, when the thread exits,
//! or when [`take_events`] runs — so worker threads pay a mutex only once
//! per 256 spans, not once per span.
//!
//! # Example
//!
//! ```
//! stream_trace::enable();
//! {
//!     let mut s = stream_trace::span("demo", "work");
//!     s.arg("shape", "8x5");
//!     stream_trace::count("demo.items", 3);
//! } // span finishes here
//! let events = stream_trace::take_events();
//! assert!(events.iter().any(|e| e.name == "work"));
//! let json = stream_trace::chrome_trace_json(&events);
//! assert!(json.contains("\"traceEvents\""));
//! stream_trace::disable();
//! ```

mod chrome;
mod metrics;
mod prom;
mod ring;
mod span;
mod summary;

pub use chrome::chrome_trace_json;
pub use metrics::{
    bucket_upper_bound, count, counter, counters, gauge, gauges, histogram, histograms, record,
    register_counter, reset_metrics, set_gauge, Counter, Gauge, Histogram, HistogramSnapshot,
    HISTOGRAM_BUCKETS,
};
pub use prom::render_prometheus;
pub use ring::{
    disable_flight_recorder, dump_flight_recorder, enable_flight_recorder, flight_events,
    flight_recorder_enabled, init_flight_from_env, install_panic_dump, set_flight_capacity,
};
pub use span::{
    flush_thread, instant, request_id, request_scope, span, take_events, Phase, RequestScope, Span,
    SpanEvent,
};
pub use summary::summary;

use std::sync::atomic::{AtomicU8, Ordering};

/// Bit in [`STATE`]: full tracing (collector + registry) is on.
pub(crate) const STATE_TRACE: u8 = 1 << 0;
/// Bit in [`STATE`]: the flight recorder is on.
pub(crate) const STATE_FLIGHT: u8 = 1 << 1;

/// One byte holding both the tracing flag and the flight-recorder flag, so
/// every instrumentation site pays exactly one relaxed load no matter how
/// many consumers are interested.
static STATE: AtomicU8 = AtomicU8::new(0);

pub(crate) fn set_state_bit(bit: u8, on: bool) {
    if on {
        STATE.fetch_or(bit, Ordering::Release);
    } else {
        STATE.fetch_and(!bit, Ordering::Release);
    }
}

#[inline(always)]
pub(crate) fn state() -> u8 {
    STATE.load(Ordering::Relaxed)
}

/// Turns tracing on process-wide. Also pins the trace epoch, so timestamps
/// count from (at latest) the first `enable` call.
pub fn enable() {
    span::init_epoch();
    set_state_bit(STATE_TRACE, true);
}

/// Turns tracing off process-wide. Already-collected events and counter
/// values are kept until drained/reset.
pub fn disable() {
    set_state_bit(STATE_TRACE, false);
}

/// Whether tracing is on. One relaxed atomic load; instrumentation sites
/// call this once per *scope* (a compile, an execute call, a sweep job),
/// never once per inner-loop iteration.
#[inline(always)]
pub fn enabled() -> bool {
    state() & STATE_TRACE != 0
}

/// Whether *any* span consumer is on — full tracing or the flight
/// recorder. Span sites that pre-gate (to hoist the check out of a loop)
/// should gate on this, not [`enabled`], so the flight recorder keeps
/// seeing spans while tracing proper is off. Same cost as [`enabled`]:
/// one relaxed load.
#[inline(always)]
pub fn active() -> bool {
    state() != 0
}

/// Per-consumer trace policy, e.g. carried by `stream_grid::Engine`.
///
/// The global [`enabled`] flag is the master switch; a `TraceConfig` lets
/// one consumer opt its own instrumentation out even while the process is
/// tracing (useful for benchmarks that want scheduler spans but not
/// thousands of per-job spans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Emit spans from this consumer.
    pub spans: bool,
    /// Bump counters/histograms from this consumer.
    pub counters: bool,
}

impl TraceConfig {
    /// Follow the global flag for both spans and counters (the default).
    pub fn on() -> Self {
        Self {
            spans: true,
            counters: true,
        }
    }

    /// Suppress this consumer's instrumentation even while tracing is on.
    pub fn off() -> Self {
        Self {
            spans: false,
            counters: false,
        }
    }

    /// True if this consumer should emit spans right now: its own policy
    /// AND any span consumer ([`active`] — full tracing or the flight
    /// recorder). Consumers that hoist this check out of a loop stay
    /// visible to the flight recorder while tracing proper is off.
    #[inline]
    pub fn spans_active(&self) -> bool {
        self.spans && active()
    }

    /// True if this consumer should bump counters right now.
    #[inline]
    pub fn counters_active(&self) -> bool {
        self.counters && enabled()
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::on()
    }
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// Tests toggling the global flag or reading global metrics serialize
    /// on this lock so `cargo test`'s parallel runner cannot interleave
    /// them.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracing_is_inert() {
        let _g = test_lock::hold();
        disable();
        let before = take_events().len();
        {
            let mut s = span("t", "never");
            s.arg("k", 1);
            instant("t", "nor-this");
            count("t.never", 5);
        }
        assert_eq!(take_events().len(), before.saturating_sub(before));
        assert!(!enabled());
        // The counter was never registered by `count` while disabled.
        assert!(counters().iter().all(|(n, _)| *n != "t.never"));
    }

    #[test]
    fn enable_disable_round_trip() {
        let _g = test_lock::hold();
        enable();
        assert!(enabled());
        {
            let mut s = span("t", "visible");
            s.arg("n", 42);
        }
        let events = take_events();
        assert!(events
            .iter()
            .any(|e| e.cat == "t" && e.name == "visible" && e.args[0].1 == "42"));
        disable();
        assert!(!enabled());
    }

    #[test]
    fn trace_config_gates_consumers() {
        let _g = test_lock::hold();
        disable_flight_recorder();
        enable();
        assert!(TraceConfig::default().spans_active());
        assert!(!TraceConfig::off().spans_active());
        assert!(!TraceConfig::off().counters_active());
        disable();
        assert!(!TraceConfig::on().spans_active());
        assert!(!TraceConfig::on().counters_active());
    }
}
