#![warn(missing_docs)]
//! Offline observability for the stream-scaling workspace: lightweight
//! spans, monotonic counters, log2-bucket histograms, and two exporters
//! (a human-readable summary and Chrome trace-event JSON loadable in
//! `chrome://tracing` or Perfetto). Zero registry dependencies, in keeping
//! with the workspace's shim-crate policy.
//!
//! # Design
//!
//! Tracing is **off by default** and the whole layer compiles to inert
//! no-ops while it stays off: [`span`] returns an empty guard without
//! reading the clock, [`count`]/[`record`] return after one relaxed flag
//! load, and instrumented hot loops are expected to accumulate into plain
//! locals and flush **once** at scope exit (see the determinism contract in
//! `DESIGN.md` §10). Nothing here ever writes to stdout, so traced and
//! untraced runs of a deterministic program render byte-identical output.
//!
//! Finished spans land in a thread-local buffer and are aggregated into the
//! process-global collector when the buffer fills, when the thread exits,
//! or when [`take_events`] runs — so worker threads pay a mutex only once
//! per 256 spans, not once per span.
//!
//! # Example
//!
//! ```
//! stream_trace::enable();
//! {
//!     let mut s = stream_trace::span("demo", "work");
//!     s.arg("shape", "8x5");
//!     stream_trace::count("demo.items", 3);
//! } // span finishes here
//! let events = stream_trace::take_events();
//! assert!(events.iter().any(|e| e.name == "work"));
//! let json = stream_trace::chrome_trace_json(&events);
//! assert!(json.contains("\"traceEvents\""));
//! stream_trace::disable();
//! ```

mod chrome;
mod metrics;
mod span;
mod summary;

pub use chrome::chrome_trace_json;
pub use metrics::{
    count, counter, counters, histogram, histograms, record, reset_metrics, Counter, Histogram,
    HistogramSnapshot,
};
pub use span::{flush_thread, instant, span, take_events, Phase, Span, SpanEvent};
pub use summary::summary;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns tracing on process-wide. Also pins the trace epoch, so timestamps
/// count from (at latest) the first `enable` call.
pub fn enable() {
    span::init_epoch();
    ENABLED.store(true, Ordering::Release);
}

/// Turns tracing off process-wide. Already-collected events and counter
/// values are kept until drained/reset.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether tracing is on. One relaxed atomic load; instrumentation sites
/// call this once per *scope* (a compile, an execute call, a sweep job),
/// never once per inner-loop iteration.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Per-consumer trace policy, e.g. carried by `stream_grid::Engine`.
///
/// The global [`enabled`] flag is the master switch; a `TraceConfig` lets
/// one consumer opt its own instrumentation out even while the process is
/// tracing (useful for benchmarks that want scheduler spans but not
/// thousands of per-job spans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Emit spans from this consumer.
    pub spans: bool,
    /// Bump counters/histograms from this consumer.
    pub counters: bool,
}

impl TraceConfig {
    /// Follow the global flag for both spans and counters (the default).
    pub fn on() -> Self {
        Self {
            spans: true,
            counters: true,
        }
    }

    /// Suppress this consumer's instrumentation even while tracing is on.
    pub fn off() -> Self {
        Self {
            spans: false,
            counters: false,
        }
    }

    /// True if this consumer should emit spans right now (its own policy
    /// AND the global flag).
    #[inline]
    pub fn spans_active(&self) -> bool {
        self.spans && enabled()
    }

    /// True if this consumer should bump counters right now.
    #[inline]
    pub fn counters_active(&self) -> bool {
        self.counters && enabled()
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::on()
    }
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// Tests toggling the global flag or reading global metrics serialize
    /// on this lock so `cargo test`'s parallel runner cannot interleave
    /// them.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracing_is_inert() {
        let _g = test_lock::hold();
        disable();
        let before = take_events().len();
        {
            let mut s = span("t", "never");
            s.arg("k", 1);
            instant("t", "nor-this");
            count("t.never", 5);
        }
        assert_eq!(take_events().len(), before.saturating_sub(before));
        assert!(!enabled());
        // The counter was never registered by `count` while disabled.
        assert!(counters().iter().all(|(n, _)| *n != "t.never"));
    }

    #[test]
    fn enable_disable_round_trip() {
        let _g = test_lock::hold();
        enable();
        assert!(enabled());
        {
            let mut s = span("t", "visible");
            s.arg("n", 42);
        }
        let events = take_events();
        assert!(events
            .iter()
            .any(|e| e.cat == "t" && e.name == "visible" && e.args[0].1 == "42"));
        disable();
        assert!(!enabled());
    }

    #[test]
    fn trace_config_gates_consumers() {
        let _g = test_lock::hold();
        enable();
        assert!(TraceConfig::default().spans_active());
        assert!(!TraceConfig::off().spans_active());
        assert!(!TraceConfig::off().counters_active());
        disable();
        assert!(!TraceConfig::on().spans_active());
        assert!(!TraceConfig::on().counters_active());
    }
}
