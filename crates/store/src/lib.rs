#![warn(missing_docs)]
//! A small, dependency-free, on-disk key-value store for persistent caches.
//!
//! The sweep engine's compiled-kernel cache is 200x+ faster warm than cold,
//! but an in-memory cache evaporates at process exit. [`DiskStore`] is the
//! persistence layer under it (and under the `stream-serve` result cache):
//! one file per entry, each framed with a magic, a format version, a payload
//! length, and a checksum, written atomically (temp file + `fsync` +
//! `rename`) so concurrent writers — including writers in *different
//! processes* — can never leave a torn entry behind.
//!
//! The store is deliberately forgiving on the read side: a missing,
//! truncated, corrupted, or wrong-version entry is reported as a plain miss
//! (`None`), never an error or a panic — the caller recomputes and the next
//! `put` heals the entry. Losing a cache entry costs a recompute; trusting a
//! bad one would cost correctness.
//!
//! # Examples
//!
//! ```
//! use stream_store::{DiskStore, Key};
//!
//! let dir = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
//! let store = DiskStore::open(&dir, "demo", 1)?;
//! let key = Key::of(b"fft-1k");
//! assert_eq!(store.get(key), None);
//! store.put(key, b"schedule bytes")?;
//! assert_eq!(store.get(key).as_deref(), Some(&b"schedule bytes"[..]));
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), std::io::Error>(())
//! ```

use std::fs::{self, File};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic bytes opening every entry file.
const MAGIC: [u8; 4] = *b"SSKV";
/// On-disk framing version (bump when the frame layout itself changes; the
/// per-store `version` passed to [`DiskStore::open`] covers payload schema).
const FRAME_VERSION: u32 = 1;
/// Entry filename suffix.
const SUFFIX: &str = ".entry";

/// The 64-bit FNV-1a hash, the workspace's standard cheap fingerprint.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_seeded(0xcbf2_9ce4_8422_2325, bytes)
}

/// FNV-1a from an arbitrary seed, for deriving independent hash lanes.
pub fn fnv1a_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A 128-bit store key: two independent 64-bit lanes, rendered as the entry
/// filename. Collisions across both lanes are negligible for cache-sized
/// populations, and payload self-identification (callers embedding their key
/// material in the payload) covers even those.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    /// First hash lane.
    pub hi: u64,
    /// Second hash lane.
    pub lo: u64,
}

impl Key {
    /// Derives a key from raw key material by hashing it through two
    /// independently seeded FNV-1a lanes.
    pub fn of(material: &[u8]) -> Self {
        Self {
            hi: fnv1a(material),
            lo: fnv1a_seeded(0x9e37_79b9_7f4a_7c15, material),
        }
    }

    fn file_stem(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// A directory of versioned, checksummed cache entries.
///
/// Layout: `root/<namespace>.v<version>/<key-hex>.entry`. Opening a store
/// with a different `version` uses a different directory, so format bumps
/// never read (or clobber) old-format entries; stale version directories are
/// simply dead weight the operator can delete.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    max_entries: Option<usize>,
}

/// Temp-file uniquifier shared by every store handle in the process: two
/// handles on the same directory (distinct `DiskStore` values, as the grid
/// cache tier and a test harness might hold) must never collide on a temp
/// name, and `(pid, global seq)` keeps names unique across processes too.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl DiskStore {
    /// Opens (creating if needed) the store for `namespace` at payload
    /// schema `version` under `root`.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directory cannot be created.
    pub fn open(root: &Path, namespace: &str, version: u32) -> io::Result<Self> {
        let dir = root.join(format!("{namespace}.v{version}"));
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            max_entries: None,
        })
    }

    /// Caps the store at `max` entries; each `put` past the cap evicts the
    /// oldest (by modification time) entries.
    #[must_use]
    pub fn with_max_entries(mut self, max: usize) -> Self {
        self.max_entries = Some(max.max(1));
        self
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Reads the payload stored under `key`.
    ///
    /// Returns `None` for a missing entry **and** for any entry that fails
    /// validation (bad magic, wrong frame version, short file, checksum
    /// mismatch, I/O error mid-read); invalid entries are deleted
    /// best-effort so the next `put` starts clean. This method never panics
    /// and never surfaces an error: a disk cache read that cannot be
    /// trusted is exactly a miss.
    pub fn get(&self, key: Key) -> Option<Vec<u8>> {
        let path = self.entry_path(key);
        let mut file = File::open(&path).ok()?;
        let mut bytes = Vec::new();
        if file.read_to_end(&mut bytes).is_err() {
            return None;
        }
        drop(file);
        match decode_frame(&bytes) {
            Some(payload) => Some(payload.to_vec()),
            None => {
                // Corrupt (torn write from a crashed process, bit rot,
                // foreign file): remove so the slot heals on the next put.
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Writes `payload` under `key`, replacing any existing entry.
    ///
    /// The write is crash- and concurrency-safe: the frame is written to a
    /// process-unique temp file, `fsync`'d, then atomically renamed over
    /// the final name (and the directory fsync'd best-effort). Two
    /// processes racing on the same key each install a complete entry; the
    /// later rename wins and readers only ever observe whole frames.
    ///
    /// Returns the number of entries evicted to honor `max_entries`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the entry cannot be written —
    /// callers treat this as "cache unavailable", not a failure of the
    /// computation whose result was being stored.
    pub fn put(&self, key: Key, payload: &[u8]) -> io::Result<usize> {
        let frame = encode_frame(payload);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut file = File::create(&tmp)?;
        file.write_all(&frame)?;
        file.sync_all()?;
        drop(file);
        let path = self.entry_path(key);
        if let Err(e) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        // Make the rename itself durable. Failure here still leaves a
        // valid entry in the directory, so it is not fatal.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(self.evict_past_cap())
    }

    /// Number of entries currently resident (invalid files included until
    /// the next `get` touches them).
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// True if the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total on-disk bytes across this store's entries (frame headers
    /// included), for disk-usage gauges. Walks the directory; intended
    /// for sampling on scrape/report cadence, not hot paths.
    pub fn bytes(&self) -> u64 {
        self.entries()
            .iter()
            .filter_map(|p| fs::metadata(p).ok())
            .map(|m| m.len())
            .sum()
    }

    fn entry_path(&self, key: Key) -> PathBuf {
        self.dir.join(format!("{}{SUFFIX}", key.file_stem()))
    }

    fn entries(&self) -> Vec<PathBuf> {
        let Ok(iter) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        iter.filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(SUFFIX))
            })
            .collect()
    }

    fn evict_past_cap(&self) -> usize {
        let Some(max) = self.max_entries else {
            return 0;
        };
        let mut entries = self.entries();
        if entries.len() <= max {
            return 0;
        }
        // Oldest-first by (mtime, name): the name tiebreak keeps eviction
        // order stable on coarse-mtime filesystems.
        entries.sort_by_key(|p| {
            let mtime = fs::metadata(p)
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            (mtime, p.clone())
        });
        let excess = entries.len() - max;
        let mut evicted = 0;
        for path in entries.into_iter().take(excess) {
            if fs::remove_file(&path).is_ok() {
                evicted += 1;
            }
        }
        evicted
    }
}

/// Frames `payload` as `MAGIC | frame version | payload len | payload |
/// FNV-1a of everything preceding`.
fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates a frame and returns its payload slice, or `None` on any
/// structural problem.
fn decode_frame(bytes: &[u8]) -> Option<&[u8]> {
    let header = 4 + 4 + 8;
    if bytes.len() < header + 8 || bytes[..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if version != FRAME_VERSION {
        return None;
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().ok()?) as usize;
    if bytes.len() != header + len + 8 {
        return None;
    }
    let (body, sum_bytes) = bytes.split_at(header + len);
    let sum = u64::from_le_bytes(sum_bytes.try_into().ok()?);
    if fnv1a(body) != sum {
        return None;
    }
    Some(&body[header..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    /// A fresh, unique scratch directory (std-only; no tempfile crate).
    fn scratch() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "stream-store-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_and_missing() {
        let root = scratch();
        let s = DiskStore::open(&root, "t", 1).unwrap();
        let k = Key::of(b"alpha");
        assert_eq!(s.get(k), None);
        s.put(k, b"payload").unwrap();
        assert_eq!(s.get(k).as_deref(), Some(&b"payload"[..]));
        // Overwrite.
        s.put(k, b"payload2").unwrap();
        assert_eq!(s.get(k).as_deref(), Some(&b"payload2"[..]));
        assert_eq!(s.len(), 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn empty_payload_roundtrips() {
        let root = scratch();
        let s = DiskStore::open(&root, "t", 1).unwrap();
        let k = Key::of(b"");
        s.put(k, b"").unwrap();
        assert_eq!(s.get(k).as_deref(), Some(&b""[..]));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupted_entry_is_a_miss_and_is_removed() {
        let root = scratch();
        let s = DiskStore::open(&root, "t", 1).unwrap();
        let k = Key::of(b"victim");
        s.put(k, b"good data").unwrap();
        let path = s.entry_path(k);
        // Flip a payload byte: checksum mismatch.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(s.get(k), None);
        assert!(!path.exists(), "corrupt entry should be deleted");
        // The slot heals.
        s.put(k, b"fresh").unwrap();
        assert_eq!(s.get(k).as_deref(), Some(&b"fresh"[..]));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn truncated_entry_is_a_miss() {
        let root = scratch();
        let s = DiskStore::open(&root, "t", 1).unwrap();
        let k = Key::of(b"short");
        s.put(k, b"a perfectly fine payload").unwrap();
        let path = s.entry_path(k);
        let bytes = fs::read(&path).unwrap();
        for keep in [0usize, 3, 12, bytes.len() - 1] {
            fs::write(&path, &bytes[..keep]).unwrap();
            assert_eq!(s.get(k), None, "kept {keep} bytes");
            // get() removed the bad file; restore for the next round.
            fs::write(&path, &bytes).unwrap();
        }
        assert_eq!(s.get(k).as_deref(), Some(&b"a perfectly fine payload"[..]));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn foreign_garbage_is_a_miss() {
        let root = scratch();
        let s = DiskStore::open(&root, "t", 1).unwrap();
        let k = Key::of(b"garbage");
        fs::write(s.entry_path(k), b"not a frame at all").unwrap();
        assert_eq!(s.get(k), None);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn versions_are_isolated_directories() {
        let root = scratch();
        let v1 = DiskStore::open(&root, "ns", 1).unwrap();
        let v2 = DiskStore::open(&root, "ns", 2).unwrap();
        let k = Key::of(b"k");
        v1.put(k, b"old format").unwrap();
        assert_eq!(v2.get(k), None, "new version must not read old entries");
        v2.put(k, b"new format").unwrap();
        assert_eq!(v1.get(k).as_deref(), Some(&b"old format"[..]));
        assert_eq!(v2.get(k).as_deref(), Some(&b"new format"[..]));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn frame_version_mismatch_is_a_miss() {
        let root = scratch();
        let s = DiskStore::open(&root, "t", 1).unwrap();
        let k = Key::of(b"frame");
        s.put(k, b"data").unwrap();
        let path = s.entry_path(k);
        let mut bytes = fs::read(&path).unwrap();
        // Bump the frame version field and re-checksum so only the version
        // check can reject it.
        bytes[4] = 99;
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert_eq!(s.get(k), None);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn eviction_keeps_newest_entries() {
        let root = scratch();
        let s = DiskStore::open(&root, "t", 1).unwrap().with_max_entries(3);
        let keys: Vec<Key> = (0..6u32)
            .map(|i| Key::of(format!("k{i}").as_bytes()))
            .collect();
        let mut evicted = 0;
        for (i, &k) in keys.iter().enumerate() {
            // Distinct mtimes even on coarse-granularity filesystems are
            // not guaranteed; the (mtime, name) sort keeps this stable
            // enough that the *count* invariant below always holds.
            evicted += s.put(k, format!("v{i}").as_bytes()).unwrap();
        }
        assert_eq!(s.len(), 3);
        assert_eq!(evicted, 3);
        let resident = keys.iter().filter(|&&k| s.get(k).is_some()).count();
        assert_eq!(resident, 3);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn concurrent_writers_same_dir_never_corrupt() {
        // Two independent handles on the same directory (the same protocol
        // two *processes* use — the handles share no in-memory state, only
        // the rename-based on-disk protocol) hammered from many threads.
        // See `two_process_writers_never_corrupt` for the real multi-process
        // version of this test.
        let root = scratch();
        let a = DiskStore::open(&root, "t", 1).unwrap();
        let b = DiskStore::open(&root, "t", 1).unwrap();
        let keys: Vec<Key> = (0..4u32)
            .map(|i| Key::of(format!("shared{i}").as_bytes()))
            .collect();
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let store = if t % 2 == 0 { &a } else { &b };
                let keys = &keys;
                scope.spawn(move || {
                    for round in 0..50usize {
                        let k = keys[(t + round) % keys.len()];
                        let payload = vec![(t * 31 + round) as u8; 64 + round];
                        store.put(k, &payload).unwrap();
                        if let Some(read) = store.get(k) {
                            // Whatever writer won, the frame must be whole:
                            // homogeneous payload of the advertised length.
                            assert!(!read.is_empty());
                            let first = read[0];
                            assert!(
                                read.iter().all(|&x| x == first),
                                "torn read: mixed payload bytes"
                            );
                        }
                    }
                });
            }
        });
        // Every surviving entry validates.
        for &k in &keys {
            assert!(a.get(k).is_some(), "entry lost after concurrent writes");
        }
        fs::remove_dir_all(&root).unwrap();
    }

    /// Env-var knob letting this test binary re-enter itself as a writer
    /// child: the real two-process concurrency test below.
    const HAMMER_ENV: &str = "STREAM_STORE_HAMMER_DIR";

    #[test]
    fn two_process_writers_never_corrupt() {
        if let Ok(dir) = std::env::var(HAMMER_ENV) {
            // Child mode: hammer the store and exit. (The assert-free body
            // keeps child failures visible as nonzero exit status.)
            let s = DiskStore::open(Path::new(&dir), "proc", 1).unwrap();
            for round in 0..200usize {
                let k = Key::of(format!("pk{}", round % 5).as_bytes());
                let payload = vec![(round % 251) as u8; 128];
                s.put(k, &payload).unwrap();
                let _ = s.get(k);
            }
            return;
        }
        let root = scratch();
        fs::create_dir_all(&root).unwrap();
        let exe = std::env::current_exe().unwrap();
        let spawn = || {
            std::process::Command::new(&exe)
                .args(["tests::two_process_writers_never_corrupt", "--exact"])
                .env(HAMMER_ENV, &root)
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .spawn()
                .expect("spawn hammer child")
        };
        let mut kids = [spawn(), spawn()];
        // Read concurrently from the parent while the children write.
        let s = DiskStore::open(&root, "proc", 1).unwrap();
        for round in 0..200usize {
            let k = Key::of(format!("pk{}", round % 5).as_bytes());
            if let Some(read) = s.get(k) {
                assert_eq!(read.len(), 128, "torn cross-process read");
                let first = read[0];
                assert!(read.iter().all(|&x| x == first), "mixed payload");
            }
        }
        for kid in &mut kids {
            let status = kid.wait().unwrap();
            assert!(status.success(), "hammer child failed: {status}");
        }
        // Post-mortem: every entry on disk decodes.
        for i in 0..5u32 {
            let k = Key::of(format!("pk{i}").as_bytes());
            let v = s.get(k).expect("entry survives both processes");
            assert_eq!(v.len(), 128);
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn key_lanes_are_independent() {
        let a = Key::of(b"abc");
        let b = Key::of(b"abd");
        assert_ne!(a, b);
        assert_ne!(a.hi, a.lo);
        // Stable across calls.
        assert_eq!(a, Key::of(b"abc"));
    }
}
