//! Runtime values: the architecture's 32-bit words.

use std::fmt;

/// The static type of a kernel value — the architecture is 32-bit
/// (Table 1's `b = 32`), with integer and floating interpretations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 32-bit signed integer (also used for 16-bit media data, stored
    /// widened, as Imagine's tools did for simulation).
    I32,
    /// 32-bit IEEE float.
    F32,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::I32 => f.write_str("i32"),
            Ty::F32 => f.write_str("f32"),
        }
    }
}

/// A runtime 32-bit word.
///
/// The `#[repr(u32)]` makes the layout a guarantee (RFC 2195): a `u32`
/// discriminant (`I32 = 0`, `F32 = 1`) followed by the 4-byte payload —
/// 8 bytes total, no padding, payload at offset 4. The native tape
/// backend relies on this to read and write scalar buffers directly as
/// `(tag, payload)` `u32` pairs across the FFI boundary, skipping the
/// tagged→untagged marshalling the interpreter tiers pay per call.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(u32)]
pub enum Scalar {
    /// Integer word.
    I32(i32) = 0,
    /// Floating-point word.
    F32(f32) = 1,
}

/// Compile-time checks of the layout contract the native backend uses.
const _: () = {
    assert!(std::mem::size_of::<Scalar>() == 8);
    assert!(std::mem::align_of::<Scalar>() == 4);
};

impl Scalar {
    /// The zero value of `ty`.
    pub fn zero(ty: Ty) -> Self {
        match ty {
            Ty::I32 => Scalar::I32(0),
            Ty::F32 => Scalar::F32(0.0),
        }
    }

    /// This value's type.
    pub fn ty(&self) -> Ty {
        match self {
            Scalar::I32(_) => Ty::I32,
            Scalar::F32(_) => Ty::F32,
        }
    }

    /// The integer payload, if this is an [`Scalar::I32`].
    pub fn as_i32(&self) -> Option<i32> {
        match self {
            Scalar::I32(v) => Some(*v),
            Scalar::F32(_) => None,
        }
    }

    /// The float payload, if this is an [`Scalar::F32`].
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Scalar::F32(v) => Some(*v),
            Scalar::I32(_) => None,
        }
    }

    /// Truthiness for predicates: nonzero integers are true.
    pub fn is_true(&self) -> bool {
        match self {
            Scalar::I32(v) => *v != 0,
            Scalar::F32(v) => *v != 0.0,
        }
    }
}

impl From<i32> for Scalar {
    fn from(v: i32) -> Self {
        Scalar::I32(v)
    }
}

impl From<f32> for Scalar {
    fn from(v: f32) -> Self {
        Scalar::F32(v)
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::I32(v) => write!(f, "{v}"),
            Scalar::F32(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Scalar::from(7).as_i32(), Some(7));
        assert_eq!(Scalar::from(1.5f32).as_f32(), Some(1.5));
        assert_eq!(Scalar::from(7).as_f32(), None);
        assert_eq!(Scalar::from(1.5f32).as_i32(), None);
    }

    #[test]
    fn zero_has_matching_type() {
        assert_eq!(Scalar::zero(Ty::I32).ty(), Ty::I32);
        assert_eq!(Scalar::zero(Ty::F32).ty(), Ty::F32);
    }

    #[test]
    fn truthiness() {
        assert!(Scalar::I32(-3).is_true());
        assert!(!Scalar::I32(0).is_true());
        assert!(Scalar::F32(0.5).is_true());
        assert!(!Scalar::F32(0.0).is_true());
    }

    #[test]
    fn display() {
        assert_eq!(Scalar::I32(42).to_string(), "42");
        assert_eq!(Ty::F32.to_string(), "f32");
    }

    #[test]
    fn repr_is_tag_payload_pair() {
        // The native backend reads/writes Scalars as (tag, payload) u32
        // pairs; this pins the exact bit layout it assumes.
        let i: [u32; 2] = unsafe { std::mem::transmute(Scalar::I32(0x1234_5678)) };
        assert_eq!(i, [0, 0x1234_5678]);
        let f: [u32; 2] = unsafe { std::mem::transmute(Scalar::F32(1.5)) };
        assert_eq!(f, [1, 1.5f32.to_bits()]);
    }
}
