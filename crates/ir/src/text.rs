//! A textual kernel format: serialize kernels to a stable, human-editable
//! listing and parse them back — for golden tests, interchange, and
//! kernel authoring outside Rust.
//!
//! The format is line-oriented: a header declares the kernel name, streams,
//! and scratchpad; then one op per line in SSA program order (`#` starts a
//! comment); then `loop` lines bind recurrences:
//!
//! ```text
//! kernel saxpy
//! in f32
//! in f32
//! out f32
//! v0 = param f32
//! v1 = read s0
//! v2 = read s1
//! v3 = mul v0 v1
//! v4 = add v3 v2
//! v5 = write s0 v4
//! ```

use crate::{Kernel, KernelBuilder, Opcode, Scalar, StreamId, Ty, ValueId};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// A syntax or semantic error while parsing kernel text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn ty_name(ty: Ty) -> &'static str {
    match ty {
        Ty::I32 => "i32",
        Ty::F32 => "f32",
    }
}

fn scalar_text(s: Scalar) -> String {
    match s {
        Scalar::I32(v) => format!("i32 {v}"),
        Scalar::F32(v) => {
            if v == v.trunc() && v.abs() < 1e15 {
                format!("f32 {v:.1}")
            } else {
                format!("f32 {v}")
            }
        }
    }
}

/// Serializes `kernel` to the textual format.
///
/// # Examples
///
/// ```
/// use stream_ir::{parse_kernel, to_text, KernelBuilder, Ty};
///
/// let mut b = KernelBuilder::new("double");
/// let s = b.in_stream(Ty::I32);
/// let o = b.out_stream(Ty::I32);
/// let x = b.read(s);
/// let y = b.add(x, x);
/// b.write(o, y);
/// let kernel = b.finish()?;
///
/// let text = to_text(&kernel);
/// let back = parse_kernel(&text)?;
/// assert_eq!(kernel, back);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_text(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "kernel {}", kernel.name());
    for decl in kernel.inputs() {
        let _ = writeln!(out, "in {}", ty_name(decl.ty));
    }
    for decl in kernel.outputs() {
        let _ = writeln!(out, "out {}", ty_name(decl.ty));
    }
    if kernel.sp_words() > 0 {
        let _ = writeln!(out, "sp {}", kernel.sp_words());
    }
    for (i, op) in kernel.ops().iter().enumerate() {
        let v = ValueId(i as u32);
        let args: Vec<String> = op.args.iter().map(ToString::to_string).collect();
        let a = args.join(" ");
        let line = match &op.opcode {
            Opcode::Const(s) => format!("const {}", scalar_text(*s)),
            Opcode::Param(_, ty) => format!("param {}", ty_name(*ty)),
            Opcode::IterIndex => "iter".to_string(),
            Opcode::ClusterId => "cid".to_string(),
            Opcode::ClusterCount => "nclusters".to_string(),
            Opcode::Recur(init) => format!("recur {}", scalar_text(*init)),
            Opcode::Add => format!("add {a}"),
            Opcode::Sub => format!("sub {a}"),
            Opcode::Mul => format!("mul {a}"),
            Opcode::Div => format!("div {a}"),
            Opcode::Sqrt => format!("sqrt {a}"),
            Opcode::Min => format!("min {a}"),
            Opcode::Max => format!("max {a}"),
            Opcode::Neg => format!("neg {a}"),
            Opcode::Abs => format!("abs {a}"),
            Opcode::Floor => format!("floor {a}"),
            Opcode::And => format!("and {a}"),
            Opcode::Or => format!("or {a}"),
            Opcode::Xor => format!("xor {a}"),
            Opcode::Shl => format!("shl {a}"),
            Opcode::Shr => format!("shr {a}"),
            Opcode::Eq => format!("eq {a}"),
            Opcode::Ne => format!("ne {a}"),
            Opcode::Lt => format!("lt {a}"),
            Opcode::Le => format!("le {a}"),
            Opcode::Select => format!("select {a}"),
            Opcode::ItoF => format!("itof {a}"),
            Opcode::FtoI => format!("ftoi {a}"),
            Opcode::Read(s) => format!("read {s}"),
            Opcode::Write(s) => format!("write {s} {a}"),
            Opcode::CondRead(s) => format!("cond_rd {s} {a}"),
            Opcode::CondWrite(s) => format!("cond_wr {s} {a}"),
            Opcode::SpRead(ty) => format!("sp_rd {} {a}", ty_name(*ty)),
            Opcode::SpWrite => format!("sp_wr {a}"),
            Opcode::Comm => format!("comm {a}"),
        };
        let _ = writeln!(out, "{v} = {line}");
    }
    for (r, n) in kernel.recurrences() {
        let _ = writeln!(out, "loop {r} <- {n}");
    }
    out
}

/// Parses a kernel from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for syntax problems,
/// undefined or non-dense value ids, unknown opcodes, or structural errors
/// (unbound recurrences are reported against the last line).
pub fn parse_kernel(text: &str) -> Result<Kernel, ParseError> {
    let mut builder = KernelBuilder::new("unnamed");
    // values[i] = Some(id) for value-producing lines, None for writes.
    let mut values: Vec<Option<ValueId>> = Vec::new();
    let mut loops: Vec<(ValueId, ValueId)> = Vec::new();
    let mut last_line = 0usize;

    let fail = |line: usize, message: String| ParseError { line, message };

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        last_line = line_no;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();

        let parse_ty = |tok: Option<&&str>| -> Result<Ty, ParseError> {
            match tok.copied() {
                Some("i32") => Ok(Ty::I32),
                Some("f32") => Ok(Ty::F32),
                other => Err(fail(line_no, format!("expected type, found {other:?}"))),
            }
        };
        let parse_scalar = |toks: &[&str]| -> Result<Scalar, ParseError> {
            let [ty, lit] = toks else {
                return Err(fail(line_no, "expected `<ty> <literal>`".into()));
            };
            match parse_ty(Some(ty))? {
                Ty::I32 => lit
                    .parse::<i32>()
                    .map(Scalar::I32)
                    .map_err(|_| fail(line_no, format!("bad i32 literal {lit}"))),
                Ty::F32 => lit
                    .parse::<f32>()
                    .map(Scalar::F32)
                    .map_err(|_| fail(line_no, format!("bad f32 literal {lit}"))),
            }
        };
        let value =
            |tok: Option<&&str>, values: &[Option<ValueId>]| -> Result<ValueId, ParseError> {
                let tok = tok.copied().unwrap_or("");
                let idx: usize = tok
                    .strip_prefix('v')
                    .and_then(|d| d.parse().ok())
                    .ok_or_else(|| fail(line_no, format!("expected value id, found `{tok}`")))?;
                match values.get(idx) {
                    Some(Some(v)) => Ok(*v),
                    Some(None) => Err(fail(line_no, format!("v{idx} produces no value"))),
                    None => Err(fail(line_no, format!("v{idx} is not defined yet"))),
                }
            };
        let stream = |tok: Option<&&str>| -> Result<StreamId, ParseError> {
            let tok = tok.copied().unwrap_or("");
            tok.strip_prefix('s')
                .and_then(|d| d.parse().ok())
                .map(StreamId)
                .ok_or_else(|| fail(line_no, format!("expected stream id, found `{tok}`")))
        };

        match toks[0] {
            "kernel" => {
                let name = *toks
                    .get(1)
                    .ok_or_else(|| fail(line_no, "expected `kernel <name>`".into()))?;
                builder = KernelBuilder::new(name);
            }
            "in" => {
                builder.in_stream(parse_ty(toks.get(1))?);
            }
            "out" => {
                builder.out_stream(parse_ty(toks.get(1))?);
            }
            "sp" => {
                let words: u32 = toks
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| fail(line_no, "expected `sp <words>`".into()))?;
                builder.require_sp(words);
            }
            "loop" => {
                if toks.len() != 4 || toks[2] != "<-" {
                    return Err(fail(line_no, "expected `loop vR <- vN`".into()));
                }
                let r = value(toks.get(1), &values)?;
                let n = value(toks.get(3), &values)?;
                loops.push((r, n));
            }
            _ => {
                if toks.len() < 3 || toks[1] != "=" {
                    return Err(fail(line_no, "expected `vN = <op> ...`".into()));
                }
                let expect_idx: usize = toks[0]
                    .strip_prefix('v')
                    .and_then(|d| d.parse().ok())
                    .ok_or_else(|| {
                        fail(line_no, format!("expected value id, found {}", toks[0]))
                    })?;
                if expect_idx != values.len() {
                    return Err(fail(
                        line_no,
                        format!(
                            "value ids must be dense: expected v{}, found v{expect_idx}",
                            values.len()
                        ),
                    ));
                }
                let op = toks[2];
                let rest = &toks[3..];
                let produced: Option<ValueId> = match op {
                    "const" => Some(builder.constant(parse_scalar(rest)?)),
                    "recur" => Some(builder.recurrence(parse_scalar(rest)?)),
                    "param" => Some(builder.param(parse_ty(rest.first())?)),
                    "iter" => Some(builder.iter_index()),
                    "cid" => Some(builder.cluster_id()),
                    "nclusters" => Some(builder.cluster_count()),
                    "read" => Some(builder.read(stream(rest.first())?)),
                    "write" => {
                        let s = stream(rest.first())?;
                        let v = value(rest.get(1), &values)?;
                        builder.write(s, v);
                        None
                    }
                    "cond_rd" => {
                        let s = stream(rest.first())?;
                        let pred = value(rest.get(1), &values)?;
                        Some(builder.cond_read(s, pred))
                    }
                    "cond_wr" => {
                        let s = stream(rest.first())?;
                        let pred = value(rest.get(1), &values)?;
                        let v = value(rest.get(2), &values)?;
                        builder.cond_write(s, pred, v);
                        None
                    }
                    "sp_rd" => {
                        let ty = parse_ty(rest.first())?;
                        let addr = value(rest.get(1), &values)?;
                        Some(builder.sp_read(addr, ty))
                    }
                    "sp_wr" => {
                        let addr = value(rest.first(), &values)?;
                        let v = value(rest.get(1), &values)?;
                        builder.sp_write(addr, v);
                        None
                    }
                    "comm" => {
                        let d = value(rest.first(), &values)?;
                        let src = value(rest.get(1), &values)?;
                        Some(builder.comm(d, src))
                    }
                    "select" => {
                        let c = value(rest.first(), &values)?;
                        let x = value(rest.get(1), &values)?;
                        let y = value(rest.get(2), &values)?;
                        Some(builder.select(c, x, y))
                    }
                    unary @ ("sqrt" | "neg" | "abs" | "floor" | "itof" | "ftoi") => {
                        let a = value(rest.first(), &values)?;
                        Some(match unary {
                            "sqrt" => builder.sqrt(a),
                            "neg" => builder.neg(a),
                            "abs" => builder.abs(a),
                            "floor" => builder.floor(a),
                            "itof" => builder.itof(a),
                            _ => builder.ftoi(a),
                        })
                    }
                    binary @ ("add" | "sub" | "mul" | "div" | "min" | "max" | "and" | "or"
                    | "xor" | "shl" | "shr" | "eq" | "ne" | "lt" | "le") => {
                        let x = value(rest.first(), &values)?;
                        let y = value(rest.get(1), &values)?;
                        Some(match binary {
                            "add" => builder.add(x, y),
                            "sub" => builder.sub(x, y),
                            "mul" => builder.mul(x, y),
                            "div" => builder.div(x, y),
                            "min" => builder.min(x, y),
                            "max" => builder.max(x, y),
                            "and" => builder.and(x, y),
                            "or" => builder.or(x, y),
                            "xor" => builder.xor(x, y),
                            "shl" => builder.shl(x, y),
                            "shr" => builder.shr(x, y),
                            "eq" => builder.eq(x, y),
                            "ne" => builder.ne(x, y),
                            "lt" => builder.lt(x, y),
                            _ => builder.le(x, y),
                        })
                    }
                    other => return Err(fail(line_no, format!("unknown opcode {other}"))),
                };
                values.push(produced);
            }
        }
    }

    for (r, n) in loops {
        builder.bind_next(r, n);
    }
    builder.finish().map_err(|e| ParseError {
        line: last_line,
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, ExecConfig};

    fn saxpy() -> Kernel {
        let mut b = KernelBuilder::new("saxpy");
        let xs = b.in_stream(Ty::F32);
        let ys = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let a = b.param(Ty::F32);
        let x = b.read(xs);
        let y = b.read(ys);
        let ax = b.mul(a, x);
        let r = b.add(ax, y);
        b.write(out, r);
        b.finish().unwrap()
    }

    #[test]
    fn round_trips_simple_kernel() {
        let k = saxpy();
        let text = to_text(&k);
        let back = parse_kernel(&text).unwrap();
        assert_eq!(k, back);
        assert_eq!(to_text(&back), text);
    }

    #[test]
    fn round_trips_recurrences_and_memory() {
        let mut b = KernelBuilder::new("acc");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        b.require_sp(8);
        let acc = b.recurrence(Scalar::F32(0.0));
        let x = b.read(s);
        let sum = b.add(acc, x);
        b.bind_next(acc, sum);
        let addr = b.const_i(3);
        b.sp_write(addr, sum);
        let y = b.sp_read(addr, Ty::F32);
        let cid = b.cluster_id();
        let z = b.comm(y, cid);
        b.write(out, z);
        let k = b.finish().unwrap();

        let back = parse_kernel(&to_text(&k)).unwrap();
        assert_eq!(k, back);
    }

    #[test]
    fn parsed_kernels_execute_identically() {
        let k = saxpy();
        let back = parse_kernel(&to_text(&k)).unwrap();
        let xs: Vec<Scalar> = (0..16).map(|i| Scalar::F32(i as f32)).collect();
        let ys: Vec<Scalar> = (0..16).map(|i| Scalar::F32(100.0 - i as f32)).collect();
        let cfg = ExecConfig::with_clusters(8);
        let a = execute(&k, &[Scalar::F32(3.0)], &[xs.clone(), ys.clone()], &cfg).unwrap();
        let b = execute(&back, &[Scalar::F32(3.0)], &[xs, ys], &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\
kernel tiny
in i32          # pixels
out i32

v0 = read s0    # pop
v1 = add v0 v0
v2 = write s0 v1
";
        let k = parse_kernel(text).unwrap();
        assert_eq!(k.name(), "tiny");
        assert_eq!(k.stats().alu_ops, 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "kernel bad\nin f32\nv0 = read s0\nv1 = frobnicate v0 v0\n";
        let err = parse_kernel(text).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn undefined_value_is_reported() {
        let text = "kernel bad\nin f32\nv0 = read s0\nv1 = add v0 v9\n";
        let err = parse_kernel(text).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("v9"));
    }

    #[test]
    fn dense_ids_are_required() {
        let text = "kernel bad\nin f32\nv5 = read s0\n";
        let err = parse_kernel(text).unwrap_err();
        assert!(err.message.contains("dense"));
    }

    #[test]
    fn using_a_write_as_operand_is_reported() {
        let text = "\
kernel bad
in i32
out i32
v0 = read s0
v1 = write s0 v0
v2 = add v1 v0
";
        let err = parse_kernel(text).unwrap_err();
        assert_eq!(err.line, 6);
        assert!(err.message.contains("no value"));
    }

    #[test]
    fn unbound_recurrence_is_reported_at_end() {
        let text = "kernel bad\nin f32\nv0 = recur f32 0.0\nv1 = read s0\nv2 = add v0 v1\n";
        let err = parse_kernel(text).unwrap_err();
        assert!(err.message.contains("recurrence"));
    }
}
