#![warn(missing_docs)]
//! Kernel dataflow IR for stream processors — the KernelC equivalent.
//!
//! A [`Kernel`] is the body of one stream-program kernel's inner loop: a
//! straight-line SSA dataflow graph executed SIMD across all `C` arithmetic
//! clusters, reading input streams, writing output streams, and using
//! per-cluster scratchpads, intercluster COMM operations, conditional
//! streams, and loop-carried recurrences.
//!
//! Three things can be done with a kernel:
//!
//! * **build** it with the type-checked [`KernelBuilder`],
//! * **run** it functionally with [`execute`] (this crate's SIMD
//!   interpreter),
//! * **schedule** it for a machine with the `stream-sched` crate, which
//!   consumes the op list, [`Kernel::stream_access_order`], and
//!   [`Kernel::recurrences`].
//!
//! Per-iteration operation statistics ([`Kernel::stats`]) reproduce the
//! paper's Table 2 measurements.
//!
//! # Examples
//!
//! ```
//! use stream_ir::{execute, ExecConfig, KernelBuilder, Scalar, Ty};
//!
//! // A kernel computing out[i] = max(a[i], b[i]).
//! let mut b = KernelBuilder::new("max");
//! let xs = b.in_stream(Ty::I32);
//! let ys = b.in_stream(Ty::I32);
//! let out = b.out_stream(Ty::I32);
//! let x = b.read(xs);
//! let y = b.read(ys);
//! let m = b.max(x, y);
//! b.write(out, m);
//! let kernel = b.finish()?;
//!
//! let xs: Vec<Scalar> = vec![Scalar::I32(1), Scalar::I32(9)];
//! let ys: Vec<Scalar> = vec![Scalar::I32(5), Scalar::I32(3)];
//! let outs = execute(&kernel, &[], &[xs, ys], &ExecConfig::with_clusters(2))?;
//! assert_eq!(outs[0], vec![Scalar::I32(5), Scalar::I32(9)]);
//! # Ok::<(), stream_ir::IrError>(())
//! ```

// Per-cluster SIMD evaluation indexes several parallel arrays by the
// cluster id; iterator rewrites would obscure that.
#![allow(clippy::needless_range_loop)]

mod error;
mod interp;
mod kernel;
mod op;
mod scalar;
mod tape;
mod text;
mod transform;

pub use error::IrError;
pub use interp::{
    execute, execute_iters, execute_legacy, execute_with, execute_with_legacy, infer_iterations,
    ExecConfig, ExecOptions,
};
pub use kernel::{Kernel, KernelBuilder, KernelStats, StreamDecl};
pub use op::{Op, Opcode, StreamDir, StreamId, ValueId};
pub use scalar::{Scalar, Ty};
pub use tape::native::{attach_disk as attach_native_disk, stats as native_stats, NativeStats};
pub use tape::{LaneMode, NativeMode, StripMode, Tape, TapeCheckKind, TapeConfig, TapeFinding};

#[doc(hidden)]
#[doc(hidden)]
#[doc(hidden)]
pub use tape::probe_planned_strips;
#[doc(hidden)]
pub use tape::TapeMutation;
pub use text::{parse_kernel, to_text, ParseError};
pub use transform::unroll;
