//! Functional SIMD interpreter for kernels.
//!
//! Executes a kernel exactly as `C` clusters would: iteration `i` processes
//! records `i*C .. i*C+C` of every plain stream (records striped across
//! clusters), scratchpads are per-cluster memories, COMM ops move words
//! between clusters, and conditional streams compact/expand across clusters
//! in cluster order.

use crate::{IrError, Kernel, Opcode, Scalar, StreamDecl, StreamDir, Tape, Ty, ValueId};

/// Execution configuration: how many clusters run the kernel SIMD, and how
/// big each per-cluster scratchpad is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Number of SIMD clusters (`C`).
    pub clusters: usize,
    /// Scratchpad capacity per cluster, in words (Imagine: 256).
    pub sp_words: usize,
}

impl ExecConfig {
    /// `C` clusters with the Imagine 256-word scratchpad.
    pub fn with_clusters(clusters: usize) -> Self {
        Self {
            clusters,
            sp_words: 256,
        }
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self::with_clusters(8)
    }
}

/// Executes `kernel` over `inputs`, inferring the iteration count from the
/// first plain input stream.
///
/// Each element of `inputs` is the flat word contents of the corresponding
/// declared input stream. The result is one flat word vector per output
/// stream.
///
/// # Errors
///
/// Returns an error if stream lengths are ragged or not a whole number of
/// SIMD strips, parameters mismatch, a scratchpad or COMM access is out of
/// bounds, or an integer divide by zero occurs.
///
/// # Examples
///
/// ```
/// use stream_ir::{execute, ExecConfig, KernelBuilder, Scalar, Ty};
///
/// let mut b = KernelBuilder::new("double");
/// let s = b.in_stream(Ty::I32);
/// let out = b.out_stream(Ty::I32);
/// let x = b.read(s);
/// let two = b.const_i(2);
/// let y = b.mul(x, two);
/// b.write(out, y);
/// let k = b.finish()?;
///
/// let input: Vec<Scalar> = (0..16).map(Scalar::I32).collect();
/// let outs = execute(&k, &[], &[input], &ExecConfig::with_clusters(8))?;
/// assert_eq!(outs[0][3], Scalar::I32(6));
/// # Ok::<(), stream_ir::IrError>(())
/// ```
pub fn execute(
    kernel: &Kernel,
    params: &[Scalar],
    inputs: &[Vec<Scalar>],
    cfg: &ExecConfig,
) -> Result<Vec<Vec<Scalar>>, IrError> {
    let opts = ExecOptions {
        params,
        sp_init: None,
        iterations: None,
    };
    execute_with(kernel, &opts, inputs, cfg)
}

/// Number of SIMD loop iterations needed to consume `inputs`, from the first
/// plain (unconditional) input stream.
///
/// # Errors
///
/// Returns an error if stream lengths are ragged, not strip-aligned, or
/// inconsistent across plain streams.
pub fn infer_iterations(
    kernel: &Kernel,
    inputs: &[Vec<Scalar>],
    cfg: &ExecConfig,
) -> Result<usize, IrError> {
    infer_iterations_decls(kernel.inputs(), inputs, cfg)
}

/// [`infer_iterations`] over bare stream declarations (shared with the
/// compiled tape, which carries its own copy of the kernel's decls).
pub(crate) fn infer_iterations_decls(
    decls: &[StreamDecl],
    inputs: &[Vec<Scalar>],
    cfg: &ExecConfig,
) -> Result<usize, IrError> {
    if inputs.len() != decls.len() {
        return Err(IrError::WrongInputCount {
            expected: decls.len(),
            found: inputs.len(),
        });
    }
    let mut iterations: Option<usize> = None;
    for (idx, (decl, words)) in decls.iter().zip(inputs).enumerate() {
        if decl.conditional || decl.record_width == 0 {
            continue;
        }
        let width = decl.record_width as usize;
        if words.len() % width != 0 {
            return Err(IrError::RaggedStream {
                stream: crate::StreamId(idx as u32),
                words: words.len(),
                record_width: width,
            });
        }
        let records = words.len() / width;
        if !records.is_multiple_of(cfg.clusters) {
            return Err(IrError::RaggedStream {
                stream: crate::StreamId(idx as u32),
                words: words.len(),
                record_width: width * cfg.clusters,
            });
        }
        let iters = records / cfg.clusters;
        match iterations {
            None => iterations = Some(iters),
            Some(prev) if prev != iters => {
                return Err(IrError::StreamExhausted {
                    stream: crate::StreamId(idx as u32),
                    iteration: prev.min(iters),
                })
            }
            Some(_) => {}
        }
    }
    Ok(iterations.unwrap_or(0))
}

/// Executes `kernel` for an explicit number of SIMD iterations.
///
/// # Errors
///
/// As [`execute`], plus exhaustion errors if `iterations` over-runs an input
/// stream.
pub fn execute_iters(
    kernel: &Kernel,
    params: &[Scalar],
    inputs: &[Vec<Scalar>],
    iterations: usize,
    cfg: &ExecConfig,
) -> Result<Vec<Vec<Scalar>>, IrError> {
    let opts = ExecOptions {
        params,
        sp_init: None,
        iterations: Some(iterations),
    };
    execute_with(kernel, &opts, inputs, cfg)
}

/// Full execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions<'a> {
    /// Uniform scalar parameters, matching [`Kernel::param_tys`].
    pub params: &'a [Scalar],
    /// Initial scratchpad contents, replicated into every cluster (a
    /// kernel-prologue table load, e.g. FFT twiddles or a Perlin permutation
    /// table). `None` leaves scratchpads unwritten.
    pub sp_init: Option<&'a [Scalar]>,
    /// Explicit SIMD iteration count; inferred from the first plain input
    /// stream when `None`.
    pub iterations: Option<usize>,
}

/// Executes `kernel` with full [`ExecOptions`].
///
/// Compiles an execution [`Tape`] and runs it; for repeated calls on the
/// same kernel, compile the tape once with [`Tape::compile`] and reuse it.
///
/// # Errors
///
/// As [`execute`].
pub fn execute_with(
    kernel: &Kernel,
    opts: &ExecOptions<'_>,
    inputs: &[Vec<Scalar>],
    cfg: &ExecConfig,
) -> Result<Vec<Vec<Scalar>>, IrError> {
    Tape::compile(kernel).execute_with(opts, inputs, cfg)
}

/// Executes `kernel` with the legacy tree-walk interpreter, inferring the
/// iteration count as [`execute`] does.
///
/// This is the slow reference semantics — kept as the differential-test
/// oracle for the compiled [`Tape`], not for production use.
///
/// # Errors
///
/// As [`execute`].
pub fn execute_legacy(
    kernel: &Kernel,
    params: &[Scalar],
    inputs: &[Vec<Scalar>],
    cfg: &ExecConfig,
) -> Result<Vec<Vec<Scalar>>, IrError> {
    let opts = ExecOptions {
        params,
        sp_init: None,
        iterations: None,
    };
    execute_with_legacy(kernel, &opts, inputs, cfg)
}

/// [`execute_with`] on the legacy tree-walk interpreter (the differential
/// oracle; see [`execute_legacy`]).
///
/// # Errors
///
/// As [`execute`].
pub fn execute_with_legacy(
    kernel: &Kernel,
    opts: &ExecOptions<'_>,
    inputs: &[Vec<Scalar>],
    cfg: &ExecConfig,
) -> Result<Vec<Vec<Scalar>>, IrError> {
    let iterations = match opts.iterations {
        Some(n) => n,
        None => infer_iterations(kernel, inputs, cfg)?,
    };
    let mut interp = Interp::new(kernel, opts.params, inputs, cfg)?;
    if let Some(init) = opts.sp_init {
        for (addr, &word) in init.iter().enumerate() {
            if addr >= cfg.sp_words {
                return Err(IrError::SpOutOfBounds {
                    at: ValueId(0),
                    addr: addr as i32,
                    capacity: cfg.sp_words,
                });
            }
            for c in 0..cfg.clusters {
                interp.sp[c][addr] = Some(word);
            }
        }
    }
    interp.run(iterations)
}

/// Word offsets of each stream-access op within its record, plus access
/// bookkeeping, precomputed once per kernel execution.
struct Interp<'a> {
    kernel: &'a Kernel,
    params: Vec<Scalar>,
    inputs: &'a [Vec<Scalar>],
    cfg: ExecConfig,
    clusters: usize,
    /// For each op that accesses a stream: its word offset within the record.
    word_offset: Vec<usize>,
    /// Runtime cursors for conditional input streams (in words).
    cond_cursor: Vec<usize>,
    /// Output buffers, indexed by output stream.
    outputs: Vec<Vec<Scalar>>,
    /// Per-cluster scratchpads (None = never written).
    sp: Vec<Vec<Option<Scalar>>>,
    /// Per-recurrence per-cluster state.
    recur_state: Vec<(ValueId, Vec<Scalar>)>,
    /// Op index -> index into `recur_state` (usize::MAX for non-Recur ops).
    recur_pos: Vec<usize>,
    /// Value lattice: vals[cluster][op].
    vals: Vec<Vec<Scalar>>,
}

impl<'a> Interp<'a> {
    fn new(
        kernel: &'a Kernel,
        params: &[Scalar],
        inputs: &'a [Vec<Scalar>],
        cfg: &ExecConfig,
    ) -> Result<Self, IrError> {
        if inputs.len() != kernel.inputs().len() {
            return Err(IrError::WrongInputCount {
                expected: kernel.inputs().len(),
                found: inputs.len(),
            });
        }
        // Check parameters.
        if params.len() != kernel.param_tys().len() {
            return Err(IrError::WrongInputCount {
                expected: kernel.param_tys().len(),
                found: params.len(),
            });
        }
        for (i, (&ty, p)) in kernel.param_tys().iter().zip(params).enumerate() {
            if p.ty() != ty {
                return Err(IrError::TypeMismatch {
                    at: ValueId(i as u32),
                    expected: ty,
                    found: p.ty(),
                });
            }
        }

        // Precompute word offsets for stream accesses.
        let mut in_seen = vec![0usize; kernel.inputs().len()];
        let mut out_seen = vec![0usize; kernel.outputs().len()];
        let mut word_offset = vec![0usize; kernel.ops().len()];
        for (i, op) in kernel.ops().iter().enumerate() {
            if let Some((s, dir)) = op.opcode.stream() {
                let seen = match dir {
                    StreamDir::Input => &mut in_seen[s.index()],
                    StreamDir::Output => &mut out_seen[s.index()],
                };
                word_offset[i] = *seen;
                *seen += 1;
            }
        }

        let clusters = cfg.clusters;
        let mut recur_pos = vec![usize::MAX; kernel.ops().len()];
        let recur_state: Vec<(ValueId, Vec<Scalar>)> = kernel
            .recurrences()
            .enumerate()
            .map(|(i, (r, _))| {
                let init = match &kernel.ops()[r.index()].opcode {
                    Opcode::Recur(init) => *init,
                    _ => unreachable!("recurrences() yields Recur ops"),
                };
                recur_pos[r.index()] = i;
                (r, vec![init; clusters])
            })
            .collect();

        Ok(Self {
            kernel,
            params: params.to_vec(),
            inputs,
            cfg: *cfg,
            clusters,
            word_offset,
            cond_cursor: vec![0; kernel.inputs().len()],
            outputs: kernel.outputs().iter().map(|_| Vec::new()).collect(),
            sp: vec![vec![None; cfg.sp_words]; clusters],
            recur_state,
            recur_pos,
            vals: vec![vec![Scalar::I32(0); kernel.ops().len()]; clusters],
        })
    }

    fn run(mut self, iterations: usize) -> Result<Vec<Vec<Scalar>>, IrError> {
        // Preallocate plain output buffers; reserve conditional ones to
        // their upper bound (every cluster active every iteration) so
        // cond-write pushes never reallocate mid-run.
        for (s, decl) in self.kernel.outputs().iter().enumerate() {
            let words = iterations * self.clusters * decl.record_width as usize;
            if !decl.conditional {
                self.outputs[s] = vec![Scalar::zero(decl.ty); words];
            } else {
                self.outputs[s].reserve(words);
            }
        }
        for iter in 0..iterations {
            self.run_iteration(iter)?;
        }
        Ok(self.outputs)
    }

    fn run_iteration(&mut self, iter: usize) -> Result<(), IrError> {
        let n_ops = self.kernel.ops().len();
        for i in 0..n_ops {
            self.eval_op(ValueId(i as u32), iter)?;
        }
        // Advance recurrences.
        for idx in 0..self.recur_state.len() {
            let (r, _) = self.recur_state[idx];
            let next = self
                .kernel
                .recur_next(r)
                .expect("validated kernels have bound recurrences");
            for c in 0..self.clusters {
                self.recur_state[idx].1[c] = self.vals[c][next.index()];
            }
        }
        Ok(())
    }

    fn eval_op(&mut self, v: ValueId, iter: usize) -> Result<(), IrError> {
        let op = &self.kernel.ops()[v.index()];
        let opcode = op.opcode.clone();
        let args = op.args.clone();
        match opcode {
            Opcode::Const(s) => self.broadcast(v, |_| s),
            Opcode::Param(idx, _) => {
                let s = self.params[idx as usize];
                self.broadcast(v, |_| s);
            }
            Opcode::IterIndex => self.broadcast(v, |_| Scalar::I32(iter as i32)),
            Opcode::ClusterId => self.broadcast(v, |c| Scalar::I32(c as i32)),
            Opcode::ClusterCount => {
                let c = self.clusters as i32;
                self.broadcast(v, |_| Scalar::I32(c));
            }
            Opcode::Recur(_) => {
                let idx = self.recur_pos[v.index()];
                for c in 0..self.clusters {
                    self.vals[c][v.index()] = self.recur_state[idx].1[c];
                }
            }
            Opcode::Read(s) => {
                let width = self.kernel.inputs()[s.index()].record_width as usize;
                let offset = self.word_offset[v.index()];
                for c in 0..self.clusters {
                    let record = iter * self.clusters + c;
                    let idx = record * width + offset;
                    let word = self.inputs[s.index()].get(idx).copied().ok_or(
                        IrError::StreamExhausted {
                            stream: s,
                            iteration: iter,
                        },
                    )?;
                    self.vals[c][v.index()] = word;
                }
            }
            Opcode::Write(s) => {
                let width = self.kernel.outputs()[s.index()].record_width as usize;
                let offset = self.word_offset[v.index()];
                for c in 0..self.clusters {
                    let record = iter * self.clusters + c;
                    let idx = record * width + offset;
                    let val = self.vals[c][args[0].index()];
                    self.outputs[s.index()][idx] = val;
                }
            }
            Opcode::CondRead(s) => {
                for c in 0..self.clusters {
                    let pred = self.vals[c][args[0].index()].is_true();
                    let ty = self.kernel.inputs()[s.index()].ty;
                    self.vals[c][v.index()] = if pred {
                        let cursor = &mut self.cond_cursor[s.index()];
                        let word = self.inputs[s.index()].get(*cursor).copied().ok_or(
                            IrError::StreamExhausted {
                                stream: s,
                                iteration: iter,
                            },
                        )?;
                        *cursor += 1;
                        word
                    } else {
                        Scalar::zero(ty)
                    };
                }
            }
            Opcode::CondWrite(s) => {
                for c in 0..self.clusters {
                    if self.vals[c][args[0].index()].is_true() {
                        let val = self.vals[c][args[1].index()];
                        self.outputs[s.index()].push(val);
                    }
                }
            }
            Opcode::SpRead(ty) => {
                for c in 0..self.clusters {
                    let addr = self.vals[c][args[0].index()]
                        .as_i32()
                        .expect("sp addresses are i32 by construction");
                    let slot = self.sp_slot(c, addr, v)?;
                    let stored = self.sp[c][slot].unwrap_or(Scalar::zero(ty));
                    if stored.ty() != ty {
                        return Err(IrError::TypeMismatch {
                            at: v,
                            expected: ty,
                            found: stored.ty(),
                        });
                    }
                    self.vals[c][v.index()] = stored;
                }
            }
            Opcode::SpWrite => {
                for c in 0..self.clusters {
                    let addr = self.vals[c][args[0].index()]
                        .as_i32()
                        .expect("sp addresses are i32 by construction");
                    let slot = self.sp_slot(c, addr, v)?;
                    self.sp[c][slot] = Some(self.vals[c][args[1].index()]);
                }
            }
            Opcode::Comm => {
                let mut received = vec![Scalar::I32(0); self.clusters];
                for (c, slot) in received.iter_mut().enumerate() {
                    let src = self.vals[c][args[1].index()]
                        .as_i32()
                        .expect("comm sources are i32 by construction");
                    if src < 0 || src as usize >= self.clusters {
                        return Err(IrError::BadCommSource {
                            at: v,
                            src,
                            clusters: self.clusters,
                        });
                    }
                    *slot = self.vals[src as usize][args[0].index()];
                }
                for c in 0..self.clusters {
                    self.vals[c][v.index()] = received[c];
                }
            }
            _ => {
                // Pure arithmetic.
                for c in 0..self.clusters {
                    let a: Vec<Scalar> = args.iter().map(|&x| self.vals[c][x.index()]).collect();
                    self.vals[c][v.index()] = eval_arith(&opcode, &a, v)?;
                }
            }
        }
        Ok(())
    }

    fn broadcast(&mut self, v: ValueId, f: impl Fn(usize) -> Scalar) {
        for c in 0..self.clusters {
            self.vals[c][v.index()] = f(c);
        }
    }

    fn sp_slot(&self, _cluster: usize, addr: i32, at: ValueId) -> Result<usize, IrError> {
        if addr < 0 || addr as usize >= self.cfg.sp_words {
            return Err(IrError::SpOutOfBounds {
                at,
                addr,
                capacity: self.cfg.sp_words,
            });
        }
        Ok(addr as usize)
    }
}

/// Evaluates a pure arithmetic opcode on scalar operands.
fn eval_arith(opcode: &Opcode, a: &[Scalar], at: ValueId) -> Result<Scalar, IrError> {
    use Opcode::*;
    use Scalar::{F32, I32};
    let bool_i32 = |b: bool| I32(i32::from(b));
    Ok(match (opcode, a) {
        (Add, [I32(x), I32(y)]) => I32(x.wrapping_add(*y)),
        (Add, [F32(x), F32(y)]) => F32(x + y),
        (Sub, [I32(x), I32(y)]) => I32(x.wrapping_sub(*y)),
        (Sub, [F32(x), F32(y)]) => F32(x - y),
        (Mul, [I32(x), I32(y)]) => I32(x.wrapping_mul(*y)),
        (Mul, [F32(x), F32(y)]) => F32(x * y),
        (Div, [I32(_), I32(0)]) => return Err(IrError::DivideByZero(at)),
        (Div, [I32(x), I32(y)]) => I32(x.wrapping_div(*y)),
        (Div, [F32(x), F32(y)]) => F32(x / y),
        (Sqrt, [F32(x)]) => F32(x.sqrt()),
        (Min, [I32(x), I32(y)]) => I32(*x.min(y)),
        (Min, [F32(x), F32(y)]) => F32(x.min(*y)),
        (Max, [I32(x), I32(y)]) => I32(*x.max(y)),
        (Max, [F32(x), F32(y)]) => F32(x.max(*y)),
        (Neg, [I32(x)]) => I32(x.wrapping_neg()),
        (Neg, [F32(x)]) => F32(-x),
        (Abs, [I32(x)]) => I32(x.wrapping_abs()),
        (Abs, [F32(x)]) => F32(x.abs()),
        (Floor, [F32(x)]) => F32(x.floor()),
        (And, [I32(x), I32(y)]) => I32(x & y),
        (Or, [I32(x), I32(y)]) => I32(x | y),
        (Xor, [I32(x), I32(y)]) => I32(x ^ y),
        (Shl, [I32(x), I32(y)]) => I32(x.wrapping_shl(*y as u32)),
        (Shr, [I32(x), I32(y)]) => I32(x.wrapping_shr(*y as u32)),
        (Eq, [x, y]) => bool_i32(scalar_eq(x, y)),
        (Ne, [x, y]) => bool_i32(!scalar_eq(x, y)),
        (Lt, [I32(x), I32(y)]) => bool_i32(x < y),
        (Lt, [F32(x), F32(y)]) => bool_i32(x < y),
        (Le, [I32(x), I32(y)]) => bool_i32(x <= y),
        (Le, [F32(x), F32(y)]) => bool_i32(x <= y),
        (Select, [cond, x, y]) => {
            if cond.is_true() {
                *x
            } else {
                *y
            }
        }
        (ItoF, [I32(x)]) => F32(*x as f32),
        (FtoI, [F32(x)]) => I32(*x as i32),
        (op, args) => {
            // Builder type checking makes this unreachable for built
            // kernels; report a type error rather than panic for kernels
            // constructed by other means.
            let found = args.first().map_or(Ty::I32, Scalar::ty);
            let _ = op;
            return Err(IrError::TypeMismatch {
                at,
                expected: Ty::F32,
                found,
            });
        }
    })
}

fn scalar_eq(x: &Scalar, y: &Scalar) -> bool {
    match (x, y) {
        (Scalar::I32(a), Scalar::I32(b)) => a == b,
        (Scalar::F32(a), Scalar::F32(b)) => a == b,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelBuilder;

    fn cfg(c: usize) -> ExecConfig {
        ExecConfig::with_clusters(c)
    }

    #[test]
    fn saxpy_computes() {
        let mut b = KernelBuilder::new("saxpy");
        let xs = b.in_stream(Ty::F32);
        let ys = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let a = b.param(Ty::F32);
        let x = b.read(xs);
        let y = b.read(ys);
        let ax = b.mul(a, x);
        let r = b.add(ax, y);
        b.write(out, r);
        let k = b.finish().unwrap();

        let xs: Vec<Scalar> = (0..16).map(|i| Scalar::F32(i as f32)).collect();
        let ys: Vec<Scalar> = (0..16).map(|i| Scalar::F32(100.0 + i as f32)).collect();
        let outs = execute(&k, &[Scalar::F32(2.0)], &[xs, ys], &cfg(8)).unwrap();
        for i in 0..16 {
            assert_eq!(outs[0][i], Scalar::F32(2.0 * i as f32 + 100.0 + i as f32));
        }
    }

    #[test]
    fn iteration_inference_rejects_ragged() {
        let mut b = KernelBuilder::new("id");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        b.write(out, x);
        let k = b.finish().unwrap();
        // 10 words is not a multiple of 8 clusters.
        let input: Vec<Scalar> = (0..10).map(Scalar::I32).collect();
        let err = execute(&k, &[], &[input], &cfg(8)).unwrap_err();
        assert!(matches!(err, IrError::RaggedStream { .. }));
    }

    #[test]
    fn recurrence_accumulates_per_cluster() {
        // Running sum over each cluster's records.
        let mut b = KernelBuilder::new("prefix");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let acc = b.recurrence(Scalar::I32(0));
        let x = b.read(s);
        let sum = b.add(acc, x);
        b.bind_next(acc, sum);
        b.write(out, sum);
        let k = b.finish().unwrap();

        // 2 clusters, 4 iterations: cluster 0 sees 0,2,4,6; cluster 1 sees
        // 1,3,5,7.
        let input: Vec<Scalar> = (0..8).map(Scalar::I32).collect();
        let outs = execute(&k, &[], &[input], &cfg(2)).unwrap();
        let got: Vec<i32> = outs[0].iter().map(|s| s.as_i32().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 4, 6, 9, 12, 16]);
    }

    #[test]
    fn comm_rotates_between_clusters() {
        // Each cluster reads from its left neighbor (c + C - 1) % C.
        let mut b = KernelBuilder::new("rotate");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let cid = b.cluster_id();
        let cc = b.cluster_count();
        let one = b.const_i(1);
        let sum = b.add(cid, cc);
        let left = b.sub(sum, one);
        let cc2 = b.cluster_count();
        let q = b.div(left, cc2);
        let qc = b.mul(q, cc2);
        let src = b.sub(left, qc); // (cid + C - 1) mod C
        let v = b.comm(x, src);
        b.write(out, v);
        let k = b.finish().unwrap();

        let input: Vec<Scalar> = (0..4).map(Scalar::I32).collect();
        let outs = execute(&k, &[], &[input], &cfg(4)).unwrap();
        let got: Vec<i32> = outs[0].iter().map(|s| s.as_i32().unwrap()).collect();
        assert_eq!(got, vec![3, 0, 1, 2]);
    }

    #[test]
    fn cond_streams_compact_in_cluster_order() {
        // Keep only even inputs.
        let mut b = KernelBuilder::new("compact");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let one = b.const_i(1);
        let two = b.const_i(2);
        let h = b.div(x, two);
        let h2 = b.mul(h, two);
        let odd = b.sub(x, h2);
        let even = b.sub(one, odd);
        b.cond_write(out, even, x);
        let k = b.finish().unwrap();

        let input: Vec<Scalar> = (0..16).map(Scalar::I32).collect();
        let outs = execute(&k, &[], &[input], &cfg(4)).unwrap();
        let got: Vec<i32> = outs[0].iter().map(|s| s.as_i32().unwrap()).collect();
        assert_eq!(got, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn cond_read_distributes() {
        // Every cluster with cid < 2 pops an element.
        let mut b = KernelBuilder::new("expand");
        let data = b.in_stream(Ty::I32);
        let trigger = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let _t = b.read(trigger); // drives the iteration count
        let cid = b.cluster_id();
        let two = b.const_i(2);
        let pred = b.lt(cid, two);
        let v = b.cond_read(data, pred);
        b.write(out, v);
        let k = b.finish().unwrap();

        let data: Vec<Scalar> = (100..104).map(Scalar::I32).collect();
        let trigger: Vec<Scalar> = vec![Scalar::I32(0); 8]; // 2 iterations of 4
        let outs = execute(&k, &[], &[data, trigger], &cfg(4)).unwrap();
        let got: Vec<i32> = outs[0].iter().map(|s| s.as_i32().unwrap()).collect();
        assert_eq!(got, vec![100, 101, 0, 0, 102, 103, 0, 0]);
    }

    #[test]
    fn scratchpad_round_trips_per_cluster() {
        let mut b = KernelBuilder::new("sp");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        b.require_sp(4);
        let x = b.read(s);
        let addr = b.const_i(2);
        b.sp_write(addr, x);
        let y = b.sp_read(addr, Ty::F32);
        b.write(out, y);
        let k = b.finish().unwrap();

        let input: Vec<Scalar> = (0..8).map(|i| Scalar::F32(i as f32)).collect();
        let outs = execute(&k, &[], std::slice::from_ref(&input), &cfg(8)).unwrap();
        assert_eq!(outs[0], input);
    }

    #[test]
    fn sp_out_of_bounds_is_reported() {
        let mut b = KernelBuilder::new("oob");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let addr = b.const_i(10_000);
        b.sp_write(addr, x);
        let y = b.sp_read(addr, Ty::I32);
        b.write(out, y);
        let k = b.finish().unwrap();
        let input: Vec<Scalar> = (0..8).map(Scalar::I32).collect();
        let err = execute(&k, &[], &[input], &cfg(8)).unwrap_err();
        assert!(matches!(err, IrError::SpOutOfBounds { .. }));
    }

    #[test]
    fn integer_divide_by_zero_is_reported() {
        let mut b = KernelBuilder::new("divz");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let zero = b.const_i(0);
        let q = b.div(x, zero);
        b.write(out, q);
        let k = b.finish().unwrap();
        let input: Vec<Scalar> = (0..8).map(Scalar::I32).collect();
        let err = execute(&k, &[], &[input], &cfg(8)).unwrap_err();
        assert_eq!(err, IrError::DivideByZero(ValueId(2)));
    }

    #[test]
    fn param_type_is_checked() {
        let mut b = KernelBuilder::new("p");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let p = b.param(Ty::F32);
        let x = b.read(s);
        let r = b.mul(p, x);
        b.write(out, r);
        let k = b.finish().unwrap();
        let input: Vec<Scalar> = vec![Scalar::F32(1.0); 8];
        let err = execute(&k, &[Scalar::I32(3)], &[input], &cfg(8)).unwrap_err();
        assert!(matches!(err, IrError::TypeMismatch { .. }));
    }

    #[test]
    fn multi_word_records_stripe_correctly() {
        // Complex magnitude-squared: records of (re, im).
        let mut b = KernelBuilder::new("mag2");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let re = b.read(s);
        let im = b.read(s);
        let rr = b.mul(re, re);
        let ii = b.mul(im, im);
        let m = b.add(rr, ii);
        b.write(out, m);
        let k = b.finish().unwrap();

        // 4 records of 2 words on 2 clusters -> 2 iterations.
        let input: Vec<Scalar> = vec![
            Scalar::F32(1.0),
            Scalar::F32(2.0),
            Scalar::F32(3.0),
            Scalar::F32(4.0),
            Scalar::F32(0.0),
            Scalar::F32(5.0),
            Scalar::F32(6.0),
            Scalar::F32(0.0),
        ];
        let outs = execute(&k, &[], &[input], &cfg(2)).unwrap();
        let got: Vec<f32> = outs[0].iter().map(|s| s.as_f32().unwrap()).collect();
        assert_eq!(got, vec![5.0, 25.0, 25.0, 36.0]);
    }

    #[test]
    fn iter_index_is_global() {
        let mut b = KernelBuilder::new("iters");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let _x = b.read(s);
        let i = b.iter_index();
        b.write(out, i);
        let k = b.finish().unwrap();
        let input: Vec<Scalar> = vec![Scalar::I32(0); 8];
        let outs = execute(&k, &[], &[input], &cfg(4)).unwrap();
        let got: Vec<i32> = outs[0].iter().map(|s| s.as_i32().unwrap()).collect();
        assert_eq!(got, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn zero_iteration_execution_is_empty() {
        let mut b = KernelBuilder::new("empty");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        b.write(out, x);
        let k = b.finish().unwrap();
        let outs = execute(&k, &[], &[vec![]], &cfg(8)).unwrap();
        assert!(outs[0].is_empty());
    }
}
