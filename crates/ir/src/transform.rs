//! Kernel transformations: loop unrolling.
//!
//! Unrolling converts data-level parallelism into instruction-level
//! parallelism (Section 5.1: "abundant data-level parallelism that can be
//! converted to ILP with software pipelining and loop unrolling"). Each
//! unrolled iteration processes `factor` consecutive records per cluster.

use crate::{IrError, Kernel, KernelBuilder, Opcode, StreamId, ValueId};
use std::collections::HashMap;

/// Unrolls `kernel` by `factor`: the resulting kernel's loop body contains
/// `factor` copies of the original body, with recurrences chained through the
/// copies and `IterIndex` rescaled to preserve per-record addressing
/// (`iter * factor + copy`).
///
/// The unrolled kernel's streams have records `factor` times wider; the
/// record-to-cluster assignment therefore changes, exactly as it does on real
/// hardware when a compiler unrolls a stream loop. Elementwise kernels
/// compute identical outputs; kernels with cross-record state (recurrences,
/// cluster-indexed logic) see their records in a different grouping, which is
/// why unrolling is a *scheduling* decision and functional simulation always
/// runs the un-unrolled kernel.
///
/// # Errors
///
/// Propagates any structural validation error from rebuilding the kernel
/// (none are expected for kernels produced by [`KernelBuilder`]).
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn unroll(kernel: &Kernel, factor: u32) -> Result<Kernel, IrError> {
    assert!(factor >= 1, "unroll factor must be at least 1");
    if factor == 1 {
        return Ok(kernel.clone());
    }

    let mut b = KernelBuilder::new(format!("{}(x{})", kernel.name(), factor));
    b.require_sp(kernel.sp_words());
    let in_ids: Vec<StreamId> = kernel.inputs().iter().map(|d| b.in_stream(d.ty)).collect();
    let out_ids: Vec<StreamId> = kernel
        .outputs()
        .iter()
        .map(|d| b.out_stream(d.ty))
        .collect();
    let param_ids: Vec<ValueId> = kernel.param_tys().iter().map(|&ty| b.param(ty)).collect();

    // map[(copy, old_value)] -> new value
    let mut map: HashMap<(u32, ValueId), ValueId> = HashMap::new();
    // New recurrence op per original recurrence (created in copy 0).
    let mut new_recur: HashMap<ValueId, ValueId> = HashMap::new();

    for copy in 0..factor {
        for (i, op) in kernel.ops().iter().enumerate() {
            let old = ValueId(i as u32);
            let arg = |m: &HashMap<(u32, ValueId), ValueId>, a: ValueId| m[&(copy, a)];
            let new = match &op.opcode {
                Opcode::Const(s) => Some(b.constant(*s)),
                Opcode::Param(idx, _) => Some(param_ids[*idx as usize]),
                Opcode::IterIndex => {
                    // iter*factor + copy keeps record addressing intact.
                    let base = b.iter_index();
                    let f = b.const_i(factor as i32);
                    let scaled = b.mul(base, f);
                    let off = b.const_i(copy as i32);
                    Some(b.add(scaled, off))
                }
                Opcode::ClusterId => Some(b.cluster_id()),
                Opcode::ClusterCount => Some(b.cluster_count()),
                Opcode::Recur(init) => {
                    if copy == 0 {
                        let r = b.recurrence(*init);
                        new_recur.insert(old, r);
                        Some(r)
                    } else {
                        // Later copies see the previous copy's next value.
                        let next = kernel
                            .recur_next(old)
                            .expect("validated kernels have bound recurrences");
                        Some(map[&(copy - 1, next)])
                    }
                }
                Opcode::Read(s) => Some(b.read(in_ids[s.index()])),
                Opcode::Write(s) => {
                    b.write(out_ids[s.index()], arg(&map, op.args[0]));
                    None
                }
                Opcode::CondRead(s) => Some(b.cond_read(in_ids[s.index()], arg(&map, op.args[0]))),
                Opcode::CondWrite(s) => {
                    b.cond_write(
                        out_ids[s.index()],
                        arg(&map, op.args[0]),
                        arg(&map, op.args[1]),
                    );
                    None
                }
                Opcode::SpRead(ty) => Some(b.sp_read(arg(&map, op.args[0]), *ty)),
                Opcode::SpWrite => {
                    b.sp_write(arg(&map, op.args[0]), arg(&map, op.args[1]));
                    None
                }
                Opcode::Comm => Some(b.comm(arg(&map, op.args[0]), arg(&map, op.args[1]))),
                Opcode::Add => Some(b.add(arg(&map, op.args[0]), arg(&map, op.args[1]))),
                Opcode::Sub => Some(b.sub(arg(&map, op.args[0]), arg(&map, op.args[1]))),
                Opcode::Mul => Some(b.mul(arg(&map, op.args[0]), arg(&map, op.args[1]))),
                Opcode::Div => Some(b.div(arg(&map, op.args[0]), arg(&map, op.args[1]))),
                Opcode::Min => Some(b.min(arg(&map, op.args[0]), arg(&map, op.args[1]))),
                Opcode::Max => Some(b.max(arg(&map, op.args[0]), arg(&map, op.args[1]))),
                Opcode::And => Some(b.and(arg(&map, op.args[0]), arg(&map, op.args[1]))),
                Opcode::Or => Some(b.or(arg(&map, op.args[0]), arg(&map, op.args[1]))),
                Opcode::Xor => Some(b.xor(arg(&map, op.args[0]), arg(&map, op.args[1]))),
                Opcode::Shl => Some(b.shl(arg(&map, op.args[0]), arg(&map, op.args[1]))),
                Opcode::Shr => Some(b.shr(arg(&map, op.args[0]), arg(&map, op.args[1]))),
                Opcode::Eq => Some(b.eq(arg(&map, op.args[0]), arg(&map, op.args[1]))),
                Opcode::Ne => Some(b.ne(arg(&map, op.args[0]), arg(&map, op.args[1]))),
                Opcode::Lt => Some(b.lt(arg(&map, op.args[0]), arg(&map, op.args[1]))),
                Opcode::Le => Some(b.le(arg(&map, op.args[0]), arg(&map, op.args[1]))),
                Opcode::Select => Some(b.select(
                    arg(&map, op.args[0]),
                    arg(&map, op.args[1]),
                    arg(&map, op.args[2]),
                )),
                Opcode::Sqrt => Some(b.sqrt(arg(&map, op.args[0]))),
                Opcode::Neg => Some(b.neg(arg(&map, op.args[0]))),
                Opcode::Abs => Some(b.abs(arg(&map, op.args[0]))),
                Opcode::Floor => Some(b.floor(arg(&map, op.args[0]))),
                Opcode::ItoF => Some(b.itof(arg(&map, op.args[0]))),
                Opcode::FtoI => Some(b.ftoi(arg(&map, op.args[0]))),
            };
            if let Some(v) = new {
                map.insert((copy, old), v);
            }
            // Writes produce no value; nothing may reference them, so no
            // mapping is needed.
        }
    }

    // Close the loop: each new recurrence's next is the last copy's next.
    for (old_r, new_r) in &new_recur {
        let next = kernel
            .recur_next(*old_r)
            .expect("validated kernels have bound recurrences");
        b.bind_next(*new_r, map[&(factor - 1, next)]);
    }

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, ExecConfig, KernelBuilder, Scalar, Ty};

    fn elementwise() -> Kernel {
        let mut b = KernelBuilder::new("poly");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let x = b.read(s);
        let x2 = b.mul(x, x);
        let c = b.const_f(3.0);
        let y = b.add(x2, c);
        b.write(out, y);
        b.finish().unwrap()
    }

    #[test]
    fn unroll_by_one_is_identity() {
        let k = elementwise();
        let u = unroll(&k, 1).unwrap();
        assert_eq!(k, u);
    }

    #[test]
    fn unroll_widens_records() {
        let k = elementwise();
        let u = unroll(&k, 4).unwrap();
        assert_eq!(u.inputs()[0].record_width, 4);
        assert_eq!(u.outputs()[0].record_width, 4);
        assert_eq!(u.stats().alu_ops, 4 * k.stats().alu_ops);
    }

    #[test]
    fn elementwise_unroll_preserves_outputs() {
        let k = elementwise();
        let input: Vec<Scalar> = (0..32).map(|i| Scalar::F32(i as f32)).collect();
        let cfg = ExecConfig::with_clusters(4);
        let base = execute(&k, &[], std::slice::from_ref(&input), &cfg).unwrap();
        for factor in [2u32, 4, 8] {
            let u = unroll(&k, factor).unwrap();
            let got = execute(&u, &[], std::slice::from_ref(&input), &cfg).unwrap();
            assert_eq!(got, base, "factor {factor}");
        }
    }

    #[test]
    fn recurrences_chain_through_copies() {
        // Sum-reduce everything into a final conditional write.
        let mut b = KernelBuilder::new("sum");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let acc = b.recurrence(Scalar::I32(0));
        let x = b.read(s);
        let sum = b.add(acc, x);
        b.bind_next(acc, sum);
        b.write(out, sum);
        let k = b.finish().unwrap();

        let u = unroll(&k, 2).unwrap();
        assert_eq!(u.recurrences().count(), 1);

        // Per-cluster totals (last written element) must match: the total of
        // a cluster's records is permutation-invariant only across the same
        // record set, so check with C=1 where both orders coincide.
        let input: Vec<Scalar> = (1..=8).map(Scalar::I32).collect();
        let cfg = ExecConfig::with_clusters(1);
        let base = execute(&k, &[], std::slice::from_ref(&input), &cfg).unwrap();
        let got = execute(&u, &[], &[input], &cfg).unwrap();
        assert_eq!(base[0].last(), got[0].last());
        assert_eq!(base[0].last().unwrap().as_i32(), Some(36));
    }

    #[test]
    fn iter_index_is_rescaled() {
        let mut b = KernelBuilder::new("idx");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let _x = b.read(s);
        let i = b.iter_index();
        b.write(out, i);
        let k = b.finish().unwrap();
        let u = unroll(&k, 2).unwrap();

        let input: Vec<Scalar> = vec![Scalar::I32(0); 8];
        let cfg = ExecConfig::with_clusters(2);
        let got = execute(&u, &[], &[input], &cfg).unwrap();
        let vals: Vec<i32> = got[0].iter().map(|s| s.as_i32().unwrap()).collect();
        // Cluster 0 record pair (0,1), cluster 1 record pair (2,3) in
        // unrolled iteration 0, then (4,5),(6,7) in iteration 1 — the
        // rescaled index is iter*2+copy.
        assert_eq!(vals, vec![0, 1, 0, 1, 2, 3, 2, 3]);
    }

    #[test]
    fn params_are_shared_across_copies() {
        let mut b = KernelBuilder::new("scale");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let p = b.param(Ty::F32);
        let x = b.read(s);
        let y = b.mul(p, x);
        b.write(out, y);
        let k = b.finish().unwrap();
        let u = unroll(&k, 4).unwrap();
        assert_eq!(u.param_tys().len(), 1);
        let input: Vec<Scalar> = (0..16).map(|i| Scalar::F32(i as f32)).collect();
        let cfg = ExecConfig::with_clusters(2);
        let got = execute(&u, &[Scalar::F32(10.0)], &[input], &cfg).unwrap();
        assert_eq!(got[0][7], Scalar::F32(70.0));
    }
}
