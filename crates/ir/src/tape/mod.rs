//! Compiled execution tape — the interpreter's fast path.
//!
//! [`Tape::compile`] validates and lowers a kernel **once** into a flat
//! instruction list with pre-resolved operand slots, precomputed stream
//! record widths/word offsets, a `ValueId -> recurrence slot` index, and
//! opcodes pre-specialized by static type. Execution then runs
//! strip-at-a-time over untagged 32-bit value lanes in structure-of-arrays
//! layout (`vals[value * C + cluster]`), so the per-iteration loop is
//! clone-free, allocation-free, and dispatches on a dense enum.
//!
//! On top of that v1 base, this module adds three compile-time/run-time
//! specializations (all default-on, all individually controllable via
//! [`TapeConfig`]):
//!
//! * **Fused superinstructions** ([`fuse`]): hot two/three-instruction
//!   chains — multiply-accumulate shapes, op-into-write, read-into-op,
//!   const-operand binaries — collapse into single tape instructions,
//!   decided once at compile time. Counted by `tape.fused_ops`.
//! * **Lane-specialized dispatch** ([`exec`]): the step loop is
//!   monomorphized over the common cluster counts (1, 4, 8, 16) so the
//!   compiler unrolls and vectorizes fixed-width lane loops; other widths
//!   use a runtime-width generic instantiation.
//! * **Strip-parallel execution** ([`exec`]): kernels whose iterations are
//!   provably independent (no recurrences, conditional streams, or
//!   scratchpad writes) may partition their iteration range across scoped
//!   worker threads drawing permits from the process-wide
//!   [`stream_pool`] budget. Results and errors are bit-identical to the
//!   serial schedule. Counted by `tape.strips` / `tape.strip_fallback`.
//!
//! Iteration-invariant ops (constants, params, cluster ids) are hoisted
//! into a prologue executed once per kernel call.
//!
//! The legacy tree-walk interpreter ([`crate::execute_legacy`]) stays as
//! the differential-test oracle; the tape reproduces its observable
//! behavior exactly, including error values and error ordering. The one
//! semantic gap is the legacy interpreter's *dynamic* typing of input
//! stream words: when an input word's runtime type disagrees with the
//! stream declaration, the tape falls back to the oracle wholesale rather
//! than guess.

mod check;
mod exec;
mod fuse;
mod instr;
pub(crate) mod native;
mod scratch;

use crate::interp::{execute_with_legacy, infer_iterations_decls, ExecConfig, ExecOptions};
use crate::{IrError, Kernel, Opcode, Scalar, Ty, ValueId};
use instr::{bits_of, Instr, RecurSlot};
use scratch::Scratchpad;

pub use check::{TapeCheckKind, TapeFinding};

#[doc(hidden)]
pub use check::TapeMutation;
#[doc(hidden)]
pub use exec::probe_planned_strips;

/// Whether every [`Tape::compile`] should be translation-validated, with
/// error-severity findings turned into a panic. Defaults to on in debug
/// builds and off in release; the `STREAM_TAPE_VALIDATE` environment
/// variable (`on`/`1`/`true` or `off`/`0`/`false`) overrides either way.
fn validate_on_compile() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("STREAM_TAPE_VALIDATE") {
        Ok(v) => match v.as_str() {
            "on" | "1" | "true" => true,
            "off" | "0" | "false" => false,
            other => {
                if cfg!(debug_assertions) {
                    eprintln!(
                        "stream-ir: unrecognized STREAM_TAPE_VALIDATE value {other:?} \
                         (expected on/1/true or off/0/false); using the default"
                    );
                }
                cfg!(debug_assertions)
            }
        },
        Err(_) => cfg!(debug_assertions),
    })
}

/// How the executor's per-lane loops are instantiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneMode {
    /// Monomorphize over the common cluster counts (1, 4, 8, 16); other
    /// widths fall back to the generic instantiation. The default.
    Specialized,
    /// Always use the runtime-width generic loop (the v1 behavior).
    Generic,
}

/// Whether eligible kernels may execute iteration strips on worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StripMode {
    /// Strip-parallelize when the kernel is eligible, the work is large
    /// enough to amortize thread spawns, and the process-wide permit pool
    /// grants workers. The default. The `STREAM_TAPE_STRIPS` environment
    /// variable (`on`/`force` or `off`/`serial`) overrides Auto only.
    Auto,
    /// Never spawn workers (the v1 behavior).
    Serial,
    /// Always partition eligible kernels (up to 4 strips), bypassing both
    /// the work threshold and the permit pool. For determinism testing.
    Force,
}

/// Whether hot tapes may be compiled to native code (tier 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeMode {
    /// Compile a tape natively once it has proven hot (enough executes,
    /// enough work per call) and it passes translation validation; fall
    /// back to the interpreter otherwise. The default. The
    /// `STREAM_TAPE_NATIVE` environment variable (`on`/`force` or `off`)
    /// overrides Auto only, mirroring `STREAM_TAPE_VALIDATE`.
    Auto,
    /// Never invoke the native backend.
    Off,
    /// Build at first execute, bypassing the warm-up gate (build/load
    /// failures still fall back, diagnosed once). For determinism and
    /// benchmark testing.
    Force,
}

/// Compile- and run-time knobs for [`Tape::compile_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeConfig {
    /// Run the peephole fusion pass at compile time.
    pub fuse: bool,
    /// Lane-loop instantiation strategy.
    pub lanes: LaneMode,
    /// Strip-parallel execution policy.
    pub strips: StripMode,
    /// Allow serial macro-batching (several iterations per dispatch) for
    /// lane-topology-neutral kernels.
    pub batch: bool,
    /// Rewrite plain stream accesses to a planar (structure-of-arrays)
    /// layout: inputs touched only by plain reads are transposed into
    /// per-(stream, offset) planes at call entry, turning strided lane
    /// gathers and scatters into contiguous row copies. Off by default:
    /// on strips that fit in L1 the edge transposes cost more than the
    /// strided gathers they replace (measured ~3.7us loss on fft_1k), so
    /// this only pays for wide-record kernels whose working set spills.
    pub planar: bool,
    /// Native (tier-3) backend policy.
    pub native: NativeMode,
}

impl Default for TapeConfig {
    fn default() -> Self {
        Self {
            fuse: true,
            lanes: LaneMode::Specialized,
            strips: StripMode::Auto,
            batch: true,
            planar: false,
            native: NativeMode::Auto,
        }
    }
}

impl TapeConfig {
    /// The v1 tape's behavior: no fusion, generic lane loops, strictly
    /// serial, one iteration per dispatch. Kept as the benchmark baseline
    /// for the v2-over-v1 speedup gate.
    pub fn v1_baseline() -> Self {
        Self {
            fuse: false,
            lanes: LaneMode::Generic,
            strips: StripMode::Serial,
            batch: false,
            planar: false,
            native: NativeMode::Off,
        }
    }
}

/// A kernel lowered once into a flat, type-specialized instruction tape.
///
/// Compile with [`Tape::compile`], then run any number of strips with
/// [`Tape::execute`]/[`Tape::execute_with`] — the per-call cost is pure
/// execution, with no per-iteration cloning or dispatch on the tree IR.
/// The tape is cluster-count independent: one compile serves every `C`.
///
/// # Examples
///
/// ```
/// use stream_ir::{ExecConfig, KernelBuilder, Scalar, Tape, Ty};
///
/// let mut b = KernelBuilder::new("double");
/// let s = b.in_stream(Ty::I32);
/// let out = b.out_stream(Ty::I32);
/// let x = b.read(s);
/// let two = b.const_i(2);
/// let y = b.mul(x, two);
/// b.write(out, y);
/// let tape = Tape::compile(&b.finish()?);
///
/// let input: Vec<Scalar> = (0..16).map(Scalar::I32).collect();
/// let outs = tape.execute(&[], &[input], &ExecConfig::with_clusters(8))?;
/// assert_eq!(outs[0][3], Scalar::I32(6));
/// # Ok::<(), stream_ir::IrError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tape {
    kernel: Kernel,
    /// Iteration-invariant instructions, run once per kernel call.
    prologue: Vec<Instr>,
    /// The per-iteration loop body, in program order.
    body: Vec<Instr>,
    recurs: Vec<RecurSlot>,
    n_vals: usize,
    uses_sp: bool,
    /// Fusion rewrites applied at compile time.
    fused: usize,
    /// Iterations are provably independent: no recurrences, conditional
    /// streams, or scratchpad writes survive in the final body.
    strip_eligible: bool,
    /// Strip-independent *and* lane-topology neutral: nothing observes the
    /// cluster index/count, iteration number, comm topology, or scratchpad,
    /// so consecutive iterations may execute as one wide dispatch.
    batchable: bool,
    /// Planar layout rewrite applied ([`TapeConfig::planar`]).
    planar: bool,
    /// Per input stream: base index of its planes in the call-entry planar
    /// input store, or `u32::MAX` if the stream keeps its raw layout.
    in_plane_base: Vec<u32>,
    n_in_planes: usize,
    /// Per output stream: base plane index for plain outputs, `u32::MAX`
    /// for conditional ones (which use push-only storage).
    out_plane_base: Vec<u32>,
    config: TapeConfig,
    /// Native-backend state, shared by clones of this compile (warm-up
    /// counter plus the once-decided module-or-fallback slot).
    native: std::sync::Arc<native::NativeCell>,
}

impl Tape {
    /// Lowers `kernel` to an execution tape with the default
    /// [`TapeConfig`]. Infallible for kernels built with
    /// [`crate::KernelBuilder`] (any type inconsistency lowers to a
    /// runtime fault instruction, matching the legacy interpreter).
    pub fn compile(kernel: &Kernel) -> Self {
        Self::compile_with(kernel, TapeConfig::default())
    }

    /// Lowers `kernel` with explicit compile/execution knobs.
    pub fn compile_with(kernel: &Kernel, config: TapeConfig) -> Self {
        let mut compile_span = stream_trace::span("tape", "compile");
        compile_span.arg("kernel", kernel.name());
        compile_span.arg("ops", kernel.ops().len());
        let ops = kernel.ops();
        let n = ops.len();

        // ValueId -> recurrence slot index (satellite of the legacy linear
        // scan fix: the tape never searches at runtime).
        let mut recur_slot = vec![u32::MAX; n];
        let mut recurs = Vec::new();
        for (slot, (r, next)) in kernel.recurrences().enumerate() {
            let init = match &ops[r.index()].opcode {
                Opcode::Recur(init) => *init,
                _ => unreachable!("recurrences() yields Recur ops"),
            };
            recur_slot[r.index()] = slot as u32;
            recurs.push(RecurSlot {
                init_bits: bits_of(init),
                next: next.0,
            });
        }

        // Word offsets of stream accesses within their record, in access
        // order (same counting as the legacy interpreter).
        let mut in_seen = vec![0u32; kernel.inputs().len()];
        let mut out_seen = vec![0u32; kernel.outputs().len()];

        let mut prologue = Vec::new();
        let mut body = Vec::new();
        let mut uses_sp = false;
        // Compile-time-known constant bits per value slot, for the fusion
        // pass's const-operand specialization.
        let mut const_bits: Vec<Option<u32>> = vec![None; n];

        for (i, op) in ops.iter().enumerate() {
            let dst = i as u32;
            let arg = |j: usize| op.args[j].0;
            let aty = |j: usize| kernel.ty(op.args[j]);
            // The legacy interpreter's dynamic-dispatch failure value.
            let fault = Instr::Fault {
                at: dst,
                expected: Ty::F32,
                found: op.args.first().map_or(Ty::I32, |&a| kernel.ty(a)),
            };
            use Opcode::*;
            let ins = match &op.opcode {
                Const(s) => {
                    let bits = bits_of(*s);
                    const_bits[i] = Some(bits);
                    prologue.push(Instr::ConstBits { dst, bits });
                    continue;
                }
                Param(idx, _) => {
                    prologue.push(Instr::Param { dst, idx: *idx });
                    continue;
                }
                ClusterId => {
                    prologue.push(Instr::ClusterId { dst });
                    continue;
                }
                ClusterCount => {
                    prologue.push(Instr::ClusterCount { dst });
                    continue;
                }
                IterIndex => Instr::IterIndex { dst },
                Recur(_) => Instr::LoadRecur {
                    dst,
                    slot: recur_slot[i],
                },
                Read(s) => {
                    let offset = in_seen[s.index()];
                    in_seen[s.index()] += 1;
                    Instr::Read {
                        dst,
                        stream: s.0,
                        width: kernel.inputs()[s.index()].record_width,
                        offset,
                    }
                }
                Write(s) => {
                    let offset = out_seen[s.index()];
                    out_seen[s.index()] += 1;
                    Instr::Write {
                        src: arg(0),
                        stream: s.0,
                        width: kernel.outputs()[s.index()].record_width,
                        offset,
                    }
                }
                CondRead(s) => {
                    in_seen[s.index()] += 1;
                    Instr::CondRead {
                        dst,
                        pred: arg(0),
                        stream: s.0,
                    }
                }
                CondWrite(s) => {
                    out_seen[s.index()] += 1;
                    Instr::CondWrite {
                        pred: arg(0),
                        src: arg(1),
                        stream: s.0,
                    }
                }
                SpRead(ty) => {
                    uses_sp = true;
                    Instr::SpRead {
                        dst,
                        addr: arg(0),
                        ty: *ty,
                    }
                }
                SpWrite => {
                    uses_sp = true;
                    Instr::SpWrite {
                        at: dst,
                        addr: arg(0),
                        src: arg(1),
                        ty: aty(1),
                    }
                }
                Comm => Instr::Comm {
                    dst,
                    data: arg(0),
                    src: arg(1),
                },
                Add | Sub | Mul | Div | Min | Max if aty(0) != aty(1) => fault,
                Add => match aty(0) {
                    Ty::I32 => Instr::AddI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::AddF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Sub => match aty(0) {
                    Ty::I32 => Instr::SubI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::SubF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Mul => match aty(0) {
                    Ty::I32 => Instr::MulI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::MulF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Div => match aty(0) {
                    Ty::I32 => Instr::DivI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::DivF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Min => match aty(0) {
                    Ty::I32 => Instr::MinI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::MinF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Max => match aty(0) {
                    Ty::I32 => Instr::MaxI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::MaxF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Sqrt if aty(0) == Ty::F32 => Instr::Sqrt { dst, a: arg(0) },
                Floor if aty(0) == Ty::F32 => Instr::Floor { dst, a: arg(0) },
                Neg => match aty(0) {
                    Ty::I32 => Instr::NegI { dst, a: arg(0) },
                    Ty::F32 => Instr::NegF { dst, a: arg(0) },
                },
                Abs => match aty(0) {
                    Ty::I32 => Instr::AbsI { dst, a: arg(0) },
                    Ty::F32 => Instr::AbsF { dst, a: arg(0) },
                },
                And | Or | Xor | Shl | Shr if aty(0) != Ty::I32 || aty(1) != Ty::I32 => fault,
                And => Instr::And {
                    dst,
                    a: arg(0),
                    b: arg(1),
                },
                Or => Instr::Or {
                    dst,
                    a: arg(0),
                    b: arg(1),
                },
                Xor => Instr::Xor {
                    dst,
                    a: arg(0),
                    b: arg(1),
                },
                Shl => Instr::Shl {
                    dst,
                    a: arg(0),
                    b: arg(1),
                },
                Shr => Instr::Shr {
                    dst,
                    a: arg(0),
                    b: arg(1),
                },
                Eq | Ne if aty(0) != aty(1) => {
                    // Legacy `scalar_eq` on mixed types is a constant
                    // (false), not an error; hoist the constant.
                    let bits = u32::from(matches!(op.opcode, Ne));
                    const_bits[i] = Some(bits);
                    prologue.push(Instr::ConstBits { dst, bits });
                    continue;
                }
                Eq => match aty(0) {
                    Ty::I32 => Instr::EqI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::EqF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Ne => match aty(0) {
                    Ty::I32 => Instr::NeI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::NeF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Lt | Le if aty(0) != aty(1) => fault,
                Lt => match aty(0) {
                    Ty::I32 => Instr::LtI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::LtF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Le => match aty(0) {
                    Ty::I32 => Instr::LeI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::LeF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                // Builder-validated kernels always have an i32 condition,
                // so `is_true` reduces to `bits != 0`.
                Select => Instr::Select {
                    dst,
                    cond: arg(0),
                    a: arg(1),
                    b: arg(2),
                },
                ItoF if aty(0) == Ty::I32 => Instr::ItoF { dst, a: arg(0) },
                FtoI if aty(0) == Ty::F32 => Instr::FtoI { dst, a: arg(0) },
                Sqrt | Floor | ItoF | FtoI => fault,
            };
            body.push(ins);
        }

        let fused = if config.fuse {
            // Sink transitively iteration-invariant ops (chains rooted at
            // constants, params, and cluster ids) into the prologue first,
            // then run the peephole and pair fusion passes on what's left.
            fuse::hoist_invariants(&mut prologue, &mut body, n);
            fuse::fuse(&mut body, n, &recurs, &const_bits)
        } else {
            0
        };
        stream_trace::count("tape.fused_ops", fused as u64);
        // Eligibility flags come from the shared soundness predicates in
        // `fuse` — the same functions the translation validator re-runs,
        // so an overclaimed flag is a validation error, not a silent
        // miscompile. Macro-batching additionally requires the config bit:
        // the serial executor may run BATCH consecutive iterations as one
        // dispatch over `BATCH * c` lanes only if no instruction can tell
        // the lane topology apart.
        let strip_eligible = fuse::derive_strip_eligible(&body, recurs.len());
        let batchable = config.batch && fuse::derive_batchable(&prologue, &body, strip_eligible);
        // Planar layout rewrite. Input streams touched only by plain reads
        // get transposed at call entry into per-(stream, offset) planes
        // indexed `iter * c + lane`, so their reads become contiguous row
        // copies. Streams feeding cond reads (shared-cursor semantics) or
        // read-into-op fusions keep the raw record-major layout. Plain
        // outputs always qualify: they are only written at exact
        // per-iteration offsets and transposed back after the run.
        let mut in_plane_base = vec![u32::MAX; kernel.inputs().len()];
        let mut n_in_planes = 0usize;
        let mut out_plane_base = vec![u32::MAX; kernel.outputs().len()];
        if config.planar {
            let mut needs_raw = vec![false; kernel.inputs().len()];
            for ins in prologue.iter().chain(body.iter()) {
                match *ins {
                    Instr::CondRead { stream, .. }
                    | Instr::BinRL { stream, .. }
                    | Instr::BinRR { stream, .. } => needs_raw[stream as usize] = true,
                    _ => {}
                }
            }
            for (s, d) in kernel.inputs().iter().enumerate() {
                if !needs_raw[s] {
                    in_plane_base[s] = n_in_planes as u32;
                    n_in_planes += d.record_width as usize;
                }
            }
            let mut n_out_planes = 0u32;
            for (s, d) in kernel.outputs().iter().enumerate() {
                if !d.conditional {
                    out_plane_base[s] = n_out_planes;
                    n_out_planes += d.record_width;
                }
            }
            let mut planar_body = Vec::with_capacity(body.len());
            for ins in body.drain(..) {
                match ins {
                    Instr::Read {
                        dst,
                        stream,
                        offset,
                        ..
                    } if in_plane_base[stream as usize] != u32::MAX => {
                        planar_body.push(Instr::PRead {
                            dst,
                            stream,
                            plane: in_plane_base[stream as usize] + offset,
                        });
                    }
                    Instr::Read2 {
                        da,
                        sa,
                        wa,
                        oa,
                        db,
                        sb,
                        wb,
                        ob,
                    } if in_plane_base[sa as usize] != u32::MAX
                        || in_plane_base[sb as usize] != u32::MAX =>
                    {
                        if in_plane_base[sa as usize] != u32::MAX
                            && in_plane_base[sb as usize] != u32::MAX
                        {
                            planar_body.push(Instr::PRead2 {
                                da,
                                sa,
                                pa: in_plane_base[sa as usize] + oa,
                                db,
                                sb,
                                pb: in_plane_base[sb as usize] + ob,
                            });
                        } else {
                            // Mixed planarity: one half's stream was
                            // planarized (its raw buffer is empty at run
                            // time), the other stayed raw. Split the pair
                            // back into its two program-order reads so each
                            // half addresses its own layout; both bounds
                            // checks keep their original order.
                            for (dst, stream, width, offset) in [(da, sa, wa, oa), (db, sb, wb, ob)]
                            {
                                let base = in_plane_base[stream as usize];
                                planar_body.push(if base != u32::MAX {
                                    Instr::PRead {
                                        dst,
                                        stream,
                                        plane: base + offset,
                                    }
                                } else {
                                    Instr::Read {
                                        dst,
                                        stream,
                                        width,
                                        offset,
                                    }
                                });
                            }
                        }
                    }
                    Instr::Write {
                        src,
                        stream,
                        width: _,
                        offset,
                    } => {
                        planar_body.push(Instr::PWrite {
                            src,
                            plane: out_plane_base[stream as usize] + offset,
                        });
                    }
                    Instr::BinW {
                        op,
                        a,
                        b,
                        stream,
                        width: _,
                        offset,
                    } => {
                        planar_body.push(Instr::PBinW {
                            op,
                            a,
                            b,
                            plane: out_plane_base[stream as usize] + offset,
                        });
                    }
                    Instr::BflyWF {
                        a,
                        b,
                        add_stream,
                        add_width: _,
                        add_offset,
                        sub_stream,
                        sub_width: _,
                        sub_offset,
                    } => {
                        planar_body.push(Instr::PBflyWF {
                            a,
                            b,
                            add_plane: out_plane_base[add_stream as usize] + add_offset,
                            sub_plane: out_plane_base[sub_stream as usize] + sub_offset,
                        });
                    }
                    other => planar_body.push(other),
                }
            }
            body = planar_body;
        }
        compile_span.arg("fused", fused);
        compile_span.arg("strip_eligible", strip_eligible);

        let tape = Self {
            kernel: kernel.clone(),
            prologue,
            body,
            recurs,
            n_vals: n,
            uses_sp,
            fused,
            strip_eligible,
            batchable,
            planar: config.planar,
            in_plane_base,
            n_in_planes,
            out_plane_base,
            config,
            native: std::sync::Arc::new(native::NativeCell::new()),
        };
        if validate_on_compile() {
            let errors: Vec<_> = tape
                .validate()
                .into_iter()
                .filter(|f| f.kind.is_error())
                .collect();
            assert!(
                errors.is_empty(),
                "tape translation validation failed for kernel `{}`:\n{}",
                kernel.name(),
                errors
                    .iter()
                    .map(|f| format!("  {f}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
        tape
    }

    /// Translation-validates this tape against its kernel and runs the
    /// value-range analysis, returning every finding (errors sort before
    /// warnings). An empty vector is a proof of per-iteration equivalence
    /// with the legacy interpreter, up to the one wrapping-integer-add
    /// canonicalization the fuser exploits.
    ///
    /// Runs automatically on every debug-mode compile (see the
    /// `STREAM_TAPE_VALIDATE` environment variable); call it directly to
    /// validate release-mode compiles or to inspect warnings.
    pub fn validate(&self) -> Vec<TapeFinding> {
        let mut span = stream_trace::span("tape", "validate");
        span.arg("kernel", self.kernel.name());
        let findings = check::check_tape(self);
        let errors = findings.iter().filter(|f| f.kind.is_error()).count();
        stream_trace::count("tape.validated", 1);
        stream_trace::count("tape.check_failures", errors as u64);
        span.arg("findings", findings.len());
        findings
    }

    /// Returns the tape with its strip policy replaced. The native-backend
    /// cell is shared with the original: strip policy does not change the
    /// generated code, so both variants reuse one compiled module.
    pub fn with_strip_mode(mut self, strips: StripMode) -> Self {
        self.config.strips = strips;
        self
    }

    /// Returns the tape with its native-backend policy replaced. Keeps the
    /// shared native cell — the policy gates *whether* the module runs,
    /// not what code it contains.
    pub fn with_native_mode(mut self, native: NativeMode) -> Self {
        self.config.native = native;
        self
    }

    /// The kernel this tape was compiled from.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Number of instructions executed once per kernel call (hoisted
    /// iteration-invariant ops).
    pub fn hoisted_len(&self) -> usize {
        self.prologue.len()
    }

    /// Number of instructions executed every SIMD iteration.
    pub fn loop_len(&self) -> usize {
        self.body.len()
    }

    /// Fusion rewrites applied at compile time.
    pub fn fused_ops(&self) -> usize {
        self.fused
    }

    /// Whether iterations are provably independent, making the kernel a
    /// candidate for strip-parallel execution.
    pub fn strip_eligible(&self) -> bool {
        self.strip_eligible
    }

    /// Whether consecutive iterations may execute as one wide dispatch
    /// (strip-independent *and* lane-topology neutral) — the precondition
    /// for [`TapeConfig::batch`] to have any effect. The auto-tuner's
    /// static tier cost reads this to decide whether macro-batching pays.
    pub fn batchable(&self) -> bool {
        self.batchable
    }

    /// The configuration this tape was compiled with.
    pub fn config(&self) -> &TapeConfig {
        &self.config
    }

    /// Executes the tape, inferring the iteration count from the first
    /// plain input stream. Drop-in equivalent of [`crate::execute`].
    ///
    /// # Errors
    ///
    /// As [`crate::execute`].
    pub fn execute(
        &self,
        params: &[Scalar],
        inputs: &[Vec<Scalar>],
        cfg: &ExecConfig,
    ) -> Result<Vec<Vec<Scalar>>, IrError> {
        let opts = ExecOptions {
            params,
            sp_init: None,
            iterations: None,
        };
        self.execute_with(&opts, inputs, cfg)
    }

    /// Executes the tape for an explicit number of SIMD iterations.
    ///
    /// # Errors
    ///
    /// As [`crate::execute_iters`].
    pub fn execute_iters(
        &self,
        params: &[Scalar],
        inputs: &[Vec<Scalar>],
        iterations: usize,
        cfg: &ExecConfig,
    ) -> Result<Vec<Vec<Scalar>>, IrError> {
        let opts = ExecOptions {
            params,
            sp_init: None,
            iterations: Some(iterations),
        };
        self.execute_with(&opts, inputs, cfg)
    }

    /// Executes the tape with full [`ExecOptions`]. Drop-in equivalent of
    /// [`crate::execute_with`].
    ///
    /// # Errors
    ///
    /// As [`crate::execute_with`].
    pub fn execute_with(
        &self,
        opts: &ExecOptions<'_>,
        inputs: &[Vec<Scalar>],
        cfg: &ExecConfig,
    ) -> Result<Vec<Vec<Scalar>>, IrError> {
        let mut exec_span = stream_trace::span("tape", "execute");
        exec_span.arg("kernel", self.kernel.name());
        let result = self.execute_with_inner(opts, inputs, cfg, &mut exec_span);
        if let Err(e) = &result {
            note_runtime_error(e);
        }
        result
    }

    fn execute_with_inner(
        &self,
        opts: &ExecOptions<'_>,
        inputs: &[Vec<Scalar>],
        cfg: &ExecConfig,
        exec_span: &mut stream_trace::Span,
    ) -> Result<Vec<Vec<Scalar>>, IrError> {
        let iterations = match opts.iterations {
            Some(n) => n,
            None => infer_iterations_decls(self.kernel.inputs(), inputs, cfg)?,
        };
        if inputs.len() != self.kernel.inputs().len() {
            return Err(IrError::WrongInputCount {
                expected: self.kernel.inputs().len(),
                found: inputs.len(),
            });
        }
        if opts.params.len() != self.kernel.param_tys().len() {
            return Err(IrError::WrongInputCount {
                expected: self.kernel.param_tys().len(),
                found: opts.params.len(),
            });
        }
        for (i, (&ty, p)) in self.kernel.param_tys().iter().zip(opts.params).enumerate() {
            if p.ty() != ty {
                return Err(IrError::TypeMismatch {
                    at: ValueId(i as u32),
                    expected: ty,
                    found: p.ty(),
                });
            }
        }
        if cfg.clusters == 0 {
            // Degenerate no-lane config: let the oracle define behavior.
            stream_trace::count("tape.fallback", 1);
            exec_span.arg("fallback", "zero_clusters");
            return execute_with_legacy(&self.kernel, opts, inputs, cfg);
        }

        // Native tier: a compiled module runs straight from the tagged
        // input buffers (no bit-lane marshalling at all — see the codegen
        // module docs), so it gets first pick. Input tags are validated
        // here exactly like the interpreter path below: an ill-typed word
        // means the legacy oracle defines behavior, never the module.
        if let Some(m) = native::resolve(self, iterations, cfg.clusters) {
            let ill_typed = self
                .kernel
                .inputs()
                .iter()
                .zip(inputs)
                .any(|(decl, words)| !well_typed(decl.ty, words));
            if ill_typed {
                stream_trace::count("tape.fallback", 1);
                exec_span.arg("fallback", "ill_typed_input");
                return execute_with_legacy(&self.kernel, opts, inputs, cfg);
            }
            let mut sp = self.build_scratchpad(opts, cfg)?;
            return exec::run_native(self, &m, iterations, opts.params, inputs, &mut sp, cfg);
        }

        // Convert inputs to untagged bit lanes. The legacy interpreter
        // types stream words dynamically; if any word disagrees with its
        // declaration, it — not the tape — defines the behavior. Planar
        // streams are transposed into per-offset planes instead of raw
        // record-major vectors (their raw slot stays empty).
        let mut in_bits: Vec<Vec<u32>> = Vec::with_capacity(inputs.len());
        let mut in_planes: Vec<Vec<u32>> = vec![Vec::new(); self.n_in_planes];
        for ((decl, words), &base) in self
            .kernel
            .inputs()
            .iter()
            .zip(inputs)
            .zip(&self.in_plane_base)
        {
            // Validate, then convert, as two separate exitless passes
            // (see [`well_typed`]); the convert pass's per-tag branches
            // collapse (both variants store their payload bits) into a
            // strided copy. The fused Option-collect this replaces ran
            // ~4x slower — per-element early exits defeat vectorization,
            // and this pair is most of the per-call floor for small
            // kernels.
            if !well_typed(decl.ty, words) {
                stream_trace::count("tape.fallback", 1);
                exec_span.arg("fallback", "ill_typed_input");
                return execute_with_legacy(&self.kernel, opts, inputs, cfg);
            }
            let bits: Vec<u32> = words.iter().map(|&w| bits_of(w)).collect();
            if base == u32::MAX {
                in_bits.push(bits);
                continue;
            }
            let w = decl.record_width as usize;
            for (o, plane) in in_planes[base as usize..base as usize + w]
                .iter_mut()
                .enumerate()
            {
                *plane = bits.iter().skip(o).step_by(w).copied().collect();
            }
            in_bits.push(Vec::new());
        }

        let mut sp = self.build_scratchpad(opts, cfg)?;

        exec::run(
            self,
            iterations,
            opts.params,
            &in_bits,
            &in_planes,
            &mut sp,
            cfg,
        )
    }

    /// Allocates (or skips) the scratchpad for one execution and seeds it
    /// from `sp_init`. Shared by the native and interpreter paths.
    fn build_scratchpad(
        &self,
        opts: &ExecOptions<'_>,
        cfg: &ExecConfig,
    ) -> Result<Scratchpad, IrError> {
        let mut sp = if self.uses_sp || opts.sp_init.is_some() {
            Scratchpad::new(cfg.sp_words, cfg.clusters)
        } else {
            Scratchpad::unused()
        };
        if let Some(init) = opts.sp_init {
            for (addr, &word) in init.iter().enumerate() {
                if addr >= cfg.sp_words {
                    return Err(IrError::SpOutOfBounds {
                        at: ValueId(0),
                        addr: addr as i32,
                        capacity: cfg.sp_words,
                    });
                }
                sp.broadcast(addr, cfg.clusters, bits_of(word), word.ty());
            }
        }
        Ok(sp)
    }
}

/// Exitless well-typedness scan of one input stream against its declared
/// type: reduces with `&` instead of short-circuiting so LLVM can
/// vectorize the tag scan.
fn well_typed(ty: Ty, words: &[Scalar]) -> bool {
    match ty {
        Ty::I32 => words
            .iter()
            .fold(true, |a, w| a & matches!(w, Scalar::I32(_))),
        Ty::F32 => words
            .iter()
            .fold(true, |a, w| a & matches!(w, Scalar::F32(_))),
    }
}

/// Classifies an execution error into the trace registry: bounds-style
/// errors (a stream or scratchpad access outside its extent) vs. faults
/// (type confusion, bad comm source, division by zero).
fn note_runtime_error(e: &IrError) {
    let name = match e {
        IrError::StreamExhausted { .. } | IrError::SpOutOfBounds { .. } => "tape.bounds_error",
        IrError::TypeMismatch { .. } | IrError::BadCommSource { .. } | IrError::DivideByZero(_) => {
            "tape.fault"
        }
        _ => return,
    };
    stream_trace::count(name, 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute_legacy, execute_with, KernelBuilder, StreamId};

    fn cfg(c: usize) -> ExecConfig {
        ExecConfig::with_clusters(c)
    }

    /// A kernel exercising recurrences, COMM, scratchpad, conditional
    /// streams, and both type families at once.
    fn busy_kernel() -> Kernel {
        let mut b = KernelBuilder::new("busy");
        let si = b.in_stream(Ty::I32);
        let sf = b.in_stream(Ty::F32);
        let out_f = b.out_stream(Ty::F32);
        let out_c = b.out_stream(Ty::I32);
        b.require_sp(8);
        let p = b.param(Ty::F32);
        let x = b.read(si);
        let f = b.read(sf);
        let acc = b.recurrence(Scalar::I32(0));
        let sum = b.add(acc, x);
        b.bind_next(acc, sum);
        let cid = b.cluster_id();
        let cc = b.cluster_count();
        let one = b.const_i(1);
        let nxt = b.add(cid, one);
        let m = b.sub(cc, one);
        let src = b.and(nxt, m); // (cid + 1) & (C - 1): C must be a power of 2
        let rot = b.comm(x, src);
        let seven = b.const_i(7);
        let addr = b.and(x, seven);
        b.sp_write(addr, f);
        let g = b.sp_read(addr, Ty::F32);
        let xf = b.itof(rot);
        let y = b.mul(xf, p);
        let z = b.add(y, g);
        let az = b.abs(z);
        let r = b.sqrt(az);
        b.write(out_f, r);
        let odd = b.and(sum, one);
        b.cond_write(out_c, odd, sum);
        b.finish().unwrap()
    }

    fn busy_inputs(iters: usize, c: usize) -> Vec<Vec<Scalar>> {
        let n = iters * c;
        let ints: Vec<Scalar> = (0..n)
            .map(|i| Scalar::I32((i * 7 % 23) as i32 - 5))
            .collect();
        let floats: Vec<Scalar> = (0..n).map(|i| Scalar::F32(i as f32 * 0.25 - 3.0)).collect();
        vec![ints, floats]
    }

    /// A strip-eligible float kernel with fusible mul→add chains and a
    /// const-operand op.
    fn saxpy_kernel() -> Kernel {
        let mut b = KernelBuilder::new("saxpy");
        let sx = b.in_stream(Ty::F32);
        let sy = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let a = b.param(Ty::F32);
        let x = b.read(sx);
        let y = b.read(sy);
        let ax = b.mul(a, x);
        let r = b.add(ax, y);
        let half = b.const_f(0.5);
        let scaled = b.mul(r, half);
        b.write(out, scaled);
        b.finish().unwrap()
    }

    fn saxpy_inputs(iters: usize, c: usize) -> Vec<Vec<Scalar>> {
        let n = iters * c;
        let xs: Vec<Scalar> = (0..n).map(|i| Scalar::F32(i as f32 * 0.5 - 7.0)).collect();
        let ys: Vec<Scalar> = (0..n).map(|i| Scalar::F32(3.0 - i as f32 * 0.25)).collect();
        vec![xs, ys]
    }

    #[test]
    fn tape_matches_legacy_on_busy_kernel() {
        let k = busy_kernel();
        let tape = Tape::compile(&k);
        for c in [1usize, 2, 4, 8] {
            let inputs = busy_inputs(6, c);
            let params = [Scalar::F32(1.5)];
            let want = execute_legacy(&k, &params, &inputs, &cfg(c)).unwrap();
            let got = tape.execute(&params, &inputs, &cfg(c)).unwrap();
            assert_eq!(got, want, "C={c}");
        }
    }

    #[test]
    fn execute_routes_through_tape_and_matches_oracle() {
        let k = busy_kernel();
        let inputs = busy_inputs(4, 4);
        let params = [Scalar::F32(-0.75)];
        let want = execute_legacy(&k, &params, &inputs, &cfg(4)).unwrap();
        let got = crate::execute(&k, &params, &inputs, &cfg(4)).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn iteration_invariant_ops_are_hoisted() {
        let k = busy_kernel();
        let tape = Tape::compile_with(&k, TapeConfig::v1_baseline());
        // Consts, the param, cluster id/count never re-execute per iteration.
        assert!(tape.hoisted_len() >= 5, "{}", tape.hoisted_len());
        assert_eq!(tape.hoisted_len() + tape.loop_len(), k.ops().len());
    }

    #[test]
    fn fusion_collapses_hot_chains_and_preserves_results() {
        let k = saxpy_kernel();
        let fused = Tape::compile(&k);
        let unfused = Tape::compile_with(
            &k,
            TapeConfig {
                fuse: false,
                ..TapeConfig::default()
            },
        );
        // mul→add collapses, and the final mul-by-const into the write
        // leaves a shorter body than the unfused tape.
        assert!(fused.fused_ops() > 0);
        assert!(fused.loop_len() < unfused.loop_len());
        assert_eq!(unfused.fused_ops(), 0);

        let params = [Scalar::F32(2.5)];
        for c in [1usize, 3, 4, 8] {
            let inputs = saxpy_inputs(5, c);
            let want = execute_legacy(&k, &params, &inputs, &cfg(c)).unwrap();
            assert_eq!(fused.execute(&params, &inputs, &cfg(c)).unwrap(), want);
            assert_eq!(unfused.execute(&params, &inputs, &cfg(c)).unwrap(), want);
        }
    }

    #[test]
    fn planar_layout_rewrites_and_matches_oracle() {
        let planar_cfg = TapeConfig {
            planar: true,
            ..TapeConfig::default()
        };
        let k = saxpy_kernel();
        let t = Tape::compile_with(&k, planar_cfg);
        assert!(
            t.body.iter().any(|i| matches!(
                i,
                Instr::PRead { .. }
                    | Instr::PRead2 { .. }
                    | Instr::PWrite { .. }
                    | Instr::PBinW { .. }
                    | Instr::PBflyWF { .. }
            )),
            "planar config must rewrite stream access"
        );
        let params = [Scalar::F32(2.5)];
        for c in [1usize, 3, 4, 8] {
            let inputs = saxpy_inputs(5, c);
            let want = execute_legacy(&k, &params, &inputs, &cfg(c)).unwrap();
            assert_eq!(t.execute(&params, &inputs, &cfg(c)).unwrap(), want, "C={c}");
        }
        // The busy kernel mixes planarizable streams with ones that must
        // stay raw (conditional reads, read-into-op fusions).
        let k = busy_kernel();
        let t = Tape::compile_with(&k, planar_cfg);
        for c in [1usize, 2, 4, 8] {
            let inputs = busy_inputs(6, c);
            let params = [Scalar::F32(1.5)];
            let want = execute_legacy(&k, &params, &inputs, &cfg(c)).unwrap();
            assert_eq!(
                t.execute(&params, &inputs, &cfg(c)).unwrap(),
                want,
                "busy C={c}"
            );
        }
    }

    #[test]
    fn fusion_never_reorders_errors() {
        // A single-use read whose consumer sits past another fallible read
        // must NOT move down: with BOTH streams exhausting at the same
        // iteration, program order blames the first read (stream 0). A
        // fusion pass that ignored the fallibility gap would report
        // stream 1 instead.
        let mut b = KernelBuilder::new("gap");
        let sa = b.in_stream(Ty::I32);
        let sb = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(sa);
        let y = b.read(sb);
        let s = b.add(y, y); // y has 2 uses: not fusible
        let r = b.add(x, s); // x is single-use but a fallible read intervenes
        b.write(out, r);
        let k = b.finish().unwrap();
        let tape = Tape::compile(&k);
        let short_a: Vec<Scalar> = (0..5).map(Scalar::I32).collect();
        let short_b: Vec<Scalar> = (0..5).map(Scalar::I32).collect();
        let inputs = vec![short_a, short_b];
        let opts = ExecOptions {
            params: &[],
            sp_init: None,
            iterations: Some(2),
        };
        let want = execute_with_legacy(&k, &opts, &inputs, &cfg(4)).unwrap_err();
        let got = tape.execute_with(&opts, &inputs, &cfg(4)).unwrap_err();
        assert_eq!(got, want);
        assert_eq!(
            got,
            IrError::StreamExhausted {
                stream: StreamId(0),
                iteration: 1
            }
        );
    }

    #[test]
    fn forced_strips_match_serial_execution() {
        let k = saxpy_kernel();
        let tape = Tape::compile(&k);
        assert!(tape.strip_eligible());
        let forced = tape.clone().with_strip_mode(StripMode::Force);
        let serial = tape.with_strip_mode(StripMode::Serial);
        let params = [Scalar::F32(-1.25)];
        for c in [1usize, 4, 5] {
            let inputs = saxpy_inputs(9, c);
            assert_eq!(
                forced.execute(&params, &inputs, &cfg(c)).unwrap(),
                serial.execute(&params, &inputs, &cfg(c)).unwrap(),
                "C={c}"
            );
        }
    }

    #[test]
    fn strips_report_the_earliest_iteration_error() {
        // Truncated input: a later strip's iterations are all out of
        // bounds, but the reported error must be the first failing
        // iteration — the one the serial schedule hits.
        let k = saxpy_kernel();
        let forced = Tape::compile(&k).with_strip_mode(StripMode::Force);
        let serial = Tape::compile(&k).with_strip_mode(StripMode::Serial);
        let params = [Scalar::F32(1.0)];
        let c = 4;
        let mut inputs = saxpy_inputs(3, c);
        inputs[1].truncate(5); // sy exhausts at iteration 1
        let opts = ExecOptions {
            params: &params,
            sp_init: None,
            iterations: Some(8),
        };
        let want = serial.execute_with(&opts, &inputs, &cfg(c)).unwrap_err();
        let got = forced.execute_with(&opts, &inputs, &cfg(c)).unwrap_err();
        assert_eq!(got, want);
    }

    #[test]
    fn ineligible_kernels_run_serial_under_force() {
        let k = busy_kernel();
        let tape = Tape::compile(&k);
        // Recurrence + cond stream + SP writes: iterations are coupled.
        assert!(!tape.strip_eligible());
        let forced = tape.with_strip_mode(StripMode::Force);
        let inputs = busy_inputs(6, 4);
        let params = [Scalar::F32(0.5)];
        let want = execute_legacy(&k, &params, &inputs, &cfg(4)).unwrap();
        assert_eq!(forced.execute(&params, &inputs, &cfg(4)).unwrap(), want);
    }

    #[test]
    fn errors_match_legacy() {
        // Integer divide by zero.
        let mut b = KernelBuilder::new("divz");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let zero = b.const_i(0);
        let q = b.div(x, zero);
        b.write(out, q);
        let k = b.finish().unwrap();
        let input: Vec<Scalar> = (0..8).map(Scalar::I32).collect();
        let want = execute_legacy(&k, &[], std::slice::from_ref(&input), &cfg(8)).unwrap_err();
        let got = Tape::compile(&k)
            .execute(&[], &[input], &cfg(8))
            .unwrap_err();
        assert_eq!(got, want);

        // Stream exhaustion under an explicit iteration count.
        let mut b = KernelBuilder::new("exhaust");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        b.write(out, x);
        let k = b.finish().unwrap();
        let input: Vec<Scalar> = (0..8).map(Scalar::I32).collect();
        let tape = Tape::compile(&k);
        let got = tape
            .execute_iters(&[], std::slice::from_ref(&input), 3, &cfg(4))
            .unwrap_err();
        assert_eq!(
            got,
            IrError::StreamExhausted {
                stream: StreamId(0),
                iteration: 2
            }
        );

        // Scratchpad out of bounds.
        let mut b = KernelBuilder::new("oob");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let addr = b.const_i(10_000);
        b.sp_write(addr, x);
        let y = b.sp_read(addr, Ty::I32);
        b.write(out, y);
        let k = b.finish().unwrap();
        let input: Vec<Scalar> = (0..8).map(Scalar::I32).collect();
        let want = execute_legacy(&k, &[], std::slice::from_ref(&input), &cfg(8)).unwrap_err();
        let got = Tape::compile(&k)
            .execute(&[], &[input], &cfg(8))
            .unwrap_err();
        assert_eq!(got, want);

        // Bad COMM source.
        let mut b = KernelBuilder::new("badcomm");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let src = b.const_i(99);
        let v = b.comm(x, src);
        b.write(out, v);
        let k = b.finish().unwrap();
        let input: Vec<Scalar> = (0..8).map(Scalar::I32).collect();
        let want = execute_legacy(&k, &[], std::slice::from_ref(&input), &cfg(8)).unwrap_err();
        let got = Tape::compile(&k)
            .execute(&[], &[input], &cfg(8))
            .unwrap_err();
        assert_eq!(got, want);
    }

    #[test]
    fn ill_typed_input_words_fall_back_to_the_oracle() {
        // Declared i32, fed f32: the legacy interpreter's dynamic typing
        // passes the words through a plain copy kernel untouched.
        let mut b = KernelBuilder::new("id");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        b.write(out, x);
        let k = b.finish().unwrap();
        let input: Vec<Scalar> = (0..8).map(|i| Scalar::F32(i as f32)).collect();
        let want = execute_legacy(&k, &[], std::slice::from_ref(&input), &cfg(8)).unwrap();
        let got = Tape::compile(&k).execute(&[], &[input], &cfg(8)).unwrap();
        assert_eq!(got, want);
        assert_eq!(got[0][3], Scalar::F32(3.0));
    }

    #[test]
    fn fallback_counter_fires_exactly_once_per_wholesale_fallback() {
        // Both wholesale-fallback triggers (ill-typed input words, zero
        // clusters) bump `tape.fallback` exactly once per execute, and the
        // fallen-back result is the oracle's, bit for bit. One test covers
        // both triggers: it is the only test in this crate toggling the
        // process-global trace flag, so it needs no cross-test lock.
        let mut b = KernelBuilder::new("id");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        b.write(out, x);
        let k = b.finish().unwrap();
        let tape = Tape::compile(&k);
        let fallback = stream_trace::counter("tape.fallback");

        stream_trace::enable();

        // Ill-typed input words: declared i32, fed f32.
        let ill: Vec<Scalar> = (0..8).map(|i| Scalar::F32(i as f32)).collect();
        let before = fallback.get();
        let got = tape.execute(&[], std::slice::from_ref(&ill), &cfg(8));
        assert_eq!(fallback.get(), before + 1, "ill-typed fallback count");
        assert_eq!(
            got,
            execute_legacy(&k, &[], std::slice::from_ref(&ill), &cfg(8))
        );

        // Zero clusters: the degenerate no-lane config. Iterations must be
        // explicit — inference already rejects C=0 before the fallback, on
        // both paths, via the shared helper.
        let well: Vec<Scalar> = (0..8).map(Scalar::I32).collect();
        let opts = ExecOptions {
            params: &[],
            sp_init: None,
            iterations: Some(1),
        };
        let before = fallback.get();
        let got = tape.execute_with(&opts, std::slice::from_ref(&well), &cfg(0));
        assert_eq!(fallback.get(), before + 1, "zero-cluster fallback count");
        assert_eq!(
            got,
            execute_with(&k, &opts, std::slice::from_ref(&well), &cfg(0))
        );

        // A well-typed run at a sane config takes the tape path: no bump.
        let before = fallback.get();
        tape.execute(&[], std::slice::from_ref(&well), &cfg(8))
            .unwrap();
        assert_eq!(fallback.get(), before, "tape path must not count");

        stream_trace::disable();
        let _ = stream_trace::take_events();
    }

    #[test]
    fn sp_init_round_trips_through_options() {
        let mut b = KernelBuilder::new("table");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::F32);
        b.require_sp(4);
        let x = b.read(s);
        let three = b.const_i(3);
        let addr = b.and(x, three);
        let v = b.sp_read(addr, Ty::F32);
        b.write(out, v);
        let k = b.finish().unwrap();
        let table = [
            Scalar::F32(10.0),
            Scalar::F32(20.0),
            Scalar::F32(30.0),
            Scalar::F32(40.0),
        ];
        let input: Vec<Scalar> = (0..8).map(Scalar::I32).collect();
        let opts = ExecOptions {
            params: &[],
            sp_init: Some(&table),
            iterations: None,
        };
        let want = execute_with(&k, &opts, std::slice::from_ref(&input), &cfg(4)).unwrap();
        let got = Tape::compile(&k)
            .execute_with(&opts, &[input], &cfg(4))
            .unwrap();
        assert_eq!(got, want);
        assert_eq!(got[0][2], Scalar::F32(30.0));
    }

    #[test]
    fn sp_init_with_zero_capacity_errors_even_at_zero_iterations() {
        // The seed loop runs before any iteration: with sp_words == 0 the
        // very first table word is out of bounds, and a zero-iteration run
        // must still report it — exactly as the legacy interpreter does.
        let mut b = KernelBuilder::new("nosp");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        b.write(out, x);
        let k = b.finish().unwrap();
        let table = [Scalar::I32(7)];
        let opts = ExecOptions {
            params: &[],
            sp_init: Some(&table),
            iterations: Some(0),
        };
        let cfg0 = ExecConfig {
            clusters: 4,
            sp_words: 0,
        };
        let inputs = [Vec::new()];
        let want = execute_with_legacy(&k, &opts, &inputs, &cfg0).unwrap_err();
        let got = Tape::compile(&k)
            .execute_with(&opts, &inputs, &cfg0)
            .unwrap_err();
        assert_eq!(got, want);
        assert_eq!(
            got,
            IrError::SpOutOfBounds {
                at: ValueId(0),
                addr: 0,
                capacity: 0
            }
        );
    }

    #[test]
    fn zero_iterations_yield_empty_outputs() {
        let k = busy_kernel();
        let outs = Tape::compile(&k)
            .execute(&[Scalar::F32(0.0)], &[vec![], vec![]], &cfg(8))
            .unwrap();
        assert!(outs.iter().all(Vec::is_empty));
    }

    #[test]
    fn negative_zero_and_nan_semantics_match_legacy() {
        // -0.0 is falsy (bits are nonzero!) and NaN != NaN; both must flow
        // through Eq/Ne and Select exactly as the tagged interpreter does.
        let mut b = KernelBuilder::new("ieee");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let eq = b.eq(x, x);
        let zero = b.const_f(0.0);
        let isz = b.eq(x, zero);
        let seven = b.const_i(7);
        let nine = b.const_i(9);
        let pick = b.select(isz, seven, nine);
        let r = b.add(eq, pick);
        b.write(out, r);
        let k = b.finish().unwrap();
        let input = vec![
            Scalar::F32(f32::NAN),
            Scalar::F32(-0.0),
            Scalar::F32(0.0),
            Scalar::F32(1.0),
        ];
        let want = execute_legacy(&k, &[], std::slice::from_ref(&input), &cfg(4)).unwrap();
        let got = Tape::compile(&k).execute(&[], &[input], &cfg(4)).unwrap();
        assert_eq!(got, want);
        // NaN: eq=0, not zero -> 9; -0.0: eq=1, == 0.0 -> 7 (i.e. 8).
        let ints: Vec<i32> = got[0].iter().map(|s| s.as_i32().unwrap()).collect();
        assert_eq!(ints, vec![9, 8, 8, 10]);
    }
}
