//! Untagged scratchpad storage: raw `u32` bits plus two bitmasks.
//!
//! The v1 tape stored the scratchpad as `Vec<Option<Scalar>>` — every
//! SpRead/SpWrite lane branched on an enum tag and rebuilt a `Scalar`. Here
//! a slot is three bits of metadata away from free: `bits` holds the word,
//! an *initialized* mask distinguishes never-written slots (which read as
//! zero of the expected type — zero bits for both `i32` and `f32`, so the
//! read needs no special case), and a *type* mask remembers whether the
//! last write was `f32`, preserving the legacy interpreter's dynamic
//! `TypeMismatch { found }` error exactly.
//!
//! Layout is **addr-major** (`index = addr * clusters + lane`), so
//! broadcasting one word to every cluster — the `sp_init` path — is a
//! contiguous fill rather than the strided per-cluster loop v1 used.

use crate::Ty;

#[derive(Debug, Clone, Default)]
pub(super) struct Scratchpad {
    bits: Vec<u32>,
    init: Vec<u64>,
    f32s: Vec<u64>,
}

impl Scratchpad {
    /// An empty scratchpad (for kernels that never touch SP).
    pub(super) fn unused() -> Self {
        Self::default()
    }

    /// Allocates `sp_words * clusters` zeroed, uninitialized slots.
    pub(super) fn new(sp_words: usize, clusters: usize) -> Self {
        let n = sp_words * clusters;
        let words = n.div_ceil(64);
        Self {
            bits: vec![0; n],
            init: vec![0; words],
            f32s: vec![0; words],
        }
    }

    /// Reads slot `idx` expecting `ty`. Uninitialized slots read as zero of
    /// the expected type; a type confusion returns the stored type.
    #[inline(always)]
    pub(super) fn read(&self, idx: usize, ty: Ty) -> Result<u32, Ty> {
        let (w, b) = (idx / 64, idx % 64);
        if self.init[w] >> b & 1 != 0 {
            let stored = if self.f32s[w] >> b & 1 != 0 {
                Ty::F32
            } else {
                Ty::I32
            };
            if stored != ty {
                return Err(stored);
            }
        }
        Ok(self.bits[idx])
    }

    /// Writes `bits` of type `ty` into slot `idx`, marking it initialized.
    #[inline(always)]
    pub(super) fn write(&mut self, idx: usize, bits: u32, ty: Ty) {
        self.bits[idx] = bits;
        let (w, b) = (idx / 64, idx % 64);
        self.init[w] |= 1 << b;
        match ty {
            Ty::F32 => self.f32s[w] |= 1 << b,
            Ty::I32 => self.f32s[w] &= !(1 << b),
        }
    }

    /// Raw storage views for the native backend's FFI boundary: the word
    /// array plus the initialized and is-f32 bitmask words, in that order.
    pub(super) fn raw_parts_mut(&mut self) -> (&mut [u32], &mut [u64], &mut [u64]) {
        (&mut self.bits, &mut self.init, &mut self.f32s)
    }

    /// Broadcasts one word across every cluster's copy of `addr` — a single
    /// contiguous fill in the addr-major layout.
    pub(super) fn broadcast(&mut self, addr: usize, clusters: usize, bits: u32, ty: Ty) {
        let start = addr * clusters;
        self.bits[start..start + clusters].fill(bits);
        for idx in start..start + clusters {
            let (w, b) = (idx / 64, idx % 64);
            self.init[w] |= 1 << b;
            match ty {
                Ty::F32 => self.f32s[w] |= 1 << b,
                Ty::I32 => self.f32s[w] &= !(1 << b),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninitialized_reads_are_typed_zero() {
        let sp = Scratchpad::new(4, 2);
        assert_eq!(sp.read(0, Ty::I32), Ok(0));
        assert_eq!(sp.read(7, Ty::F32), Ok(0)); // 0.0f32 is all-zero bits
    }

    #[test]
    fn writes_round_trip_and_remember_type() {
        let mut sp = Scratchpad::new(4, 2);
        sp.write(3, 0x4048_f5c3, Ty::F32); // 3.14f32
        assert_eq!(sp.read(3, Ty::F32), Ok(0x4048_f5c3));
        assert_eq!(sp.read(3, Ty::I32), Err(Ty::F32));
        sp.write(3, 42, Ty::I32);
        assert_eq!(sp.read(3, Ty::I32), Ok(42));
        assert_eq!(sp.read(3, Ty::F32), Err(Ty::I32));
    }

    #[test]
    fn broadcast_fills_every_cluster() {
        let clusters = 3;
        let mut sp = Scratchpad::new(4, clusters);
        sp.broadcast(2, clusters, 99, Ty::I32);
        for lane in 0..clusters {
            assert_eq!(sp.read(2 * clusters + lane, Ty::I32), Ok(99));
            assert_eq!(sp.read(2 * clusters + lane, Ty::F32), Err(Ty::I32));
        }
        // Neighboring addresses stay untouched.
        assert_eq!(sp.read(clusters, Ty::F32), Ok(0));
    }
}
