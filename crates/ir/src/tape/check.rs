//! Translation validation and abstract interpretation for compiled tapes.
//!
//! [`check_tape`] symbolically re-executes one abstract iteration of both
//! the kernel IR (the reference semantics) and its compiled [`Tape`] over
//! a hash-consed expression arena, then proves the two equivalent:
//!
//! * every output word is written with a bit-identical expression
//!   (float operand order preserved — float add is never commuted; the
//!   only canonicalization is wrapping integer add, the one reordering
//!   the fuser exploits);
//! * the ordered list of *potential-fault sites* (stream bounds checks,
//!   conditional reads, scratchpad accesses, comm shuffles, integer
//!   division, dynamic-dispatch faults) is identical, so the first
//!   failing site — and therefore the reported error — agrees on every
//!   input;
//! * recurrence slots are wired to the same initial bits and feed
//!   expressions;
//! * the strip/batch eligibility flags match an independent re-derivation
//!   through the shared predicates in [`super::fuse`];
//! * every instruction respects the SSA slot layout the const-generic
//!   executor's `split_*` helpers rely on (operands strictly below the
//!   destination, each slot defined before use and at most once).
//!
//! On top of the same arena, an interval/constant **value-range analysis**
//! classifies each fallible site as provably-in-bounds (dead check,
//! [`TapeCheckKind::DeadCheck`]) or provably-faulting
//! ([`TapeCheckKind::StaticFault`]) — the groundwork for check elimination
//! in a native-codegen tape v3.
//!
//! Soundness argument, in brief: the reference and the tape are compared
//! as functions of the same uninterpreted leaves (stream words, params,
//! iteration index, cluster topology, recurrence state). If the ordered
//! fault-site lists are equal site-by-site (same condition expression,
//! same error payload), then on any concrete input the first failing site
//! is the same, so both fail identically; if no site fails, equal write
//! expressions make every output word bit-identical. One abstract
//! iteration suffices because the tape body is straight-line and
//! iteration-independent by construction — all cross-iteration state
//! (recurrences, cond-stream cursors, the scratchpad) is modeled
//! explicitly (recurrence feeds, cursor sequence numbers, write epochs).

use super::fuse::{self, def_of};
use super::instr::{bits_of, BinOp, Instr};
use super::Tape;
use crate::{Kernel, Opcode, Ty};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

// ---------------------------------------------------------------- findings

/// The structural class of a translation-validation finding. Each kind
/// maps 1:1 to a stable `stream-verify` diagnostic code (`E2xx`/`W2xx`,
/// see `docs/lint_codes.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TapeCheckKind {
    /// E201: an output word's tape expression differs from the reference.
    WriteMismatch,
    /// E202: the tape writes a different set of output words than the
    /// reference (missing, extra, or duplicated).
    WriteCoverage,
    /// E203: the ordered list of potential-fault sites diverges, so some
    /// input would make the tape report a different first error.
    ErrorOrder,
    /// E204: a recurrence slot's initial bits or feed expression differ
    /// from the kernel's binding.
    RecurrenceWiring,
    /// E205: the SSA slot layout is violated (an operand at or above its
    /// destination, a redefined slot, or malformed pair destinations).
    OperandOrder,
    /// E206: an instruction reads a slot no prior instruction defined.
    UndefinedSlot,
    /// E207: a fallible or per-iteration instruction was hoisted into the
    /// once-per-call prologue.
    HoistedEffect,
    /// E208: a strip/batch eligibility flag claims more than the shared
    /// soundness predicates re-derive from the instruction stream.
    FlagOverclaim,
    /// E209: a conditional stream's ordered (predicate, source) sequence
    /// diverges from the reference.
    CondStreamMismatch,
    /// E210: a planar-layout access is inconsistent (raw access to a
    /// planarized stream, planar access on a non-planar tape, or a plane
    /// index outside every stream's range).
    PlanarMap,
    /// E211: a stream access disagrees with the stream declaration
    /// (stream index, record width, in-record offset, or conditionality).
    AccessShape,
    /// W201: the tape forgoes an eligibility the predicates re-derive
    /// (strip or batch), leaving performance on the table.
    MissedEligibility,
    /// W202: a bounds check is provably dead (the access is in range for
    /// every input) — a check-elimination candidate for tape v3.
    DeadCheck,
    /// W203: an access provably faults on every input reaching it.
    StaticFault,
}

impl TapeCheckKind {
    /// Every kind, in catalog order.
    pub const ALL: [TapeCheckKind; 14] = [
        TapeCheckKind::WriteMismatch,
        TapeCheckKind::WriteCoverage,
        TapeCheckKind::ErrorOrder,
        TapeCheckKind::RecurrenceWiring,
        TapeCheckKind::OperandOrder,
        TapeCheckKind::UndefinedSlot,
        TapeCheckKind::HoistedEffect,
        TapeCheckKind::FlagOverclaim,
        TapeCheckKind::CondStreamMismatch,
        TapeCheckKind::PlanarMap,
        TapeCheckKind::AccessShape,
        TapeCheckKind::MissedEligibility,
        TapeCheckKind::DeadCheck,
        TapeCheckKind::StaticFault,
    ];

    /// Whether this kind denotes a miscompile (as opposed to an advisory
    /// warning from the value-range analysis).
    pub fn is_error(self) -> bool {
        !matches!(
            self,
            TapeCheckKind::MissedEligibility
                | TapeCheckKind::DeadCheck
                | TapeCheckKind::StaticFault
        )
    }

    /// Short stable name, e.g. `"write-mismatch"`.
    pub fn name(self) -> &'static str {
        match self {
            TapeCheckKind::WriteMismatch => "write-mismatch",
            TapeCheckKind::WriteCoverage => "write-coverage",
            TapeCheckKind::ErrorOrder => "error-order",
            TapeCheckKind::RecurrenceWiring => "recurrence-wiring",
            TapeCheckKind::OperandOrder => "operand-order",
            TapeCheckKind::UndefinedSlot => "undefined-slot",
            TapeCheckKind::HoistedEffect => "hoisted-effect",
            TapeCheckKind::FlagOverclaim => "flag-overclaim",
            TapeCheckKind::CondStreamMismatch => "cond-stream-mismatch",
            TapeCheckKind::PlanarMap => "planar-map",
            TapeCheckKind::AccessShape => "access-shape",
            TapeCheckKind::MissedEligibility => "missed-eligibility",
            TapeCheckKind::DeadCheck => "dead-check",
            TapeCheckKind::StaticFault => "static-fault",
        }
    }
}

impl fmt::Display for TapeCheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One translation-validation or value-range finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapeFinding {
    /// The structural class (maps to a stable diagnostic code).
    pub kind: TapeCheckKind,
    /// Human-readable description with concrete slots and streams.
    pub message: String,
}

impl fmt::Display for TapeFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

// ------------------------------------------------------- expression arena

type ExprId = u32;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum UnKind {
    NegI,
    NegF,
    AbsI,
    AbsF,
    Sqrt,
    Floor,
    ItoF,
    FtoI,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BinKind {
    Op(BinOp),
    DivI,
}

/// A node in the hash-consed symbolic-value arena. Leaves are the
/// uninterpreted inputs of one abstract iteration; interior nodes keep
/// exact operand order (no float reassociation or commutation — the only
/// canonicalization is wrapping integer add, below).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    Const(u32),
    Param(u32),
    Iter,
    ClusterId,
    ClusterCount,
    Recur(u32),
    /// The record word at `offset` of input `stream`, this iteration.
    Read {
        stream: u32,
        offset: u32,
    },
    /// The `seq`-th conditional read of `stream` this iteration, under
    /// predicate `pred` (the shared cursor makes order semantic).
    CondRead {
        stream: u32,
        seq: u32,
        pred: ExprId,
    },
    /// A scratchpad load at `addr` observing write epoch `epoch`.
    SpRead {
        epoch: u32,
        addr: ExprId,
        ty: Ty,
    },
    /// An inter-cluster shuffle of `data` from lane `src`.
    Comm {
        data: ExprId,
        src: ExprId,
    },
    Un(UnKind, ExprId),
    Bin(BinKind, ExprId, ExprId),
    Select {
        cond: ExprId,
        a: ExprId,
        b: ExprId,
    },
}

#[derive(Default)]
struct Arena {
    nodes: Vec<Node>,
    memo: HashMap<Node, ExprId>,
}

impl Arena {
    fn intern(&mut self, mut n: Node) -> ExprId {
        // Wrapping integer add commutes bitwise — the single reordering
        // the fuser exploits (`MulAddI` covers both operand orders) — so
        // it is the single canonicalization the arena performs.
        if let Node::Bin(BinKind::Op(BinOp::AddI), a, b) = n {
            if a > b {
                n = Node::Bin(BinKind::Op(BinOp::AddI), b, a);
            }
        }
        if let Some(&id) = self.memo.get(&n) {
            return id;
        }
        let id = self.nodes.len() as ExprId;
        self.nodes.push(n);
        self.memo.insert(n, id);
        id
    }

    fn node(&self, e: ExprId) -> Node {
        self.nodes[e as usize]
    }

    /// Renders `e` as a depth-capped s-expression for messages.
    fn render(&self, e: ExprId, depth: u32) -> String {
        if depth == 0 {
            return "…".into();
        }
        match self.node(e) {
            Node::Const(bits) => format!("#{bits:#x}"),
            Node::Param(i) => format!("param{i}"),
            Node::Iter => "iter".into(),
            Node::ClusterId => "cid".into(),
            Node::ClusterCount => "ccount".into(),
            Node::Recur(s) => format!("recur{s}"),
            Node::Read { stream, offset } => format!("s{stream}[{offset}]"),
            Node::CondRead { stream, seq, .. } => format!("cond(s{stream}#{seq})"),
            Node::SpRead { epoch, addr, .. } => {
                format!("sp@{}·e{epoch}", self.render(addr, depth - 1))
            }
            Node::Comm { data, src } => format!(
                "comm({}, {})",
                self.render(data, depth - 1),
                self.render(src, depth - 1)
            ),
            Node::Un(k, a) => format!("{k:?}({})", self.render(a, depth - 1)),
            Node::Bin(k, a, b) => {
                let k = match k {
                    BinKind::Op(op) => format!("{op:?}"),
                    BinKind::DivI => "DivI".into(),
                };
                format!(
                    "{k}({}, {})",
                    self.render(a, depth - 1),
                    self.render(b, depth - 1)
                )
            }
            Node::Select { cond, a, b } => format!(
                "sel({}, {}, {})",
                self.render(cond, depth - 1),
                self.render(a, depth - 1),
                self.render(b, depth - 1)
            ),
        }
    }
}

// ------------------------------------------------------------ fault sites

/// One potential-fault site, in program order. Two executions with equal
/// ordered site lists (same condition expressions, same error payloads)
/// report the same first error on every input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Bounds check of a plain read of `stream` at in-record `offset`
    /// (fails iff the stream runs out at this iteration — `StreamExhausted`).
    ReadBounds { stream: u32, offset: u32 },
    /// The `seq`-th conditional read of `stream`, gated by `pred`.
    CondRead { stream: u32, seq: u32, pred: ExprId },
    /// Scratchpad load: faults iff `addr` is out of capacity, at op `at`.
    SpRead { at: u32, addr: ExprId },
    /// Scratchpad store: bounds like a load, and `src`/`ty` determine the
    /// words every later epoch observes.
    SpWrite {
        at: u32,
        addr: ExprId,
        src: ExprId,
        ty: Ty,
    },
    /// Comm shuffle at op `at`: faults iff `src` is not a live lane, and
    /// `data` determines the shuffled words.
    Comm { at: u32, data: ExprId, src: ExprId },
    /// Integer division at op `at`: faults iff `divisor` is zero.
    DivZero { at: u32, divisor: ExprId },
    /// Unconditional dynamic-dispatch fault at op `at`.
    Fault { at: u32, expected: Ty, found: Ty },
}

fn event_desc(ar: &Arena, e: &Event) -> String {
    match *e {
        Event::ReadBounds { stream, offset } => format!("read s{stream}[{offset}]"),
        Event::CondRead { stream, seq, .. } => format!("cond-read s{stream}#{seq}"),
        Event::SpRead { at, addr } => format!("sp-read@v{at}[{}]", ar.render(addr, 3)),
        Event::SpWrite { at, addr, .. } => format!("sp-write@v{at}[{}]", ar.render(addr, 3)),
        Event::Comm { at, src, .. } => format!("comm@v{at}<{}>", ar.render(src, 3)),
        Event::DivZero { at, divisor } => format!("div@v{at}/{}", ar.render(divisor, 3)),
        Event::Fault { at, .. } => format!("fault@v{at}"),
    }
}

// -------------------------------------------------- reference semantics

/// The kernel-IR side of the comparison: expressions per value id, the
/// ordered fault-site list, output write map, conditional-write sequences,
/// and recurrence feeds.
struct Semantics {
    expr: Vec<ExprId>,
    events: Vec<Event>,
    /// (output stream, in-record offset) -> written expression.
    writes: BTreeMap<(u32, u32), ExprId>,
    /// Per output stream: ordered (predicate, source) conditional writes.
    cond_writes: Vec<Vec<(ExprId, ExprId)>>,
    /// Per recurrence slot: (init bits, feed expression).
    recurs: Vec<(u32, ExprId)>,
}

fn reference_semantics(kernel: &Kernel, ar: &mut Arena) -> Semantics {
    let ops = kernel.ops();
    let zero = ar.intern(Node::Const(0));
    let mut sem = Semantics {
        expr: vec![zero; ops.len()],
        events: Vec::new(),
        writes: BTreeMap::new(),
        cond_writes: vec![Vec::new(); kernel.outputs().len()],
        recurs: Vec::new(),
    };
    let mut recur_slot = vec![u32::MAX; ops.len()];
    for (slot, (r, _)) in kernel.recurrences().enumerate() {
        recur_slot[r.index()] = slot as u32;
    }
    let mut in_seen = vec![0u32; kernel.inputs().len()];
    let mut out_seen = vec![0u32; kernel.outputs().len()];
    let mut cond_seq = vec![0u32; kernel.inputs().len()];
    let mut sp_epoch = 0u32;

    for (i, op) in ops.iter().enumerate() {
        let at = i as u32;
        let e = |sem: &Semantics, j: usize| sem.expr[op.args[j].index()];
        let aty = |j: usize| kernel.ty(op.args[j]);
        // The legacy interpreter's dynamic-dispatch failure: the op
        // faults unconditionally and its value is never produced (the
        // lattice default, zero, stands in — same as the tape).
        macro_rules! fault {
            () => {{
                sem.events.push(Event::Fault {
                    at,
                    expected: Ty::F32,
                    found: op.args.first().map_or(Ty::I32, |&a| kernel.ty(a)),
                });
                zero
            }};
        }
        macro_rules! bin {
            ($i:ident, $f:ident) => {{
                let (a, b) = (e(&sem, 0), e(&sem, 1));
                if aty(0) != aty(1) {
                    fault!()
                } else {
                    let k = match aty(0) {
                        Ty::I32 => BinKind::Op(BinOp::$i),
                        Ty::F32 => BinKind::Op(BinOp::$f),
                    };
                    ar.intern(Node::Bin(k, a, b))
                }
            }};
        }
        macro_rules! int_bin {
            ($k:ident) => {{
                let (a, b) = (e(&sem, 0), e(&sem, 1));
                if aty(0) != Ty::I32 || aty(1) != Ty::I32 {
                    fault!()
                } else {
                    ar.intern(Node::Bin(BinKind::Op(BinOp::$k), a, b))
                }
            }};
        }
        use Opcode::*;
        let expr = match &op.opcode {
            Const(s) => ar.intern(Node::Const(bits_of(*s))),
            Param(idx, _) => ar.intern(Node::Param(*idx)),
            IterIndex => ar.intern(Node::Iter),
            ClusterId => ar.intern(Node::ClusterId),
            ClusterCount => ar.intern(Node::ClusterCount),
            Recur(_) => ar.intern(Node::Recur(recur_slot[i])),
            Read(s) => {
                let offset = in_seen[s.index()];
                in_seen[s.index()] += 1;
                sem.events.push(Event::ReadBounds {
                    stream: s.0,
                    offset,
                });
                ar.intern(Node::Read {
                    stream: s.0,
                    offset,
                })
            }
            Write(s) => {
                let offset = out_seen[s.index()];
                out_seen[s.index()] += 1;
                sem.writes.insert((s.0, offset), e(&sem, 0));
                zero
            }
            CondRead(s) => {
                in_seen[s.index()] += 1;
                let seq = cond_seq[s.index()];
                cond_seq[s.index()] += 1;
                let pred = e(&sem, 0);
                sem.events.push(Event::CondRead {
                    stream: s.0,
                    seq,
                    pred,
                });
                ar.intern(Node::CondRead {
                    stream: s.0,
                    seq,
                    pred,
                })
            }
            CondWrite(s) => {
                out_seen[s.index()] += 1;
                let pair = (e(&sem, 0), e(&sem, 1));
                sem.cond_writes[s.index()].push(pair);
                zero
            }
            SpRead(ty) => {
                let addr = e(&sem, 0);
                sem.events.push(Event::SpRead { at, addr });
                ar.intern(Node::SpRead {
                    epoch: sp_epoch,
                    addr,
                    ty: *ty,
                })
            }
            SpWrite => {
                sem.events.push(Event::SpWrite {
                    at,
                    addr: e(&sem, 0),
                    src: e(&sem, 1),
                    ty: aty(1),
                });
                sp_epoch += 1;
                zero
            }
            Comm => {
                let (data, src) = (e(&sem, 0), e(&sem, 1));
                sem.events.push(Event::Comm { at, data, src });
                ar.intern(Node::Comm { data, src })
            }
            Add => bin!(AddI, AddF),
            Sub => bin!(SubI, SubF),
            Mul => bin!(MulI, MulF),
            Div => {
                let (a, b) = (e(&sem, 0), e(&sem, 1));
                if aty(0) != aty(1) {
                    fault!()
                } else if aty(0) == Ty::I32 {
                    sem.events.push(Event::DivZero { at, divisor: b });
                    ar.intern(Node::Bin(BinKind::DivI, a, b))
                } else {
                    ar.intern(Node::Bin(BinKind::Op(BinOp::DivF), a, b))
                }
            }
            Min => bin!(MinI, MinF),
            Max => bin!(MaxI, MaxF),
            Sqrt => {
                if aty(0) == Ty::F32 {
                    let a = e(&sem, 0);
                    ar.intern(Node::Un(UnKind::Sqrt, a))
                } else {
                    fault!()
                }
            }
            Floor => {
                if aty(0) == Ty::F32 {
                    let a = e(&sem, 0);
                    ar.intern(Node::Un(UnKind::Floor, a))
                } else {
                    fault!()
                }
            }
            Neg => {
                let k = match aty(0) {
                    Ty::I32 => UnKind::NegI,
                    Ty::F32 => UnKind::NegF,
                };
                let a = e(&sem, 0);
                ar.intern(Node::Un(k, a))
            }
            Abs => {
                let k = match aty(0) {
                    Ty::I32 => UnKind::AbsI,
                    Ty::F32 => UnKind::AbsF,
                };
                let a = e(&sem, 0);
                ar.intern(Node::Un(k, a))
            }
            And => int_bin!(And),
            Or => int_bin!(Or),
            Xor => int_bin!(Xor),
            Shl => int_bin!(Shl),
            Shr => int_bin!(Shr),
            Eq | Ne if aty(0) != aty(1) => {
                // Legacy `scalar_eq` on mixed types is a constant, not an
                // error.
                ar.intern(Node::Const(u32::from(matches!(op.opcode, Ne))))
            }
            Eq => bin!(EqI, EqF),
            Ne => bin!(NeI, NeF),
            Lt => bin!(LtI, LtF),
            Le => bin!(LeI, LeF),
            Select => {
                let (cond, a, b) = (e(&sem, 0), e(&sem, 1), e(&sem, 2));
                ar.intern(Node::Select { cond, a, b })
            }
            ItoF => {
                if aty(0) == Ty::I32 {
                    let a = e(&sem, 0);
                    ar.intern(Node::Un(UnKind::ItoF, a))
                } else {
                    fault!()
                }
            }
            FtoI => {
                if aty(0) == Ty::F32 {
                    let a = e(&sem, 0);
                    ar.intern(Node::Un(UnKind::FtoI, a))
                } else {
                    fault!()
                }
            }
        };
        sem.expr[i] = expr;
    }
    for (slot, (r, next)) in kernel.recurrences().enumerate() {
        let init = match &ops[r.index()].opcode {
            Opcode::Recur(init) => *init,
            _ => unreachable!("recurrences() yields Recur ops"),
        };
        let _ = slot;
        sem.recurs.push((bits_of(init), sem.expr[next.index()]));
    }
    sem
}

// ------------------------------------------------------- tape semantics

/// Symbolic execution of the compiled tape (prologue then one body pass),
/// accumulating structural findings as it goes.
struct TapeExec<'t> {
    tape: &'t Tape,
    env: Vec<ExprId>,
    defined: Vec<bool>,
    events: Vec<Event>,
    writes: BTreeMap<(u32, u32), ExprId>,
    cond_writes: Vec<Vec<(ExprId, ExprId)>>,
    cond_seq: Vec<u32>,
    sp_epoch: u32,
    findings: Vec<TapeFinding>,
    /// Planar tapes: plane index -> (output stream, in-record offset).
    out_planes: Vec<Option<(u32, u32)>>,
}

impl<'t> TapeExec<'t> {
    fn new(tape: &'t Tape, zero: ExprId) -> Self {
        let n_out_planes: usize = tape
            .out_plane_base
            .iter()
            .zip(tape.kernel.outputs())
            .filter(|&(&b, _)| b != u32::MAX)
            .map(|(_, d)| d.record_width as usize)
            .sum();
        let mut out_planes = vec![None; n_out_planes];
        for (s, (&base, d)) in tape
            .out_plane_base
            .iter()
            .zip(tape.kernel.outputs())
            .enumerate()
        {
            if base != u32::MAX {
                for o in 0..d.record_width {
                    out_planes[(base + o) as usize] = Some((s as u32, o));
                }
            }
        }
        Self {
            tape,
            env: vec![zero; tape.n_vals],
            defined: vec![false; tape.n_vals],
            events: Vec::new(),
            writes: BTreeMap::new(),
            cond_writes: vec![Vec::new(); tape.kernel.outputs().len()],
            cond_seq: vec![0u32; tape.kernel.inputs().len()],
            sp_epoch: 0,
            findings: Vec::new(),
            out_planes,
        }
    }

    fn push(&mut self, kind: TapeCheckKind, message: String) {
        self.findings.push(TapeFinding { kind, message });
    }

    /// Reads operand slot `v`. `below` carries the destination slot when
    /// the executor's `split_*` layout requires `v < below`.
    fn opnd(&mut self, v: u32, below: Option<u32>) -> ExprId {
        if v as usize >= self.env.len() {
            self.push(
                TapeCheckKind::OperandOrder,
                format!(
                    "operand v{v} outside the value lattice ({})",
                    self.env.len()
                ),
            );
            return self.env[0];
        }
        if let Some(d) = below {
            if v >= d {
                self.push(
                    TapeCheckKind::OperandOrder,
                    format!("operand v{v} not strictly below destination v{d}"),
                );
            }
        }
        if !self.defined[v as usize] {
            self.push(
                TapeCheckKind::UndefinedSlot,
                format!("operand v{v} read before any definition"),
            );
        }
        self.env[v as usize]
    }

    fn define(&mut self, d: u32, e: ExprId) {
        if d as usize >= self.env.len() {
            self.push(
                TapeCheckKind::OperandOrder,
                format!(
                    "destination v{d} outside the value lattice ({})",
                    self.env.len()
                ),
            );
            return;
        }
        if self.defined[d as usize] {
            self.push(
                TapeCheckKind::OperandOrder,
                format!("slot v{d} defined more than once"),
            );
        }
        self.defined[d as usize] = true;
        self.env[d as usize] = e;
    }

    /// Validates a raw input access and returns its leaf expression;
    /// emits the bounds-check event.
    fn input_read(&mut self, ar: &mut Arena, stream: u32, width: u32, offset: u32) -> ExprId {
        let inputs = self.tape.kernel.inputs();
        match inputs.get(stream as usize) {
            None => self.push(
                TapeCheckKind::AccessShape,
                format!("read of undeclared input stream s{stream}"),
            ),
            Some(d) => {
                if d.conditional {
                    self.push(
                        TapeCheckKind::AccessShape,
                        format!("plain read of conditional input stream s{stream}"),
                    );
                }
                if width != d.record_width || offset >= d.record_width.max(1) {
                    self.push(
                        TapeCheckKind::AccessShape,
                        format!(
                            "read of s{stream} uses width {width} offset {offset}, \
                             declared record width {}",
                            d.record_width
                        ),
                    );
                }
                if self.tape.planar && self.tape.in_plane_base[stream as usize] != u32::MAX {
                    self.push(
                        TapeCheckKind::PlanarMap,
                        format!("raw read of planarized input stream s{stream}"),
                    );
                }
            }
        }
        self.events.push(Event::ReadBounds { stream, offset });
        ar.intern(Node::Read { stream, offset })
    }

    /// Validates a planar input access and returns its leaf expression
    /// (the same `Read` leaf a raw access would produce — the bounds
    /// condition is layout-invariant).
    fn plane_read(&mut self, ar: &mut Arena, stream: u32, plane: u32) -> ExprId {
        let base = self
            .tape
            .in_plane_base
            .get(stream as usize)
            .copied()
            .unwrap_or(u32::MAX);
        let width = self
            .tape
            .kernel
            .inputs()
            .get(stream as usize)
            .map_or(0, |d| d.record_width);
        if !self.tape.planar || base == u32::MAX || plane < base || plane - base >= width.max(1) {
            self.push(
                TapeCheckKind::PlanarMap,
                format!("plane {plane} is not a plane of input stream s{stream}"),
            );
            let offset = plane.saturating_sub(base.min(plane));
            self.events.push(Event::ReadBounds { stream, offset });
            return ar.intern(Node::Read { stream, offset });
        }
        let offset = plane - base;
        self.events.push(Event::ReadBounds { stream, offset });
        ar.intern(Node::Read { stream, offset })
    }

    /// Records a plain output write, checking the declaration.
    fn output_write(&mut self, stream: u32, width: u32, offset: u32, e: ExprId) {
        match self.tape.kernel.outputs().get(stream as usize) {
            None => self.push(
                TapeCheckKind::AccessShape,
                format!("write to undeclared output stream s{stream}"),
            ),
            Some(d) => {
                if d.conditional {
                    self.push(
                        TapeCheckKind::AccessShape,
                        format!("plain write to conditional output stream s{stream}"),
                    );
                }
                if width != d.record_width || offset >= d.record_width.max(1) {
                    self.push(
                        TapeCheckKind::AccessShape,
                        format!(
                            "write to s{stream} uses width {width} offset {offset}, \
                             declared record width {}",
                            d.record_width
                        ),
                    );
                }
                if self.tape.planar {
                    self.push(
                        TapeCheckKind::PlanarMap,
                        format!("raw write to s{stream} on a planar tape"),
                    );
                }
            }
        }
        if self.writes.insert((stream, offset), e).is_some() {
            self.push(
                TapeCheckKind::WriteCoverage,
                format!("output word s{stream}[{offset}] written more than once"),
            );
        }
    }

    /// Resolves a planar output write to its (stream, offset) and records
    /// it.
    fn plane_write(&mut self, plane: u32, e: ExprId) {
        if !self.tape.planar {
            self.push(
                TapeCheckKind::PlanarMap,
                format!("planar write to plane {plane} on a non-planar tape"),
            );
            return;
        }
        match self.out_planes.get(plane as usize).copied().flatten() {
            None => self.push(
                TapeCheckKind::PlanarMap,
                format!("plane {plane} is not a plane of any output stream"),
            ),
            Some((stream, offset)) => {
                if self.writes.insert((stream, offset), e).is_some() {
                    self.push(
                        TapeCheckKind::WriteCoverage,
                        format!("output word s{stream}[{offset}] written more than once"),
                    );
                }
            }
        }
    }

    /// Symbolically steps one instruction. `in_prologue` instructions
    /// additionally must be hoistable (pure, infallible, iteration-free).
    fn step(&mut self, ar: &mut Arena, ins: &Instr, in_prologue: bool) {
        if in_prologue && !fuse::hoistable(ins) {
            self.push(
                TapeCheckKind::HoistedEffect,
                format!("fallible or per-iteration instruction hoisted into the prologue: {ins:?}"),
            );
        }
        use Instr::*;
        macro_rules! plain_bin {
            ($k:ident, $dst:expr, $a:expr, $b:expr) => {{
                let (a, b) = (self.opnd($a, Some($dst)), self.opnd($b, Some($dst)));
                let e = ar.intern(Node::Bin(BinKind::Op(BinOp::$k), a, b));
                self.define($dst, e);
            }};
        }
        macro_rules! plain_un {
            ($k:ident, $dst:expr, $a:expr) => {{
                let a = self.opnd($a, Some($dst));
                let e = ar.intern(Node::Un(UnKind::$k, a));
                self.define($dst, e);
            }};
        }
        match *ins {
            ConstBits { dst, bits } => {
                let e = ar.intern(Node::Const(bits));
                self.define(dst, e);
            }
            Param { dst, idx } => {
                if idx as usize >= self.tape.kernel.param_tys().len() {
                    self.push(
                        TapeCheckKind::OperandOrder,
                        format!("parameter index {idx} out of range"),
                    );
                }
                let e = ar.intern(Node::Param(idx));
                self.define(dst, e);
            }
            IterIndex { dst } => {
                let e = ar.intern(Node::Iter);
                self.define(dst, e);
            }
            ClusterId { dst } => {
                let e = ar.intern(Node::ClusterId);
                self.define(dst, e);
            }
            ClusterCount { dst } => {
                let e = ar.intern(Node::ClusterCount);
                self.define(dst, e);
            }
            LoadRecur { dst, slot } => {
                if slot as usize >= self.tape.recurs.len() {
                    self.push(
                        TapeCheckKind::RecurrenceWiring,
                        format!("load of undeclared recurrence slot {slot}"),
                    );
                }
                let e = ar.intern(Node::Recur(slot));
                self.define(dst, e);
            }
            Read {
                dst,
                stream,
                width,
                offset,
            } => {
                let e = self.input_read(ar, stream, width, offset);
                self.define(dst, e);
            }
            Read2 {
                da,
                sa,
                wa,
                oa,
                db,
                sb,
                wb,
                ob,
            } => {
                if da == db {
                    self.push(
                        TapeCheckKind::OperandOrder,
                        format!("paired read defines v{da} twice"),
                    );
                }
                let ea = self.input_read(ar, sa, wa, oa);
                self.define(da, ea);
                let eb = self.input_read(ar, sb, wb, ob);
                self.define(db, eb);
            }
            PRead { dst, stream, plane } => {
                let e = self.plane_read(ar, stream, plane);
                self.define(dst, e);
            }
            PRead2 {
                da,
                sa,
                pa,
                db,
                sb,
                pb,
            } => {
                if da == db {
                    self.push(
                        TapeCheckKind::OperandOrder,
                        format!("paired planar read defines v{da} twice"),
                    );
                }
                let ea = self.plane_read(ar, sa, pa);
                self.define(da, ea);
                let eb = self.plane_read(ar, sb, pb);
                self.define(db, eb);
            }
            CondRead { dst, pred, stream } => {
                match self.tape.kernel.inputs().get(stream as usize) {
                    Some(d) if d.conditional => {}
                    _ => self.push(
                        TapeCheckKind::AccessShape,
                        format!("conditional read of non-conditional stream s{stream}"),
                    ),
                }
                let p = self.opnd(pred, Some(dst));
                let seq = self
                    .cond_seq
                    .get(stream as usize)
                    .copied()
                    .unwrap_or_default();
                if let Some(c) = self.cond_seq.get_mut(stream as usize) {
                    *c += 1;
                }
                self.events.push(Event::CondRead {
                    stream,
                    seq,
                    pred: p,
                });
                let e = ar.intern(Node::CondRead {
                    stream,
                    seq,
                    pred: p,
                });
                self.define(dst, e);
            }
            Write {
                src,
                stream,
                width,
                offset,
            } => {
                let e = self.opnd(src, None);
                self.output_write(stream, width, offset, e);
            }
            CondWrite { pred, src, stream } => {
                match self.tape.kernel.outputs().get(stream as usize) {
                    Some(d) if d.conditional => {}
                    _ => self.push(
                        TapeCheckKind::AccessShape,
                        format!("conditional write to non-conditional stream s{stream}"),
                    ),
                }
                let p = self.opnd(pred, None);
                let s = self.opnd(src, None);
                if let Some(list) = self.cond_writes.get_mut(stream as usize) {
                    list.push((p, s));
                }
            }
            SpRead { dst, addr, ty } => {
                let a = self.opnd(addr, Some(dst));
                self.events.push(Event::SpRead { at: dst, addr: a });
                let e = ar.intern(Node::SpRead {
                    epoch: self.sp_epoch,
                    addr: a,
                    ty,
                });
                self.define(dst, e);
            }
            SpWrite { at, addr, src, ty } => {
                let a = self.opnd(addr, None);
                let s = self.opnd(src, None);
                self.events.push(Event::SpWrite {
                    at,
                    addr: a,
                    src: s,
                    ty,
                });
                self.sp_epoch += 1;
            }
            Comm { dst, data, src } => {
                let d = self.opnd(data, Some(dst));
                let s = self.opnd(src, Some(dst));
                self.events.push(Event::Comm {
                    at: dst,
                    data: d,
                    src: s,
                });
                let e = ar.intern(Node::Comm { data: d, src: s });
                self.define(dst, e);
            }
            DivI { dst, a, b } => {
                let (ea, eb) = (self.opnd(a, Some(dst)), self.opnd(b, Some(dst)));
                self.events.push(Event::DivZero {
                    at: dst,
                    divisor: eb,
                });
                let e = ar.intern(Node::Bin(BinKind::DivI, ea, eb));
                self.define(dst, e);
            }
            Fault {
                at,
                expected,
                found,
            } => {
                self.events.push(Event::Fault {
                    at,
                    expected,
                    found,
                });
                // The faulted op's value is never produced; the lattice
                // default (zero) stands in, same as the reference.
                let z = ar.intern(Node::Const(0));
                self.define(at, z);
            }
            AddI { dst, a, b } => plain_bin!(AddI, dst, a, b),
            AddF { dst, a, b } => plain_bin!(AddF, dst, a, b),
            SubI { dst, a, b } => plain_bin!(SubI, dst, a, b),
            SubF { dst, a, b } => plain_bin!(SubF, dst, a, b),
            MulI { dst, a, b } => plain_bin!(MulI, dst, a, b),
            MulF { dst, a, b } => plain_bin!(MulF, dst, a, b),
            DivF { dst, a, b } => plain_bin!(DivF, dst, a, b),
            MinI { dst, a, b } => plain_bin!(MinI, dst, a, b),
            MinF { dst, a, b } => plain_bin!(MinF, dst, a, b),
            MaxI { dst, a, b } => plain_bin!(MaxI, dst, a, b),
            MaxF { dst, a, b } => plain_bin!(MaxF, dst, a, b),
            And { dst, a, b } => plain_bin!(And, dst, a, b),
            Or { dst, a, b } => plain_bin!(Or, dst, a, b),
            Xor { dst, a, b } => plain_bin!(Xor, dst, a, b),
            Shl { dst, a, b } => plain_bin!(Shl, dst, a, b),
            Shr { dst, a, b } => plain_bin!(Shr, dst, a, b),
            EqI { dst, a, b } => plain_bin!(EqI, dst, a, b),
            EqF { dst, a, b } => plain_bin!(EqF, dst, a, b),
            NeI { dst, a, b } => plain_bin!(NeI, dst, a, b),
            NeF { dst, a, b } => plain_bin!(NeF, dst, a, b),
            LtI { dst, a, b } => plain_bin!(LtI, dst, a, b),
            LtF { dst, a, b } => plain_bin!(LtF, dst, a, b),
            LeI { dst, a, b } => plain_bin!(LeI, dst, a, b),
            LeF { dst, a, b } => plain_bin!(LeF, dst, a, b),
            NegI { dst, a } => plain_un!(NegI, dst, a),
            NegF { dst, a } => plain_un!(NegF, dst, a),
            AbsI { dst, a } => plain_un!(AbsI, dst, a),
            AbsF { dst, a } => plain_un!(AbsF, dst, a),
            Sqrt { dst, a } => plain_un!(Sqrt, dst, a),
            Floor { dst, a } => plain_un!(Floor, dst, a),
            ItoF { dst, a } => plain_un!(ItoF, dst, a),
            FtoI { dst, a } => plain_un!(FtoI, dst, a),
            Select { dst, cond, a, b } => {
                let c = self.opnd(cond, Some(dst));
                let ea = self.opnd(a, Some(dst));
                let eb = self.opnd(b, Some(dst));
                let e = ar.intern(Node::Select {
                    cond: c,
                    a: ea,
                    b: eb,
                });
                self.define(dst, e);
            }
            // Fused superinstructions expand to the exact expression the
            // executor computes (operand order preserved; `MulAddI` goes
            // through the arena's canonical integer add).
            MulAddF { dst, a, b, c } => {
                let (ea, eb, ec) = (
                    self.opnd(a, Some(dst)),
                    self.opnd(b, Some(dst)),
                    self.opnd(c, Some(dst)),
                );
                let m = ar.intern(Node::Bin(BinKind::Op(BinOp::MulF), ea, eb));
                let e = ar.intern(Node::Bin(BinKind::Op(BinOp::AddF), m, ec));
                self.define(dst, e);
            }
            AddMulF { dst, c, a, b } => {
                let (ec, ea, eb) = (
                    self.opnd(c, Some(dst)),
                    self.opnd(a, Some(dst)),
                    self.opnd(b, Some(dst)),
                );
                let m = ar.intern(Node::Bin(BinKind::Op(BinOp::MulF), ea, eb));
                let e = ar.intern(Node::Bin(BinKind::Op(BinOp::AddF), ec, m));
                self.define(dst, e);
            }
            MulSubF { dst, a, b, c } => {
                let (ea, eb, ec) = (
                    self.opnd(a, Some(dst)),
                    self.opnd(b, Some(dst)),
                    self.opnd(c, Some(dst)),
                );
                let m = ar.intern(Node::Bin(BinKind::Op(BinOp::MulF), ea, eb));
                let e = ar.intern(Node::Bin(BinKind::Op(BinOp::SubF), m, ec));
                self.define(dst, e);
            }
            SubMulF { dst, c, a, b } => {
                let (ec, ea, eb) = (
                    self.opnd(c, Some(dst)),
                    self.opnd(a, Some(dst)),
                    self.opnd(b, Some(dst)),
                );
                let m = ar.intern(Node::Bin(BinKind::Op(BinOp::MulF), ea, eb));
                let e = ar.intern(Node::Bin(BinKind::Op(BinOp::SubF), ec, m));
                self.define(dst, e);
            }
            MulMulAddF { dst, a, b, c, d } => {
                let (ea, eb, ec, ed) = (
                    self.opnd(a, Some(dst)),
                    self.opnd(b, Some(dst)),
                    self.opnd(c, Some(dst)),
                    self.opnd(d, Some(dst)),
                );
                let m1 = ar.intern(Node::Bin(BinKind::Op(BinOp::MulF), ea, eb));
                let m2 = ar.intern(Node::Bin(BinKind::Op(BinOp::MulF), ec, ed));
                let e = ar.intern(Node::Bin(BinKind::Op(BinOp::AddF), m1, m2));
                self.define(dst, e);
            }
            MulMulSubF { dst, a, b, c, d } => {
                let (ea, eb, ec, ed) = (
                    self.opnd(a, Some(dst)),
                    self.opnd(b, Some(dst)),
                    self.opnd(c, Some(dst)),
                    self.opnd(d, Some(dst)),
                );
                let m1 = ar.intern(Node::Bin(BinKind::Op(BinOp::MulF), ea, eb));
                let m2 = ar.intern(Node::Bin(BinKind::Op(BinOp::MulF), ec, ed));
                let e = ar.intern(Node::Bin(BinKind::Op(BinOp::SubF), m1, m2));
                self.define(dst, e);
            }
            MulAddI { dst, a, b, c } => {
                let (ea, eb, ec) = (
                    self.opnd(a, Some(dst)),
                    self.opnd(b, Some(dst)),
                    self.opnd(c, Some(dst)),
                );
                let m = ar.intern(Node::Bin(BinKind::Op(BinOp::MulI), ea, eb));
                let e = ar.intern(Node::Bin(BinKind::Op(BinOp::AddI), m, ec));
                self.define(dst, e);
            }
            MulSubI { dst, a, b, c } => {
                let (ea, eb, ec) = (
                    self.opnd(a, Some(dst)),
                    self.opnd(b, Some(dst)),
                    self.opnd(c, Some(dst)),
                );
                let m = ar.intern(Node::Bin(BinKind::Op(BinOp::MulI), ea, eb));
                let e = ar.intern(Node::Bin(BinKind::Op(BinOp::SubI), m, ec));
                self.define(dst, e);
            }
            SubMulI { dst, c, a, b } => {
                let (ec, ea, eb) = (
                    self.opnd(c, Some(dst)),
                    self.opnd(a, Some(dst)),
                    self.opnd(b, Some(dst)),
                );
                let m = ar.intern(Node::Bin(BinKind::Op(BinOp::MulI), ea, eb));
                let e = ar.intern(Node::Bin(BinKind::Op(BinOp::SubI), ec, m));
                self.define(dst, e);
            }
            BinKR { op, dst, a, k } => {
                let ea = self.opnd(a, Some(dst));
                let ek = ar.intern(Node::Const(k));
                let e = ar.intern(Node::Bin(BinKind::Op(op), ea, ek));
                self.define(dst, e);
            }
            BinKL { op, dst, k, b } => {
                let eb = self.opnd(b, Some(dst));
                let ek = ar.intern(Node::Const(k));
                let e = ar.intern(Node::Bin(BinKind::Op(op), ek, eb));
                self.define(dst, e);
            }
            BinRL {
                op,
                dst,
                b,
                stream,
                width,
                offset,
            } => {
                let er = self.input_read(ar, stream, width, offset);
                let eb = self.opnd(b, Some(dst));
                let e = ar.intern(Node::Bin(BinKind::Op(op), er, eb));
                self.define(dst, e);
            }
            BinRR {
                op,
                dst,
                a,
                stream,
                width,
                offset,
            } => {
                let ea = self.opnd(a, Some(dst));
                let er = self.input_read(ar, stream, width, offset);
                let e = ar.intern(Node::Bin(BinKind::Op(op), ea, er));
                self.define(dst, e);
            }
            BinW {
                op,
                a,
                b,
                stream,
                width,
                offset,
            } => {
                let (ea, eb) = (self.opnd(a, None), self.opnd(b, None));
                let e = ar.intern(Node::Bin(BinKind::Op(op), ea, eb));
                self.output_write(stream, width, offset, e);
            }
            CMulF {
                re_dst,
                im_dst,
                a,
                b,
                c,
                d,
            } => {
                let lo = re_dst.min(im_dst);
                if re_dst == im_dst {
                    self.push(
                        TapeCheckKind::OperandOrder,
                        format!("complex multiply defines v{re_dst} twice"),
                    );
                }
                let (ea, eb, ec, ed) = (
                    self.opnd(a, Some(lo)),
                    self.opnd(b, Some(lo)),
                    self.opnd(c, Some(lo)),
                    self.opnd(d, Some(lo)),
                );
                let m1 = ar.intern(Node::Bin(BinKind::Op(BinOp::MulF), ea, eb));
                let m2 = ar.intern(Node::Bin(BinKind::Op(BinOp::MulF), ec, ed));
                let re = ar.intern(Node::Bin(BinKind::Op(BinOp::SubF), m1, m2));
                let m3 = ar.intern(Node::Bin(BinKind::Op(BinOp::MulF), ea, ed));
                let m4 = ar.intern(Node::Bin(BinKind::Op(BinOp::MulF), ec, eb));
                let im = ar.intern(Node::Bin(BinKind::Op(BinOp::AddF), m3, m4));
                self.define(re_dst, re);
                self.define(im_dst, im);
            }
            BflyF {
                add_dst,
                sub_dst,
                a,
                b,
            } => {
                let lo = add_dst.min(sub_dst);
                if add_dst == sub_dst {
                    self.push(
                        TapeCheckKind::OperandOrder,
                        format!("butterfly defines v{add_dst} twice"),
                    );
                }
                let (ea, eb) = (self.opnd(a, Some(lo)), self.opnd(b, Some(lo)));
                let add = ar.intern(Node::Bin(BinKind::Op(BinOp::AddF), ea, eb));
                let sub = ar.intern(Node::Bin(BinKind::Op(BinOp::SubF), ea, eb));
                self.define(add_dst, add);
                self.define(sub_dst, sub);
            }
            BflyWF {
                a,
                b,
                add_stream,
                add_width,
                add_offset,
                sub_stream,
                sub_width,
                sub_offset,
            } => {
                let (ea, eb) = (self.opnd(a, None), self.opnd(b, None));
                let add = ar.intern(Node::Bin(BinKind::Op(BinOp::AddF), ea, eb));
                let sub = ar.intern(Node::Bin(BinKind::Op(BinOp::SubF), ea, eb));
                self.output_write(add_stream, add_width, add_offset, add);
                self.output_write(sub_stream, sub_width, sub_offset, sub);
            }
            PWrite { src, plane } => {
                let e = self.opnd(src, None);
                self.plane_write(plane, e);
            }
            PBinW { op, a, b, plane } => {
                let (ea, eb) = (self.opnd(a, None), self.opnd(b, None));
                let e = ar.intern(Node::Bin(BinKind::Op(op), ea, eb));
                self.plane_write(plane, e);
            }
            PBflyWF {
                a,
                b,
                add_plane,
                sub_plane,
            } => {
                let (ea, eb) = (self.opnd(a, None), self.opnd(b, None));
                let add = ar.intern(Node::Bin(BinKind::Op(BinOp::AddF), ea, eb));
                let sub = ar.intern(Node::Bin(BinKind::Op(BinOp::SubF), ea, eb));
                self.plane_write(add_plane, add);
                self.plane_write(sub_plane, sub);
            }
        }
    }
}

// ----------------------------------------------------------- comparison

/// Translation-validates `tape` against its kernel and runs the
/// value-range analysis. Returns every finding, errors first in discovery
/// order, then warnings.
pub(crate) fn check_tape(tape: &Tape) -> Vec<TapeFinding> {
    let kernel = &tape.kernel;
    let mut ar = Arena::default();
    let zero = ar.intern(Node::Const(0));

    if tape.n_vals != kernel.ops().len() {
        return vec![TapeFinding {
            kind: TapeCheckKind::OperandOrder,
            message: format!(
                "value lattice has {} slots for {} kernel ops",
                tape.n_vals,
                kernel.ops().len()
            ),
        }];
    }

    let reference = reference_semantics(kernel, &mut ar);
    let mut exec = TapeExec::new(tape, zero);
    for ins in &tape.prologue {
        exec.step(&mut ar, ins, true);
    }
    for ins in &tape.body {
        exec.step(&mut ar, ins, false);
    }
    let TapeExec {
        env,
        defined,
        events,
        writes,
        cond_writes,
        mut findings,
        ..
    } = exec;

    // Fault-site order: first divergence only, to avoid cascades.
    let mut order_diverged = false;
    for (i, (t, r)) in events.iter().zip(&reference.events).enumerate() {
        if t != r {
            findings.push(TapeFinding {
                kind: TapeCheckKind::ErrorOrder,
                message: format!(
                    "fault site {i} is {} in the tape but {} in the reference",
                    event_desc(&ar, t),
                    event_desc(&ar, r)
                ),
            });
            order_diverged = true;
            break;
        }
    }
    if !order_diverged && events.len() != reference.events.len() {
        findings.push(TapeFinding {
            kind: TapeCheckKind::ErrorOrder,
            message: format!(
                "tape has {} fault sites, reference has {}",
                events.len(),
                reference.events.len()
            ),
        });
    }

    // Output write coverage and per-word expressions.
    for (&(stream, offset), &re) in &reference.writes {
        match writes.get(&(stream, offset)) {
            None => findings.push(TapeFinding {
                kind: TapeCheckKind::WriteCoverage,
                message: format!("output word s{stream}[{offset}] is never written"),
            }),
            Some(&te) if te != re => findings.push(TapeFinding {
                kind: TapeCheckKind::WriteMismatch,
                message: format!(
                    "output word s{stream}[{offset}] is {} in the tape but {} in the reference",
                    ar.render(te, 6),
                    ar.render(re, 6)
                ),
            }),
            Some(_) => {}
        }
    }
    for &(stream, offset) in writes.keys() {
        if !reference.writes.contains_key(&(stream, offset)) {
            findings.push(TapeFinding {
                kind: TapeCheckKind::WriteCoverage,
                message: format!("tape writes s{stream}[{offset}], which the reference never does"),
            });
        }
    }

    // Conditional-write sequences, per stream.
    for (s, (t, r)) in cond_writes.iter().zip(&reference.cond_writes).enumerate() {
        if t != r {
            findings.push(TapeFinding {
                kind: TapeCheckKind::CondStreamMismatch,
                message: format!(
                    "conditional writes to s{s} diverge ({} in the tape, {} in the reference)",
                    t.len(),
                    r.len()
                ),
            });
        }
    }

    // Recurrence wiring: count, init bits, and feed expressions.
    if tape.recurs.len() != reference.recurs.len() {
        findings.push(TapeFinding {
            kind: TapeCheckKind::RecurrenceWiring,
            message: format!(
                "tape has {} recurrence slots, kernel declares {}",
                tape.recurs.len(),
                reference.recurs.len()
            ),
        });
    }
    for (slot, (t, &(init, feed))) in tape.recurs.iter().zip(&reference.recurs).enumerate() {
        if t.init_bits != init {
            findings.push(TapeFinding {
                kind: TapeCheckKind::RecurrenceWiring,
                message: format!(
                    "recurrence slot {slot} initializes to {:#x}, kernel says {init:#x}",
                    t.init_bits
                ),
            });
        }
        let next = t.next as usize;
        if next >= env.len() || !defined[next] {
            findings.push(TapeFinding {
                kind: TapeCheckKind::RecurrenceWiring,
                message: format!(
                    "recurrence slot {slot} feeds from undefined slot v{}",
                    t.next
                ),
            });
        } else if env[next] != feed {
            findings.push(TapeFinding {
                kind: TapeCheckKind::RecurrenceWiring,
                message: format!(
                    "recurrence slot {slot} feeds {} but the kernel binds {}",
                    ar.render(env[next], 6),
                    ar.render(feed, 6)
                ),
            });
        }
    }

    // Eligibility flags vs the shared predicates' independent re-derivation.
    let strip = fuse::derive_strip_eligible(&tape.body, tape.recurs.len());
    let batch = tape.config.batch && fuse::derive_batchable(&tape.prologue, &tape.body, strip);
    if tape.strip_eligible && !strip {
        findings.push(TapeFinding {
            kind: TapeCheckKind::FlagOverclaim,
            message: "tape claims strip eligibility the body's instructions refute".into(),
        });
    }
    if tape.batchable && !batch {
        findings.push(TapeFinding {
            kind: TapeCheckKind::FlagOverclaim,
            message: "tape claims batch eligibility the instruction stream refutes".into(),
        });
    }
    if !tape.strip_eligible && strip {
        findings.push(TapeFinding {
            kind: TapeCheckKind::MissedEligibility,
            message: "iterations are provably independent but the tape is not strip-eligible"
                .into(),
        });
    }
    if !tape.batchable && batch {
        findings.push(TapeFinding {
            kind: TapeCheckKind::MissedEligibility,
            message: "the instruction stream is batchable but the tape does not claim it".into(),
        });
    }

    // Value-range analysis over the tape's fault sites.
    let mut memo: Vec<Option<Option<Iv>>> = vec![None; ar.nodes.len()];
    let sp_words = kernel.sp_words() as i64;
    for ev in &events {
        match *ev {
            Event::SpRead { at, addr } | Event::SpWrite { at, addr, .. } => {
                if let Some(iv) = interval(&ar, &mut memo, addr) {
                    if iv.hi < 0 || (sp_words > 0 && iv.lo >= sp_words) {
                        findings.push(TapeFinding {
                            kind: TapeCheckKind::StaticFault,
                            message: format!(
                                "scratchpad access at v{at} is always out of the declared \
                                 {sp_words}-word capacity (address in [{}, {}])",
                                iv.lo, iv.hi
                            ),
                        });
                    } else if sp_words > 0 && iv.lo >= 0 && iv.hi < sp_words {
                        findings.push(TapeFinding {
                            kind: TapeCheckKind::DeadCheck,
                            message: format!(
                                "scratchpad bounds check at v{at} is dead: address in \
                                 [{}, {}] within the declared {sp_words}-word capacity",
                                iv.lo, iv.hi
                            ),
                        });
                    }
                }
            }
            Event::DivZero { at, divisor } => {
                if let Some(iv) = interval(&ar, &mut memo, divisor) {
                    if iv.lo == 0 && iv.hi == 0 {
                        findings.push(TapeFinding {
                            kind: TapeCheckKind::StaticFault,
                            message: format!("division at v{at} divides by constant zero"),
                        });
                    } else if iv.lo > 0 || iv.hi < 0 {
                        findings.push(TapeFinding {
                            kind: TapeCheckKind::DeadCheck,
                            message: format!(
                                "divide-by-zero check at v{at} is dead: divisor in [{}, {}]",
                                iv.lo, iv.hi
                            ),
                        });
                    }
                }
            }
            Event::Comm { at, src, .. } => {
                if let Some(iv) = interval(&ar, &mut memo, src) {
                    if iv.hi < 0 {
                        findings.push(TapeFinding {
                            kind: TapeCheckKind::StaticFault,
                            message: format!(
                                "comm at v{at} always names a negative source lane \
                                 ([{}, {}])",
                                iv.lo, iv.hi
                            ),
                        });
                    } else if iv.lo == 0 && iv.hi == 0 {
                        findings.push(TapeFinding {
                            kind: TapeCheckKind::DeadCheck,
                            message: format!(
                                "comm source check at v{at} is dead: lane 0 is valid for \
                                 every cluster count"
                            ),
                        });
                    }
                }
            }
            Event::Fault { at, .. } => {
                findings.push(TapeFinding {
                    kind: TapeCheckKind::StaticFault,
                    message: format!(
                        "op v{at} is a compile-time-known dynamic-dispatch fault \
                         (ill-typed kernel op)"
                    ),
                });
            }
            Event::ReadBounds { .. } | Event::CondRead { .. } => {}
        }
    }

    findings.sort_by_key(|f| !f.kind.is_error());
    findings
}

// -------------------------------------------------- value-range analysis

/// A closed interval of i32 values (in i64 to keep arithmetic exact).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Iv {
    lo: i64,
    hi: i64,
}

impl Iv {
    fn point(k: i64) -> Self {
        Self { lo: k, hi: k }
    }
}

const I32: Iv = Iv {
    lo: i32::MIN as i64,
    hi: i32::MAX as i64,
};

/// Clamps an exactly computed i64 interval back into the i32 domain, or
/// gives up (wrapping) when it escapes.
fn fit(lo: i64, hi: i64) -> Option<Iv> {
    (lo >= I32.lo && hi <= I32.hi).then_some(Iv { lo, hi })
}

/// Fills every bit below the highest set bit (upper bound for bitwise-or
/// of non-negative values).
fn smear(mut x: i64) -> i64 {
    x |= x >> 1;
    x |= x >> 2;
    x |= x >> 4;
    x |= x >> 8;
    x |= x >> 16;
    x |= x >> 32;
    x
}

/// Interval of `e` as a signed 32-bit integer, or `None` (unknown).
/// Sound for the executor's wrapping semantics: any case that could wrap
/// returns unknown.
fn interval(ar: &Arena, memo: &mut Vec<Option<Option<Iv>>>, e: ExprId) -> Option<Iv> {
    if let Some(done) = memo[e as usize] {
        return done;
    }
    let iv = match ar.node(e) {
        Node::Const(bits) => Some(Iv::point(bits as i32 as i64)),
        Node::Iter => Some(Iv { lo: 0, hi: I32.hi }),
        Node::ClusterId => Some(Iv { lo: 0, hi: I32.hi }),
        Node::ClusterCount => Some(Iv { lo: 1, hi: I32.hi }),
        Node::Param(_)
        | Node::Recur(_)
        | Node::Read { .. }
        | Node::CondRead { .. }
        | Node::SpRead { .. }
        | Node::Comm { .. }
        | Node::Un(..) => None,
        Node::Select { a, b, .. } => {
            let (ia, ib) = (interval(ar, memo, a), interval(ar, memo, b));
            match (ia, ib) {
                (Some(x), Some(y)) => Some(Iv {
                    lo: x.lo.min(y.lo),
                    hi: x.hi.max(y.hi),
                }),
                _ => None,
            }
        }
        Node::Bin(k, a, b) => {
            let ia = interval(ar, memo, a);
            let ib = interval(ar, memo, b);
            match k {
                BinKind::Op(BinOp::AddI) => match (ia, ib) {
                    (Some(x), Some(y)) => fit(x.lo + y.lo, x.hi + y.hi),
                    _ => None,
                },
                BinKind::Op(BinOp::SubI) => match (ia, ib) {
                    (Some(x), Some(y)) => fit(x.lo - y.hi, x.hi - y.lo),
                    _ => None,
                },
                BinKind::Op(BinOp::MulI) => match (ia, ib) {
                    (Some(x), Some(y)) => {
                        let c = [x.lo * y.lo, x.lo * y.hi, x.hi * y.lo, x.hi * y.hi];
                        fit(
                            c.iter().copied().min().unwrap_or(0),
                            c.iter().copied().max().unwrap_or(0),
                        )
                    }
                    _ => None,
                },
                BinKind::Op(BinOp::And) => {
                    // A non-negative mask bounds the result regardless of
                    // the other side's sign.
                    let mask = |iv: Option<Iv>| match iv {
                        Some(iv) if iv.lo == iv.hi && iv.lo >= 0 => Some(iv.lo),
                        _ => None,
                    };
                    match (mask(ia), mask(ib)) {
                        (Some(m), _) | (_, Some(m)) => Some(Iv { lo: 0, hi: m }),
                        _ => match (ia, ib) {
                            (Some(x), Some(y)) if x.lo >= 0 && y.lo >= 0 => Some(Iv {
                                lo: 0,
                                hi: x.hi.min(y.hi),
                            }),
                            _ => None,
                        },
                    }
                }
                BinKind::Op(BinOp::Or) => match (ia, ib) {
                    (Some(x), Some(y)) if x.lo >= 0 && y.lo >= 0 => Some(Iv {
                        lo: 0,
                        hi: smear(x.hi | y.hi),
                    }),
                    _ => None,
                },
                BinKind::Op(BinOp::MinI) => match (ia, ib) {
                    (Some(x), Some(y)) => Some(Iv {
                        lo: x.lo.min(y.lo),
                        hi: x.hi.min(y.hi),
                    }),
                    _ => None,
                },
                BinKind::Op(BinOp::MaxI) => match (ia, ib) {
                    (Some(x), Some(y)) => Some(Iv {
                        lo: x.lo.max(y.lo),
                        hi: x.hi.max(y.hi),
                    }),
                    _ => None,
                },
                BinKind::Op(
                    BinOp::EqI
                    | BinOp::EqF
                    | BinOp::NeI
                    | BinOp::NeF
                    | BinOp::LtI
                    | BinOp::LtF
                    | BinOp::LeI
                    | BinOp::LeF,
                ) => Some(Iv { lo: 0, hi: 1 }),
                _ => None,
            }
        }
    };
    memo[e as usize] = Some(iv);
    iv
}

// ---------------------------------------------------------- corruptions

/// Test-support corruptions: each applies one targeted miscompile to a
/// compiled tape so the negative-fixture suite can assert the validator
/// rejects it with its designated code. Panics when the tape has no site
/// the corruption applies to — fixtures pick kernels that do.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapeMutation {
    /// Swap the operands of the first float subtract (plain or fused
    /// write form) — float sub does not commute → `WriteMismatch`.
    SwapSubOperands,
    /// Swap the two halves of the first paired read — the bounds checks
    /// change order → `ErrorOrder`.
    SwapPairedReads,
    /// Re-fuse the first plain read into a later consumer across an
    /// intervening fallible instruction (the guard the fuser must never
    /// drop) → `ErrorOrder`.
    FuseReadAcrossFallible,
    /// Move the first fallible body instruction into the prologue →
    /// `HoistedEffect`.
    HoistFallible,
    /// Bump the first plain write's in-record offset → `AccessShape`.
    RetargetWrite,
    /// Flip bits of the first prologue constant → `WriteMismatch`.
    CorruptConstBits,
    /// Rewire the first recurrence's feed to the recurrence's own
    /// loaded value → `RecurrenceWiring`.
    RewireRecurrence,
    /// Flip the first recurrence's initial bits → `RecurrenceWiring`.
    CorruptRecurrenceInit,
    /// Claim strip eligibility on an iteration-coupled tape →
    /// `FlagOverclaim`.
    ClaimStripEligible,
    /// Claim batch eligibility on a topology-sensitive tape →
    /// `FlagOverclaim`.
    ClaimBatchable,
    /// Clear strip eligibility on an eligible tape → `MissedEligibility`.
    ClearStripEligible,
    /// Delete the first output write → `WriteCoverage`.
    DropWrite,
    /// Delete the first defining body instruction whose value is used
    /// later → `UndefinedSlot`.
    DropDef,
    /// Point the first plain binary's left operand at its own
    /// destination → `OperandOrder`.
    SelfOperand,
    /// Swap the first conditional write's predicate and source →
    /// `CondStreamMismatch`.
    SwapCondWriteOperands,
    /// Bump the first planar write's plane index → `PlanarMap`.
    ShiftPlanarPlane,
}

impl Tape {
    /// Returns a copy of this tape with `mutation` applied — a targeted
    /// miscompile for exercising the translation validator. Test support
    /// only; panics when the tape has no applicable site.
    #[doc(hidden)]
    pub fn corrupted(&self, mutation: TapeMutation) -> Tape {
        let mut t = self.clone();
        // The clone shares the original's native cell; the mutated body no
        // longer matches any compiled module, so give the corrupt tape a
        // fresh, undecided cell of its own.
        t.native = std::sync::Arc::new(super::native::NativeCell::new());
        let applied = match mutation {
            TapeMutation::SwapSubOperands => t.body.iter_mut().any(|ins| match ins {
                Instr::SubF { a, b, .. } => {
                    std::mem::swap(a, b);
                    true
                }
                Instr::BinW {
                    op: BinOp::SubF,
                    a,
                    b,
                    ..
                }
                | Instr::PBinW {
                    op: BinOp::SubF,
                    a,
                    b,
                    ..
                } => {
                    std::mem::swap(a, b);
                    true
                }
                _ => false,
            }),
            TapeMutation::SwapPairedReads => t.body.iter_mut().any(|ins| match ins {
                Instr::Read2 {
                    da,
                    sa,
                    wa,
                    oa,
                    db,
                    sb,
                    wb,
                    ob,
                } => {
                    std::mem::swap(da, db);
                    std::mem::swap(sa, sb);
                    std::mem::swap(wa, wb);
                    std::mem::swap(oa, ob);
                    true
                }
                _ => false,
            }),
            TapeMutation::FuseReadAcrossFallible => {
                let fal = fuse::fallible_prefix(&t.body);
                let mut site = None;
                'outer: for (i, ins) in t.body.iter().enumerate() {
                    if let Instr::Read {
                        dst,
                        stream,
                        width,
                        offset,
                    } = *ins
                    {
                        for (j, cons) in t.body.iter().enumerate().skip(i + 1) {
                            let (op, a, b, cdst) = match *cons {
                                Instr::AddI { dst: d, a, b } => (BinOp::AddI, a, b, d),
                                Instr::AddF { dst: d, a, b } => (BinOp::AddF, a, b, d),
                                Instr::MulI { dst: d, a, b } => (BinOp::MulI, a, b, d),
                                Instr::MulF { dst: d, a, b } => (BinOp::MulF, a, b, d),
                                _ => continue,
                            };
                            if (a != dst && b != dst) || fuse::read_move_legal(&fal, i, j) {
                                continue;
                            }
                            site = Some((
                                i,
                                j,
                                if a == dst {
                                    Instr::BinRL {
                                        op,
                                        dst: cdst,
                                        b,
                                        stream,
                                        width,
                                        offset,
                                    }
                                } else {
                                    Instr::BinRR {
                                        op,
                                        dst: cdst,
                                        a,
                                        stream,
                                        width,
                                        offset,
                                    }
                                },
                            ));
                            break 'outer;
                        }
                    }
                }
                match site {
                    Some((i, j, fusedins)) => {
                        t.body[j] = fusedins;
                        t.body.remove(i);
                        true
                    }
                    None => false,
                }
            }
            TapeMutation::HoistFallible => match t.body.iter().position(|ins| ins.fallible()) {
                Some(i) => {
                    let ins = t.body.remove(i);
                    t.prologue.push(ins);
                    true
                }
                None => false,
            },
            TapeMutation::RetargetWrite => t.body.iter_mut().any(|ins| match ins {
                Instr::Write { offset, .. } | Instr::BinW { offset, .. } => {
                    *offset += 1;
                    true
                }
                _ => false,
            }),
            TapeMutation::CorruptConstBits => t.prologue.iter_mut().any(|ins| match ins {
                Instr::ConstBits { bits, .. } => {
                    *bits ^= 0x3f;
                    true
                }
                _ => false,
            }),
            TapeMutation::RewireRecurrence => {
                let feed = t.body.iter().find_map(|ins| match *ins {
                    Instr::LoadRecur { dst, slot: 0 } => Some(dst),
                    _ => None,
                });
                match (feed, t.recurs.first_mut()) {
                    (Some(dst), Some(r)) if r.next != dst => {
                        r.next = dst;
                        true
                    }
                    _ => false,
                }
            }
            TapeMutation::CorruptRecurrenceInit => match t.recurs.first_mut() {
                Some(r) => {
                    r.init_bits ^= 1;
                    true
                }
                None => false,
            },
            TapeMutation::ClaimStripEligible => {
                if t.strip_eligible {
                    false
                } else {
                    t.strip_eligible = true;
                    true
                }
            }
            TapeMutation::ClaimBatchable => {
                if t.batchable {
                    false
                } else {
                    t.batchable = true;
                    true
                }
            }
            TapeMutation::ClearStripEligible => {
                if t.strip_eligible {
                    t.strip_eligible = false;
                    t.batchable = false;
                    true
                } else {
                    false
                }
            }
            TapeMutation::DropWrite => {
                let i = t.body.iter().position(|ins| {
                    matches!(
                        ins,
                        Instr::Write { .. } | Instr::BinW { .. } | Instr::PWrite { .. }
                    )
                });
                match i {
                    Some(i) => {
                        t.body.remove(i);
                        true
                    }
                    None => false,
                }
            }
            TapeMutation::DropDef => {
                let mut victim = None;
                for (i, ins) in t.body.iter().enumerate() {
                    let Some(d) = def_of(ins) else { continue };
                    let used_later = t.body.iter().skip(i + 1).any(|later| {
                        let mut hit = false;
                        fuse::for_each_operand(later, |v| hit |= v == d);
                        hit
                    });
                    if used_later {
                        victim = Some(i);
                        break;
                    }
                }
                match victim {
                    Some(i) => {
                        t.body.remove(i);
                        true
                    }
                    None => false,
                }
            }
            TapeMutation::SelfOperand => t.body.iter_mut().any(|ins| match ins {
                Instr::AddI { dst, a, .. }
                | Instr::AddF { dst, a, .. }
                | Instr::SubI { dst, a, .. }
                | Instr::SubF { dst, a, .. }
                | Instr::MulI { dst, a, .. }
                | Instr::MulF { dst, a, .. } => {
                    *a = *dst;
                    true
                }
                _ => false,
            }),
            TapeMutation::SwapCondWriteOperands => t.body.iter_mut().any(|ins| match ins {
                Instr::CondWrite { pred, src, .. } => {
                    std::mem::swap(pred, src);
                    true
                }
                _ => false,
            }),
            TapeMutation::ShiftPlanarPlane => t.body.iter_mut().any(|ins| match ins {
                Instr::PWrite { plane, .. } => {
                    *plane += 1;
                    true
                }
                _ => false,
            }),
        };
        assert!(
            applied,
            "tape has no site for the {mutation:?} corruption — pick a fixture kernel that does"
        );
        t
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Tape, TapeConfig};
    use super::*;
    use crate::{KernelBuilder, Scalar};

    fn saxpy() -> Kernel {
        let mut b = KernelBuilder::new("saxpy");
        let sx = b.in_stream(Ty::F32);
        let sy = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let a = b.param(Ty::F32);
        let x = b.read(sx);
        let y = b.read(sy);
        let ax = b.mul(a, x);
        let r = b.add(ax, y);
        let half = b.const_f(0.5);
        let scaled = b.mul(r, half);
        b.write(out, scaled);
        b.finish().unwrap()
    }

    /// A single-use read whose consumer sits past another fallible read:
    /// the shape the fuser must never fuse across.
    fn gap() -> Kernel {
        let mut b = KernelBuilder::new("gap");
        let sa = b.in_stream(Ty::I32);
        let sb = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(sa);
        let y = b.read(sb);
        let s = b.add(y, y);
        let r = b.add(x, s);
        b.write(out, r);
        b.finish().unwrap()
    }

    fn fsub() -> Kernel {
        let mut b = KernelBuilder::new("fsub");
        let sa = b.in_stream(Ty::F32);
        let sb = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let x = b.read(sa);
        let y = b.read(sb);
        let d = b.sub(x, y);
        b.write(out, d);
        b.finish().unwrap()
    }

    /// Recurrence + conditional output: strip-ineligible, with every
    /// recurrence- and cond-stream-shaped mutation site.
    fn accum() -> Kernel {
        let mut b = KernelBuilder::new("accum");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let oc = b.out_stream(Ty::I32);
        let acc = b.recurrence(Scalar::I32(1));
        let x = b.read(s);
        let sum = b.add(acc, x);
        b.bind_next(acc, sum);
        b.write(out, sum);
        let one = b.const_i(1);
        let odd = b.and(sum, one);
        b.cond_write(oc, odd, sum);
        b.finish().unwrap()
    }

    fn copy() -> Kernel {
        let mut b = KernelBuilder::new("copy");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        b.write(out, x);
        b.finish().unwrap()
    }

    fn no_fuse() -> TapeConfig {
        TapeConfig {
            fuse: false,
            ..TapeConfig::default()
        }
    }

    fn planar() -> TapeConfig {
        TapeConfig {
            planar: true,
            ..TapeConfig::default()
        }
    }

    fn errors(findings: &[TapeFinding]) -> Vec<&TapeFinding> {
        findings.iter().filter(|f| f.kind.is_error()).collect()
    }

    #[test]
    fn trunk_tapes_validate_clean_under_every_config() {
        let configs = [
            TapeConfig::default(),
            TapeConfig::v1_baseline(),
            no_fuse(),
            planar(),
            TapeConfig {
                fuse: false,
                ..planar()
            },
        ];
        for k in [saxpy(), gap(), fsub(), accum(), copy()] {
            for cfg in configs {
                let t = Tape::compile_with(&k, cfg);
                let findings = t.validate();
                assert!(
                    errors(&findings).is_empty(),
                    "kernel `{}` under {cfg:?}: {findings:?}",
                    k.name()
                );
                // No missed-eligibility warnings either: the flags come
                // from the same predicates the validator re-runs.
                assert!(
                    !findings
                        .iter()
                        .any(|f| f.kind == TapeCheckKind::MissedEligibility),
                    "kernel `{}` under {cfg:?}: {findings:?}",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn every_mutation_is_caught_with_its_designated_kind() {
        use TapeCheckKind as K;
        use TapeMutation as M;
        let cases: Vec<(M, Tape, K)> = vec![
            (M::SwapSubOperands, Tape::compile(&fsub()), K::WriteMismatch),
            (M::SwapPairedReads, Tape::compile(&saxpy()), K::ErrorOrder),
            (
                M::FuseReadAcrossFallible,
                Tape::compile_with(&gap(), no_fuse()),
                K::ErrorOrder,
            ),
            (M::HoistFallible, Tape::compile(&gap()), K::HoistedEffect),
            (M::RetargetWrite, Tape::compile(&saxpy()), K::AccessShape),
            (
                M::CorruptConstBits,
                Tape::compile(&saxpy()),
                K::WriteMismatch,
            ),
            (
                M::RewireRecurrence,
                Tape::compile(&accum()),
                K::RecurrenceWiring,
            ),
            (
                M::CorruptRecurrenceInit,
                Tape::compile(&accum()),
                K::RecurrenceWiring,
            ),
            (
                M::ClaimStripEligible,
                Tape::compile(&accum()),
                K::FlagOverclaim,
            ),
            (M::ClaimBatchable, Tape::compile(&accum()), K::FlagOverclaim),
            (
                M::ClearStripEligible,
                Tape::compile(&saxpy()),
                K::MissedEligibility,
            ),
            (M::DropWrite, Tape::compile(&saxpy()), K::WriteCoverage),
            (
                M::DropDef,
                Tape::compile_with(&gap(), no_fuse()),
                K::UndefinedSlot,
            ),
            (
                M::SelfOperand,
                Tape::compile_with(&gap(), no_fuse()),
                K::OperandOrder,
            ),
            (
                M::SwapCondWriteOperands,
                Tape::compile(&accum()),
                K::CondStreamMismatch,
            ),
            (
                M::ShiftPlanarPlane,
                Tape::compile_with(
                    &copy(),
                    TapeConfig {
                        fuse: false,
                        ..planar()
                    },
                ),
                K::PlanarMap,
            ),
        ];
        for (mutation, tape, want) in cases {
            let findings = tape.corrupted(mutation).validate();
            assert!(
                findings.iter().any(|f| f.kind == want),
                "{mutation:?} must be caught as {want:?}, got {findings:?}"
            );
            if want.is_error() {
                assert!(
                    !errors(&findings).is_empty(),
                    "{mutation:?} must be error-severity, got {findings:?}"
                );
            }
        }
    }

    #[test]
    fn division_by_constant_zero_is_a_static_fault() {
        let mut b = KernelBuilder::new("divz");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let zero = b.const_i(0);
        let q = b.div(x, zero);
        b.write(out, q);
        let k = b.finish().unwrap();
        let findings = Tape::compile(&k).validate();
        assert!(
            findings
                .iter()
                .any(|f| f.kind == TapeCheckKind::StaticFault),
            "{findings:?}"
        );
        assert!(errors(&findings).is_empty(), "{findings:?}");
    }

    #[test]
    fn masked_scratchpad_address_is_a_dead_check() {
        // addr = x & 7 with an 8-word scratchpad: both accesses are
        // provably in bounds, so both checks are flagged dead.
        let mut b = KernelBuilder::new("lut");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        b.require_sp(8);
        let x = b.read(s);
        let seven = b.const_i(7);
        let addr = b.and(x, seven);
        b.sp_write(addr, x);
        let y = b.sp_read(addr, Ty::I32);
        b.write(out, y);
        let k = b.finish().unwrap();
        let findings = Tape::compile(&k).validate();
        let dead = findings
            .iter()
            .filter(|f| f.kind == TapeCheckKind::DeadCheck)
            .count();
        assert_eq!(dead, 2, "{findings:?}");
        assert!(errors(&findings).is_empty(), "{findings:?}");
    }

    #[test]
    fn nonzero_divisor_is_a_dead_divide_check() {
        // divisor = (x & 7) + 1 lies in [1, 8]: zero is excluded.
        let mut b = KernelBuilder::new("safediv");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let seven = b.const_i(7);
        let m = b.and(x, seven);
        let one = b.const_i(1);
        let d = b.add(m, one);
        let q = b.div(x, d);
        b.write(out, q);
        let k = b.finish().unwrap();
        let findings = Tape::compile(&k).validate();
        assert!(
            findings.iter().any(|f| f.kind == TapeCheckKind::DeadCheck),
            "{findings:?}"
        );
    }

    #[test]
    fn kinds_catalog_is_total() {
        assert_eq!(TapeCheckKind::ALL.len(), 14);
        for k in TapeCheckKind::ALL {
            assert!(!k.name().is_empty());
        }
        let errors = TapeCheckKind::ALL.iter().filter(|k| k.is_error()).count();
        assert_eq!(errors, 11);
    }
}
