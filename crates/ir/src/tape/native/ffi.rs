//! Zero-dependency `dlopen`/`dlsym` loader and the host-side call shim
//! for generated native modules.
//!
//! The loader links the C library's dynamic-loading entry points directly
//! (no `libloading`, no build script); it is `cfg(unix)`-gated, and every
//! other platform reports a diagnosed fallback through [`super`]. Loaded
//! modules are never `dlclose`d — they live in a process-global registry
//! for the life of the process, so the raw function pointer stays valid
//! and `Send + Sync` are sound.

use super::super::scratch::Scratchpad;
use super::super::Tape;
use crate::{IrError, Scalar, StreamId, Ty, ValueId};
use std::ffi::{c_char, c_int, c_void, CString};
use std::path::Path;

mod sys {
    use super::{c_char, c_int, c_void};
    extern "C" {
        pub fn dlopen(filename: *const c_char, flag: c_int) -> *mut c_void;
        pub fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
        pub fn dlerror() -> *mut c_char;
    }
    pub const RTLD_NOW: c_int = 2;
}

/// Input stream descriptor crossing the C ABI. Stream buffers are the
/// host's `Scalar` vectors viewed as `(tag, payload)` `u32` pairs
/// (`#[repr(u32)]` guarantees that layout), so `len` is `words * 2`.
#[repr(C)]
#[derive(Clone, Copy)]
struct NSlice {
    ptr: *const u32,
    len: usize,
}

impl NSlice {
    const EMPTY: NSlice = NSlice {
        ptr: std::ptr::null(),
        len: 0,
    };
}

/// Mutable output buffer descriptor crossing the C ABI (pairs, as above).
#[repr(C)]
#[derive(Clone, Copy)]
struct NSliceMut {
    ptr: *mut u32,
    len: usize,
}

impl NSliceMut {
    const EMPTY: NSliceMut = NSliceMut {
        ptr: std::ptr::null_mut(),
        len: 0,
    };
}

/// Stream counts at or below this use stack-allocated descriptor arrays
/// in [`call`]; larger kernels fall back to heap vectors. Descriptor
/// allocation is pure per-call overhead, so the common case stays free.
const STACK_STREAMS: usize = 16;

/// Borrows a descriptor slice of length `n` from `arr` when it fits,
/// else from `vec` (grown on demand).
fn desc_slice<'a, T: Copy>(
    arr: &'a mut [T; STACK_STREAMS],
    vec: &'a mut Vec<T>,
    empty: T,
    n: usize,
) -> &'a mut [T] {
    if n <= STACK_STREAMS {
        &mut arr[..n]
    } else {
        vec.resize(n, empty);
        &mut vec[..n]
    }
}

/// Error payload crossing the C ABI; decoded to `(iteration, IrError)`.
#[repr(C)]
#[derive(Default)]
struct NErr {
    code: u32,
    a: u32,
    b: i64,
    c: u32,
    iter: u64,
}

#[allow(clippy::type_complexity)]
type RunFn = unsafe extern "C" fn(
    c: usize,
    lo: usize,
    hi: usize,
    out_base: usize,
    sp_words: usize,
    params: *const u32,
    n_params: usize,
    ins: *const NSlice,
    n_ins: usize,
    outs: *const NSliceMut,
    n_outs: usize,
    conds: *const NSliceMut,
    cond_lens: *mut usize,
    n_conds: usize,
    sp_bits: *mut u32,
    sp_len: usize,
    sp_init: *mut u64,
    sp_f32: *mut u64,
    sp_mask_len: usize,
    err: *mut NErr,
) -> u32;

type AbiFn = extern "C" fn() -> u32;

/// A loaded native module: the entry point plus the buffer-sizing
/// metadata recomputed from the tape at load time.
pub(in crate::tape) struct NativeModule {
    run: RunFn,
    /// Per output stream: conditional pushes per iteration per lane.
    cond_mult: Vec<usize>,
    /// Kept only to document that the handle is intentionally leaked.
    _handle: *mut c_void,
}

// SAFETY: the module is never unloaded, so the function pointer is valid
// for the process lifetime; the handle itself is never used after load.
unsafe impl Send for NativeModule {}
unsafe impl Sync for NativeModule {}

fn dl_error() -> String {
    // SAFETY: dlerror returns a thread-local NUL-terminated string or null.
    unsafe {
        let p = sys::dlerror();
        if p.is_null() {
            "unknown dlopen error".into()
        } else {
            std::ffi::CStr::from_ptr(p).to_string_lossy().into_owned()
        }
    }
}

/// Loads a built artifact, checks its ABI stamp, and resolves the entry
/// point. The handle is intentionally never closed.
pub(super) fn load(
    path: &Path,
    tape: &Tape,
    cond_mult: Vec<usize>,
) -> Result<NativeModule, String> {
    let cpath = CString::new(path.as_os_str().as_encoded_bytes())
        .map_err(|_| "artifact path contains a NUL byte".to_string())?;
    // SAFETY: cpath is a valid NUL-terminated path.
    let handle = unsafe { sys::dlopen(cpath.as_ptr(), sys::RTLD_NOW) };
    if handle.is_null() {
        return Err(format!("dlopen failed: {}", dl_error()));
    }
    let sym = |name: &'static str| -> Result<*mut c_void, String> {
        let cname = CString::new(name).unwrap();
        // SAFETY: handle is a live dlopen handle, cname NUL-terminated.
        let p = unsafe { sys::dlsym(handle, cname.as_ptr()) };
        if p.is_null() {
            Err(format!("missing symbol `{name}`: {}", dl_error()))
        } else {
            Ok(p)
        }
    };
    // SAFETY: the symbol was emitted by our codegen with this signature;
    // the ABI stamp check below rejects artifacts from other versions.
    let abi: AbiFn = unsafe { std::mem::transmute(sym("stream_native_abi")?) };
    let found = abi();
    if found != super::codegen::ABI_VERSION {
        return Err(format!(
            "ABI version mismatch: artifact has {found}, host expects {}",
            super::codegen::ABI_VERSION
        ));
    }
    // SAFETY: as above — codegen emitted this exact signature.
    let run: RunFn = unsafe { std::mem::transmute(sym("stream_native_run")?) };
    debug_assert_eq!(cond_mult.len(), tape.kernel.outputs().len());
    Ok(NativeModule {
        run,
        cond_mult,
        _handle: handle,
    })
}

fn ty_of(code: u32) -> Ty {
    if code == 0 {
        Ty::I32
    } else {
        Ty::F32
    }
}

/// Runs iterations `lo..hi` through the native module — the drop-in
/// replacement for `exec::dispatch` (and, serially, for the whole
/// macro-batching path: the native body is per-iteration, which is
/// bit-identical and needs no failed-batch rerun for exact errors).
///
/// Stream buffers stay in the host's tagged `Scalar` representation —
/// the module reads payloads and writes `(tag, payload)` pairs directly
/// (see the codegen module docs), so there is no bits marshalling on
/// either side of this call.
///
/// `cond` buffers must arrive empty; they are sized to the exact
/// worst-case push count, filled by the module, and truncated to the
/// reported word counts.
#[allow(clippy::too_many_arguments)]
pub(in crate::tape) fn call(
    m: &NativeModule,
    lo: usize,
    hi: usize,
    out_base: usize,
    c: usize,
    sp_words: usize,
    params: &[u32],
    inputs: &[Vec<Scalar>],
    plain: &mut [&mut [Scalar]],
    cond: &mut [Vec<Scalar>],
    sp: &mut Scratchpad,
) -> Result<(), (usize, IrError)> {
    let iters = hi - lo;
    for (v, &mult) in cond.iter_mut().zip(&m.cond_mult) {
        debug_assert!(v.is_empty(), "native call expects empty cond buffers");
        v.resize(iters * c * mult, Scalar::I32(0));
    }
    let (mut ins_a, mut ins_v) = ([NSlice::EMPTY; STACK_STREAMS], Vec::new());
    let ins = desc_slice(&mut ins_a, &mut ins_v, NSlice::EMPTY, inputs.len());
    for (d, v) in ins.iter_mut().zip(inputs) {
        *d = NSlice {
            ptr: v.as_ptr() as *const u32,
            len: v.len() * 2,
        };
    }
    let (mut outs_a, mut outs_v) = ([NSliceMut::EMPTY; STACK_STREAMS], Vec::new());
    let outs = desc_slice(&mut outs_a, &mut outs_v, NSliceMut::EMPTY, plain.len());
    for (d, s) in outs.iter_mut().zip(plain.iter_mut()) {
        *d = NSliceMut {
            ptr: s.as_mut_ptr() as *mut u32,
            len: s.len() * 2,
        };
    }
    let (mut conds_a, mut conds_v) = ([NSliceMut::EMPTY; STACK_STREAMS], Vec::new());
    let conds = desc_slice(&mut conds_a, &mut conds_v, NSliceMut::EMPTY, cond.len());
    for (d, v) in conds.iter_mut().zip(cond.iter_mut()) {
        *d = NSliceMut {
            ptr: v.as_mut_ptr() as *mut u32,
            len: v.len() * 2,
        };
    }
    let (mut lens_a, mut lens_v) = ([0usize; STACK_STREAMS], Vec::new());
    let cond_lens = desc_slice(&mut lens_a, &mut lens_v, 0usize, cond.len());
    let (sp_bits, sp_init, sp_f32) = sp.raw_parts_mut();
    let mut err = NErr::default();
    // SAFETY: every pointer/len pair describes a live buffer owned by this
    // frame (or the caller), all mutually disjoint; the module stays within
    // the given lengths (its entry validates counts and output lengths up
    // front — rc 2 — and every unchecked stream access in the generated
    // loops is covered by those guards or a hoisted per-iteration bounds
    // check). Scalar buffers are viewed as u32 pairs — `#[repr(u32)]`
    // guarantees that layout, and everything the module writes back is a
    // valid `(tag, payload)` pair for the stream's declared type.
    let rc = unsafe {
        (m.run)(
            c,
            lo,
            hi,
            out_base,
            sp_words,
            params.as_ptr(),
            params.len(),
            ins.as_ptr(),
            ins.len(),
            outs.as_ptr(),
            outs.len(),
            conds.as_ptr(),
            cond_lens.as_mut_ptr(),
            conds.len(),
            sp_bits.as_mut_ptr(),
            sp_bits.len(),
            sp_init.as_mut_ptr(),
            sp_f32.as_mut_ptr(),
            sp_init.len(),
            &mut err,
        )
    };
    for (v, &n) in cond.iter_mut().zip(cond_lens.iter()) {
        v.truncate(n);
    }
    if rc == 0 {
        return Ok(());
    }
    // rc == 2 is the module's buffer count/length cross-check: the host
    // derives every count and size from the same tape the module was
    // generated from, so a mismatch can only be a host/module pairing
    // bug, never a data error.
    assert_ne!(
        rc, 2,
        "native module rejected buffer counts/lengths (ABI pairing bug)"
    );
    let iter = err.iter as usize;
    let e = match err.code {
        1 => IrError::StreamExhausted {
            stream: StreamId(err.a),
            iteration: iter,
        },
        2 => IrError::SpOutOfBounds {
            at: ValueId(err.a),
            addr: err.b as i32,
            capacity: sp_words,
        },
        3 => IrError::TypeMismatch {
            at: ValueId(err.a),
            expected: ty_of(err.b as u32),
            found: ty_of(err.c),
        },
        4 => IrError::BadCommSource {
            at: ValueId(err.a),
            src: err.b as i32,
            clusters: c,
        },
        5 => IrError::DivideByZero(ValueId(err.a)),
        other => unreachable!("native module returned unknown error code {other}"),
    };
    Err((iter, e))
}
