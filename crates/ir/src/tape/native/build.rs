//! `rustc` invocation, the process-wide module registry, and the
//! persistent artifact tier for the native backend.
//!
//! A module's identity is its **fingerprint**: codegen version × the
//! exact `rustc -V` string × the generated source text. The source text
//! transitively covers everything that shapes the machine code — the
//! kernel IR, the compile options and `TapeConfig` knobs that changed
//! lowering (fusion, planar), and the record widths/offsets baked in as
//! literals — so two tapes with byte-identical source share one build,
//! and any drift in toolchain or codegen re-keys the artifact.
//!
//! Disk entries self-identify: the payload embeds its key material ahead
//! of the `cdylib` bytes, and a material mismatch is treated as a miss
//! (the same collision-rejection discipline as the grid's schedule tier).

use super::super::Tape;
use super::{codegen, ffi, NativeModule};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Modules already loaded in this process, by fingerprint.
static REGISTRY: Mutex<Option<HashMap<stream_store::Key, Arc<NativeModule>>>> = Mutex::new(None);

/// Uniquifier for scratch build directories (never reused, so a pid +
/// sequence pair cannot collide within or across processes).
static BUILD_SEQ: AtomicU64 = AtomicU64::new(0);

/// The `rustc` to invoke: `STREAM_TAPE_RUSTC` overrides the toolchain
/// default (and doubles as the sabotage hook for fallback tests).
fn rustc_path() -> String {
    std::env::var("STREAM_TAPE_RUSTC").unwrap_or_else(|_| "rustc".to_string())
}

/// Optimization level for generated modules: `STREAM_TAPE_NATIVE_OPT`
/// (`0`-`3`) overrides the default of 3. Generated code is bit-exact at
/// every level — Rust never contracts or reassociates float ops — so
/// differential test harnesses dial this down: LLVM spends seconds on a
/// large random-kernel body at `-O3` and milliseconds at `-O0`. The
/// level is part of the artifact fingerprint, so mixed-level runs over
/// one persistent store never alias.
fn opt_level() -> &'static str {
    match std::env::var("STREAM_TAPE_NATIVE_OPT").as_deref() {
        Ok("0") => "0",
        Ok("1") => "1",
        Ok("2") => "2",
        Ok("3") | Err(_) => "3",
        Ok(other) => {
            if cfg!(debug_assertions) {
                eprintln!(
                    "stream-ir: unrecognized STREAM_TAPE_NATIVE_OPT value {other:?} \
                     (expected 0-3); using 3"
                );
            }
            "3"
        }
    }
}

/// Probes `rustc -V`; a failure here is the "rustc unavailable" arm of
/// the fallback matrix. Not cached: builds are rare and tests repoint
/// the compiler via the environment.
fn rustc_version(rustc: &str) -> Result<String, String> {
    let out = Command::new(rustc)
        .arg("-V")
        .output()
        .map_err(|e| format!("rustc unavailable at `{rustc}`: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "`{rustc} -V` failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout).trim().to_string())
}

fn scratch_dir() -> PathBuf {
    let seq = BUILD_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("stream-native-{}-{seq}", std::process::id()))
}

/// Compiles `source` to a `cdylib` and returns the artifact bytes.
fn compile_to_bytes(rustc: &str, opt: &str, source: &str) -> Result<Vec<u8>, String> {
    let dir = scratch_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating build dir: {e}"))?;
    let result = (|| {
        let src_path = dir.join("kernel.rs");
        let so_path = dir.join("kernel.so");
        std::fs::write(&src_path, source).map_err(|e| format!("writing source: {e}"))?;
        let out = Command::new(rustc)
            .args([
                "--edition",
                "2021",
                "--crate-type",
                "cdylib",
                "--crate-name",
                "stream_native_kernel",
            ])
            .arg(format!("-Copt-level={opt}"))
            .args(["-C", "debuginfo=0", "-C", "strip=symbols", "-o"])
            .arg(&so_path)
            .arg(&src_path)
            .output()
            .map_err(|e| format!("spawning `{rustc}`: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "rustc failed ({}): {}",
                out.status,
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }
        std::fs::read(&so_path).map_err(|e| format!("reading artifact: {e}"))
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// `dlopen`s artifact bytes via a scratch file (unlinked immediately —
/// the mapping keeps the code alive).
fn load_bytes(bytes: &[u8], tape: &Tape, cond_mult: Vec<usize>) -> Result<NativeModule, String> {
    let dir = scratch_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating load dir: {e}"))?;
    let so_path = dir.join("kernel.so");
    let result = std::fs::write(&so_path, bytes)
        .map_err(|e| format!("writing artifact: {e}"))
        .and_then(|()| ffi::load(&so_path, tape, cond_mult));
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Payload layout: `[material_len: u64 LE][material][cdylib bytes]`.
fn encode_payload(material: &[u8], so: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(8 + material.len() + so.len());
    p.extend_from_slice(&(material.len() as u64).to_le_bytes());
    p.extend_from_slice(material);
    p.extend_from_slice(so);
    p
}

/// Splits a payload back into artifact bytes iff its embedded material
/// matches ours (key collisions and foreign entries read as a miss).
fn decode_payload<'p>(payload: &'p [u8], material: &[u8]) -> Option<&'p [u8]> {
    let len = u64::from_le_bytes(payload.get(..8)?.try_into().ok()?) as usize;
    let stored = payload.get(8..8 + len)?;
    if stored != material {
        return None;
    }
    payload.get(8 + len..)
}

/// The full fetch-or-build pipeline: fingerprint, registry, persistent
/// tier, then `rustc`.
pub(super) fn build_or_fetch(tape: &Tape) -> Result<Arc<NativeModule>, String> {
    let source = codegen::generate(tape)?;
    let rustc = rustc_path();
    let version = rustc_version(&rustc)?;
    let opt = opt_level();
    let material = format!(
        "stream-native codegen v{} opt{opt}\n{version}\n{}",
        codegen::CODEGEN_VERSION,
        source.text
    );
    let key = stream_store::Key::of(material.as_bytes());

    {
        let mut reg = REGISTRY.lock().unwrap();
        if let Some(m) = reg.get_or_insert_with(HashMap::new).get(&key) {
            return Ok(Arc::clone(m));
        }
    }

    if let Some(store) = super::DISK.get() {
        if let Some(payload) = store.get(key) {
            if let Some(so) = decode_payload(&payload, material.as_bytes()) {
                let module = Arc::new(load_bytes(so, tape, source.cond_mult.clone())?);
                super::note_disk_hit();
                register(key, &module);
                return Ok(module);
            }
        }
    }

    let mut span = stream_trace::span("native", "build");
    span.arg("kernel", tape.kernel.name());
    span.arg("source_bytes", source.text.len());
    let so = compile_to_bytes(&rustc, opt, &source.text)?;
    span.arg("artifact_bytes", so.len());
    drop(span);
    if let Some(store) = super::DISK.get() {
        // Write-through is best-effort: a full disk must not fail the run.
        let _ = store.put(key, &encode_payload(material.as_bytes(), &so));
    }
    let module = Arc::new(load_bytes(&so, tape, source.cond_mult)?);
    super::note_compile();
    register(key, &module);
    Ok(module)
}

fn register(key: stream_store::Key, module: &Arc<NativeModule>) {
    REGISTRY
        .lock()
        .unwrap()
        .get_or_insert_with(HashMap::new)
        .insert(key, Arc::clone(module));
}

/// Lets tests check the scratch-dir naming stays collision-free.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_dirs_never_repeat() {
        let a = scratch_dir();
        let b = scratch_dir();
        assert_ne!(a, b);
        assert!(a.starts_with(std::env::temp_dir()));
    }

    #[test]
    fn payload_round_trips_and_rejects_foreign_material() {
        let p = encode_payload(b"mat", b"so-bytes");
        assert_eq!(decode_payload(&p, b"mat"), Some(&b"so-bytes"[..]));
        assert_eq!(decode_payload(&p, b"other"), None);
        assert_eq!(decode_payload(&p[..4], b"mat"), None);
    }
}
