//! Rust source emission for the native tape backend.
//!
//! [`generate`] turns a validated [`Tape`] into a standalone `cdylib`
//! crate with every value slot, stream index, record width and word
//! offset baked in as a literal. The body is monomorphized over a
//! const-generic `C` (instantiated for the common cluster counts, with
//! a runtime-width fallback), exactly mirroring `exec::run_range`.
//!
//! The key advantage over the interpreter is **segment fusion**: maximal
//! runs of lane-local, infallible-per-lane instructions are emitted as a
//! *single* `for l in 0..c` loop whose SSA slots are scalar locals, so
//! intermediates stay in registers instead of round-tripping through the
//! `vals` lattice after every instruction (the interpreter's unavoidable
//! cost), and LLVM can vectorize whole dataflow chains across lanes.
//! Cross-lane or per-lane-fallible instructions — `Comm`, conditional
//! streams, scratchpad traffic, `DivI`, `Fault` — are segment barriers,
//! emitted instruction-major exactly like `exec::step` so fault ordering
//! is preserved; values crossing a barrier spill to `vals`, which stays
//! the source of truth at every boundary. Stream bounds checks depend
//! only on the iteration (never on lane data), so hoisting them to the
//! segment head in program order fires the same fault the interpreter
//! would: within a segment they are the *only* fault sites, and `vals`,
//! output and conditional buffers are all discarded by the host on
//! error, making partially-executed segments unobservable.
//!
//! The emitted code must be **bit-exact** against the interpreter:
//!
//! - every float superinstruction keeps its two-rounding shape (plain
//!   `*`/`+` expressions — Rust never contracts to FMA);
//! - every bounds check and fault site fires in original program order
//!   and reports the same error payload (encoded through the C ABI as a
//!   `code/a/b/c/iter` tuple, decoded back to [`crate::IrError`] by the
//!   host shim in [`super::ffi`]);
//! - conditional-stream cursors, scratchpad init/type masks, and
//!   recurrence copy-back follow the interpreter's semantics statement
//!   for statement.
//!
//! # Tagged stream I/O
//!
//! Stream buffers cross the ABI in the host's `Scalar` representation:
//! `(tag, payload)` `u32` pairs (`#[repr(u32)]`, so the layout is a
//! language guarantee). Word index `e` of a stream lives at pair index
//! `e * 2` (tag) / `e * 2 + 1` (payload); `NSlice::len` counts `u32`s,
//! so the word count is `len / 2`. Reads fetch only the payload (the
//! host validates tags before dispatching — an ill-typed input falls
//! back to the legacy oracle without ever reaching the module); writes
//! store the destination stream's declared-type tag next to the payload.
//! This lets the host pass input `Vec<Scalar>`s and receive output
//! `Vec<Scalar>`s with *zero* conversion passes, which is most of the
//! per-call floor the interpreter tiers pay on small kernels.
//!
//! Planar tapes are ineligible (their layout rewrite trades per-call
//! transposes for contiguity the native tier gets anyway); the caller
//! falls back to tape v2 with a diagnosed reason.

use super::super::instr::{BinOp, Instr};
use super::super::Tape;
use crate::Ty;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Bumped whenever the emitted source shape or the C ABI changes, so
/// cached artifacts from older codegen versions can never be loaded.
/// v2: stream buffers cross the ABI as tagged `(tag, payload)` pairs
/// (the host's `#[repr(u32)] Scalar` layout) instead of untagged words.
pub(super) const CODEGEN_VERSION: u32 = 2;

/// ABI version baked into every module and checked at load time.
pub(super) const ABI_VERSION: u32 = 2;

/// Const-generic lane widths instantiated in every module; other cluster
/// counts take the runtime-width `C = 0` instantiation. The native path
/// never macro-batches, so the batched widths (32/64) are not needed.
const LANE_WIDTHS: [usize; 4] = [1, 4, 8, 16];

/// A generated module: the source text plus the host-side metadata the
/// FFI shim needs to size buffers (nothing is serialized — metadata is
/// recomputed from the tape on every load).
pub(super) struct Source {
    pub(super) text: String,
    /// Per output stream: conditional pushes per iteration per lane
    /// (the count of `CondWrite`s targeting it), 0 for plain outputs.
    pub(super) cond_mult: Vec<usize>,
}

/// Emits the native source for `tape`, or the reason it is ineligible.
pub(super) fn generate(tape: &Tape) -> Result<Source, String> {
    if tape.planar {
        return Err("planar layout is not supported by the native backend".into());
    }
    let mut cond_mult = vec![0usize; tape.kernel.outputs().len()];
    for ins in &tape.body {
        if let Instr::CondWrite { stream, .. } = ins {
            cond_mult[*stream as usize] += 1;
        }
    }

    let mut s = String::with_capacity(16 * 1024);
    header(&mut s, tape);

    // The monomorphic kernel body. `NV`/`NR` are the value-lattice and
    // recurrence sizes for lane width `C` (`n_vals * C` / `n_recurs * C`),
    // passed as separate const parameters because stable Rust cannot
    // write `[u32; {n} * C]` — they let the specialized instantiations
    // keep both lattices on the stack instead of paying a heap
    // allocation per call; only the runtime-width fallback (`C == 0`)
    // allocates.
    writeln!(
        s,
        "fn body<const C: usize, const NV: usize, const NR: usize>(\n    rc: usize,\n    \
         lo: usize,\n    hi: usize,\n    \
         out_base: usize,\n    sp_words: usize,\n    params: &[u32],\n    ins: &[&[u32]],\n    \
         outs: &mut [&mut [u32]],\n    conds: &mut [&mut [u32]],\n    cond_len: &mut [usize],\n    \
         sp_bits: &mut [u32],\n    sp_init: &mut [u64],\n    sp_f32: &mut [u64],\n\
         ) -> Result<(), Fail> {{"
    )
    .unwrap();
    writeln!(s, "    let c = if C == 0 {{ rc }} else {{ C }};").unwrap();
    writeln!(
        s,
        "    let mut vals_arr = [0u32; NV];\n    \
         let mut vals_heap = Vec::new();\n    \
         if C == 0 {{ vals_heap = vec![0u32; {nv} * c]; }}\n    \
         let vals: &mut [u32] = if C == 0 {{ &mut vals_heap }} else {{ &mut vals_arr }};\n    \
         let mut recur_arr = [0u32; NR];\n    \
         let mut recur_heap = Vec::new();\n    \
         if C == 0 {{ recur_heap = vec![0u32; {nr} * c]; }}\n    \
         let recur: &mut [u32] = if C == 0 {{ &mut recur_heap }} else {{ &mut recur_arr }};",
        nv = tape.n_vals,
        nr = tape.recurs.len()
    )
    .unwrap();
    for (slot, r) in tape.recurs.iter().enumerate() {
        writeln!(
            s,
            "    recur[{slot} * c..{slot} * c + c].fill(0x{:08x}u32);",
            r.init_bits
        )
        .unwrap();
    }
    writeln!(
        s,
        "    let mut cur = [0usize; {}];",
        tape.kernel.inputs().len()
    )
    .unwrap();

    // Prologue: iteration-invariant instructions. No `iter` binding is in
    // scope here on purpose — the hoist pass only moves pure, infallible
    // instructions, so nothing emitted below may reference the iteration;
    // if a future pass breaks that invariant the generated module fails
    // to compile and the tape falls back to the interpreter.
    for ins in &tape.prologue {
        emit(&mut s, tape, ins)?;
    }

    writeln!(s, "    for iter in lo..hi {{").unwrap();
    // Slots the fused segments must spill back to `vals`: anything a
    // barrier instruction or another segment reads, plus the recurrence
    // copy-back sources below.
    let recur_next: Vec<u32> = tape.recurs.iter().map(|r| r.next).collect();
    let mut i = 0;
    while i < tape.body.len() {
        if !fusible(&tape.body[i]) {
            emit(&mut s, tape, &tape.body[i])?;
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < tape.body.len() && fusible(&tape.body[j]) {
            j += 1;
        }
        emit_segment(&mut s, tape, i, j, &recur_next);
        i = j;
    }
    for (slot, r) in tape.recurs.iter().enumerate() {
        writeln!(
            s,
            "    {{ let src = {next} * c; recur[{slot} * c..{slot} * c + c]\
             .copy_from_slice(&vals[src..src + c]); }}",
            next = r.next
        )
        .unwrap();
    }
    writeln!(s, "    }}").unwrap();
    writeln!(s, "    Ok(())").unwrap();
    writeln!(s, "}}").unwrap();

    entry(&mut s, tape);
    Ok(Source { text: s, cond_mult })
}

/// Crate preamble: ABI structs, helper functions, error constructors.
fn header(s: &mut String, tape: &Tape) {
    writeln!(
        s,
        "//! Generated by stream-ir's native tape backend (codegen v{CODEGEN_VERSION}) for \
         kernel `{}`. Do not edit.",
        tape.kernel.name()
    )
    .unwrap();
    s.push_str(
        r#"#![allow(unused_variables, unused_mut, unused_parens, unreachable_code, dead_code, clippy::all)]

#[repr(C)]
pub struct NSlice {
    pub ptr: *const u32,
    pub len: usize,
}

#[repr(C)]
pub struct NSliceMut {
    pub ptr: *mut u32,
    pub len: usize,
}

#[repr(C)]
pub struct NErr {
    pub code: u32,
    pub a: u32,
    pub b: i64,
    pub c: u32,
    pub iter: u64,
}

struct Fail {
    code: u32,
    a: u32,
    b: i64,
    c: u32,
    iter: u64,
}

#[inline(always)]
fn f(x: u32) -> f32 {
    f32::from_bits(x)
}
#[inline(always)]
fn fb(x: f32) -> u32 {
    x.to_bits()
}
#[inline(always)]
fn i(x: u32) -> i32 {
    x as i32
}
#[inline(always)]
fn ib(x: i32) -> u32 {
    x as u32
}

#[cold]
fn ex(stream: u32, iter: usize) -> Fail {
    Fail { code: 1, a: stream, b: 0, c: 0, iter: iter as u64 }
}
#[cold]
fn sp_oob(at: u32, addr: i32, iter: usize) -> Fail {
    Fail { code: 2, a: at, b: addr as i64, c: 0, iter: iter as u64 }
}
#[cold]
fn tym(at: u32, expected: u32, found: u32, iter: usize) -> Fail {
    Fail { code: 3, a: at, b: expected as i64, c: found, iter: iter as u64 }
}
#[cold]
fn badcomm(at: u32, src: i32, iter: usize) -> Fail {
    Fail { code: 4, a: at, b: src as i64, c: 0, iter: iter as u64 }
}
#[cold]
fn divz(at: u32, iter: usize) -> Fail {
    Fail { code: 5, a: at, b: 0, c: 0, iter: iter as u64 }
}

/// Unchecked payload load. Safety: callers index under the segment-head
/// bounds guard, which proves every lane's pair index in-bounds.
#[inline(always)]
unsafe fn ld(s: &[u32], i: usize) -> u32 {
    *s.get_unchecked(i)
}
/// Unchecked `(tag, payload)` pair store. Safety: the entry point
/// validates every plain output buffer against the exact length the
/// write indices cover before dispatching.
#[inline(always)]
unsafe fn st(o: &mut [u32], i: usize, tag: u32, payload: u32) {
    *o.get_unchecked_mut(i) = tag;
    *o.get_unchecked_mut(i + 1) = payload;
}

"#,
    );
    writeln!(
        s,
        "#[no_mangle]\npub extern \"C\" fn stream_native_abi() -> u32 {{\n    {ABI_VERSION}\n}}\n"
    )
    .unwrap();
}

/// The exported entry point: rebuilds slices from the C ABI and picks the
/// lane-specialized instantiation, mirroring `exec::dispatch`. Stream and
/// conditional counts are codegen-time constants, so every per-call
/// container is a stack array (the host still passes counts; they are
/// asserted against the baked-in values as a cheap ABI cross-check).
fn entry(s: &mut String, tape: &Tape) {
    let n_ins = tape.kernel.inputs().len();
    let n_outs = tape.kernel.outputs().len();
    s.push_str(
        r#"
/// # Safety
/// Every pointer/len pair must describe a valid, live, disjoint buffer;
/// the host shim in stream-ir upholds this.
#[no_mangle]
pub unsafe extern "C" fn stream_native_run(
    c: usize,
    lo: usize,
    hi: usize,
    out_base: usize,
    sp_words: usize,
    params: *const u32,
    n_params: usize,
    ins_p: *const NSlice,
    n_ins: usize,
    outs_p: *const NSliceMut,
    n_outs: usize,
    conds_p: *const NSliceMut,
    cond_lens: *mut usize,
    n_conds: usize,
    sp_bits_p: *mut u32,
    sp_len: usize,
    sp_init_p: *mut u64,
    sp_f32_p: *mut u64,
    sp_mask_len: usize,
    err: *mut NErr,
) -> u32 {
"#,
    );
    writeln!(
        s,
        "    if n_ins != {n_ins} || n_outs != {n_outs} || n_conds != {n_outs} {{ return 2; }}"
    )
    .unwrap();
    writeln!(
        s,
        "    let params = std::slice::from_raw_parts(params, n_params);\n    \
         let ins: [&[u32]; {n_ins}] = std::array::from_fn(|k| {{\n        \
         let sl = &*ins_p.add(k);\n        \
         std::slice::from_raw_parts(sl.ptr, sl.len)\n    }});\n    \
         let mut outs: [&mut [u32]; {n_outs}] = std::array::from_fn(|k| {{\n        \
         let sl = &*outs_p.add(k);\n        \
         std::slice::from_raw_parts_mut(sl.ptr, sl.len)\n    }});\n    \
         let mut conds: [&mut [u32]; {n_outs}] = std::array::from_fn(|k| {{\n        \
         let sl = &*conds_p.add(k);\n        \
         std::slice::from_raw_parts_mut(sl.ptr, sl.len)\n    }});\n    \
         let mut cond_len = [0usize; {n_outs}];"
    )
    .unwrap();
    // Plain output writes use unchecked pair stores (see `st`), justified
    // by validating each buffer here against the exact span the write
    // indices cover: (hi - out_base) iterations x c lanes x width words
    // x 2 u32s. A short buffer is a host/module pairing bug, reported
    // like a count mismatch. Saturating math so absurd arguments fail
    // the check instead of wrapping past it.
    for (k, d) in tape.kernel.outputs().iter().enumerate() {
        if d.conditional {
            continue;
        }
        writeln!(
            s,
            "    if outs[{k}].len() < (hi - out_base).saturating_mul(c).saturating_mul({w2}) \
             {{ return 2; }}",
            w2 = d.record_width as usize * 2
        )
        .unwrap();
    }
    s.push_str(
        r#"    let sp_bits = std::slice::from_raw_parts_mut(sp_bits_p, sp_len);
    let sp_init = std::slice::from_raw_parts_mut(sp_init_p, sp_mask_len);
    let sp_f32 = std::slice::from_raw_parts_mut(sp_f32_p, sp_mask_len);
    macro_rules! go {
        ($C:literal, $NV:literal, $NR:literal) => {
            body::<$C, $NV, $NR>(
                c, lo, hi, out_base, sp_words, params, &ins, &mut outs, &mut conds,
                &mut cond_len, sp_bits, sp_init, sp_f32,
            )
        };
    }
    let r = match c {
"#,
    );
    for w in LANE_WIDTHS {
        writeln!(
            s,
            "        {w} => go!({w}, {}, {}),",
            tape.n_vals * w,
            tape.recurs.len() * w
        )
        .unwrap();
    }
    s.push_str(
        r#"        _ => go!(0, 0, 0),
    };
    for (k, &n) in cond_len.iter().enumerate() {
        *cond_lens.add(k) = n;
    }
    match r {
        Ok(()) => 0,
        Err(e) => {
            if !err.is_null() {
                *err = NErr { code: e.code, a: e.a, b: e.b, c: e.c, iter: e.iter };
            }
            1
        }
    }
}
"#,
    );
}

/// The bits-level expression for a [`BinOp`], verbatim from `for_binop!`
/// so fused forms stay bit-identical. `x`/`y` are `u32` bindings in scope.
fn binop_expr(op: BinOp) -> &'static str {
    match op {
        BinOp::AddI => "ib(i(x).wrapping_add(i(y)))",
        BinOp::AddF => "fb(f(x) + f(y))",
        BinOp::SubI => "ib(i(x).wrapping_sub(i(y)))",
        BinOp::SubF => "fb(f(x) - f(y))",
        BinOp::MulI => "ib(i(x).wrapping_mul(i(y)))",
        BinOp::MulF => "fb(f(x) * f(y))",
        BinOp::DivF => "fb(f(x) / f(y))",
        BinOp::MinI => "ib(i(x).min(i(y)))",
        BinOp::MinF => "fb(f(x).min(f(y)))",
        BinOp::MaxI => "ib(i(x).max(i(y)))",
        BinOp::MaxF => "fb(f(x).max(f(y)))",
        BinOp::And => "ib(i(x) & i(y))",
        BinOp::Or => "ib(i(x) | i(y))",
        BinOp::Xor => "ib(i(x) ^ i(y))",
        BinOp::Shl => "ib(i(x).wrapping_shl(y))",
        BinOp::Shr => "ib(i(x).wrapping_shr(y))",
        BinOp::EqI => "u32::from(i(x) == i(y))",
        BinOp::EqF => "u32::from(f(x) == f(y))",
        BinOp::NeI => "u32::from(i(x) != i(y))",
        BinOp::NeF => "u32::from(f(x) != f(y))",
        BinOp::LtI => "u32::from(i(x) < i(y))",
        BinOp::LtF => "u32::from(f(x) < f(y))",
        BinOp::LeI => "u32::from(i(x) <= i(y))",
        BinOp::LeF => "u32::from(f(x) <= f(y))",
    }
}

fn ty_code(ty: Ty) -> u32 {
    match ty {
        Ty::I32 => 0,
        Ty::F32 => 1,
    }
}

/// The `Scalar` tag stored next to every payload written to `stream` —
/// the stream's declared type, exactly what the interpreter's output
/// conversion (`scalars_of`) tags words with.
fn out_tag(tape: &Tape, stream: u32) -> u32 {
    ty_code(tape.kernel.outputs()[stream as usize].ty)
}

/// Emits `vals[dst] = expr(x, y)` over all lanes with both operands in
/// the lattice.
fn emit_bin(s: &mut String, dst: u32, a: u32, b: u32, expr: &str) {
    writeln!(
        s,
        "    for l in 0..c {{ let x = vals[{a} * c + l]; let y = vals[{b} * c + l]; \
         vals[{dst} * c + l] = {expr}; }}"
    )
    .unwrap();
}

/// Emits `vals[dst] = expr(x)` over all lanes.
fn emit_un(s: &mut String, dst: u32, a: u32, expr: &str) {
    writeln!(
        s,
        "    for l in 0..c {{ let x = vals[{a} * c + l]; vals[{dst} * c + l] = {expr}; }}"
    )
    .unwrap();
}

/// Emits a bounds-checked stream-row bound: binds `fp` (the pair index
/// of the first lane's payload) and returns the starved-stream error if
/// the last lane's *word* is out of range (the same hoisted check
/// `exec::step` performs, in word units — `src.len() / 2` words).
fn emit_read_bound(s: &mut String, stream: u32, width: u32, offset: u32) {
    writeln!(
        s,
        "    let first = (iter * c) * {width} + {offset}; \
         if first + (c - 1) * {width} >= src.len() / 2 {{ return Err(ex({stream}, iter)); }} \
         let fp = first * 2 + 1;"
    )
    .unwrap();
}

/// Whether an instruction can join a fused lane loop: it must be
/// lane-local (no cross-lane reads, no order-sensitive appends) and its
/// only fault sites must be per-iteration stream bounds checks (which
/// hoist to the segment head without reordering against other faults).
fn fusible(ins: &Instr) -> bool {
    !matches!(
        ins,
        Instr::CondRead { .. }
            | Instr::CondWrite { .. }
            | Instr::SpRead { .. }
            | Instr::SpWrite { .. }
            | Instr::Comm { .. }
            | Instr::DivI { .. }
            | Instr::Fault { .. }
            | Instr::PRead { .. }
            | Instr::PRead2 { .. }
            | Instr::PWrite { .. }
            | Instr::PBinW { .. }
            | Instr::PBflyWF { .. }
    )
}

/// Value slots an instruction reads from the lattice.
fn slot_uses(ins: &Instr) -> Vec<u32> {
    match *ins {
        Instr::ConstBits { .. }
        | Instr::Param { .. }
        | Instr::IterIndex { .. }
        | Instr::ClusterId { .. }
        | Instr::ClusterCount { .. }
        | Instr::LoadRecur { .. }
        | Instr::Read { .. }
        | Instr::Read2 { .. }
        | Instr::Fault { .. } => vec![],
        Instr::Write { src, .. } => vec![src],
        Instr::CondRead { pred, .. } => vec![pred],
        Instr::CondWrite { pred, src, .. } => vec![pred, src],
        Instr::SpRead { addr, .. } => vec![addr],
        Instr::SpWrite { addr, src, .. } => vec![addr, src],
        Instr::Comm { data, src, .. } => vec![data, src],
        Instr::AddI { a, b, .. }
        | Instr::AddF { a, b, .. }
        | Instr::SubI { a, b, .. }
        | Instr::SubF { a, b, .. }
        | Instr::MulI { a, b, .. }
        | Instr::MulF { a, b, .. }
        | Instr::DivI { a, b, .. }
        | Instr::DivF { a, b, .. }
        | Instr::MinI { a, b, .. }
        | Instr::MinF { a, b, .. }
        | Instr::MaxI { a, b, .. }
        | Instr::MaxF { a, b, .. }
        | Instr::And { a, b, .. }
        | Instr::Or { a, b, .. }
        | Instr::Xor { a, b, .. }
        | Instr::Shl { a, b, .. }
        | Instr::Shr { a, b, .. }
        | Instr::EqI { a, b, .. }
        | Instr::EqF { a, b, .. }
        | Instr::NeI { a, b, .. }
        | Instr::NeF { a, b, .. }
        | Instr::LtI { a, b, .. }
        | Instr::LtF { a, b, .. }
        | Instr::LeI { a, b, .. }
        | Instr::LeF { a, b, .. }
        | Instr::BinW { a, b, .. }
        | Instr::BflyF { a, b, .. }
        | Instr::BflyWF { a, b, .. } => vec![a, b],
        Instr::Sqrt { a, .. }
        | Instr::NegI { a, .. }
        | Instr::NegF { a, .. }
        | Instr::AbsI { a, .. }
        | Instr::AbsF { a, .. }
        | Instr::Floor { a, .. }
        | Instr::ItoF { a, .. }
        | Instr::FtoI { a, .. }
        | Instr::BinKR { a, .. }
        | Instr::BinRR { a, .. } => vec![a],
        Instr::BinKL { b, .. } | Instr::BinRL { b, .. } => vec![b],
        Instr::Select { cond, a, b, .. } => vec![cond, a, b],
        Instr::MulAddF { a, b, c, .. }
        | Instr::AddMulF { a, b, c, .. }
        | Instr::MulSubF { a, b, c, .. }
        | Instr::SubMulF { a, b, c, .. }
        | Instr::MulAddI { a, b, c, .. }
        | Instr::MulSubI { a, b, c, .. }
        | Instr::SubMulI { a, b, c, .. } => vec![a, b, c],
        Instr::MulMulAddF { a, b, c, d, .. } | Instr::MulMulSubF { a, b, c, d, .. } => {
            vec![a, b, c, d]
        }
        Instr::CMulF { a, b, c, d, .. } => vec![a, b, c, d],
        Instr::PRead { .. } | Instr::PRead2 { .. } => vec![],
        Instr::PWrite { src, .. } => vec![src],
        Instr::PBinW { a, b, .. } | Instr::PBflyWF { a, b, .. } => vec![a, b],
    }
}

/// Value slots an instruction writes into the lattice.
fn slot_defs(ins: &Instr) -> Vec<u32> {
    match *ins {
        Instr::ConstBits { dst, .. }
        | Instr::Param { dst, .. }
        | Instr::IterIndex { dst }
        | Instr::ClusterId { dst }
        | Instr::ClusterCount { dst }
        | Instr::LoadRecur { dst, .. }
        | Instr::Read { dst, .. }
        | Instr::CondRead { dst, .. }
        | Instr::SpRead { dst, .. }
        | Instr::Comm { dst, .. }
        | Instr::AddI { dst, .. }
        | Instr::AddF { dst, .. }
        | Instr::SubI { dst, .. }
        | Instr::SubF { dst, .. }
        | Instr::MulI { dst, .. }
        | Instr::MulF { dst, .. }
        | Instr::DivI { dst, .. }
        | Instr::DivF { dst, .. }
        | Instr::Sqrt { dst, .. }
        | Instr::MinI { dst, .. }
        | Instr::MinF { dst, .. }
        | Instr::MaxI { dst, .. }
        | Instr::MaxF { dst, .. }
        | Instr::NegI { dst, .. }
        | Instr::NegF { dst, .. }
        | Instr::AbsI { dst, .. }
        | Instr::AbsF { dst, .. }
        | Instr::Floor { dst, .. }
        | Instr::And { dst, .. }
        | Instr::Or { dst, .. }
        | Instr::Xor { dst, .. }
        | Instr::Shl { dst, .. }
        | Instr::Shr { dst, .. }
        | Instr::EqI { dst, .. }
        | Instr::EqF { dst, .. }
        | Instr::NeI { dst, .. }
        | Instr::NeF { dst, .. }
        | Instr::LtI { dst, .. }
        | Instr::LtF { dst, .. }
        | Instr::LeI { dst, .. }
        | Instr::LeF { dst, .. }
        | Instr::Select { dst, .. }
        | Instr::ItoF { dst, .. }
        | Instr::FtoI { dst, .. }
        | Instr::MulAddF { dst, .. }
        | Instr::AddMulF { dst, .. }
        | Instr::MulSubF { dst, .. }
        | Instr::SubMulF { dst, .. }
        | Instr::MulMulAddF { dst, .. }
        | Instr::MulMulSubF { dst, .. }
        | Instr::MulAddI { dst, .. }
        | Instr::MulSubI { dst, .. }
        | Instr::SubMulI { dst, .. }
        | Instr::BinKR { dst, .. }
        | Instr::BinKL { dst, .. }
        | Instr::BinRL { dst, .. }
        | Instr::BinRR { dst, .. } => vec![dst],
        Instr::Read2 { da, db, .. } => vec![da, db],
        Instr::CMulF { re_dst, im_dst, .. } => vec![re_dst, im_dst],
        Instr::BflyF {
            add_dst, sub_dst, ..
        } => vec![add_dst, sub_dst],
        Instr::Write { .. }
        | Instr::CondWrite { .. }
        | Instr::SpWrite { .. }
        | Instr::Fault { .. }
        | Instr::BinW { .. }
        | Instr::BflyWF { .. } => vec![],
        Instr::PRead { dst, .. } => vec![dst],
        Instr::PRead2 { da, db, .. } => vec![da, db],
        Instr::PWrite { .. } | Instr::PBinW { .. } | Instr::PBflyWF { .. } => vec![],
    }
}

/// Emits `tape.body[i0..i1]` (all fusible) as one fused lane loop.
///
/// Dataflow: slots live-in to the segment (read before any in-segment
/// def — including reads of the *previous* iteration's value when the
/// def comes later in the same segment) load from `vals` at the loop
/// head; each def shadows its `v{slot}` local; slots the rest of the
/// program observes (barrier instructions, other segments, recurrence
/// copy-back, or those same wraparound reads next iteration) spill back
/// to `vals` at the loop tail. Stream bounds checks hoist to the
/// segment head in program order — see the module docs for why that
/// preserves fault semantics.
fn emit_segment(s: &mut String, tape: &Tape, i0: usize, i1: usize, recur_next: &[u32]) {
    let seg = &tape.body[i0..i1];
    let mut live_in = BTreeSet::new();
    let mut defs = BTreeSet::new();
    for ins in seg {
        for u in slot_uses(ins) {
            if !defs.contains(&u) {
                live_in.insert(u);
            }
        }
        defs.extend(slot_defs(ins));
    }
    let mut observed: BTreeSet<u32> = recur_next.iter().copied().collect();
    for (k, ins) in tape.body.iter().enumerate() {
        if k < i0 || k >= i1 {
            observed.extend(slot_uses(ins));
        }
    }
    let spills: Vec<u32> = defs
        .iter()
        .copied()
        .filter(|d| observed.contains(d) || live_in.contains(d))
        .collect();

    writeln!(s, "    {{").unwrap();
    for (k, ins) in seg.iter().enumerate() {
        emit_hoist(s, k, ins);
    }
    writeln!(s, "    for l in 0..c {{").unwrap();
    for slot in &live_in {
        writeln!(s, "        let v{slot} = vals[{slot} * c + l];").unwrap();
    }
    for (k, ins) in seg.iter().enumerate() {
        emit_lane(s, tape, k, ins);
    }
    for slot in &spills {
        writeln!(s, "        vals[{slot} * c + l] = v{slot};").unwrap();
    }
    writeln!(s, "    }} }}").unwrap();
}

/// Per-iteration prelude for one fused instruction: input-slice bindings
/// with their bounds checks (in program order) and output cursor
/// bindings. `k` is the instruction's index within its segment, used to
/// keep binding names unique.
fn emit_hoist(s: &mut String, k: usize, ins: &Instr) {
    // `ri`/`wi` are *pair* indices (payload / tag position); the bounds
    // check compares word indices against the word count `len / 2`.
    let read = |s: &mut String, tag: &str, stream: u32, width: u32, offset: u32| {
        writeln!(
            s,
            "    let rs{k}{tag} = ins[{stream}]; \
             let rw{k}{tag} = (iter * c) * {width} + {offset}; \
             if rw{k}{tag} + (c - 1) * {width} >= rs{k}{tag}.len() / 2 \
             {{ return Err(ex({stream}, iter)); }} \
             let ri{k}{tag} = rw{k}{tag} * 2 + 1;"
        )
        .unwrap();
    };
    let write = |s: &mut String, tag: &str, width: u32, offset: u32| {
        writeln!(
            s,
            "    let wi{k}{tag} = (((iter - out_base) * c) * {width} + {offset}) * 2;"
        )
        .unwrap();
    };
    match *ins {
        Instr::Read {
            stream,
            width,
            offset,
            ..
        }
        | Instr::BinRL {
            stream,
            width,
            offset,
            ..
        }
        | Instr::BinRR {
            stream,
            width,
            offset,
            ..
        } => read(s, "", stream, width, offset),
        Instr::Read2 {
            sa,
            wa,
            oa,
            sb,
            wb,
            ob,
            ..
        } => {
            read(s, "", sa, wa, oa);
            read(s, "b", sb, wb, ob);
        }
        Instr::Write { width, offset, .. } | Instr::BinW { width, offset, .. } => {
            write(s, "", width, offset)
        }
        Instr::BflyWF {
            add_width,
            add_offset,
            sub_width,
            sub_offset,
            ..
        } => {
            write(s, "", add_width, add_offset);
            write(s, "b", sub_width, sub_offset);
        }
        _ => {}
    }
}

/// One fused instruction's statement(s) inside the lane loop, operating
/// on `v{slot}` locals (defs shadow; see [`emit_segment`]). Stream
/// accesses use pair indices bound by [`emit_hoist`] with a doubled
/// lane stride; writes store the stream's tag next to the payload.
fn emit_lane(s: &mut String, tape: &Tape, k: usize, ins: &Instr) {
    match *ins {
        Instr::ConstBits { dst, bits } => {
            writeln!(s, "        let v{dst} = 0x{bits:08x}u32;").unwrap();
        }
        Instr::Param { dst, idx } => {
            writeln!(s, "        let v{dst} = params[{idx}];").unwrap();
        }
        Instr::IterIndex { dst } => {
            writeln!(s, "        let v{dst} = iter as i32 as u32;").unwrap();
        }
        Instr::ClusterId { dst } => {
            writeln!(s, "        let v{dst} = l as i32 as u32;").unwrap();
        }
        Instr::ClusterCount { dst } => {
            writeln!(s, "        let v{dst} = c as i32 as u32;").unwrap();
        }
        Instr::LoadRecur { dst, slot } => {
            writeln!(s, "        let v{dst} = recur[{slot} * c + l];").unwrap();
        }
        Instr::Read { dst, width, .. } => {
            writeln!(
                s,
                "        let v{dst} = unsafe {{ ld(rs{k}, ri{k} + l * {}) }};",
                width * 2
            )
            .unwrap();
        }
        Instr::Read2 { da, wa, db, wb, .. } => {
            writeln!(
                s,
                "        let v{da} = unsafe {{ ld(rs{k}, ri{k} + l * {}) }};\n        \
                 let v{db} = unsafe {{ ld(rs{k}b, ri{k}b + l * {}) }};",
                wa * 2,
                wb * 2
            )
            .unwrap();
        }
        Instr::Write {
            src, stream, width, ..
        } => {
            writeln!(
                s,
                "        unsafe {{ st(&mut *outs[{stream}], wi{k} + l * {w2}, {tag}u32, v{src}) }};",
                w2 = width * 2,
                tag = out_tag(tape, stream)
            )
            .unwrap();
        }
        Instr::DivF { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::DivF)),
        Instr::AddI { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::AddI)),
        Instr::AddF { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::AddF)),
        Instr::SubI { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::SubI)),
        Instr::SubF { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::SubF)),
        Instr::MulI { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::MulI)),
        Instr::MulF { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::MulF)),
        Instr::MinI { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::MinI)),
        Instr::MinF { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::MinF)),
        Instr::MaxI { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::MaxI)),
        Instr::MaxF { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::MaxF)),
        Instr::And { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::And)),
        Instr::Or { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::Or)),
        Instr::Xor { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::Xor)),
        Instr::Shl { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::Shl)),
        Instr::Shr { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::Shr)),
        Instr::EqI { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::EqI)),
        Instr::EqF { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::EqF)),
        Instr::NeI { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::NeI)),
        Instr::NeF { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::NeF)),
        Instr::LtI { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::LtI)),
        Instr::LtF { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::LtF)),
        Instr::LeI { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::LeI)),
        Instr::LeF { dst, a, b } => lane_bin(s, dst, a, b, binop_expr(BinOp::LeF)),
        Instr::Sqrt { dst, a } => lane_un(s, dst, a, "fb(f(x).sqrt())"),
        Instr::NegI { dst, a } => lane_un(s, dst, a, "ib(i(x).wrapping_neg())"),
        Instr::NegF { dst, a } => lane_un(s, dst, a, "fb(-f(x))"),
        Instr::AbsI { dst, a } => lane_un(s, dst, a, "ib(i(x).wrapping_abs())"),
        Instr::AbsF { dst, a } => lane_un(s, dst, a, "fb(f(x).abs())"),
        Instr::Floor { dst, a } => lane_un(s, dst, a, "fb(f(x).floor())"),
        Instr::ItoF { dst, a } => lane_un(s, dst, a, "fb(i(x) as f32)"),
        Instr::FtoI { dst, a } => lane_un(s, dst, a, "ib(f(x) as i32)"),
        Instr::Select { dst, cond, a, b } => {
            writeln!(
                s,
                "        let v{dst} = if v{cond} != 0 {{ v{a} }} else {{ v{b} }};"
            )
            .unwrap();
        }
        Instr::MulAddF { dst, a, b, c: e } => lane_tri_f(s, dst, a, b, e, "fb(x * y + z)"),
        Instr::AddMulF { dst, c: e, a, b } => lane_tri_f(s, dst, a, b, e, "fb(z + x * y)"),
        Instr::MulSubF { dst, a, b, c: e } => lane_tri_f(s, dst, a, b, e, "fb(x * y - z)"),
        Instr::SubMulF { dst, c: e, a, b } => lane_tri_f(s, dst, a, b, e, "fb(z - x * y)"),
        Instr::MulMulAddF { dst, a, b, c: e, d } => {
            writeln!(
                s,
                "        let v{dst} = {{ let x = f(v{a}); let y = f(v{b}); \
                 let z = f(v{e}); let w = f(v{d}); fb(x * y + z * w) }};"
            )
            .unwrap();
        }
        Instr::MulMulSubF { dst, a, b, c: e, d } => {
            writeln!(
                s,
                "        let v{dst} = {{ let x = f(v{a}); let y = f(v{b}); \
                 let z = f(v{e}); let w = f(v{d}); fb(x * y - z * w) }};"
            )
            .unwrap();
        }
        Instr::MulAddI { dst, a, b, c: e } => {
            lane_tri_i(s, dst, a, b, e, "ib(x.wrapping_mul(y).wrapping_add(z))")
        }
        Instr::MulSubI { dst, a, b, c: e } => {
            lane_tri_i(s, dst, a, b, e, "ib(x.wrapping_mul(y).wrapping_sub(z))")
        }
        Instr::SubMulI { dst, c: e, a, b } => {
            lane_tri_i(s, dst, a, b, e, "ib(z.wrapping_sub(x.wrapping_mul(y)))")
        }
        Instr::BinKR { op, dst, a, k: kk } => {
            writeln!(
                s,
                "        let v{dst} = {{ let x = v{a}; let y = 0x{kk:08x}u32; {} }};",
                binop_expr(op)
            )
            .unwrap();
        }
        Instr::BinKL { op, dst, k: kk, b } => {
            writeln!(
                s,
                "        let v{dst} = {{ let x = 0x{kk:08x}u32; let y = v{b}; {} }};",
                binop_expr(op)
            )
            .unwrap();
        }
        Instr::BinW {
            op,
            a,
            b,
            stream,
            width,
            ..
        } => {
            writeln!(
                s,
                "        {{ let x = v{a}; let y = v{b}; \
                 unsafe {{ st(&mut *outs[{stream}], wi{k} + l * {w2}, {tag}u32, {}) }}; }}",
                binop_expr(op),
                w2 = width * 2,
                tag = out_tag(tape, stream)
            )
            .unwrap();
        }
        Instr::BinRL {
            op, dst, b, width, ..
        } => {
            writeln!(
                s,
                "        let v{dst} = {{ let x = unsafe {{ ld(rs{k}, ri{k} + l * {}) }}; \
                 let y = v{b}; {} }};",
                width * 2,
                binop_expr(op)
            )
            .unwrap();
        }
        Instr::BinRR {
            op, dst, a, width, ..
        } => {
            writeln!(
                s,
                "        let v{dst} = {{ let x = v{a}; \
                 let y = unsafe {{ ld(rs{k}, ri{k} + l * {}) }}; {} }};",
                width * 2,
                binop_expr(op)
            )
            .unwrap();
        }
        Instr::CMulF {
            re_dst,
            im_dst,
            a,
            b,
            c: e,
            d,
        } => {
            writeln!(
                s,
                "        let (v{re_dst}, v{im_dst}) = {{ \
                 let x = f(v{a}); let y = f(v{b}); let z = f(v{e}); let w = f(v{d}); \
                 (fb(x * y - z * w), fb(x * w + z * y)) }};"
            )
            .unwrap();
        }
        Instr::BflyF {
            add_dst,
            sub_dst,
            a,
            b,
        } => {
            writeln!(
                s,
                "        let (v{add_dst}, v{sub_dst}) = {{ \
                 let x = f(v{a}); let y = f(v{b}); (fb(x + y), fb(x - y)) }};"
            )
            .unwrap();
        }
        Instr::BflyWF {
            a,
            b,
            add_stream,
            add_width,
            sub_stream,
            sub_width,
            ..
        } => {
            writeln!(
                s,
                "        {{ let x = f(v{a}); let y = f(v{b});\n        \
                 unsafe {{ st(&mut *outs[{add_stream}], wi{k} + l * {aw2}, {atag}u32, fb(x + y)) }};\n        \
                 unsafe {{ st(&mut *outs[{sub_stream}], wi{k}b + l * {sw2}, {stag}u32, fb(x - y)) }}; }}",
                aw2 = add_width * 2,
                sw2 = sub_width * 2,
                atag = out_tag(tape, add_stream),
                stag = out_tag(tape, sub_stream)
            )
            .unwrap();
        }
        // Barriers and planar forms never reach the fused path.
        _ => unreachable!("non-fusible instruction in fused segment"),
    }
}

/// `let v{dst} = expr(v{a}, v{b});` on lane locals.
fn lane_bin(s: &mut String, dst: u32, a: u32, b: u32, expr: &str) {
    writeln!(
        s,
        "        let v{dst} = {{ let x = v{a}; let y = v{b}; {expr} }};"
    )
    .unwrap();
}

/// `let v{dst} = expr(v{a});` on lane locals.
fn lane_un(s: &mut String, dst: u32, a: u32, expr: &str) {
    writeln!(s, "        let v{dst} = {{ let x = v{a}; {expr} }};").unwrap();
}

/// Three-operand float form on lane locals.
fn lane_tri_f(s: &mut String, dst: u32, a: u32, b: u32, e: u32, expr: &str) {
    writeln!(
        s,
        "        let v{dst} = {{ let x = f(v{a}); let y = f(v{b}); let z = f(v{e}); {expr} }};"
    )
    .unwrap();
}

/// Three-operand wrapping-integer form on lane locals.
fn lane_tri_i(s: &mut String, dst: u32, a: u32, b: u32, e: u32, expr: &str) {
    writeln!(
        s,
        "        let v{dst} = {{ let x = i(v{a}); let y = i(v{b}); let z = i(v{e}); {expr} }};"
    )
    .unwrap();
}

/// Emits one tape instruction as a straight-line statement block.
/// Returns `Err` for planar instructions (the tape is ineligible).
fn emit(s: &mut String, tape: &Tape, ins: &Instr) -> Result<(), String> {
    match *ins {
        Instr::ConstBits { dst, bits } => {
            writeln!(
                s,
                "    vals[{dst} * c..{dst} * c + c].fill(0x{bits:08x}u32);"
            )
            .unwrap();
        }
        Instr::Param { dst, idx } => {
            writeln!(s, "    vals[{dst} * c..{dst} * c + c].fill(params[{idx}]);").unwrap();
        }
        Instr::IterIndex { dst } => {
            writeln!(
                s,
                "    vals[{dst} * c..{dst} * c + c].fill(iter as i32 as u32);"
            )
            .unwrap();
        }
        Instr::ClusterId { dst } => {
            writeln!(
                s,
                "    for l in 0..c {{ vals[{dst} * c + l] = l as i32 as u32; }}"
            )
            .unwrap();
        }
        Instr::ClusterCount { dst } => {
            writeln!(
                s,
                "    vals[{dst} * c..{dst} * c + c].fill(c as i32 as u32);"
            )
            .unwrap();
        }
        Instr::LoadRecur { dst, slot } => {
            writeln!(
                s,
                "    vals[{dst} * c..{dst} * c + c].copy_from_slice(&recur[{slot} * c..{slot} * c + c]);"
            )
            .unwrap();
        }
        Instr::Read {
            dst,
            stream,
            width,
            offset,
        } => {
            writeln!(s, "    {{ let src = ins[{stream}];").unwrap();
            emit_read_bound(s, stream, width, offset);
            writeln!(
                s,
                "    for l in 0..c {{ vals[{dst} * c + l] = src[fp + l * {}]; }} }}",
                width * 2
            )
            .unwrap();
        }
        Instr::Write {
            src,
            stream,
            width,
            offset,
        } => {
            writeln!(
                s,
                "    {{ let out = &mut *outs[{stream}]; \
                 let first = (((iter - out_base) * c) * {width} + {offset}) * 2;\n    \
                 for l in 0..c {{ out[first + l * {w2}] = {tag}u32; \
                 out[first + l * {w2} + 1] = vals[{src} * c + l]; }} }}",
                w2 = width * 2,
                tag = out_tag(tape, stream)
            )
            .unwrap();
        }
        Instr::CondRead { dst, pred, stream } => {
            // `cur` counts words; the payload of word `n` is pair index
            // `n * 2 + 1`, and `get` fails exactly when the word count
            // `len / 2` is exhausted.
            writeln!(
                s,
                "    {{ let src = ins[{stream}];\n    for l in 0..c {{\n        \
                 vals[{dst} * c + l] = if vals[{pred} * c + l] != 0 {{\n            \
                 match src.get(cur[{stream}] * 2 + 1) {{\n                \
                 Some(&w) => {{ cur[{stream}] += 1; w }}\n                \
                 None => return Err(ex({stream}, iter)),\n            }}\n        \
                 }} else {{ 0 }};\n    }} }}"
            )
            .unwrap();
        }
        Instr::CondWrite { pred, src, stream } => {
            writeln!(
                s,
                "    {{ let out = &mut *conds[{stream}]; let mut n = cond_len[{stream}];\n    \
                 for l in 0..c {{ if vals[{pred} * c + l] != 0 {{ \
                 out[n * 2] = {tag}u32; out[n * 2 + 1] = vals[{src} * c + l]; n += 1; }} }}\n    \
                 cond_len[{stream}] = n; }}",
                tag = out_tag(tape, stream)
            )
            .unwrap();
        }
        Instr::SpRead { dst, addr, ty } => {
            let exp = ty_code(ty);
            writeln!(
                s,
                "    for l in 0..c {{\n        let a = vals[{addr} * c + l] as i32;\n        \
                 if a < 0 || a as usize >= sp_words {{ return Err(sp_oob({dst}, a, iter)); }}\n        \
                 let idx = a as usize * c + l;\n        \
                 let (w, b) = (idx / 64, idx % 64);\n        \
                 if sp_init[w] >> b & 1 != 0 {{\n            \
                 let stored = (sp_f32[w] >> b & 1) as u32;\n            \
                 if stored != {exp} {{ return Err(tym({dst}, {exp}, stored, iter)); }}\n        \
                 }}\n        \
                 vals[{dst} * c + l] = sp_bits[idx];\n    }}"
            )
            .unwrap();
        }
        Instr::SpWrite { at, addr, src, ty } => {
            let mask = match ty {
                Ty::F32 => "sp_f32[w] |= 1 << b;",
                Ty::I32 => "sp_f32[w] &= !(1 << b);",
            };
            writeln!(
                s,
                "    for l in 0..c {{\n        let a = vals[{addr} * c + l] as i32;\n        \
                 if a < 0 || a as usize >= sp_words {{ return Err(sp_oob({at}, a, iter)); }}\n        \
                 let idx = a as usize * c + l;\n        \
                 sp_bits[idx] = vals[{src} * c + l];\n        \
                 let (w, b) = (idx / 64, idx % 64);\n        \
                 sp_init[w] |= 1 << b;\n        {mask}\n    }}"
            )
            .unwrap();
        }
        Instr::Comm { dst, data, src } => {
            writeln!(
                s,
                "    for l in 0..c {{\n        let si = vals[{src} * c + l] as i32;\n        \
                 if si < 0 || si as usize >= c {{ return Err(badcomm({dst}, si, iter)); }}\n        \
                 vals[{dst} * c + l] = vals[{data} * c + si as usize];\n    }}"
            )
            .unwrap();
        }
        Instr::AddI { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::AddI)),
        Instr::AddF { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::AddF)),
        Instr::SubI { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::SubI)),
        Instr::SubF { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::SubF)),
        Instr::MulI { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::MulI)),
        Instr::MulF { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::MulF)),
        Instr::DivI { dst, a, b } => {
            writeln!(
                s,
                "    for l in 0..c {{\n        let y = vals[{b} * c + l] as i32;\n        \
                 if y == 0 {{ return Err(divz({dst}, iter)); }}\n        \
                 vals[{dst} * c + l] = ib(i(vals[{a} * c + l]).wrapping_div(y));\n    }}"
            )
            .unwrap();
        }
        Instr::DivF { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::DivF)),
        Instr::Sqrt { dst, a } => emit_un(s, dst, a, "fb(f(x).sqrt())"),
        Instr::MinI { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::MinI)),
        Instr::MinF { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::MinF)),
        Instr::MaxI { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::MaxI)),
        Instr::MaxF { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::MaxF)),
        Instr::NegI { dst, a } => emit_un(s, dst, a, "ib(i(x).wrapping_neg())"),
        Instr::NegF { dst, a } => emit_un(s, dst, a, "fb(-f(x))"),
        Instr::AbsI { dst, a } => emit_un(s, dst, a, "ib(i(x).wrapping_abs())"),
        Instr::AbsF { dst, a } => emit_un(s, dst, a, "fb(f(x).abs())"),
        Instr::Floor { dst, a } => emit_un(s, dst, a, "fb(f(x).floor())"),
        Instr::And { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::And)),
        Instr::Or { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::Or)),
        Instr::Xor { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::Xor)),
        Instr::Shl { dst, a, b } => emit_bin(s, dst, a, b, "ib(i(x).wrapping_shl(y))"),
        Instr::Shr { dst, a, b } => emit_bin(s, dst, a, b, "ib(i(x).wrapping_shr(y))"),
        Instr::EqI { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::EqI)),
        Instr::EqF { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::EqF)),
        Instr::NeI { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::NeI)),
        Instr::NeF { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::NeF)),
        Instr::LtI { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::LtI)),
        Instr::LtF { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::LtF)),
        Instr::LeI { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::LeI)),
        Instr::LeF { dst, a, b } => emit_bin(s, dst, a, b, binop_expr(BinOp::LeF)),
        Instr::Select { dst, cond, a, b } => {
            writeln!(
                s,
                "    for l in 0..c {{ vals[{dst} * c + l] = if vals[{cond} * c + l] != 0 \
                 {{ vals[{a} * c + l] }} else {{ vals[{b} * c + l] }}; }}"
            )
            .unwrap();
        }
        Instr::ItoF { dst, a } => emit_un(s, dst, a, "fb(i(x) as f32)"),
        Instr::FtoI { dst, a } => emit_un(s, dst, a, "ib(f(x) as i32)"),
        Instr::Fault {
            at,
            expected,
            found,
        } => {
            writeln!(
                s,
                "    return Err(tym({at}, {}, {}, iter));",
                ty_code(expected),
                ty_code(found)
            )
            .unwrap();
        }
        // ---- fused superinstructions: two-rounding shapes, never FMA ----
        Instr::MulAddF { dst, a, b, c: e } => {
            emit_tri_f(s, dst, a, b, e, "fb(x * y + z)");
        }
        Instr::AddMulF { dst, c: e, a, b } => {
            emit_tri_f(s, dst, a, b, e, "fb(z + x * y)");
        }
        Instr::MulSubF { dst, a, b, c: e } => {
            emit_tri_f(s, dst, a, b, e, "fb(x * y - z)");
        }
        Instr::SubMulF { dst, c: e, a, b } => {
            emit_tri_f(s, dst, a, b, e, "fb(z - x * y)");
        }
        Instr::MulMulAddF { dst, a, b, c: e, d } => {
            emit_quad_f(s, dst, a, b, e, d, "fb(x * y + z * w)");
        }
        Instr::MulMulSubF { dst, a, b, c: e, d } => {
            emit_quad_f(s, dst, a, b, e, d, "fb(x * y - z * w)");
        }
        Instr::MulAddI { dst, a, b, c: e } => {
            emit_tri_i(s, dst, a, b, e, "ib(x.wrapping_mul(y).wrapping_add(z))");
        }
        Instr::MulSubI { dst, a, b, c: e } => {
            emit_tri_i(s, dst, a, b, e, "ib(x.wrapping_mul(y).wrapping_sub(z))");
        }
        Instr::SubMulI { dst, c: e, a, b } => {
            emit_tri_i(s, dst, a, b, e, "ib(z.wrapping_sub(x.wrapping_mul(y)))");
        }
        Instr::BinKR { op, dst, a, k } => {
            writeln!(
                s,
                "    for l in 0..c {{ let x = vals[{a} * c + l]; let y = 0x{k:08x}u32; \
                 vals[{dst} * c + l] = {}; }}",
                binop_expr(op)
            )
            .unwrap();
        }
        Instr::BinKL { op, dst, k, b } => {
            writeln!(
                s,
                "    for l in 0..c {{ let x = 0x{k:08x}u32; let y = vals[{b} * c + l]; \
                 vals[{dst} * c + l] = {}; }}",
                binop_expr(op)
            )
            .unwrap();
        }
        Instr::BinW {
            op,
            a,
            b,
            stream,
            width,
            offset,
        } => {
            writeln!(
                s,
                "    {{ let out = &mut *outs[{stream}]; \
                 let first = (((iter - out_base) * c) * {width} + {offset}) * 2;\n    \
                 for l in 0..c {{ let x = vals[{a} * c + l]; let y = vals[{b} * c + l]; \
                 out[first + l * {w2}] = {tag}u32; out[first + l * {w2} + 1] = {}; }} }}",
                binop_expr(op),
                w2 = width * 2,
                tag = out_tag(tape, stream)
            )
            .unwrap();
        }
        Instr::BinRL {
            op,
            dst,
            b,
            stream,
            width,
            offset,
        } => {
            writeln!(s, "    {{ let src = ins[{stream}];").unwrap();
            emit_read_bound(s, stream, width, offset);
            writeln!(
                s,
                "    for l in 0..c {{ let x = src[fp + l * {}]; \
                 let y = vals[{b} * c + l]; vals[{dst} * c + l] = {}; }} }}",
                width * 2,
                binop_expr(op)
            )
            .unwrap();
        }
        Instr::BinRR {
            op,
            dst,
            a,
            stream,
            width,
            offset,
        } => {
            writeln!(s, "    {{ let src = ins[{stream}];").unwrap();
            emit_read_bound(s, stream, width, offset);
            writeln!(
                s,
                "    for l in 0..c {{ let x = vals[{a} * c + l]; \
                 let y = src[fp + l * {}]; vals[{dst} * c + l] = {}; }} }}",
                width * 2,
                binop_expr(op)
            )
            .unwrap();
        }
        // ---- pair-fused superinstructions ----
        Instr::Read2 {
            da,
            sa,
            wa,
            oa,
            db,
            sb,
            wb,
            ob,
        } => {
            // Both bounds checks fire before either gather, in original
            // program order (`a` first), exactly as `exec::step`.
            writeln!(
                s,
                "    {{ let src_a = ins[{sa}]; let first_a = (iter * c) * {wa} + {oa};\n    \
                 if first_a + (c - 1) * {wa} >= src_a.len() / 2 {{ return Err(ex({sa}, iter)); }}\n    \
                 let src_b = ins[{sb}]; let first_b = (iter * c) * {wb} + {ob};\n    \
                 if first_b + (c - 1) * {wb} >= src_b.len() / 2 {{ return Err(ex({sb}, iter)); }}\n    \
                 let (fa, fb_) = (first_a * 2 + 1, first_b * 2 + 1);\n    \
                 for l in 0..c {{ vals[{da} * c + l] = src_a[fa + l * {wa2}]; }}\n    \
                 for l in 0..c {{ vals[{db} * c + l] = src_b[fb_ + l * {wb2}]; }} }}",
                wa2 = wa * 2,
                wb2 = wb * 2
            )
            .unwrap();
        }
        Instr::CMulF {
            re_dst,
            im_dst,
            a,
            b,
            c: e,
            d,
        } => {
            writeln!(
                s,
                "    for l in 0..c {{\n        \
                 let x = f(vals[{a} * c + l]); let y = f(vals[{b} * c + l]);\n        \
                 let z = f(vals[{e} * c + l]); let w = f(vals[{d} * c + l]);\n        \
                 vals[{re_dst} * c + l] = fb(x * y - z * w);\n        \
                 vals[{im_dst} * c + l] = fb(x * w + z * y);\n    }}"
            )
            .unwrap();
        }
        Instr::BflyF {
            add_dst,
            sub_dst,
            a,
            b,
        } => {
            writeln!(
                s,
                "    for l in 0..c {{\n        \
                 let x = f(vals[{a} * c + l]); let y = f(vals[{b} * c + l]);\n        \
                 vals[{add_dst} * c + l] = fb(x + y);\n        \
                 vals[{sub_dst} * c + l] = fb(x - y);\n    }}"
            )
            .unwrap();
        }
        Instr::BflyWF {
            a,
            b,
            add_stream,
            add_width,
            add_offset,
            sub_stream,
            sub_width,
            sub_offset,
        } => {
            // Adds scatter before subs, matching `exec::step`'s order.
            writeln!(
                s,
                "    {{ let out = &mut *outs[{add_stream}]; \
                 let first = (((iter - out_base) * c) * {add_width} + {add_offset}) * 2;\n    \
                 for l in 0..c {{ out[first + l * {aw2}] = {atag}u32; out[first + l * {aw2} + 1] = \
                 fb(f(vals[{a} * c + l]) + f(vals[{b} * c + l])); }} }}\n    \
                 {{ let out = &mut *outs[{sub_stream}]; \
                 let first = (((iter - out_base) * c) * {sub_width} + {sub_offset}) * 2;\n    \
                 for l in 0..c {{ out[first + l * {sw2}] = {stag}u32; out[first + l * {sw2} + 1] = \
                 fb(f(vals[{a} * c + l]) - f(vals[{b} * c + l])); }} }}",
                aw2 = add_width * 2,
                sw2 = sub_width * 2,
                atag = out_tag(tape, add_stream),
                stag = out_tag(tape, sub_stream)
            )
            .unwrap();
        }
        Instr::PRead { .. }
        | Instr::PRead2 { .. }
        | Instr::PWrite { .. }
        | Instr::PBinW { .. }
        | Instr::PBflyWF { .. } => {
            return Err("planar instructions are not supported by the native backend".into());
        }
    }
    Ok(())
}

/// `dst = g(x, y, z)` over all lanes, float operands.
fn emit_tri_f(s: &mut String, dst: u32, a: u32, b: u32, e: u32, expr: &str) {
    writeln!(
        s,
        "    for l in 0..c {{ let x = f(vals[{a} * c + l]); let y = f(vals[{b} * c + l]); \
         let z = f(vals[{e} * c + l]); vals[{dst} * c + l] = {expr}; }}"
    )
    .unwrap();
}

/// `dst = g(x, y, z)` over all lanes, wrapping-integer operands.
fn emit_tri_i(s: &mut String, dst: u32, a: u32, b: u32, e: u32, expr: &str) {
    writeln!(
        s,
        "    for l in 0..c {{ let x = i(vals[{a} * c + l]); let y = i(vals[{b} * c + l]); \
         let z = i(vals[{e} * c + l]); vals[{dst} * c + l] = {expr}; }}"
    )
    .unwrap();
}

/// `dst = g(x, y, z, w)` over all lanes, float operands.
fn emit_quad_f(s: &mut String, dst: u32, a: u32, b: u32, e: u32, d: u32, expr: &str) {
    writeln!(
        s,
        "    for l in 0..c {{ let x = f(vals[{a} * c + l]); let y = f(vals[{b} * c + l]); \
         let z = f(vals[{e} * c + l]); let w = f(vals[{d} * c + l]); \
         vals[{dst} * c + l] = {expr}; }}"
    )
    .unwrap();
}
