//! Tier-3 kernel execution: compile a validated tape to native code.
//!
//! The interpreter tiers still pay per-instruction dispatch on every
//! fused op; this backend removes it entirely by emitting specialized
//! Rust source for the tape ([`codegen`]), building it with the
//! toolchain `rustc` as a `cdylib` ([`build`]), and calling it through a
//! zero-dependency `dlopen` shim ([`ffi`]). Everything about the tier is
//! *wholesale fallback*: any ineligibility (planar layout, failed
//! translation validation), missing `rustc`, unsupported platform, or
//! build/load failure is diagnosed once per tape and execution continues
//! on tape v2, bit-identically.
//!
//! Policy lives in [`crate::NativeMode`] (`TapeConfig::native`) plus the
//! `STREAM_TAPE_NATIVE` environment override (`on`/`force` builds at
//! first execute, `off` disables; Auto builds only after a tape proves
//! hot). Compiled artifacts are shared process-wide through a registry
//! keyed by source fingerprint, and optionally across processes through
//! a persistent tier in `stream-store` ([`attach_disk`]), so each
//! schedule JITs once ever.

mod codegen;

#[cfg(unix)]
mod build;
#[cfg(unix)]
mod ffi;

#[cfg(unix)]
pub(in crate::tape) use ffi::{call, NativeModule};

#[cfg(not(unix))]
mod unsupported {
    use super::super::scratch::Scratchpad;
    use crate::IrError;

    /// Stub for platforms without `dlopen`; never instantiated.
    pub(in crate::tape) struct NativeModule;

    #[allow(clippy::too_many_arguments)]
    pub(in crate::tape) fn call(
        _m: &NativeModule,
        _lo: usize,
        _hi: usize,
        _out_base: usize,
        _c: usize,
        _sp_words: usize,
        _params: &[u32],
        _in_bits: &[Vec<u32>],
        _plain: &mut [&mut [u32]],
        _cond: &mut [Vec<u32>],
        _sp: &mut Scratchpad,
    ) -> Result<(), (usize, IrError)> {
        unreachable!("native modules are never built on unsupported platforms")
    }
}
#[cfg(not(unix))]
pub(in crate::tape) use unsupported::{call, NativeModule};

use super::Tape;
use crate::NativeMode;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Auto mode builds only after this many executes of the same tape…
const WARMUP_CALLS: u64 = 16;
/// …and only when one call's work (`iterations × body × lanes`) is big
/// enough that a ~half-second `rustc` invocation can ever pay off.
const MIN_WORK: usize = 1 << 14;

// Exact native-tier statistics: standalone counters (correct even when
// tracing is disabled) registered once in the trace registry's always-on
// tier, so `/metrics` and the exporters read these very cells — no
// gated mirror writes.
static COMPILES: stream_trace::Counter = stream_trace::Counter::new();
static DISK_HITS: stream_trace::Counter = stream_trace::Counter::new();
static FALLBACKS: stream_trace::Counter = stream_trace::Counter::new();

/// Registers the native-tier counters under their exported names.
/// Idempotent; called from every read/write site so the `native.*`
/// series exist in `/metrics` as soon as anything touches the tier —
/// including a freshly restarted daemon that has not built anything yet.
pub(in crate::tape) fn ensure_registered() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        stream_trace::register_counter("native.compiles", &COMPILES);
        stream_trace::register_counter("native.disk_hits", &DISK_HITS);
        stream_trace::register_counter("native.fallbacks", &FALLBACKS);
    });
}

/// Counters for the native tier, process-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NativeStats {
    /// Modules built by invoking `rustc` in this process.
    pub compiles: u64,
    /// Modules rehydrated from the persistent artifact tier.
    pub disk_hits: u64,
    /// Tapes that wanted the native tier but fell back to the
    /// interpreter (ineligible, no `rustc`, or build/load failure).
    pub fallbacks: u64,
}

/// Reads the process-wide native-tier counters.
pub fn stats() -> NativeStats {
    ensure_registered();
    NativeStats {
        compiles: COMPILES.get(),
        disk_hits: DISK_HITS.get(),
        fallbacks: FALLBACKS.get(),
    }
}

#[cfg(unix)]
static DISK: OnceLock<stream_store::DiskStore> = OnceLock::new();

/// Attaches a persistent artifact tier rooted at `root`: every module
/// built after this call is written through, and later processes (or a
/// restarted one) rehydrate artifacts instead of re-invoking `rustc`.
/// Returns `false` if a tier was already attached (the existing one is
/// kept — the attach is process-wide and happens once).
///
/// # Errors
///
/// Propagates the failure to create or open the store directory.
pub fn attach_disk(root: &Path) -> io::Result<bool> {
    #[cfg(unix)]
    {
        if DISK.get().is_some() {
            return Ok(false);
        }
        let store = stream_store::DiskStore::open(root, "natives", codegen::CODEGEN_VERSION)?;
        Ok(DISK.set(store).is_ok())
    }
    #[cfg(not(unix))]
    {
        let _ = root;
        Ok(false)
    }
}

/// `STREAM_TAPE_NATIVE` override, parsed once: `Some(true)` forces the
/// tier for Auto-mode tapes, `Some(false)` disables it, `None` leaves
/// the Auto policy in charge. Mirrors `STREAM_TAPE_STRIPS`: the
/// environment never overrides an explicit `TapeConfig::native` setting.
fn env_override() -> Option<bool> {
    static MODE: OnceLock<Option<bool>> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("STREAM_TAPE_NATIVE") {
        Ok(v) => match v.as_str() {
            "on" | "1" | "true" | "force" => Some(true),
            "off" | "0" | "false" => Some(false),
            other => {
                if cfg!(debug_assertions) {
                    eprintln!(
                        "stream-ir: unrecognized STREAM_TAPE_NATIVE value {other:?} \
                         (expected on/1/true/force or off/0/false); using the default"
                    );
                }
                None
            }
        },
        Err(_) => None,
    })
}

/// Per-tape native state, shared by every clone of the tape (strip-mode
/// variants of one compile reuse the same module). The slot is decided
/// at most once: `Some` pins the loaded module, `None` pins a diagnosed
/// fallback so the reason is reported once, not per call.
pub(in crate::tape) struct NativeCell {
    calls: AtomicU64,
    slot: OnceLock<Option<Arc<NativeModule>>>,
}

impl NativeCell {
    pub(in crate::tape) fn new() -> Self {
        Self {
            calls: AtomicU64::new(0),
            slot: OnceLock::new(),
        }
    }
}

impl Default for NativeCell {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for NativeCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match self.slot.get() {
            None => "undecided",
            Some(Some(_)) => "built",
            Some(None) => "fallback",
        };
        f.debug_struct("NativeCell")
            .field("calls", &self.calls.load(Ordering::Relaxed))
            .field("state", &state)
            .finish()
    }
}

/// Decides whether this execute runs natively. Cheap on every path that
/// doesn't build: one atomic bump and a `OnceLock` read.
pub(in crate::tape) fn resolve(
    tape: &Tape,
    iterations: usize,
    c: usize,
) -> Option<Arc<NativeModule>> {
    let force = match tape.config.native {
        NativeMode::Off => return None,
        NativeMode::Force => true,
        NativeMode::Auto => match env_override() {
            Some(false) => return None,
            Some(true) => true,
            None => false,
        },
    };
    let cell = &tape.native;
    if let Some(slot) = cell.slot.get() {
        return slot.clone();
    }
    if !force {
        let calls = cell.calls.fetch_add(1, Ordering::Relaxed) + 1;
        let work = iterations.saturating_mul(tape.body.len()).saturating_mul(c);
        if calls < WARMUP_CALLS || work < MIN_WORK {
            return None;
        }
    }
    cell.slot
        .get_or_init(|| match try_build(tape) {
            Ok(m) => Some(m),
            Err(why) => {
                ensure_registered();
                FALLBACKS.incr();
                eprintln!(
                    "stream-ir: native backend fallback for kernel `{}`: {why}",
                    tape.kernel.name()
                );
                None
            }
        })
        .clone()
}

/// Builds (or fetches) the module for an eligible tape. Only tapes that
/// pass `tapecheck` translation validation with zero errors may be
/// lowered — the native tier trusts the tape, so the tape must first be
/// proven equivalent to its kernel.
#[cfg(unix)]
fn try_build(tape: &Tape) -> Result<Arc<NativeModule>, String> {
    let errors = super::check::check_tape(tape)
        .into_iter()
        .filter(|f| f.kind.is_error())
        .count();
    if errors > 0 {
        return Err(format!(
            "translation validation found {errors} error(s); tape is not native-eligible"
        ));
    }
    build::build_or_fetch(tape)
}

#[cfg(not(unix))]
fn try_build(_tape: &Tape) -> Result<Arc<NativeModule>, String> {
    Err("platform has no dlopen support".into())
}

#[cfg(unix)]
fn note_compile() {
    ensure_registered();
    COMPILES.incr();
}

#[cfg(unix)]
fn note_disk_hit() {
    ensure_registered();
    DISK_HITS.incr();
}
