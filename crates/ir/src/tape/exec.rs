//! The tape's execution engine: lane-specialized stepping and
//! strip-parallel iteration partitioning.
//!
//! # Lane specialization
//!
//! The per-lane loops in [`step`] run over `C` clusters. v1 received the
//! cluster count as a runtime value, so every inner loop carried dynamic
//! trip-count overhead. Here the whole stepping path is monomorphized over
//! `const C: usize` for the common widths (1, 4, 8, 16) — the compiler
//! sees fixed-length loops it can fully unroll and vectorize — with `C = 0`
//! denoting the runtime-width generic fallback ([`lanes`] folds the two
//! cases). [`dispatch`] picks the instantiation once per kernel call.
//!
//! # Strip parallelism
//!
//! A kernel with no recurrences, no conditional streams, and no scratchpad
//! writes computes each SIMD iteration independently — exactly the
//! stream-program property the paper's strip-mining exploits. Eligible
//! kernels may partition their iteration range into contiguous strips
//! executed by scoped worker threads. Each worker owns disjoint slices of
//! every output vector (split before spawning, so the borrow checker
//! proves disjointness), its own value lattice, and its own clone of the
//! read-only scratchpad; inputs are shared immutably. Results are
//! therefore bit-identical to the serial schedule, and when strips fail,
//! the error from the *earliest* iteration is reported — the same error
//! the serial loop would have hit first.
//!
//! Worker threads are budgeted by the process-wide [`stream_pool`] permit
//! pool (shared with the sweep engine), so nested parallelism never
//! oversubscribes the machine. An eligible kernel that gets no permits
//! (or too little work to amortize a thread spawn) runs serially and
//! counts `tape.strip_fallback`.

use super::instr::{
    bits_of, fill, for_binop, row, scalar_of, split2, split3, split_dst, split_dst2, BinOp, Instr,
};
use super::native;
use super::scratch::Scratchpad;
use super::{LaneMode, StripMode, Tape};
use crate::interp::ExecConfig;
use crate::{IrError, Scalar, StreamId, ValueId};
use std::sync::OnceLock;

/// Minimum `iterations * body_len * clusters` before Auto mode considers
/// thread spawns worth their cost.
const STRIP_WORK_THRESHOLD: usize = 1 << 16;

/// Most strips Auto mode will ask for; Force mode uses a fixed small count
/// so determinism smoke tests exercise real partitioning on any machine.
const MAX_AUTO_STRIPS: usize = 8;
const FORCE_STRIPS: usize = 4;

/// Value-lattice budget (in u32 words) for the serial macro-batching
/// path. The batch factor is chosen as the largest iteration count whose
/// fused `n_vals * c * batch` lattice still fits this budget, keeping the
/// whole working set L1-resident; 4096 words = 16 KiB.
const BATCH_VALS_WORDS: usize = 4096;

/// Folds the const-generic lane count with the runtime one: `C = 0` is the
/// generic instantiation, any other `C` is a compile-time-fixed width.
#[inline(always)]
const fn lanes<const C: usize>(c: usize) -> usize {
    if C == 0 {
        c
    } else {
        C
    }
}

/// A parsed `STREAM_TAPE_STRIPS` value: a pinned mode or an exact count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StripOverride {
    Mode(StripMode),
    Count(usize),
}

/// `STREAM_TAPE_STRIPS` override, read once per process: `on`/`force` pin
/// Force, `off`/`serial` pin Serial, and a number pins an exact strip
/// count (bypassing the work threshold and permit pool, like Force). Only
/// consulted by tapes left in Auto — an explicit per-tape [`StripMode`]
/// always wins.
///
/// Out-of-range counts — zero, or more strips than the calling thread
/// plus every permit the global pool could grant — are a configuration
/// error: the override is ignored with a one-time debug-build diagnostic,
/// never silently clamped to something runnable.
fn env_strip_override() -> Option<StripOverride> {
    static MODE: OnceLock<Option<StripOverride>> = OnceLock::new();
    *MODE.get_or_init(|| {
        let v = match std::env::var("STREAM_TAPE_STRIPS") {
            Ok(v) => v,
            Err(_) => return None,
        };
        if v.eq_ignore_ascii_case("on") || v.eq_ignore_ascii_case("force") {
            return Some(StripOverride::Mode(StripMode::Force));
        }
        if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("serial") {
            return Some(StripOverride::Mode(StripMode::Serial));
        }
        if let Ok(n) = v.parse::<usize>() {
            let max = stream_pool::global().available() + 1;
            if n >= 1 && n <= max {
                return Some(StripOverride::Count(n));
            }
            if cfg!(debug_assertions) {
                eprintln!(
                    "note[stream-ir]: STREAM_TAPE_STRIPS={v} is out of range \
                     (this host supports 1..={max}); override ignored"
                );
            }
            return None;
        }
        if cfg!(debug_assertions) {
            eprintln!(
                "note[stream-ir]: unrecognized STREAM_TAPE_STRIPS={v:?} \
                 (want on/force, off/serial, or a strip count); override ignored"
            );
        }
        None
    })
}

/// Decides the strip count for this call: `(strips, permits_taken)`.
fn plan_strips(tape: &Tape, iterations: usize, c: usize) -> (usize, usize) {
    let overridden = match tape.config.strips {
        StripMode::Auto => env_strip_override(),
        m => Some(StripOverride::Mode(m)),
    };
    if iterations < 2 {
        return (1, 0);
    }
    if let Some(StripOverride::Count(n)) = overridden {
        if !tape.strip_eligible {
            stream_trace::count("tape.strip_fallback", 1);
            return (1, 0);
        }
        return (iterations.min(n), 0);
    }
    let mode = match overridden {
        Some(StripOverride::Mode(m)) => m,
        _ => StripMode::Auto,
    };
    if mode == StripMode::Serial {
        return (1, 0);
    }
    if !tape.strip_eligible {
        // Recurrences, conditional streams, or SP writes couple iterations:
        // silently serial. Force mode records that it had to give up.
        if mode == StripMode::Force {
            stream_trace::count("tape.strip_fallback", 1);
        }
        return (1, 0);
    }
    if mode == StripMode::Force {
        return (iterations.min(FORCE_STRIPS), 0);
    }
    let work = iterations * tape.body.len().max(1) * c;
    if work < STRIP_WORK_THRESHOLD {
        return (1, 0);
    }
    let desired = iterations.min(MAX_AUTO_STRIPS);
    let granted = stream_pool::global().take(desired - 1);
    if granted == 0 {
        stream_trace::count("tape.strip_fallback", 1);
        return (1, 0);
    }
    (granted + 1, granted)
}

/// Test-only probe of the strip planner: the strip count a run of
/// `iterations` over `c` clusters would use, with any borrowed permits
/// returned immediately. Exists so the `STREAM_TAPE_STRIPS` handling can
/// be asserted from an own-process integration test without executing.
#[doc(hidden)]
pub fn probe_planned_strips(tape: &Tape, iterations: usize, c: usize) -> usize {
    let (strips, permits) = plan_strips(tape, iterations, c);
    if permits > 0 {
        stream_pool::global().give(permits);
    }
    strips
}

/// Runs a compiled tape: plans strips, executes (parallel or serial), and
/// converts the untagged output lanes back to scalars.
pub(super) fn run(
    tape: &Tape,
    iterations: usize,
    params: &[Scalar],
    in_bits: &[Vec<u32>],
    in_planes: &[Vec<u32>],
    sp: &mut Scratchpad,
    cfg: &ExecConfig,
) -> Result<Vec<Vec<Scalar>>, IrError> {
    let mut run_span = stream_trace::span("tape", "run");
    run_span.arg("iterations", iterations);
    run_span.arg("clusters", cfg.clusters);
    let c = cfg.clusters;
    let sp_words = cfg.sp_words;
    let params_bits: Vec<u32> = params.iter().map(|&p| bits_of(p)).collect();
    let outs = tape.kernel.outputs();

    // Unconditional outputs are written in place at exact offsets;
    // conditional outputs are push-only and kept in separate storage.
    // Planar tapes hold one plane per (plain stream, word offset); legacy
    // layout holds one record-major vector per stream.
    let mut plain_store: Vec<Vec<u32>> = if tape.planar {
        outs.iter()
            .flat_map(|d| {
                let n = if d.conditional {
                    0
                } else {
                    d.record_width as usize
                };
                std::iter::repeat_with(move || vec![0u32; iterations * c]).take(n)
            })
            .collect()
    } else {
        outs.iter()
            .map(|d| {
                if d.conditional {
                    Vec::new()
                } else {
                    vec![0u32; iterations * c * d.record_width as usize]
                }
            })
            .collect()
    };
    // Words each plain_store entry holds per iteration, for strip slicing.
    let per_iter: Vec<usize> = if tape.planar {
        vec![c; plain_store.len()]
    } else {
        outs.iter()
            .map(|d| {
                if d.conditional {
                    0
                } else {
                    c * d.record_width as usize
                }
            })
            .collect()
    };
    let mut cond_store: Vec<Vec<u32>> = outs
        .iter()
        .map(|d| {
            if d.conditional {
                Vec::with_capacity(iterations * c * d.record_width as usize)
            } else {
                Vec::new()
            }
        })
        .collect();

    let (nstrips, permits) = plan_strips(tape, iterations, c);
    if nstrips <= 1 {
        let mut plain: Vec<&mut [u32]> = plain_store.iter_mut().map(Vec::as_mut_slice).collect();
        run_serial(
            tape,
            iterations,
            c,
            sp_words,
            &params_bits,
            in_bits,
            in_planes,
            &mut plain,
            &mut cond_store,
            sp,
        )
        .map_err(|(_, e)| e)?;
    } else {
        run_span.arg("strips", nstrips);
        stream_trace::count("tape.strips", nstrips as u64);

        let bounds = strip_bounds(iterations, nstrips);
        let strip_plain = split_strips(&mut plain_store, &per_iter, &bounds);

        let n_outs = outs.len();
        let results: Vec<Result<(), (usize, IrError)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = bounds
                .iter()
                .zip(strip_plain)
                .map(|(&(blo, bhi), mut plain)| {
                    // Eligibility guarantees the body never writes SP, so a
                    // clone of the (possibly sp_init-seeded) scratchpad is a
                    // read-only snapshot identical across strips.
                    let mut strip_sp = sp.clone();
                    let params_bits = &params_bits;
                    scope.spawn(move || {
                        let mut cond: Vec<Vec<u32>> = vec![Vec::new(); n_outs];
                        dispatch(
                            tape,
                            blo,
                            bhi,
                            blo,
                            c,
                            sp_words,
                            params_bits,
                            in_bits,
                            in_planes,
                            &mut plain,
                            &mut cond,
                            &mut strip_sp,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("strip worker panicked"))
                .collect()
        });
        if permits > 0 {
            stream_pool::global().give(permits);
        }
        // Strips cover disjoint iteration ranges, so the minimum failing
        // iteration is exactly the error the serial schedule hits first.
        if let Some((_, e)) = results
            .into_iter()
            .filter_map(Result::err)
            .min_by_key(|&(iter, _)| iter)
        {
            return Err(e);
        }
    }

    // Convert untagged output bits back to scalars; the per-stream type is
    // hoisted out of the word loop ([`scalars_of`]).
    Ok(outs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            if d.conditional {
                return scalars_of(&cond_store[i], d.ty);
            }
            if !tape.planar {
                return scalars_of(&plain_store[i], d.ty);
            }
            // Transpose the stream's planes back to record-major order.
            let base = tape.out_plane_base[i] as usize;
            let w = d.record_width as usize;
            if w == 1 {
                return scalars_of(&plain_store[base], d.ty);
            }
            let planes = &plain_store[base..base + w];
            let mut out = Vec::with_capacity(iterations * c * w);
            for k in 0..iterations * c {
                for p in planes {
                    out.push(scalar_of(p[k], d.ty));
                }
            }
            out
        })
        .collect())
}

/// Serial execution with iteration macro-batching. For lane-topology
/// neutral tapes ([`Tape::batchable`]), [`BATCH`] consecutive iterations
/// execute as a single dispatch over `BATCH * c` lanes: the flattened
/// stream index formula `(iter * lanes + lane) * width + offset` under
/// `iter = block, lanes = BATCH * c` enumerates exactly the words the
/// per-iteration schedule touches, in the same order, and every surviving
/// instruction is pure lane-wise arithmetic — so outputs are
/// bit-identical while dispatch overhead drops by `BATCH` and the lane
/// loops get `BATCH`-times longer contiguous rows to vectorize.
///
/// The only observable the wide dispatch gets wrong is the iteration
/// number attached to an error (a block index). Errors are rare and
/// outputs of failed runs are discarded, so a failing batched run is
/// simply rerun unbatched to surface the exact per-iteration error.
#[allow(clippy::too_many_arguments)]
fn run_serial(
    tape: &Tape,
    iterations: usize,
    c: usize,
    sp_words: usize,
    params: &[u32],
    in_bits: &[Vec<u32>],
    in_planes: &[Vec<u32>],
    plain: &mut [&mut [u32]],
    cond: &mut [Vec<u32>],
    sp: &mut Scratchpad,
) -> Result<(), (usize, IrError)> {
    if tape.batchable {
        // Largest power-of-two batch whose fused lattice fits the budget:
        // power-of-two factors keep `c * batch` on the specialized widths
        // for the common cluster counts.
        let budget = (BATCH_VALS_WORDS / (tape.n_vals * c).max(1)).min(iterations);
        let batch = if budget >= 2 {
            1usize << (usize::BITS - 1 - budget.leading_zeros())
        } else {
            budget
        };
        let blocks = if batch >= 2 { iterations / batch } else { 0 };
        if blocks >= 1 {
            let head = dispatch(
                tape,
                0,
                blocks,
                0,
                c * batch,
                sp_words,
                params,
                in_bits,
                in_planes,
                plain,
                cond,
                sp,
            );
            if head.is_ok() {
                if blocks * batch == iterations {
                    return Ok(());
                }
                // Tail iterations that don't fill a block run at native
                // width; out_base 0 keeps their write offsets absolute.
                return dispatch(
                    tape,
                    blocks * batch,
                    iterations,
                    0,
                    c,
                    sp_words,
                    params,
                    in_bits,
                    in_planes,
                    plain,
                    cond,
                    sp,
                );
            }
        }
    }
    dispatch(
        tape, 0, iterations, 0, c, sp_words, params, in_bits, in_planes, plain, cond, sp,
    )
}

/// Contiguous per-strip iteration ranges, remainder spread over the front.
fn strip_bounds(iterations: usize, nstrips: usize) -> Vec<(usize, usize)> {
    let base = iterations / nstrips;
    let rem = iterations % nstrips;
    let mut bounds = Vec::with_capacity(nstrips);
    let mut lo = 0usize;
    for i in 0..nstrips {
        let len = base + usize::from(i < rem);
        bounds.push((lo, lo + len));
        lo += len;
    }
    bounds
}

/// Slices every output vector into per-strip disjoint windows
/// (`per_iter[i]` elements per iteration), so the borrow checker proves
/// worker disjointness before any thread spawns.
fn split_strips<'a, T>(
    stores: &'a mut [Vec<T>],
    per_iter: &[usize],
    bounds: &[(usize, usize)],
) -> Vec<Vec<&'a mut [T]>> {
    let mut strips: Vec<Vec<&mut [T]>> = (0..bounds.len())
        .map(|_| Vec::with_capacity(stores.len()))
        .collect();
    for (oi, v) in stores.iter_mut().enumerate() {
        let mut rest = v.as_mut_slice();
        for (si, &(blo, bhi)) in bounds.iter().enumerate() {
            let (head, tail) = rest.split_at_mut((bhi - blo) * per_iter[oi]);
            strips[si].push(head);
            rest = tail;
        }
    }
    strips
}

/// An all-zero scalar vector via `alloc_zeroed`. `vec![Scalar::I32(0); n]`
/// is a fill loop (the calloc specialization only covers primitives), but
/// the zero word is all-zero *bytes* under `Scalar`'s guaranteed repr, so
/// zeroed pages are already valid scalars — this gets the same free-page
/// path the interpreter's `vec![0u32; n]` buffers enjoy.
fn zeroed_scalars(n: usize) -> Vec<Scalar> {
    if n == 0 {
        return Vec::new();
    }
    let layout = std::alloc::Layout::array::<Scalar>(n).expect("output buffer size overflow");
    // SAFETY: layout is non-zero-sized; the pointer is checked; length,
    // capacity, and layout match exactly what Vec's own allocation would
    // use, and all-zero bytes are a valid `Scalar::I32(0)`.
    unsafe {
        let p = std::alloc::alloc_zeroed(layout);
        if p.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        Vec::from_raw_parts(p.cast::<Scalar>(), n, n)
    }
}

/// Runs a compiled tape through its native module. The whole path stays
/// in the host's tagged [`Scalar`] representation: inputs are passed as
/// `(tag, payload)` pairs the module reads payloads from, and outputs
/// come back already tagged — no conversion pass on either side (the
/// big fixed per-call cost the interpreter tiers pay; see
/// `Tape::execute_with_inner`, which validates input tags before
/// dispatching here). The module runs iteration-at-a-time, so its
/// errors are exact without a serial rerun, and strip partitioning
/// reuses the same planner and disjoint-window splitting as the
/// interpreter path for bit-identical scheduling.
pub(super) fn run_native(
    tape: &Tape,
    m: &native::NativeModule,
    iterations: usize,
    params: &[Scalar],
    inputs: &[Vec<Scalar>],
    sp: &mut Scratchpad,
    cfg: &ExecConfig,
) -> Result<Vec<Vec<Scalar>>, IrError> {
    let mut run_span = stream_trace::span("tape", "run");
    run_span.arg("iterations", iterations);
    run_span.arg("clusters", cfg.clusters);
    run_span.arg("native", true);
    let c = cfg.clusters;
    let sp_words = cfg.sp_words;
    let params_bits: Vec<u32> = params.iter().map(|&p| bits_of(p)).collect();
    let outs = tape.kernel.outputs();

    // Unconditional outputs are written in place at exact offsets;
    // conditional outputs are push-only, sized by the FFI shim and
    // truncated to the module's reported push counts.
    let mut plain_store: Vec<Vec<Scalar>> = outs
        .iter()
        .map(|d| {
            if d.conditional {
                Vec::new()
            } else {
                zeroed_scalars(iterations * c * d.record_width as usize)
            }
        })
        .collect();
    let per_iter: Vec<usize> = outs
        .iter()
        .map(|d| {
            if d.conditional {
                0
            } else {
                c * d.record_width as usize
            }
        })
        .collect();
    let mut cond_store: Vec<Vec<Scalar>> = vec![Vec::new(); outs.len()];

    let (nstrips, permits) = plan_strips(tape, iterations, c);
    if nstrips <= 1 {
        let mut plain: Vec<&mut [Scalar]> = plain_store.iter_mut().map(Vec::as_mut_slice).collect();
        native::call(
            m,
            0,
            iterations,
            0,
            c,
            sp_words,
            &params_bits,
            inputs,
            &mut plain,
            &mut cond_store,
            sp,
        )
        .map_err(|(_, e)| e)?;
    } else {
        run_span.arg("strips", nstrips);
        stream_trace::count("tape.strips", nstrips as u64);

        let bounds = strip_bounds(iterations, nstrips);
        let strip_plain = split_strips(&mut plain_store, &per_iter, &bounds);

        let n_outs = outs.len();
        let results: Vec<Result<(), (usize, IrError)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = bounds
                .iter()
                .zip(strip_plain)
                .map(|(&(blo, bhi), mut plain)| {
                    // Strip eligibility guarantees no SP writes, so the
                    // cloned scratchpad is a read-only snapshot.
                    let mut strip_sp = sp.clone();
                    let params_bits = &params_bits;
                    scope.spawn(move || {
                        let mut cond: Vec<Vec<Scalar>> = vec![Vec::new(); n_outs];
                        native::call(
                            m,
                            blo,
                            bhi,
                            blo,
                            c,
                            sp_words,
                            params_bits,
                            inputs,
                            &mut plain,
                            &mut cond,
                            &mut strip_sp,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("strip worker panicked"))
                .collect()
        });
        if permits > 0 {
            stream_pool::global().give(permits);
        }
        // Strips cover disjoint iteration ranges, so the minimum failing
        // iteration is exactly the error the serial schedule hits first.
        if let Some((_, e)) = results
            .into_iter()
            .filter_map(Result::err)
            .min_by_key(|&(iter, _)| iter)
        {
            return Err(e);
        }
    }

    // No conversion pass: plain outputs were written tagged in place,
    // conditional outputs were pushed tagged and truncated by the shim.
    Ok(outs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            if d.conditional {
                std::mem::take(&mut cond_store[i])
            } else {
                std::mem::take(&mut plain_store[i])
            }
        })
        .collect())
}

/// Constant-stride gather: `dst[lane] = src[first + lane * w]`. The
/// common small record widths get monomorphic loops — a constant stride
/// is what LLVM's interleaved-access vectorizer needs; a dynamic one
/// forces scalar element loads.
#[inline(always)]
fn gather(dst: &mut [u32], src: &[u32], first: usize, w: usize) {
    macro_rules! go {
        ($w:expr) => {
            for (lane, v) in dst.iter_mut().enumerate() {
                *v = src[first + lane * $w];
            }
        };
    }
    match w {
        1 => dst.copy_from_slice(&src[first..first + dst.len()]),
        2 => go!(2),
        3 => go!(3),
        4 => go!(4),
        w => go!(w),
    }
}

/// Constant-stride scatter: `out[first + lane * w] = src[lane]`.
#[inline(always)]
fn scatter(out: &mut [u32], first: usize, w: usize, src: &[u32]) {
    macro_rules! go {
        ($w:expr) => {
            for (lane, &v) in src.iter().enumerate() {
                out[first + lane * $w] = v;
            }
        };
    }
    match w {
        1 => out[first..first + src.len()].copy_from_slice(src),
        2 => go!(2),
        3 => go!(3),
        4 => go!(4),
        w => go!(w),
    }
}

/// Constant-stride float scatter-map:
/// `out[first + lane * w] = f(xs[lane], ys[lane])`.
#[inline(always)]
fn scatter_f(
    out: &mut [u32],
    first: usize,
    w: usize,
    xs: &[u32],
    ys: &[u32],
    f: impl Fn(f32, f32) -> f32,
) {
    macro_rules! go {
        ($w:expr) => {
            for (lane, (&x, &y)) in xs.iter().zip(ys).enumerate() {
                out[first + lane * $w] = f(f32::from_bits(x), f32::from_bits(y)).to_bits();
            }
        };
    }
    match w {
        1 => go!(1),
        2 => go!(2),
        3 => go!(3),
        4 => go!(4),
        w => go!(w),
    }
}

/// Bulk bits-to-scalar conversion with the stream type hoisted out of
/// the loop, so each arm is a branch-free map.
fn scalars_of(bits: &[u32], ty: crate::Ty) -> Vec<Scalar> {
    match ty {
        crate::Ty::I32 => bits.iter().map(|&b| Scalar::I32(b as i32)).collect(),
        crate::Ty::F32 => bits
            .iter()
            .map(|&b| Scalar::F32(f32::from_bits(b)))
            .collect(),
    }
}

/// Picks the lane-specialized instantiation for this cluster count.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    tape: &Tape,
    lo: usize,
    hi: usize,
    out_base: usize,
    c: usize,
    sp_words: usize,
    params: &[u32],
    in_bits: &[Vec<u32>],
    in_planes: &[Vec<u32>],
    plain: &mut [&mut [u32]],
    cond: &mut [Vec<u32>],
    sp: &mut Scratchpad,
) -> Result<(), (usize, IrError)> {
    macro_rules! go {
        ($C:literal) => {
            run_range::<$C>(
                tape, lo, hi, out_base, c, sp_words, params, in_bits, in_planes, plain, cond, sp,
            )
        };
    }
    if tape.config.lanes == LaneMode::Generic {
        return go!(0);
    }
    match c {
        1 => go!(1),
        4 => go!(4),
        8 => go!(8),
        16 => go!(16),
        // Macro-batched widths (c * batch for power-of-two batches).
        32 => go!(32),
        64 => go!(64),
        _ => go!(0),
    }
}

/// Executes iterations `lo..hi` with its own value lattice. Errors carry
/// the failing iteration so strip results can be ordered.
#[allow(clippy::too_many_arguments)]
fn run_range<const C: usize>(
    tape: &Tape,
    lo: usize,
    hi: usize,
    out_base: usize,
    c: usize,
    sp_words: usize,
    params: &[u32],
    in_bits: &[Vec<u32>],
    in_planes: &[Vec<u32>],
    plain: &mut [&mut [u32]],
    cond: &mut [Vec<u32>],
    sp: &mut Scratchpad,
) -> Result<(), (usize, IrError)> {
    let c = lanes::<C>(c);
    let mut vals = vec![0u32; tape.n_vals * c];
    let mut recur = vec![0u32; tape.recurs.len() * c];
    for (slot, r) in tape.recurs.iter().enumerate() {
        recur[slot * c..slot * c + c].fill(r.init_bits);
    }
    let mut cond_cursor = vec![0usize; in_bits.len()];

    for ins in &tape.prologue {
        step::<C>(
            ins,
            0,
            out_base,
            c,
            sp_words,
            &mut vals,
            &recur,
            params,
            in_bits,
            in_planes,
            plain,
            cond,
            sp,
            &mut cond_cursor,
        )
        .map_err(|e| (lo, e))?;
    }
    for iter in lo..hi {
        for ins in &tape.body {
            step::<C>(
                ins,
                iter,
                out_base,
                c,
                sp_words,
                &mut vals,
                &recur,
                params,
                in_bits,
                in_planes,
                plain,
                cond,
                sp,
                &mut cond_cursor,
            )
            .map_err(|e| (iter, e))?;
        }
        for (slot, r) in tape.recurs.iter().enumerate() {
            let src = r.next as usize * c;
            recur[slot * c..slot * c + c].copy_from_slice(&vals[src..src + c]);
        }
    }
    Ok(())
}

macro_rules! bin_i {
    ($vals:expr, $c:expr, $d:expr, $a:expr, $b:expr, $f:expr) => {{
        let (dst, xs, ys) = split3($vals, $c, $d, $a, $b);
        for ((d, &x), &y) in dst.iter_mut().zip(xs).zip(ys) {
            *d = $f(x as i32, y as i32) as u32;
        }
    }};
}

macro_rules! bin_f {
    ($vals:expr, $c:expr, $d:expr, $a:expr, $b:expr, $f:expr) => {{
        let (dst, xs, ys) = split3($vals, $c, $d, $a, $b);
        for ((d, &x), &y) in dst.iter_mut().zip(xs).zip(ys) {
            *d = $f(f32::from_bits(x), f32::from_bits(y)).to_bits();
        }
    }};
}

macro_rules! cmp_i {
    ($vals:expr, $c:expr, $d:expr, $a:expr, $b:expr, $f:expr) => {{
        let (dst, xs, ys) = split3($vals, $c, $d, $a, $b);
        for ((d, &x), &y) in dst.iter_mut().zip(xs).zip(ys) {
            *d = u32::from($f(x as i32, y as i32));
        }
    }};
}

macro_rules! cmp_f {
    ($vals:expr, $c:expr, $d:expr, $a:expr, $b:expr, $f:expr) => {{
        let (dst, xs, ys) = split3($vals, $c, $d, $a, $b);
        for ((d, &x), &y) in dst.iter_mut().zip(xs).zip(ys) {
            *d = u32::from($f(f32::from_bits(x), f32::from_bits(y)));
        }
    }};
}

macro_rules! un_i {
    ($vals:expr, $c:expr, $d:expr, $a:expr, $f:expr) => {{
        let (dst, xs) = split2($vals, $c, $d, $a);
        for (d, &x) in dst.iter_mut().zip(xs) {
            *d = $f(x as i32) as u32;
        }
    }};
}

macro_rules! un_f {
    ($vals:expr, $c:expr, $d:expr, $a:expr, $f:expr) => {{
        let (dst, xs) = split2($vals, $c, $d, $a);
        for (d, &x) in dst.iter_mut().zip(xs) {
            *d = $f(f32::from_bits(x)).to_bits();
        }
    }};
}

/// Three-operand float superinstruction: `dst = f(a, b, e)` per lane,
/// computed with the same per-op roundings as the unfused chain.
macro_rules! tri_f {
    ($vals:expr, $c:expr, $d:expr, $a:expr, $b:expr, $e:expr, $f:expr) => {{
        let (dst, lo) = split_dst($vals, $c, $d);
        let (xs, ys, zs) = (row(lo, $c, $a), row(lo, $c, $b), row(lo, $c, $e));
        for (((d, &x), &y), &z) in dst.iter_mut().zip(xs).zip(ys).zip(zs) {
            *d = $f(f32::from_bits(x), f32::from_bits(y), f32::from_bits(z)).to_bits();
        }
    }};
}

macro_rules! tri_i {
    ($vals:expr, $c:expr, $d:expr, $a:expr, $b:expr, $e:expr, $f:expr) => {{
        let (dst, lo) = split_dst($vals, $c, $d);
        let (xs, ys, zs) = (row(lo, $c, $a), row(lo, $c, $b), row(lo, $c, $e));
        for (((d, &x), &y), &z) in dst.iter_mut().zip(xs).zip(ys).zip(zs) {
            *d = $f(x as i32, y as i32, z as i32) as u32;
        }
    }};
}

/// Four-operand float superinstruction (the complex-multiply shape).
macro_rules! quad_f {
    ($vals:expr, $c:expr, $d:expr, $a:expr, $b:expr, $e:expr, $g:expr, $f:expr) => {{
        let (dst, lo) = split_dst($vals, $c, $d);
        let (xs, ys, zs, ws) = (
            row(lo, $c, $a),
            row(lo, $c, $b),
            row(lo, $c, $e),
            row(lo, $c, $g),
        );
        for ((((d, &x), &y), &z), &w) in dst.iter_mut().zip(xs).zip(ys).zip(zs).zip(ws) {
            *d = $f(
                f32::from_bits(x),
                f32::from_bits(y),
                f32::from_bits(z),
                f32::from_bits(w),
            )
            .to_bits();
        }
    }};
}

/// Executes one tape instruction across all `C` (or `c`) lanes.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn step<const C: usize>(
    ins: &Instr,
    iter: usize,
    out_base: usize,
    c: usize,
    sp_words: usize,
    vals: &mut [u32],
    recur: &[u32],
    params: &[u32],
    in_bits: &[Vec<u32>],
    in_planes: &[Vec<u32>],
    plain: &mut [&mut [u32]],
    cond: &mut [Vec<u32>],
    sp: &mut Scratchpad,
    cond_cursor: &mut [usize],
) -> Result<(), IrError> {
    let c = lanes::<C>(c);
    match *ins {
        Instr::ConstBits { dst, bits } => fill(vals, c, dst, bits),
        Instr::Param { dst, idx } => fill(vals, c, dst, params[idx as usize]),
        Instr::IterIndex { dst } => fill(vals, c, dst, iter as i32 as u32),
        Instr::ClusterId { dst } => {
            let d = dst as usize * c;
            for (lane, v) in vals[d..d + c].iter_mut().enumerate() {
                *v = lane as i32 as u32;
            }
        }
        Instr::ClusterCount { dst } => fill(vals, c, dst, c as i32 as u32),
        Instr::LoadRecur { dst, slot } => {
            let d = dst as usize * c;
            let s = slot as usize * c;
            vals[d..d + c].copy_from_slice(&recur[s..s + c]);
        }
        Instr::Read {
            dst,
            stream,
            width,
            offset,
        } => {
            let s = &in_bits[stream as usize];
            let w = width as usize;
            let first = (iter * c) * w + offset as usize;
            // Lane indices increase with the cluster id; checking the last
            // lane hoists the per-lane bounds check.
            if first + (c - 1) * w >= s.len() {
                return Err(IrError::StreamExhausted {
                    stream: StreamId(stream),
                    iteration: iter,
                });
            }
            let d = dst as usize * c;
            gather(&mut vals[d..d + c], s, first, w);
        }
        Instr::Write {
            src,
            stream,
            width,
            offset,
        } => {
            let out = &mut *plain[stream as usize];
            let w = width as usize;
            let first = ((iter - out_base) * c) * w + offset as usize;
            let s = src as usize * c;
            scatter(out, first, w, &vals[s..s + c]);
        }
        Instr::CondRead { dst, pred, stream } => {
            let s = &in_bits[stream as usize];
            let cur = &mut cond_cursor[stream as usize];
            let (dstl, preds) = split2(vals, c, dst, pred);
            for (d, &p) in dstl.iter_mut().zip(preds) {
                *d = if p != 0 {
                    match s.get(*cur) {
                        Some(&w) => {
                            *cur += 1;
                            w
                        }
                        None => {
                            return Err(IrError::StreamExhausted {
                                stream: StreamId(stream),
                                iteration: iter,
                            })
                        }
                    }
                } else {
                    0
                };
            }
        }
        Instr::CondWrite { pred, src, stream } => {
            let out = &mut cond[stream as usize];
            let p = pred as usize * c;
            let s = src as usize * c;
            for lane in 0..c {
                if vals[p + lane] != 0 {
                    out.push(vals[s + lane]);
                }
            }
        }
        Instr::SpRead { dst, addr, ty } => {
            let (dstl, addrs) = split2(vals, c, dst, addr);
            for (lane, (d, &ab)) in dstl.iter_mut().zip(addrs).enumerate() {
                let a = ab as i32;
                if a < 0 || a as usize >= sp_words {
                    return Err(IrError::SpOutOfBounds {
                        at: ValueId(dst),
                        addr: a,
                        capacity: sp_words,
                    });
                }
                match sp.read(a as usize * c + lane, ty) {
                    Ok(bits) => *d = bits,
                    Err(found) => {
                        return Err(IrError::TypeMismatch {
                            at: ValueId(dst),
                            expected: ty,
                            found,
                        })
                    }
                }
            }
        }
        Instr::SpWrite { at, addr, src, ty } => {
            let a0 = addr as usize * c;
            let s0 = src as usize * c;
            for lane in 0..c {
                let a = vals[a0 + lane] as i32;
                if a < 0 || a as usize >= sp_words {
                    return Err(IrError::SpOutOfBounds {
                        at: ValueId(at),
                        addr: a,
                        capacity: sp_words,
                    });
                }
                sp.write(a as usize * c + lane, vals[s0 + lane], ty);
            }
        }
        Instr::Comm { dst, data, src } => {
            let (dstl, datas, srcs) = split3(vals, c, dst, data, src);
            for (d, &sb) in dstl.iter_mut().zip(srcs) {
                let si = sb as i32;
                if si < 0 || si as usize >= c {
                    return Err(IrError::BadCommSource {
                        at: ValueId(dst),
                        src: si,
                        clusters: c,
                    });
                }
                *d = datas[si as usize];
            }
        }
        Instr::AddI { dst, a, b } => bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x.wrapping_add(y)),
        Instr::AddF { dst, a, b } => bin_f!(vals, c, dst, a, b, |x: f32, y: f32| x + y),
        Instr::SubI { dst, a, b } => bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x.wrapping_sub(y)),
        Instr::SubF { dst, a, b } => bin_f!(vals, c, dst, a, b, |x: f32, y: f32| x - y),
        Instr::MulI { dst, a, b } => bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x.wrapping_mul(y)),
        Instr::MulF { dst, a, b } => bin_f!(vals, c, dst, a, b, |x: f32, y: f32| x * y),
        Instr::DivI { dst, a, b } => {
            let (dstl, xs, ys) = split3(vals, c, dst, a, b);
            for ((d, &x), &y) in dstl.iter_mut().zip(xs).zip(ys) {
                let y = y as i32;
                if y == 0 {
                    return Err(IrError::DivideByZero(ValueId(dst)));
                }
                *d = (x as i32).wrapping_div(y) as u32;
            }
        }
        Instr::DivF { dst, a, b } => bin_f!(vals, c, dst, a, b, |x: f32, y: f32| x / y),
        Instr::Sqrt { dst, a } => un_f!(vals, c, dst, a, |x: f32| x.sqrt()),
        Instr::MinI { dst, a, b } => bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x.min(y)),
        Instr::MinF { dst, a, b } => bin_f!(vals, c, dst, a, b, |x: f32, y: f32| x.min(y)),
        Instr::MaxI { dst, a, b } => bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x.max(y)),
        Instr::MaxF { dst, a, b } => bin_f!(vals, c, dst, a, b, |x: f32, y: f32| x.max(y)),
        Instr::NegI { dst, a } => un_i!(vals, c, dst, a, |x: i32| x.wrapping_neg()),
        Instr::NegF { dst, a } => un_f!(vals, c, dst, a, |x: f32| -x),
        Instr::AbsI { dst, a } => un_i!(vals, c, dst, a, |x: i32| x.wrapping_abs()),
        Instr::AbsF { dst, a } => un_f!(vals, c, dst, a, |x: f32| x.abs()),
        Instr::Floor { dst, a } => un_f!(vals, c, dst, a, |x: f32| x.floor()),
        Instr::And { dst, a, b } => bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x & y),
        Instr::Or { dst, a, b } => bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x | y),
        Instr::Xor { dst, a, b } => bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x ^ y),
        Instr::Shl { dst, a, b } => {
            bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x
                .wrapping_shl(y as u32))
        }
        Instr::Shr { dst, a, b } => {
            bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x
                .wrapping_shr(y as u32))
        }
        Instr::EqI { dst, a, b } => cmp_i!(vals, c, dst, a, b, |x: i32, y: i32| x == y),
        Instr::EqF { dst, a, b } => cmp_f!(vals, c, dst, a, b, |x: f32, y: f32| x == y),
        Instr::NeI { dst, a, b } => cmp_i!(vals, c, dst, a, b, |x: i32, y: i32| x != y),
        Instr::NeF { dst, a, b } => cmp_f!(vals, c, dst, a, b, |x: f32, y: f32| x != y),
        Instr::LtI { dst, a, b } => cmp_i!(vals, c, dst, a, b, |x: i32, y: i32| x < y),
        Instr::LtF { dst, a, b } => cmp_f!(vals, c, dst, a, b, |x: f32, y: f32| x < y),
        Instr::LeI { dst, a, b } => cmp_i!(vals, c, dst, a, b, |x: i32, y: i32| x <= y),
        Instr::LeF { dst, a, b } => cmp_f!(vals, c, dst, a, b, |x: f32, y: f32| x <= y),
        Instr::Select { dst, cond, a, b } => {
            let (lo, hi) = vals.split_at_mut(dst as usize * c);
            let conds = &lo[cond as usize * c..cond as usize * c + c];
            let xs = &lo[a as usize * c..a as usize * c + c];
            let ys = &lo[b as usize * c..b as usize * c + c];
            for (((d, &cv), &x), &y) in hi[..c].iter_mut().zip(conds).zip(xs).zip(ys) {
                *d = if cv != 0 { x } else { y };
            }
        }
        Instr::ItoF { dst, a } => {
            let (dstl, xs) = split2(vals, c, dst, a);
            for (d, &x) in dstl.iter_mut().zip(xs) {
                *d = ((x as i32) as f32).to_bits();
            }
        }
        Instr::FtoI { dst, a } => {
            let (dstl, xs) = split2(vals, c, dst, a);
            for (d, &x) in dstl.iter_mut().zip(xs) {
                *d = (f32::from_bits(x) as i32) as u32;
            }
        }
        Instr::Fault {
            at,
            expected,
            found,
        } => {
            return Err(IrError::TypeMismatch {
                at: ValueId(at),
                expected,
                found,
            })
        }
        // ---- fused superinstructions ----
        Instr::MulAddF { dst, a, b, c: e } => {
            tri_f!(vals, c, dst, a, b, e, |x: f32, y: f32, z: f32| x * y + z)
        }
        Instr::AddMulF { dst, c: e, a, b } => {
            tri_f!(vals, c, dst, a, b, e, |x: f32, y: f32, z: f32| z + x * y)
        }
        Instr::MulSubF { dst, a, b, c: e } => {
            tri_f!(vals, c, dst, a, b, e, |x: f32, y: f32, z: f32| x * y - z)
        }
        Instr::SubMulF { dst, c: e, a, b } => {
            tri_f!(vals, c, dst, a, b, e, |x: f32, y: f32, z: f32| z - x * y)
        }
        Instr::MulMulAddF { dst, a, b, c: e, d } => {
            quad_f!(
                vals,
                c,
                dst,
                a,
                b,
                e,
                d,
                |x: f32, y: f32, z: f32, w: f32| { x * y + z * w }
            )
        }
        Instr::MulMulSubF { dst, a, b, c: e, d } => {
            quad_f!(
                vals,
                c,
                dst,
                a,
                b,
                e,
                d,
                |x: f32, y: f32, z: f32, w: f32| { x * y - z * w }
            )
        }
        Instr::MulAddI { dst, a, b, c: e } => {
            tri_i!(vals, c, dst, a, b, e, |x: i32, y: i32, z: i32| x
                .wrapping_mul(y)
                .wrapping_add(z))
        }
        Instr::MulSubI { dst, a, b, c: e } => {
            tri_i!(vals, c, dst, a, b, e, |x: i32, y: i32, z: i32| x
                .wrapping_mul(y)
                .wrapping_sub(z))
        }
        Instr::SubMulI { dst, c: e, a, b } => {
            tri_i!(vals, c, dst, a, b, e, |x: i32, y: i32, z: i32| z
                .wrapping_sub(x.wrapping_mul(y)))
        }
        Instr::BinKR { op, dst, a, k } => {
            let (dstl, xs) = split2(vals, c, dst, a);
            macro_rules! go {
                ($f:expr) => {{
                    let f = $f;
                    for (d, &x) in dstl.iter_mut().zip(xs) {
                        *d = f(x, k);
                    }
                }};
            }
            for_binop!(op, go);
        }
        Instr::BinKL { op, dst, k, b } => {
            let (dstl, ys) = split2(vals, c, dst, b);
            macro_rules! go {
                ($f:expr) => {{
                    let f = $f;
                    for (d, &y) in dstl.iter_mut().zip(ys) {
                        *d = f(k, y);
                    }
                }};
            }
            for_binop!(op, go);
        }
        Instr::BinW {
            op,
            a,
            b,
            stream,
            width,
            offset,
        } => {
            let out = &mut *plain[stream as usize];
            let w = width as usize;
            let first = ((iter - out_base) * c) * w + offset as usize;
            let xs = &vals[a as usize * c..a as usize * c + c];
            let ys = &vals[b as usize * c..b as usize * c + c];
            macro_rules! go {
                ($f:expr) => {{
                    let f = $f;
                    for (lane, (&x, &y)) in xs.iter().zip(ys).enumerate() {
                        out[first + lane * w] = f(x, y);
                    }
                }};
            }
            for_binop!(op, go);
        }
        Instr::BinRL {
            op,
            dst,
            b,
            stream,
            width,
            offset,
        } => {
            let s = &in_bits[stream as usize];
            let w = width as usize;
            let first = (iter * c) * w + offset as usize;
            // The read's original bounds check, moved to the fused site.
            if first + (c - 1) * w >= s.len() {
                return Err(IrError::StreamExhausted {
                    stream: StreamId(stream),
                    iteration: iter,
                });
            }
            let (dstl, ys) = split2(vals, c, dst, b);
            macro_rules! go {
                ($f:expr) => {{
                    let f = $f;
                    for (lane, (d, &y)) in dstl.iter_mut().zip(ys).enumerate() {
                        *d = f(s[first + lane * w], y);
                    }
                }};
            }
            for_binop!(op, go);
        }
        Instr::BinRR {
            op,
            dst,
            a,
            stream,
            width,
            offset,
        } => {
            let s = &in_bits[stream as usize];
            let w = width as usize;
            let first = (iter * c) * w + offset as usize;
            if first + (c - 1) * w >= s.len() {
                return Err(IrError::StreamExhausted {
                    stream: StreamId(stream),
                    iteration: iter,
                });
            }
            let (dstl, xs) = split2(vals, c, dst, a);
            macro_rules! go {
                ($f:expr) => {{
                    let f = $f;
                    for (lane, (d, &x)) in dstl.iter_mut().zip(xs).enumerate() {
                        *d = f(x, s[first + lane * w]);
                    }
                }};
            }
            for_binop!(op, go);
        }
        // ---- pair-fused superinstructions ----
        Instr::Read2 {
            da,
            sa,
            wa,
            oa,
            db,
            sb,
            wb,
            ob,
        } => {
            let s_a = &in_bits[sa as usize];
            let w_a = wa as usize;
            let first_a = (iter * c) * w_a + oa as usize;
            if first_a + (c - 1) * w_a >= s_a.len() {
                return Err(IrError::StreamExhausted {
                    stream: StreamId(sa),
                    iteration: iter,
                });
            }
            let s_b = &in_bits[sb as usize];
            let w_b = wb as usize;
            let first_b = (iter * c) * w_b + ob as usize;
            if first_b + (c - 1) * w_b >= s_b.len() {
                return Err(IrError::StreamExhausted {
                    stream: StreamId(sb),
                    iteration: iter,
                });
            }
            let (rda, rdb, _) = split_dst2(vals, c, da, db);
            gather(rda, s_a, first_a, w_a);
            gather(rdb, s_b, first_b, w_b);
        }
        Instr::CMulF {
            re_dst,
            im_dst,
            a,
            b,
            c: e,
            d,
        } => {
            let (res, ims, lo) = split_dst2(vals, c, re_dst, im_dst);
            let (xs, ys, zs, ws) = (row(lo, c, a), row(lo, c, b), row(lo, c, e), row(lo, c, d));
            let ops = xs.iter().zip(ys).zip(zs.iter().zip(ws));
            for ((re, im), ((&xb, &yb), (&zb, &wb))) in res.iter_mut().zip(ims.iter_mut()).zip(ops)
            {
                let (x, y) = (f32::from_bits(xb), f32::from_bits(yb));
                let (z, w) = (f32::from_bits(zb), f32::from_bits(wb));
                *re = (x * y - z * w).to_bits();
                *im = (x * w + z * y).to_bits();
            }
        }
        Instr::BflyF {
            add_dst,
            sub_dst,
            a,
            b,
        } => {
            let (adds, subs, lo) = split_dst2(vals, c, add_dst, sub_dst);
            let (xs, ys) = (row(lo, c, a), row(lo, c, b));
            for ((ad, sd), (&xb, &yb)) in
                adds.iter_mut().zip(subs.iter_mut()).zip(xs.iter().zip(ys))
            {
                let (x, y) = (f32::from_bits(xb), f32::from_bits(yb));
                *ad = (x + y).to_bits();
                *sd = (x - y).to_bits();
            }
        }
        Instr::BflyWF {
            a,
            b,
            add_stream,
            add_width,
            add_offset,
            sub_stream,
            sub_width,
            sub_offset,
        } => {
            let xs = &vals[a as usize * c..a as usize * c + c];
            let ys = &vals[b as usize * c..b as usize * c + c];
            let aw = add_width as usize;
            let first_add = ((iter - out_base) * c) * aw + add_offset as usize;
            let out = &mut *plain[add_stream as usize];
            scatter_f(out, first_add, aw, xs, ys, |x, y| x + y);
            let sw = sub_width as usize;
            let first_sub = ((iter - out_base) * c) * sw + sub_offset as usize;
            let out = &mut *plain[sub_stream as usize];
            scatter_f(out, first_sub, sw, xs, ys, |x, y| x - y);
        }
        // ---- planar stream access ----
        Instr::PRead { dst, stream, plane } => {
            let p = &in_planes[plane as usize];
            let first = iter * c;
            if first + c > p.len() {
                return Err(IrError::StreamExhausted {
                    stream: StreamId(stream),
                    iteration: iter,
                });
            }
            let d = dst as usize * c;
            vals[d..d + c].copy_from_slice(&p[first..first + c]);
        }
        Instr::PRead2 {
            da,
            sa,
            pa,
            db,
            sb,
            pb,
        } => {
            let first = iter * c;
            let p_a = &in_planes[pa as usize];
            if first + c > p_a.len() {
                return Err(IrError::StreamExhausted {
                    stream: StreamId(sa),
                    iteration: iter,
                });
            }
            let p_b = &in_planes[pb as usize];
            if first + c > p_b.len() {
                return Err(IrError::StreamExhausted {
                    stream: StreamId(sb),
                    iteration: iter,
                });
            }
            let d = da as usize * c;
            vals[d..d + c].copy_from_slice(&p_a[first..first + c]);
            let d = db as usize * c;
            vals[d..d + c].copy_from_slice(&p_b[first..first + c]);
        }
        Instr::PWrite { src, plane } => {
            let first = (iter - out_base) * c;
            let s = src as usize * c;
            plain[plane as usize][first..first + c].copy_from_slice(&vals[s..s + c]);
        }
        Instr::PBinW { op, a, b, plane } => {
            let first = (iter - out_base) * c;
            let out = &mut plain[plane as usize][first..first + c];
            let xs = &vals[a as usize * c..a as usize * c + c];
            let ys = &vals[b as usize * c..b as usize * c + c];
            macro_rules! go {
                ($f:expr) => {{
                    let f = $f;
                    for (o, (&x, &y)) in out.iter_mut().zip(xs.iter().zip(ys)) {
                        *o = f(x, y);
                    }
                }};
            }
            for_binop!(op, go);
        }
        Instr::PBflyWF {
            a,
            b,
            add_plane,
            sub_plane,
        } => {
            let first = (iter - out_base) * c;
            let xs = &vals[a as usize * c..a as usize * c + c];
            let ys = &vals[b as usize * c..b as usize * c + c];
            let out = &mut plain[add_plane as usize][first..first + c];
            for (o, (&x, &y)) in out.iter_mut().zip(xs.iter().zip(ys)) {
                *o = (f32::from_bits(x) + f32::from_bits(y)).to_bits();
            }
            let out = &mut plain[sub_plane as usize][first..first + c];
            for (o, (&x, &y)) in out.iter_mut().zip(xs.iter().zip(ys)) {
                *o = (f32::from_bits(x) - f32::from_bits(y)).to_bits();
            }
        }
    }
    Ok(())
}
