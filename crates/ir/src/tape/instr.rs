//! The tape instruction set: dense, `Copy`, operands pre-resolved to value
//! slots, opcodes specialized by static type at lowering time.
//!
//! Besides the one-op instructions the lowering emits directly, the set
//! includes *fused superinstructions* that the peephole pass
//! ([`super::fuse`]) substitutes for hot two/three-instruction chains:
//! multiply-accumulate shapes (`MulAddF` and friends — computed with two
//! roundings, never contracted to a hardware FMA, so results stay bit-exact
//! against the legacy interpreter), constant-operand binaries (`BinKR` /
//! `BinKL`), op-into-write (`BinW`), and read-into-op (`BinRL` / `BinRR`).

use crate::{Scalar, Ty};

/// One loop-carried recurrence, pre-resolved at compile time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RecurSlot {
    /// First-iteration value, as raw bits.
    pub(crate) init_bits: u32,
    /// Value whose lanes feed the next iteration.
    pub(crate) next: u32,
}

/// Binary opcode carried by the generic fused forms (`BinKR`, `BinW`, …).
/// Only infallible binaries appear here: integer division keeps its
/// dedicated fallible instruction and is never fused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum BinOp {
    AddI,
    AddF,
    SubI,
    SubF,
    MulI,
    MulF,
    DivF,
    MinI,
    MinF,
    MaxI,
    MaxF,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    EqI,
    EqF,
    NeI,
    NeF,
    LtI,
    LtF,
    LeI,
    LeF,
}

/// Expands `$go!(closure)` with the bits-level scalar function for `$op`.
/// Every closure is `u32 -> u32 -> u32` on raw lane bits, with the same
/// conversions the dedicated instructions use, so fused forms compute
/// bit-identical results.
macro_rules! for_binop {
    ($op:expr, $go:ident) => {
        match $op {
            BinOp::AddI => $go!(|x, y| (x as i32).wrapping_add(y as i32) as u32),
            BinOp::AddF => $go!(|x, y| (f32::from_bits(x) + f32::from_bits(y)).to_bits()),
            BinOp::SubI => $go!(|x, y| (x as i32).wrapping_sub(y as i32) as u32),
            BinOp::SubF => $go!(|x, y| (f32::from_bits(x) - f32::from_bits(y)).to_bits()),
            BinOp::MulI => $go!(|x, y| (x as i32).wrapping_mul(y as i32) as u32),
            BinOp::MulF => $go!(|x, y| (f32::from_bits(x) * f32::from_bits(y)).to_bits()),
            BinOp::DivF => $go!(|x, y| (f32::from_bits(x) / f32::from_bits(y)).to_bits()),
            BinOp::MinI => $go!(|x, y| (x as i32).min(y as i32) as u32),
            BinOp::MinF => $go!(|x, y| f32::from_bits(x).min(f32::from_bits(y)).to_bits()),
            BinOp::MaxI => $go!(|x, y| (x as i32).max(y as i32) as u32),
            BinOp::MaxF => $go!(|x, y| f32::from_bits(x).max(f32::from_bits(y)).to_bits()),
            BinOp::And => $go!(|x, y| ((x as i32) & (y as i32)) as u32),
            BinOp::Or => $go!(|x, y| ((x as i32) | (y as i32)) as u32),
            BinOp::Xor => $go!(|x, y| ((x as i32) ^ (y as i32)) as u32),
            BinOp::Shl => $go!(|x, y| (x as i32).wrapping_shl(y) as u32),
            BinOp::Shr => $go!(|x, y| (x as i32).wrapping_shr(y) as u32),
            BinOp::EqI => $go!(|x, y| u32::from((x as i32) == (y as i32))),
            BinOp::EqF => $go!(|x, y| u32::from(f32::from_bits(x) == f32::from_bits(y))),
            BinOp::NeI => $go!(|x, y| u32::from((x as i32) != (y as i32))),
            BinOp::NeF => $go!(|x, y| u32::from(f32::from_bits(x) != f32::from_bits(y))),
            BinOp::LtI => $go!(|x, y| u32::from((x as i32) < (y as i32))),
            BinOp::LtF => $go!(|x, y| u32::from(f32::from_bits(x) < f32::from_bits(y))),
            BinOp::LeI => $go!(|x, y| u32::from((x as i32) <= (y as i32))),
            BinOp::LeF => $go!(|x, y| u32::from(f32::from_bits(x) <= f32::from_bits(y))),
        }
    };
}
pub(crate) use for_binop;

/// A tape instruction: operand `ValueId`s resolved to dense value slots,
/// opcodes specialized by the kernel's static types, stream accesses
/// carrying their record width and word offset inline.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Instr {
    ConstBits {
        dst: u32,
        bits: u32,
    },
    Param {
        dst: u32,
        idx: u32,
    },
    IterIndex {
        dst: u32,
    },
    ClusterId {
        dst: u32,
    },
    ClusterCount {
        dst: u32,
    },
    LoadRecur {
        dst: u32,
        slot: u32,
    },
    Read {
        dst: u32,
        stream: u32,
        width: u32,
        offset: u32,
    },
    Write {
        src: u32,
        stream: u32,
        width: u32,
        offset: u32,
    },
    CondRead {
        dst: u32,
        pred: u32,
        stream: u32,
    },
    CondWrite {
        pred: u32,
        src: u32,
        stream: u32,
    },
    SpRead {
        dst: u32,
        addr: u32,
        ty: Ty,
    },
    SpWrite {
        at: u32,
        addr: u32,
        src: u32,
        ty: Ty,
    },
    Comm {
        dst: u32,
        data: u32,
        src: u32,
    },
    AddI {
        dst: u32,
        a: u32,
        b: u32,
    },
    AddF {
        dst: u32,
        a: u32,
        b: u32,
    },
    SubI {
        dst: u32,
        a: u32,
        b: u32,
    },
    SubF {
        dst: u32,
        a: u32,
        b: u32,
    },
    MulI {
        dst: u32,
        a: u32,
        b: u32,
    },
    MulF {
        dst: u32,
        a: u32,
        b: u32,
    },
    DivI {
        dst: u32,
        a: u32,
        b: u32,
    },
    DivF {
        dst: u32,
        a: u32,
        b: u32,
    },
    Sqrt {
        dst: u32,
        a: u32,
    },
    MinI {
        dst: u32,
        a: u32,
        b: u32,
    },
    MinF {
        dst: u32,
        a: u32,
        b: u32,
    },
    MaxI {
        dst: u32,
        a: u32,
        b: u32,
    },
    MaxF {
        dst: u32,
        a: u32,
        b: u32,
    },
    NegI {
        dst: u32,
        a: u32,
    },
    NegF {
        dst: u32,
        a: u32,
    },
    AbsI {
        dst: u32,
        a: u32,
    },
    AbsF {
        dst: u32,
        a: u32,
    },
    Floor {
        dst: u32,
        a: u32,
    },
    And {
        dst: u32,
        a: u32,
        b: u32,
    },
    Or {
        dst: u32,
        a: u32,
        b: u32,
    },
    Xor {
        dst: u32,
        a: u32,
        b: u32,
    },
    Shl {
        dst: u32,
        a: u32,
        b: u32,
    },
    Shr {
        dst: u32,
        a: u32,
        b: u32,
    },
    EqI {
        dst: u32,
        a: u32,
        b: u32,
    },
    EqF {
        dst: u32,
        a: u32,
        b: u32,
    },
    NeI {
        dst: u32,
        a: u32,
        b: u32,
    },
    NeF {
        dst: u32,
        a: u32,
        b: u32,
    },
    LtI {
        dst: u32,
        a: u32,
        b: u32,
    },
    LtF {
        dst: u32,
        a: u32,
        b: u32,
    },
    LeI {
        dst: u32,
        a: u32,
        b: u32,
    },
    LeF {
        dst: u32,
        a: u32,
        b: u32,
    },
    Select {
        dst: u32,
        cond: u32,
        a: u32,
        b: u32,
    },
    ItoF {
        dst: u32,
        a: u32,
    },
    FtoI {
        dst: u32,
        a: u32,
    },
    /// A lowering-time type inconsistency (impossible for builder-validated
    /// kernels), deferred to runtime so zero-iteration runs still succeed —
    /// exactly as the legacy interpreter behaves.
    Fault {
        at: u32,
        expected: Ty,
        found: Ty,
    },
    // ---- fused superinstructions (emitted by the peephole pass only) ----
    /// `(a * b) + c`, two roundings, mul was the add's left operand.
    MulAddF {
        dst: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    /// `c + (a * b)`, two roundings, mul was the add's right operand.
    AddMulF {
        dst: u32,
        c: u32,
        a: u32,
        b: u32,
    },
    /// `(a * b) - c`, two roundings.
    MulSubF {
        dst: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    /// `c - (a * b)`, two roundings.
    SubMulF {
        dst: u32,
        c: u32,
        a: u32,
        b: u32,
    },
    /// `(a * b) + (c * d)` — the complex-multiply accumulation shape.
    MulMulAddF {
        dst: u32,
        a: u32,
        b: u32,
        c: u32,
        d: u32,
    },
    /// `(a * b) - (c * d)`.
    MulMulSubF {
        dst: u32,
        a: u32,
        b: u32,
        c: u32,
        d: u32,
    },
    /// `(a * b) + c`, wrapping; covers both add operand orders.
    MulAddI {
        dst: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    /// `(a * b) - c`, wrapping.
    MulSubI {
        dst: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    /// `c - (a * b)`, wrapping.
    SubMulI {
        dst: u32,
        c: u32,
        a: u32,
        b: u32,
    },
    /// `a op k` with the constant's bits embedded (constant on the right).
    BinKR {
        op: BinOp,
        dst: u32,
        a: u32,
        k: u32,
    },
    /// `k op b` with the constant's bits embedded (constant on the left).
    BinKL {
        op: BinOp,
        dst: u32,
        k: u32,
        b: u32,
    },
    /// `write(stream, a op b)` — the op's lanes go straight to the output
    /// range, never materialized in the value lattice.
    BinW {
        op: BinOp,
        a: u32,
        b: u32,
        stream: u32,
        width: u32,
        offset: u32,
    },
    /// `read(stream) op b` — stream words feed the op directly.
    BinRL {
        op: BinOp,
        dst: u32,
        b: u32,
        stream: u32,
        width: u32,
        offset: u32,
    },
    /// `a op read(stream)`.
    BinRR {
        op: BinOp,
        dst: u32,
        a: u32,
        stream: u32,
        width: u32,
        offset: u32,
    },
    // ---- pair-fused superinstructions (two defs or two writes each) ----
    /// Two stream reads back to back, bounds-checked in original program
    /// order (`a` first) so a starved run reports exactly the error the
    /// serial tape would. Only built from reads separated by nothing
    /// fallible.
    Read2 {
        da: u32,
        sa: u32,
        wa: u32,
        oa: u32,
        db: u32,
        sb: u32,
        wb: u32,
        ob: u32,
    },
    /// Complex multiply `(a + i·c) * (b + i·d)`: `re = a*b - c*d`,
    /// `im = a*d + c*b`, each with two roundings in the original operand
    /// order, so both halves are bit-exact against the unfused pair.
    CMulF {
        re_dst: u32,
        im_dst: u32,
        a: u32,
        b: u32,
        c: u32,
        d: u32,
    },
    /// Radix-2 butterfly: `add_dst = a + b`, `sub_dst = a - b`. Only built
    /// from an `AddF`/`SubF` pair with identical operand order (float add is
    /// not treated as commutative at the bit level).
    BflyF {
        add_dst: u32,
        sub_dst: u32,
        a: u32,
        b: u32,
    },
    /// Butterfly straight into the output ranges: `a + b` goes to the first
    /// stream slot, `a - b` to the second, nothing lands in the lattice.
    BflyWF {
        a: u32,
        b: u32,
        add_stream: u32,
        add_width: u32,
        add_offset: u32,
        sub_stream: u32,
        sub_width: u32,
        sub_offset: u32,
    },
    // ---- planar stream access (layout rewrite, applied post-fusion) ----
    /// Read `c` contiguous words at `iter * c` from an input plane — the
    /// per-(stream, offset) transposed copy built at call entry for
    /// streams touched only by plain reads. `stream` is kept solely for
    /// error attribution.
    PRead {
        dst: u32,
        stream: u32,
        plane: u32,
    },
    /// Two planar reads, bounds-checked in program order (`a` first) so a
    /// starved run reports exactly the error the serial tape would.
    PRead2 {
        da: u32,
        sa: u32,
        pa: u32,
        db: u32,
        sb: u32,
        pb: u32,
    },
    /// Write `c` contiguous words to an output plane at
    /// `(iter - out_base) * c`. Plain outputs always planarize: they are
    /// only ever written at exact per-iteration offsets.
    PWrite {
        src: u32,
        plane: u32,
    },
    /// `plane[(iter - out_base) * c ..] = a op b`, lane-wise.
    PBinW {
        op: BinOp,
        a: u32,
        b: u32,
        plane: u32,
    },
    /// [`Instr::BflyWF`] with planar destinations: `a + b` into
    /// `add_plane`, `a - b` into `sub_plane`.
    PBflyWF {
        a: u32,
        b: u32,
        add_plane: u32,
        sub_plane: u32,
    },
}

impl Instr {
    /// Whether this instruction can raise a runtime error. Fused read forms
    /// count: they carry a moved bounds check.
    pub(crate) fn fallible(&self) -> bool {
        matches!(
            self,
            Instr::Read { .. }
                | Instr::Read2 { .. }
                | Instr::PRead { .. }
                | Instr::PRead2 { .. }
                | Instr::CondRead { .. }
                | Instr::SpRead { .. }
                | Instr::SpWrite { .. }
                | Instr::Comm { .. }
                | Instr::DivI { .. }
                | Instr::Fault { .. }
                | Instr::BinRL { .. }
                | Instr::BinRR { .. }
        )
    }
}

#[inline(always)]
pub(crate) fn bits_of(s: Scalar) -> u32 {
    match s {
        Scalar::I32(v) => v as u32,
        Scalar::F32(v) => v.to_bits(),
    }
}

#[inline(always)]
pub(crate) fn scalar_of(bits: u32, ty: Ty) -> Scalar {
    match ty {
        Ty::I32 => Scalar::I32(bits as i32),
        Ty::F32 => Scalar::F32(f32::from_bits(bits)),
    }
}

/// Splits the value lattice into the `dst` lane row and the (strictly
/// earlier, by SSA) operand rows.
#[inline(always)]
pub(crate) fn split2(vals: &mut [u32], c: usize, dst: u32, a: u32) -> (&mut [u32], &[u32]) {
    let (lo, hi) = vals.split_at_mut(dst as usize * c);
    (&mut hi[..c], &lo[a as usize * c..a as usize * c + c])
}

#[inline(always)]
#[allow(clippy::type_complexity)]
pub(crate) fn split3(
    vals: &mut [u32],
    c: usize,
    dst: u32,
    a: u32,
    b: u32,
) -> (&mut [u32], &[u32], &[u32]) {
    let (lo, hi) = vals.split_at_mut(dst as usize * c);
    (
        &mut hi[..c],
        &lo[a as usize * c..a as usize * c + c],
        &lo[b as usize * c..b as usize * c + c],
    )
}

/// Splits off the `dst` row, returning it plus the whole earlier region so
/// callers can slice any number of operand rows out of `lo` via [`row`].
#[inline(always)]
pub(crate) fn split_dst(vals: &mut [u32], c: usize, dst: u32) -> (&mut [u32], &[u32]) {
    let (lo, hi) = vals.split_at_mut(dst as usize * c);
    (&mut hi[..c], lo)
}

/// Splits off two distinct `dst` rows (in the caller's role order, either
/// slot order) plus the region strictly before the lower of the two, which
/// by SSA holds every operand row of a pair-fused instruction.
#[inline(always)]
#[allow(clippy::type_complexity)]
pub(crate) fn split_dst2(
    vals: &mut [u32],
    c: usize,
    da: u32,
    db: u32,
) -> (&mut [u32], &mut [u32], &[u32]) {
    let (lo_d, hi_d) = if da < db { (da, db) } else { (db, da) };
    let (lo, hi) = vals.split_at_mut(hi_d as usize * c);
    let hi_row = &mut hi[..c];
    let (early, lo_region) = lo.split_at_mut(lo_d as usize * c);
    let lo_row = &mut lo_region[..c];
    if da < db {
        (lo_row, hi_row, early)
    } else {
        (hi_row, lo_row, early)
    }
}

#[inline(always)]
pub(crate) fn row(lo: &[u32], c: usize, v: u32) -> &[u32] {
    &lo[v as usize * c..v as usize * c + c]
}

#[inline(always)]
pub(crate) fn fill(vals: &mut [u32], c: usize, dst: u32, bits: u32) {
    let d = dst as usize * c;
    vals[d..d + c].fill(bits);
}
