//! The peephole fusion pass: collapses hot two/three-instruction chains of
//! the lowered body into fused superinstructions, once, at compile time.
//!
//! Patterns, in priority order per consumer:
//!
//! 1. **mul→add/sub** (float and int): a multiply whose value feeds exactly
//!    one add/sub of the same type family collapses into a
//!    multiply-accumulate shape. Both-operands-are-muls collapses three
//!    instructions into one (`MulMulAddF` — the complex-multiply shape).
//!    Operand order is preserved exactly, and float forms keep two
//!    roundings, so results stay bit-identical to the unfused tape.
//! 2. **op→write**: a binary whose only consumer is a plain stream write
//!    sends its lanes straight to the output range (`BinW`).
//! 3. **read→op**: a single-use stream read feeding a binary gathers its
//!    lanes inside the op (`BinRL`/`BinRR`). The read's bounds check moves
//!    to the consumer's position, so this only fires when no *fallible*
//!    instruction sits between producer and consumer — otherwise a run that
//!    fails both ways could report the wrong error first.
//! 4. **const-operand**: a binary with a compile-time-constant operand
//!    embeds the constant's bits (`BinKR`/`BinKL`), skipping one row read
//!    per iteration. Nothing is removed (the hoisted constant may have
//!    other uses), so this is always safe.
//!
//! Only *infallible, pure* producers are ever moved (a multiply cannot
//! fault), with the one audited exception of reads under rule 3. Values
//! consumed by recurrences, COMM, conditional streams, or more than one
//! instruction are never removed, so the value lattice keeps its slots —
//! fusion never renumbers.

use super::instr::{BinOp, Instr, RecurSlot};

/// What a body instruction defines, if anything.
pub(crate) fn def_of(ins: &Instr) -> Option<u32> {
    use Instr::*;
    match *ins {
        ConstBits { dst, .. }
        | Param { dst, .. }
        | IterIndex { dst }
        | ClusterId { dst }
        | ClusterCount { dst }
        | LoadRecur { dst, .. }
        | Read { dst, .. }
        | CondRead { dst, .. }
        | SpRead { dst, .. }
        | Comm { dst, .. }
        | AddI { dst, .. }
        | AddF { dst, .. }
        | SubI { dst, .. }
        | SubF { dst, .. }
        | MulI { dst, .. }
        | MulF { dst, .. }
        | DivI { dst, .. }
        | DivF { dst, .. }
        | Sqrt { dst, .. }
        | MinI { dst, .. }
        | MinF { dst, .. }
        | MaxI { dst, .. }
        | MaxF { dst, .. }
        | NegI { dst, .. }
        | NegF { dst, .. }
        | AbsI { dst, .. }
        | AbsF { dst, .. }
        | Floor { dst, .. }
        | And { dst, .. }
        | Or { dst, .. }
        | Xor { dst, .. }
        | Shl { dst, .. }
        | Shr { dst, .. }
        | EqI { dst, .. }
        | EqF { dst, .. }
        | NeI { dst, .. }
        | NeF { dst, .. }
        | LtI { dst, .. }
        | LtF { dst, .. }
        | LeI { dst, .. }
        | LeF { dst, .. }
        | Select { dst, .. }
        | ItoF { dst, .. }
        | FtoI { dst, .. } => Some(dst),
        Write { .. } | CondWrite { .. } | SpWrite { .. } | Fault { .. } => None,
        // Fused forms never exist before the pass runs.
        MulAddF { dst, .. }
        | AddMulF { dst, .. }
        | MulSubF { dst, .. }
        | SubMulF { dst, .. }
        | MulMulAddF { dst, .. }
        | MulMulSubF { dst, .. }
        | MulAddI { dst, .. }
        | MulSubI { dst, .. }
        | SubMulI { dst, .. }
        | BinKR { dst, .. }
        | BinKL { dst, .. }
        | BinRL { dst, .. }
        | BinRR { dst, .. } => Some(dst),
        BinW { .. } => None,
        // Pair-fused forms define two slots; they are only created after
        // the def/use maps are built, so no single answer is ever needed.
        // Planar forms are created even later, by the layout rewrite.
        CMulF { .. } | BflyF { .. } | BflyWF { .. } | Read2 { .. } => None,
        PRead { dst, .. } => Some(dst),
        PRead2 { .. } | PWrite { .. } | PBinW { .. } | PBflyWF { .. } => None,
    }
}

/// Calls `f` for every value slot this instruction reads.
pub(crate) fn for_each_operand(ins: &Instr, mut f: impl FnMut(u32)) {
    use Instr::*;
    match *ins {
        ConstBits { .. }
        | Param { .. }
        | IterIndex { .. }
        | ClusterId { .. }
        | ClusterCount { .. }
        | LoadRecur { .. }
        | Read { .. }
        | Fault { .. } => {}
        Write { src, .. } => f(src),
        CondRead { pred, .. } => f(pred),
        CondWrite { pred, src, .. } => {
            f(pred);
            f(src);
        }
        SpRead { addr, .. } => f(addr),
        SpWrite { addr, src, .. } => {
            f(addr);
            f(src);
        }
        Comm { data, src, .. } => {
            f(data);
            f(src);
        }
        AddI { a, b, .. }
        | AddF { a, b, .. }
        | SubI { a, b, .. }
        | SubF { a, b, .. }
        | MulI { a, b, .. }
        | MulF { a, b, .. }
        | DivI { a, b, .. }
        | DivF { a, b, .. }
        | MinI { a, b, .. }
        | MinF { a, b, .. }
        | MaxI { a, b, .. }
        | MaxF { a, b, .. }
        | And { a, b, .. }
        | Or { a, b, .. }
        | Xor { a, b, .. }
        | Shl { a, b, .. }
        | Shr { a, b, .. }
        | EqI { a, b, .. }
        | EqF { a, b, .. }
        | NeI { a, b, .. }
        | NeF { a, b, .. }
        | LtI { a, b, .. }
        | LtF { a, b, .. }
        | LeI { a, b, .. }
        | LeF { a, b, .. } => {
            f(a);
            f(b);
        }
        Sqrt { a, .. }
        | Floor { a, .. }
        | NegI { a, .. }
        | NegF { a, .. }
        | AbsI { a, .. }
        | AbsF { a, .. }
        | ItoF { a, .. }
        | FtoI { a, .. } => f(a),
        Select { cond, a, b, .. } => {
            f(cond);
            f(a);
            f(b);
        }
        MulAddF { a, b, c, .. }
        | MulSubF { a, b, c, .. }
        | MulAddI { a, b, c, .. }
        | MulSubI { a, b, c, .. } => {
            f(a);
            f(b);
            f(c);
        }
        AddMulF { c, a, b, .. } | SubMulF { c, a, b, .. } | SubMulI { c, a, b, .. } => {
            f(c);
            f(a);
            f(b);
        }
        MulMulAddF { a, b, c, d, .. } | MulMulSubF { a, b, c, d, .. } => {
            f(a);
            f(b);
            f(c);
            f(d);
        }
        BinKR { a, .. } => f(a),
        BinKL { b, .. } => f(b),
        BinW { a, b, .. } => {
            f(a);
            f(b);
        }
        BinRL { b, .. } => f(b),
        BinRR { a, .. } => f(a),
        CMulF { a, b, c, d, .. } => {
            f(a);
            f(b);
            f(c);
            f(d);
        }
        BflyF { a, b, .. } | BflyWF { a, b, .. } => {
            f(a);
            f(b);
        }
        Read2 { .. } | PRead { .. } | PRead2 { .. } => {}
        PWrite { src, .. } => f(src),
        PBinW { a, b, .. } | PBflyWF { a, b, .. } => {
            f(a);
            f(b);
        }
    }
}

// ---------------------------------------------------------------------
// Shared soundness predicates.
//
// The fusion/hoist passes *apply* these rules and the translation
// validator (`super::check`) independently *re-checks* them; both sides
// call the same pure functions, so a drift between "what the optimizer
// does" and "what validation accepts" shows up as a test failure here,
// not as a latent miscompile. None of these mutate anything.

/// Prefix counts of fallible instructions: `out[k]` is the number of
/// fallible instructions among `body[..k]` (so `out.len() == body.len()+1`).
pub(crate) fn fallible_prefix(body: &[Instr]) -> Vec<u32> {
    let mut fal = vec![0u32; body.len() + 1];
    for (i, ins) in body.iter().enumerate() {
        fal[i + 1] = fal[i] + u32::from(ins.fallible());
    }
    fal
}

/// Whether a fallible *read* defined at `def_at` may legally move to its
/// consumer at `use_at` (`def_at < use_at`): the read's bounds check
/// travels with it, so nothing fallible may sit strictly between the two
/// sites — otherwise a run that fails both ways could report the wrong
/// error first. `fal` is the [`fallible_prefix`] of the same body.
pub(crate) fn read_move_legal(fal: &[u32], def_at: usize, use_at: usize) -> bool {
    fal[use_at] - fal[def_at + 1] == 0
}

/// Whether `ins` may sink into the once-per-call prologue: pure,
/// infallible, and not per-iteration state. Hoisting a fallible
/// instruction would surface its error even on zero-iteration runs, which
/// the legacy interpreter never does.
pub(crate) fn hoistable(ins: &Instr) -> bool {
    !ins.fallible() && !matches!(ins, Instr::IterIndex { .. } | Instr::LoadRecur { .. })
}

/// Whether `ins` couples consecutive iterations through shared mutable
/// state (conditional-stream cursors, the scratchpad), making the tape
/// ineligible for strip-parallel execution.
pub(crate) fn strip_coupler(ins: &Instr) -> bool {
    matches!(
        ins,
        Instr::CondRead { .. } | Instr::CondWrite { .. } | Instr::SpWrite { .. }
    )
}

/// Whether `ins` observes the lane topology (cluster index/count, the
/// iteration number, inter-cluster comm, scratchpad addressing) — exactly
/// what macro-batching changes when it widens the lane vector.
pub(crate) fn lane_topology_sensitive(ins: &Instr) -> bool {
    matches!(
        ins,
        Instr::ClusterId { .. }
            | Instr::ClusterCount { .. }
            | Instr::IterIndex { .. }
            | Instr::Comm { .. }
            | Instr::SpRead { .. }
            | Instr::SpWrite { .. }
    )
}

/// Strip eligibility derived from the final instruction stream: no
/// recurrences and no iteration-coupling instructions anywhere in the
/// body.
pub(crate) fn derive_strip_eligible(body: &[Instr], n_recurs: usize) -> bool {
    n_recurs == 0 && !body.iter().any(strip_coupler)
}

/// Batch eligibility derived from the final instruction stream (given
/// strip eligibility from [`derive_strip_eligible`]): additionally, no
/// instruction anywhere may observe the lane topology.
pub(crate) fn derive_batchable(prologue: &[Instr], body: &[Instr], strip_eligible: bool) -> bool {
    strip_eligible
        && !prologue
            .iter()
            .chain(body.iter())
            .any(lane_topology_sensitive)
}

/// Sinks iteration-invariant body instructions into the prologue: any
/// pure, infallible instruction whose operands are all defined by the
/// prologue (constants, params, cluster ids — or an already-sunk
/// instruction) computes the same lanes every iteration, so it runs once
/// per kernel call instead. Fallible instructions stay put — hoisting one
/// would surface its error even on zero-iteration runs, which the legacy
/// interpreter never does.
pub(super) fn hoist_invariants(
    prologue: &mut Vec<Instr>,
    body: &mut Vec<Instr>,
    n_vals: usize,
) -> usize {
    let mut invariant = vec![false; n_vals];
    for ins in prologue.iter() {
        if let Some(d) = def_of(ins) {
            invariant[d as usize] = true;
        }
    }
    let mut moved = 0usize;
    body.retain(|ins| {
        let Some(dst) = def_of(ins) else { return true };
        if !hoistable(ins) {
            return true;
        }
        let mut all_invariant = true;
        for_each_operand(ins, |v| all_invariant &= invariant[v as usize]);
        if !all_invariant {
            return true;
        }
        invariant[dst as usize] = true;
        prologue.push(*ins);
        moved += 1;
        false
    });
    moved
}

/// Maps a plain, infallible binary to its `BinOp` and operands.
fn bin_op_of(ins: &Instr) -> Option<(BinOp, u32, u32)> {
    use Instr::*;
    Some(match *ins {
        AddI { a, b, .. } => (BinOp::AddI, a, b),
        AddF { a, b, .. } => (BinOp::AddF, a, b),
        SubI { a, b, .. } => (BinOp::SubI, a, b),
        SubF { a, b, .. } => (BinOp::SubF, a, b),
        MulI { a, b, .. } => (BinOp::MulI, a, b),
        MulF { a, b, .. } => (BinOp::MulF, a, b),
        DivF { a, b, .. } => (BinOp::DivF, a, b),
        MinI { a, b, .. } => (BinOp::MinI, a, b),
        MinF { a, b, .. } => (BinOp::MinF, a, b),
        MaxI { a, b, .. } => (BinOp::MaxI, a, b),
        MaxF { a, b, .. } => (BinOp::MaxF, a, b),
        And { a, b, .. } => (BinOp::And, a, b),
        Or { a, b, .. } => (BinOp::Or, a, b),
        Xor { a, b, .. } => (BinOp::Xor, a, b),
        Shl { a, b, .. } => (BinOp::Shl, a, b),
        Shr { a, b, .. } => (BinOp::Shr, a, b),
        EqI { a, b, .. } => (BinOp::EqI, a, b),
        EqF { a, b, .. } => (BinOp::EqF, a, b),
        NeI { a, b, .. } => (BinOp::NeI, a, b),
        NeF { a, b, .. } => (BinOp::NeF, a, b),
        LtI { a, b, .. } => (BinOp::LtI, a, b),
        LtF { a, b, .. } => (BinOp::LtF, a, b),
        LeI { a, b, .. } => (BinOp::LeI, a, b),
        LeF { a, b, .. } => (BinOp::LeF, a, b),
        _ => return None,
    })
}

/// Runs the peephole pass over `body` in place. `const_bits` maps value
/// slots to compile-time-known constant bits (hoisted `Const` ops);
/// `recurs` pins values feeding recurrences. Returns the number of fusion
/// rewrites applied (the `tape.fused_ops` counter).
pub(super) fn fuse(
    body: &mut Vec<Instr>,
    n_vals: usize,
    recurs: &[RecurSlot],
    const_bits: &[Option<u32>],
) -> usize {
    let n = body.len();
    // Per-value bookkeeping over the ORIGINAL body: definition site, use
    // count (recurrence feeds included), and the single body consumer.
    let mut def: Vec<Option<usize>> = vec![None; n_vals];
    let mut uses: Vec<u32> = vec![0; n_vals];
    let mut last_use: Vec<Option<usize>> = vec![None; n_vals];
    for (i, ins) in body.iter().enumerate() {
        if let Some(d) = def_of(ins) {
            def[d as usize] = Some(i);
        }
        for_each_operand(ins, |v| {
            uses[v as usize] += 1;
            last_use[v as usize] = Some(i);
        });
    }
    for r in recurs {
        uses[r.next as usize] += 1;
    }
    // Prefix count of fallible instructions, for the read-move legality
    // check: `fal[k]` = fallible instructions among body[0..k].
    let fal = fallible_prefix(body);

    let mut cur: Vec<Option<Instr>> = body.iter().copied().map(Some).collect();
    let mut fused = 0usize;

    // A single-use producer at `i` matching `pat`, still unrewritten.
    macro_rules! producer {
        ($v:expr, $pat:pat => $out:expr) => {
            match def[$v as usize] {
                Some(i) if uses[$v as usize] == 1 => match cur[i] {
                    Some($pat) => Some((i, $out)),
                    _ => None,
                },
                _ => None,
            }
        };
    }

    for j in 0..n {
        let Some(ins) = cur[j] else { continue };
        // Generic fallbacks shared by every plain binary: read-operand
        // fusion (legal only with no fallible instruction between the
        // read's old and new positions), then const-operand embedding.
        // An op whose only consumer is a plain write is left alone — the
        // stronger op-into-write fusion claims it when the write is
        // visited, and rewriting it here would hide it from `bin_op_of`.
        macro_rules! try_read_const {
            ($op:expr, $dst:expr, $a:expr, $b:expr) => {{
                let (op, dst, a, b) = ($op, $dst, $a, $b);
                let feeds_write = uses[dst as usize] == 1
                    && last_use[dst as usize]
                        .is_some_and(|u| matches!(body[u], Instr::Write { .. }));
                let ra = (producer!(a, Instr::Read { stream, width, offset, .. } => (stream, width, offset)))
                    .filter(|&(i, _)| read_move_legal(&fal, i, j));
                let rb = (producer!(b, Instr::Read { stream, width, offset, .. } => (stream, width, offset)))
                    .filter(|&(i, _)| read_move_legal(&fal, i, j));
                if feeds_write {
                    // claimed by BinW later
                } else if let Some((i, (stream, width, offset))) = ra {
                    cur[i] = None;
                    cur[j] = Some(Instr::BinRL {
                        op,
                        dst,
                        b,
                        stream,
                        width,
                        offset,
                    });
                    fused += 1;
                } else if let Some((i, (stream, width, offset))) = rb {
                    cur[i] = None;
                    cur[j] = Some(Instr::BinRR {
                        op,
                        dst,
                        a,
                        stream,
                        width,
                        offset,
                    });
                    fused += 1;
                } else if let Some(k) = const_bits[a as usize] {
                    cur[j] = Some(Instr::BinKL { op, dst, k, b });
                    fused += 1;
                } else if let Some(k) = const_bits[b as usize] {
                    cur[j] = Some(Instr::BinKR { op, dst, a, k });
                    fused += 1;
                }
            }};
        }
        // A multiply that will be claimed by its unique float/int add or
        // sub consumer must stay plain until that consumer is visited.
        macro_rules! feeds_accumulate {
            ($dst:expr, $($acc:ident)|+) => {
                uses[$dst as usize] == 1
                    && last_use[$dst as usize]
                        .is_some_and(|u| matches!(body[u], $(Instr::$acc { .. })|+))
            };
        }

        match ins {
            Instr::AddF { dst, a, b } => {
                let ma = producer!(a, Instr::MulF { a, b, .. } => (a, b));
                let mb = producer!(b, Instr::MulF { a, b, .. } => (a, b));
                match (ma, mb) {
                    (Some((ia, (aa, ab))), Some((ib, (ba, bb)))) => {
                        cur[ia] = None;
                        cur[ib] = None;
                        cur[j] = Some(Instr::MulMulAddF {
                            dst,
                            a: aa,
                            b: ab,
                            c: ba,
                            d: bb,
                        });
                        fused += 2;
                    }
                    (Some((ia, (aa, ab))), None) => {
                        cur[ia] = None;
                        cur[j] = Some(Instr::MulAddF {
                            dst,
                            a: aa,
                            b: ab,
                            c: b,
                        });
                        fused += 1;
                    }
                    (None, Some((ib, (ba, bb)))) => {
                        cur[ib] = None;
                        cur[j] = Some(Instr::AddMulF {
                            dst,
                            c: a,
                            a: ba,
                            b: bb,
                        });
                        fused += 1;
                    }
                    (None, None) => try_read_const!(BinOp::AddF, dst, a, b),
                }
            }
            Instr::SubF { dst, a, b } => {
                let ma = producer!(a, Instr::MulF { a, b, .. } => (a, b));
                let mb = producer!(b, Instr::MulF { a, b, .. } => (a, b));
                match (ma, mb) {
                    (Some((ia, (aa, ab))), Some((ib, (ba, bb)))) => {
                        cur[ia] = None;
                        cur[ib] = None;
                        cur[j] = Some(Instr::MulMulSubF {
                            dst,
                            a: aa,
                            b: ab,
                            c: ba,
                            d: bb,
                        });
                        fused += 2;
                    }
                    (Some((ia, (aa, ab))), None) => {
                        cur[ia] = None;
                        cur[j] = Some(Instr::MulSubF {
                            dst,
                            a: aa,
                            b: ab,
                            c: b,
                        });
                        fused += 1;
                    }
                    (None, Some((ib, (ba, bb)))) => {
                        cur[ib] = None;
                        cur[j] = Some(Instr::SubMulF {
                            dst,
                            c: a,
                            a: ba,
                            b: bb,
                        });
                        fused += 1;
                    }
                    (None, None) => try_read_const!(BinOp::SubF, dst, a, b),
                }
            }
            Instr::AddI { dst, a, b } => {
                // Wrapping add commutes, so one shape covers both orders.
                if let Some((ia, (aa, ab))) = producer!(a, Instr::MulI { a, b, .. } => (a, b)) {
                    cur[ia] = None;
                    cur[j] = Some(Instr::MulAddI {
                        dst,
                        a: aa,
                        b: ab,
                        c: b,
                    });
                    fused += 1;
                } else if let Some((ib, (ba, bb))) =
                    producer!(b, Instr::MulI { a, b, .. } => (a, b))
                {
                    cur[ib] = None;
                    cur[j] = Some(Instr::MulAddI {
                        dst,
                        a: ba,
                        b: bb,
                        c: a,
                    });
                    fused += 1;
                } else {
                    try_read_const!(BinOp::AddI, dst, a, b);
                }
            }
            Instr::SubI { dst, a, b } => {
                if let Some((ia, (aa, ab))) = producer!(a, Instr::MulI { a, b, .. } => (a, b)) {
                    cur[ia] = None;
                    cur[j] = Some(Instr::MulSubI {
                        dst,
                        a: aa,
                        b: ab,
                        c: b,
                    });
                    fused += 1;
                } else if let Some((ib, (ba, bb))) =
                    producer!(b, Instr::MulI { a, b, .. } => (a, b))
                {
                    cur[ib] = None;
                    cur[j] = Some(Instr::SubMulI {
                        dst,
                        c: a,
                        a: ba,
                        b: bb,
                    });
                    fused += 1;
                } else {
                    try_read_const!(BinOp::SubI, dst, a, b);
                }
            }
            Instr::MulF { dst, a, b } => {
                if !feeds_accumulate!(dst, AddF | SubF) {
                    try_read_const!(BinOp::MulF, dst, a, b);
                }
            }
            Instr::MulI { dst, a, b } => {
                if !feeds_accumulate!(dst, AddI | SubI) {
                    try_read_const!(BinOp::MulI, dst, a, b);
                }
            }
            Instr::Write {
                src,
                stream,
                width,
                offset,
            } => {
                if uses[src as usize] == 1 {
                    if let Some(i) = def[src as usize] {
                        if let Some((op, a, b)) = cur[i].as_ref().and_then(bin_op_of) {
                            cur[i] = None;
                            cur[j] = Some(Instr::BinW {
                                op,
                                a,
                                b,
                                stream,
                                width,
                                offset,
                            });
                            fused += 1;
                        }
                    }
                }
            }
            // Remaining plain binaries: read/const operand fusion only.
            other => {
                if let Some((op, a, b)) = bin_op_of(&other) {
                    if let Some(dst) = def_of(&other) {
                        try_read_const!(op, dst, a, b);
                    }
                }
            }
        }
    }

    *body = cur.into_iter().flatten().collect();
    fused + pair_fuse(body)
}

// Pair-key tags for `pair_fuse`'s pending map.
const K_ADDF: u8 = 0;
const K_SUBF: u8 = 1;
const K_MMADD: u8 = 2;
const K_MMSUB: u8 = 3;
const K_WADD: u8 = 4;
const K_WSUB: u8 = 5;

/// The pair pass: merges two instructions that share one operand set into
/// a single two-result superinstruction. Three shapes, all dominant in the
/// FFT butterfly:
///
/// * `AddF`/`SubF` over the same `(a, b)` (exact operand order — float add
///   is never treated as commutative at the bit level) → [`Instr::BflyF`];
/// * the complex-multiply halves `a*b - c*d` / `a*d + c*b` → [`Instr::CMulF`];
/// * `BinW AddF`/`BinW SubF` over the same `(a, b)` → [`Instr::BflyWF`];
/// * two `Read`s separated by nothing fallible → [`Instr::Read2`], which
///   keeps both bounds checks in original program order (a read depends
///   only on the iteration index, so hopping over pure instructions whose
///   results it cannot mention is free).
///
/// The merged instruction replaces the *earlier* member, so the later
/// member's computation moves up. That is sound because the pair shares
/// its operand set: every operand was already legally readable at the
/// earlier position, both results are fresh SSA slots nothing in between
/// can mention, and all three shapes are infallible (plain-stream writes
/// land in disjoint preallocated slots, and outputs are only observable on
/// error-free runs), so no error can be reordered past one.
fn pair_fuse(body: &mut Vec<Instr>) -> usize {
    use std::collections::HashMap;
    let mut pend: HashMap<(u8, u32, u32, u32, u32), usize> = HashMap::new();
    let mut cur: Vec<Option<Instr>> = body.iter().copied().map(Some).collect();
    let mut fused = 0usize;
    // A lone read waiting for a partner; forfeited when any other fallible
    // instruction would sit between the pair.
    let mut pending_read: Option<usize> = None;
    for j in 0..cur.len() {
        let Some(ins) = cur[j] else { continue };
        if let Instr::Read {
            dst: db,
            stream: sb,
            width: wb,
            offset: ob,
        } = ins
        {
            if let Some(i) = pending_read.take() {
                let Some(Instr::Read {
                    dst: da,
                    stream: sa,
                    width: wa,
                    offset: oa,
                }) = cur[i]
                else {
                    unreachable!("pending read always marks a read")
                };
                cur[i] = Some(Instr::Read2 {
                    da,
                    sa,
                    wa,
                    oa,
                    db,
                    sb,
                    wb,
                    ob,
                });
                cur[j] = None;
                fused += 1;
            } else {
                pending_read = Some(j);
            }
            continue;
        }
        if ins.fallible() {
            pending_read = None;
        }
        match ins {
            Instr::AddF { dst, a, b } => {
                if let Some(i) = pend.remove(&(K_SUBF, a, b, 0, 0)) {
                    let Some(Instr::SubF { dst: sub_dst, .. }) = cur[i] else {
                        unreachable!("pending key always marks its own shape")
                    };
                    cur[i] = Some(Instr::BflyF {
                        add_dst: dst,
                        sub_dst,
                        a,
                        b,
                    });
                    cur[j] = None;
                    fused += 1;
                } else {
                    pend.insert((K_ADDF, a, b, 0, 0), j);
                }
            }
            Instr::SubF { dst, a, b } => {
                if let Some(i) = pend.remove(&(K_ADDF, a, b, 0, 0)) {
                    let Some(Instr::AddF { dst: add_dst, .. }) = cur[i] else {
                        unreachable!("pending key always marks its own shape")
                    };
                    cur[i] = Some(Instr::BflyF {
                        add_dst,
                        sub_dst: dst,
                        a,
                        b,
                    });
                    cur[j] = None;
                    fused += 1;
                } else {
                    pend.insert((K_SUBF, a, b, 0, 0), j);
                }
            }
            // Complement relation: Sub(a, b, c, d) = a*b - c*d pairs with
            // Add(a2, b2, c2, d2) = a2*b2 + c2*d2 when a2 = a, b2 = d,
            // c2 = c, d2 = b — exactly the two halves of one complex
            // multiply. `CMulF` keeps the Sub's field order, computing
            // `im = a*d + c*b` in the Add's original operand order.
            Instr::MulMulAddF { dst, a, b, c, d } => {
                if let Some(i) = pend.remove(&(K_MMSUB, a, d, c, b)) {
                    let Some(Instr::MulMulSubF {
                        dst: re_dst,
                        a,
                        b,
                        c,
                        d,
                    }) = cur[i]
                    else {
                        unreachable!("pending key always marks its own shape")
                    };
                    cur[i] = Some(Instr::CMulF {
                        re_dst,
                        im_dst: dst,
                        a,
                        b,
                        c,
                        d,
                    });
                    cur[j] = None;
                    fused += 1;
                } else {
                    pend.insert((K_MMADD, a, b, c, d), j);
                }
            }
            Instr::MulMulSubF { dst, a, b, c, d } => {
                if let Some(i) = pend.remove(&(K_MMADD, a, d, c, b)) {
                    let Some(Instr::MulMulAddF { dst: im_dst, .. }) = cur[i] else {
                        unreachable!("pending key always marks its own shape")
                    };
                    cur[i] = Some(Instr::CMulF {
                        re_dst: dst,
                        im_dst,
                        a,
                        b,
                        c,
                        d,
                    });
                    cur[j] = None;
                    fused += 1;
                } else {
                    pend.insert((K_MMSUB, a, b, c, d), j);
                }
            }
            Instr::BinW {
                op: BinOp::AddF,
                a,
                b,
                stream,
                width,
                offset,
            } => {
                if let Some(i) = pend.remove(&(K_WSUB, a, b, 0, 0)) {
                    let Some(Instr::BinW {
                        stream: sub_stream,
                        width: sub_width,
                        offset: sub_offset,
                        ..
                    }) = cur[i]
                    else {
                        unreachable!("pending key always marks its own shape")
                    };
                    cur[i] = Some(Instr::BflyWF {
                        a,
                        b,
                        add_stream: stream,
                        add_width: width,
                        add_offset: offset,
                        sub_stream,
                        sub_width,
                        sub_offset,
                    });
                    cur[j] = None;
                    fused += 1;
                } else {
                    pend.insert((K_WADD, a, b, 0, 0), j);
                }
            }
            Instr::BinW {
                op: BinOp::SubF,
                a,
                b,
                stream,
                width,
                offset,
            } => {
                if let Some(i) = pend.remove(&(K_WADD, a, b, 0, 0)) {
                    let Some(Instr::BinW {
                        stream: add_stream,
                        width: add_width,
                        offset: add_offset,
                        ..
                    }) = cur[i]
                    else {
                        unreachable!("pending key always marks its own shape")
                    };
                    cur[i] = Some(Instr::BflyWF {
                        a,
                        b,
                        add_stream,
                        add_width,
                        add_offset,
                        sub_stream: stream,
                        sub_width: width,
                        sub_offset: offset,
                    });
                    cur[j] = None;
                    fused += 1;
                } else {
                    pend.insert((K_WSUB, a, b, 0, 0), j);
                }
            }
            _ => {}
        }
    }
    *body = cur.into_iter().flatten().collect();
    fused
}
