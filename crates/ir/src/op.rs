//! Opcodes and the dataflow op representation.

use crate::{Scalar, Ty};
use std::fmt;
use stream_machine::OpClass;

/// Identifies a value (and the op that produces it) within one kernel.
/// Values are numbered in program order; every operand refers to an earlier
/// value (the IR is SSA over a straight-line loop body).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The value's index into the kernel's op list.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifies a stream within one kernel. Inputs and outputs are numbered
/// independently; the direction is carried by the opcode using the id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

impl StreamId {
    /// The stream's index into the kernel's declaration list.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A kernel operation. One instance executes per cluster per loop iteration
/// (SIMD), except that the "free" opcodes (constants, indices) are
/// materialized by the microcontroller and occupy no functional unit.
#[derive(Debug, Clone, PartialEq)]
pub enum Opcode {
    /// A compile-time constant (carried in the VLIW immediate fields).
    Const(Scalar),
    /// A uniform scalar kernel argument (KernelC scalar parameter), set per
    /// kernel invocation and broadcast to all clusters through microcode.
    Param(u32, Ty),
    /// The global loop-iteration index (i32), common to all clusters.
    IterIndex,
    /// This cluster's index, `0..C` (i32).
    ClusterId,
    /// The machine's cluster count `C` (i32). Exposing it lets kernels
    /// compute machine-independent strides.
    ClusterCount,
    /// A loop-carried value: yields `init` on the first iteration and the
    /// bound next-value of the previous iteration afterwards.
    Recur(Scalar),
    /// Addition (both operands the same type).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (f32 or i32; i32 division by zero is an execution error).
    Div,
    /// Square root (f32).
    Sqrt,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Floor (f32 -> f32).
    Floor,
    /// Bitwise and (i32).
    And,
    /// Bitwise or (i32).
    Or,
    /// Bitwise xor (i32).
    Xor,
    /// Left shift (i32).
    Shl,
    /// Arithmetic right shift (i32).
    Shr,
    /// Equality compare -> i32 0/1.
    Eq,
    /// Inequality compare -> i32 0/1.
    Ne,
    /// Less-than compare -> i32 0/1.
    Lt,
    /// Less-or-equal compare -> i32 0/1.
    Le,
    /// `select(cond, a, b)`: `a` if `cond` is nonzero else `b`.
    Select,
    /// Convert i32 -> f32.
    ItoF,
    /// Convert f32 -> i32 (truncating).
    FtoI,
    /// Read the next word of this cluster's record from an input stream.
    Read(StreamId),
    /// Append a word to this cluster's record of an output stream.
    Write(StreamId),
    /// Conditional (compacting) read: active clusters pop successive
    /// elements in cluster order. Inactive clusters receive zero.
    CondRead(StreamId),
    /// Conditional (compacting) write: active clusters append in cluster
    /// order.
    CondWrite(StreamId),
    /// Indexed scratchpad read (per-cluster memory); the declared type is
    /// the type of the loaded word.
    SpRead(Ty),
    /// Indexed scratchpad write.
    SpWrite,
    /// Intercluster communication: `comm(data, src)` makes each cluster
    /// receive `data` from cluster `src` (computed per cluster).
    Comm,
}

impl Opcode {
    /// Number of operands this opcode takes.
    pub fn arity(&self) -> usize {
        use Opcode::*;
        match self {
            Const(_) | Param(..) | IterIndex | ClusterId | ClusterCount | Recur(_) => 0,
            Sqrt | Neg | Abs | Floor | ItoF | FtoI | Write(_) | CondRead(_) | SpRead(_) => 1,
            Read(_) => 0,
            Add | Sub | Mul | Div | Min | Max | And | Or | Xor | Shl | Shr | Eq | Ne | Lt | Le
            | CondWrite(_) | SpWrite | Comm => 2,
            Select => 3,
        }
    }

    /// Whether this opcode produces a usable value.
    pub fn produces_value(&self) -> bool {
        !matches!(
            self,
            Opcode::Write(_) | Opcode::CondWrite(_) | Opcode::SpWrite
        )
    }

    /// The scheduling class, given the types of this op's result and
    /// operands (`None` for free ops that occupy no functional unit).
    pub fn class(&self, result_ty: Ty, arg_tys: &[Ty]) -> Option<OpClass> {
        use Opcode::*;
        let float_involved = result_ty == Ty::F32 || arg_tys.contains(&Ty::F32);
        Some(match self {
            Const(_) | Param(..) | IterIndex | ClusterId | ClusterCount | Recur(_) => return None,
            Add | Sub | Min | Max | Neg | Abs | Floor | Eq | Ne | Lt | Le | ItoF | FtoI => {
                if float_involved {
                    OpClass::FloatAdd
                } else {
                    OpClass::IntAlu
                }
            }
            Mul => {
                if float_involved {
                    OpClass::FloatMul
                } else {
                    OpClass::IntMul
                }
            }
            Div | Sqrt => OpClass::FloatDiv,
            And | Or | Xor | Shl | Shr => OpClass::Logic,
            Select => OpClass::Select,
            Read(_) => OpClass::SbRead,
            Write(_) => OpClass::SbWrite,
            CondRead(_) | CondWrite(_) => OpClass::CondStream,
            SpRead(_) => OpClass::SpRead,
            SpWrite => OpClass::SpWrite,
            Comm => OpClass::Comm,
        })
    }

    /// The stream this opcode touches, if any.
    pub fn stream(&self) -> Option<(StreamId, StreamDir)> {
        match self {
            Opcode::Read(s) | Opcode::CondRead(s) => Some((*s, StreamDir::Input)),
            Opcode::Write(s) | Opcode::CondWrite(s) => Some((*s, StreamDir::Output)),
            _ => None,
        }
    }
}

/// Whether a stream feeds the kernel or is produced by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamDir {
    /// Read by the kernel.
    Input,
    /// Written by the kernel.
    Output,
}

/// One node of the kernel dataflow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// What the op does.
    pub opcode: Opcode,
    /// Operands, all defined earlier in program order.
    pub args: Vec<ValueId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_operand_shape() {
        assert_eq!(Opcode::Add.arity(), 2);
        assert_eq!(Opcode::Select.arity(), 3);
        assert_eq!(Opcode::Sqrt.arity(), 1);
        assert_eq!(Opcode::Read(StreamId(0)).arity(), 0);
        assert_eq!(Opcode::Const(Scalar::I32(1)).arity(), 0);
    }

    #[test]
    fn writes_produce_no_value() {
        assert!(!Opcode::Write(StreamId(0)).produces_value());
        assert!(!Opcode::SpWrite.produces_value());
        assert!(!Opcode::CondWrite(StreamId(0)).produces_value());
        assert!(Opcode::Read(StreamId(0)).produces_value());
    }

    #[test]
    fn class_depends_on_type() {
        assert_eq!(
            Opcode::Add.class(Ty::F32, &[Ty::F32, Ty::F32]),
            Some(OpClass::FloatAdd)
        );
        assert_eq!(
            Opcode::Add.class(Ty::I32, &[Ty::I32, Ty::I32]),
            Some(OpClass::IntAlu)
        );
        assert_eq!(
            Opcode::Mul.class(Ty::F32, &[Ty::F32, Ty::F32]),
            Some(OpClass::FloatMul)
        );
        assert_eq!(Opcode::Const(Scalar::I32(0)).class(Ty::I32, &[]), None);
    }

    #[test]
    fn stream_direction() {
        assert_eq!(
            Opcode::Read(StreamId(2)).stream(),
            Some((StreamId(2), StreamDir::Input))
        );
        assert_eq!(
            Opcode::CondWrite(StreamId(1)).stream(),
            Some((StreamId(1), StreamDir::Output))
        );
        assert_eq!(Opcode::Add.stream(), None);
    }

    #[test]
    fn compares_are_alu_class() {
        assert_eq!(
            Opcode::Lt.class(Ty::I32, &[Ty::F32, Ty::F32]),
            Some(OpClass::FloatAdd)
        );
        assert_eq!(
            Opcode::Lt.class(Ty::I32, &[Ty::I32, Ty::I32]),
            Some(OpClass::IntAlu)
        );
    }
}
