//! Compiled execution tape — the interpreter's fast path.
//!
//! [`Tape::compile`] validates and lowers a kernel **once** into a flat
//! instruction list with pre-resolved operand slots, precomputed stream
//! record widths/word offsets, a `ValueId -> recurrence slot` index, and
//! opcodes pre-specialized by static type. Execution then runs
//! strip-at-a-time over untagged 32-bit value lanes in structure-of-arrays
//! layout (`vals[value * C + cluster]`), so the per-iteration loop is
//! clone-free, allocation-free, and dispatches on a dense enum.
//!
//! Iteration-invariant ops (constants, params, cluster ids) are hoisted
//! into a prologue executed once per kernel call.
//!
//! The legacy tree-walk interpreter ([`crate::execute_legacy`]) stays as
//! the differential-test oracle; the tape reproduces its observable
//! behavior exactly, including error values and error ordering. The one
//! semantic gap is the legacy interpreter's *dynamic* typing of input
//! stream words: when an input word's runtime type disagrees with the
//! stream declaration, the tape falls back to the oracle wholesale rather
//! than guess.

use crate::interp::{execute_with_legacy, infer_iterations_decls, ExecConfig, ExecOptions};
use crate::{IrError, Kernel, Opcode, Scalar, StreamId, Ty, ValueId};

/// One loop-carried recurrence, pre-resolved at compile time.
#[derive(Debug, Clone, Copy)]
struct RecurSlot {
    /// First-iteration value, as raw bits.
    init_bits: u32,
    /// Value whose lanes feed the next iteration.
    next: u32,
}

/// A tape instruction: operand `ValueId`s resolved to dense value slots,
/// opcodes specialized by the kernel's static types, stream accesses
/// carrying their record width and word offset inline.
#[derive(Debug, Clone, Copy)]
enum Instr {
    ConstBits {
        dst: u32,
        bits: u32,
    },
    Param {
        dst: u32,
        idx: u32,
    },
    IterIndex {
        dst: u32,
    },
    ClusterId {
        dst: u32,
    },
    ClusterCount {
        dst: u32,
    },
    LoadRecur {
        dst: u32,
        slot: u32,
    },
    Read {
        dst: u32,
        stream: u32,
        width: u32,
        offset: u32,
    },
    Write {
        src: u32,
        stream: u32,
        width: u32,
        offset: u32,
    },
    CondRead {
        dst: u32,
        pred: u32,
        stream: u32,
    },
    CondWrite {
        pred: u32,
        src: u32,
        stream: u32,
    },
    SpRead {
        dst: u32,
        addr: u32,
        ty: Ty,
    },
    SpWrite {
        at: u32,
        addr: u32,
        src: u32,
        ty: Ty,
    },
    Comm {
        dst: u32,
        data: u32,
        src: u32,
    },
    AddI {
        dst: u32,
        a: u32,
        b: u32,
    },
    AddF {
        dst: u32,
        a: u32,
        b: u32,
    },
    SubI {
        dst: u32,
        a: u32,
        b: u32,
    },
    SubF {
        dst: u32,
        a: u32,
        b: u32,
    },
    MulI {
        dst: u32,
        a: u32,
        b: u32,
    },
    MulF {
        dst: u32,
        a: u32,
        b: u32,
    },
    DivI {
        dst: u32,
        a: u32,
        b: u32,
    },
    DivF {
        dst: u32,
        a: u32,
        b: u32,
    },
    Sqrt {
        dst: u32,
        a: u32,
    },
    MinI {
        dst: u32,
        a: u32,
        b: u32,
    },
    MinF {
        dst: u32,
        a: u32,
        b: u32,
    },
    MaxI {
        dst: u32,
        a: u32,
        b: u32,
    },
    MaxF {
        dst: u32,
        a: u32,
        b: u32,
    },
    NegI {
        dst: u32,
        a: u32,
    },
    NegF {
        dst: u32,
        a: u32,
    },
    AbsI {
        dst: u32,
        a: u32,
    },
    AbsF {
        dst: u32,
        a: u32,
    },
    Floor {
        dst: u32,
        a: u32,
    },
    And {
        dst: u32,
        a: u32,
        b: u32,
    },
    Or {
        dst: u32,
        a: u32,
        b: u32,
    },
    Xor {
        dst: u32,
        a: u32,
        b: u32,
    },
    Shl {
        dst: u32,
        a: u32,
        b: u32,
    },
    Shr {
        dst: u32,
        a: u32,
        b: u32,
    },
    EqI {
        dst: u32,
        a: u32,
        b: u32,
    },
    EqF {
        dst: u32,
        a: u32,
        b: u32,
    },
    NeI {
        dst: u32,
        a: u32,
        b: u32,
    },
    NeF {
        dst: u32,
        a: u32,
        b: u32,
    },
    LtI {
        dst: u32,
        a: u32,
        b: u32,
    },
    LtF {
        dst: u32,
        a: u32,
        b: u32,
    },
    LeI {
        dst: u32,
        a: u32,
        b: u32,
    },
    LeF {
        dst: u32,
        a: u32,
        b: u32,
    },
    Select {
        dst: u32,
        cond: u32,
        a: u32,
        b: u32,
    },
    ItoF {
        dst: u32,
        a: u32,
    },
    FtoI {
        dst: u32,
        a: u32,
    },
    /// A lowering-time type inconsistency (impossible for builder-validated
    /// kernels), deferred to runtime so zero-iteration runs still succeed —
    /// exactly as the legacy interpreter behaves.
    Fault {
        at: u32,
        expected: Ty,
        found: Ty,
    },
}

#[inline(always)]
fn bits_of(s: Scalar) -> u32 {
    match s {
        Scalar::I32(v) => v as u32,
        Scalar::F32(v) => v.to_bits(),
    }
}

#[inline(always)]
fn scalar_of(bits: u32, ty: Ty) -> Scalar {
    match ty {
        Ty::I32 => Scalar::I32(bits as i32),
        Ty::F32 => Scalar::F32(f32::from_bits(bits)),
    }
}

/// Splits the value lattice into the `dst` lane row and the (strictly
/// earlier, by SSA) operand rows.
#[inline(always)]
fn split2(vals: &mut [u32], c: usize, dst: u32, a: u32) -> (&mut [u32], &[u32]) {
    let (lo, hi) = vals.split_at_mut(dst as usize * c);
    (&mut hi[..c], &lo[a as usize * c..a as usize * c + c])
}

#[inline(always)]
#[allow(clippy::type_complexity)]
fn split3(vals: &mut [u32], c: usize, dst: u32, a: u32, b: u32) -> (&mut [u32], &[u32], &[u32]) {
    let (lo, hi) = vals.split_at_mut(dst as usize * c);
    (
        &mut hi[..c],
        &lo[a as usize * c..a as usize * c + c],
        &lo[b as usize * c..b as usize * c + c],
    )
}

#[inline(always)]
fn fill(vals: &mut [u32], c: usize, dst: u32, bits: u32) {
    let d = dst as usize * c;
    vals[d..d + c].fill(bits);
}

macro_rules! bin_i {
    ($vals:expr, $c:expr, $d:expr, $a:expr, $b:expr, $f:expr) => {{
        let (dst, xs, ys) = split3($vals, $c, $d, $a, $b);
        for ((d, &x), &y) in dst.iter_mut().zip(xs).zip(ys) {
            *d = $f(x as i32, y as i32) as u32;
        }
    }};
}

macro_rules! bin_f {
    ($vals:expr, $c:expr, $d:expr, $a:expr, $b:expr, $f:expr) => {{
        let (dst, xs, ys) = split3($vals, $c, $d, $a, $b);
        for ((d, &x), &y) in dst.iter_mut().zip(xs).zip(ys) {
            *d = $f(f32::from_bits(x), f32::from_bits(y)).to_bits();
        }
    }};
}

macro_rules! cmp_i {
    ($vals:expr, $c:expr, $d:expr, $a:expr, $b:expr, $f:expr) => {{
        let (dst, xs, ys) = split3($vals, $c, $d, $a, $b);
        for ((d, &x), &y) in dst.iter_mut().zip(xs).zip(ys) {
            *d = u32::from($f(x as i32, y as i32));
        }
    }};
}

macro_rules! cmp_f {
    ($vals:expr, $c:expr, $d:expr, $a:expr, $b:expr, $f:expr) => {{
        let (dst, xs, ys) = split3($vals, $c, $d, $a, $b);
        for ((d, &x), &y) in dst.iter_mut().zip(xs).zip(ys) {
            *d = u32::from($f(f32::from_bits(x), f32::from_bits(y)));
        }
    }};
}

macro_rules! un_i {
    ($vals:expr, $c:expr, $d:expr, $a:expr, $f:expr) => {{
        let (dst, xs) = split2($vals, $c, $d, $a);
        for (d, &x) in dst.iter_mut().zip(xs) {
            *d = $f(x as i32) as u32;
        }
    }};
}

macro_rules! un_f {
    ($vals:expr, $c:expr, $d:expr, $a:expr, $f:expr) => {{
        let (dst, xs) = split2($vals, $c, $d, $a);
        for (d, &x) in dst.iter_mut().zip(xs) {
            *d = $f(f32::from_bits(x)).to_bits();
        }
    }};
}

/// A kernel lowered once into a flat, type-specialized instruction tape.
///
/// Compile with [`Tape::compile`], then run any number of strips with
/// [`Tape::execute`]/[`Tape::execute_with`] — the per-call cost is pure
/// execution, with no per-iteration cloning or dispatch on the tree IR.
/// The tape is cluster-count independent: one compile serves every `C`.
///
/// # Examples
///
/// ```
/// use stream_ir::{ExecConfig, KernelBuilder, Scalar, Tape, Ty};
///
/// let mut b = KernelBuilder::new("double");
/// let s = b.in_stream(Ty::I32);
/// let out = b.out_stream(Ty::I32);
/// let x = b.read(s);
/// let two = b.const_i(2);
/// let y = b.mul(x, two);
/// b.write(out, y);
/// let tape = Tape::compile(&b.finish()?);
///
/// let input: Vec<Scalar> = (0..16).map(Scalar::I32).collect();
/// let outs = tape.execute(&[], &[input], &ExecConfig::with_clusters(8))?;
/// assert_eq!(outs[0][3], Scalar::I32(6));
/// # Ok::<(), stream_ir::IrError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tape {
    kernel: Kernel,
    /// Iteration-invariant instructions, run once per kernel call.
    prologue: Vec<Instr>,
    /// The per-iteration loop body, in program order.
    body: Vec<Instr>,
    recurs: Vec<RecurSlot>,
    n_vals: usize,
    uses_sp: bool,
}

impl Tape {
    /// Lowers `kernel` to an execution tape. Infallible for kernels built
    /// with [`crate::KernelBuilder`] (any type inconsistency lowers to a
    /// runtime fault instruction, matching the legacy interpreter).
    pub fn compile(kernel: &Kernel) -> Self {
        let mut compile_span = stream_trace::span("tape", "compile");
        compile_span.arg("kernel", kernel.name());
        compile_span.arg("ops", kernel.ops().len());
        let ops = kernel.ops();
        let n = ops.len();

        // ValueId -> recurrence slot index (satellite of the legacy linear
        // scan fix: the tape never searches at runtime).
        let mut recur_slot = vec![u32::MAX; n];
        let mut recurs = Vec::new();
        for (slot, (r, next)) in kernel.recurrences().enumerate() {
            let init = match &ops[r.index()].opcode {
                Opcode::Recur(init) => *init,
                _ => unreachable!("recurrences() yields Recur ops"),
            };
            recur_slot[r.index()] = slot as u32;
            recurs.push(RecurSlot {
                init_bits: bits_of(init),
                next: next.0,
            });
        }

        // Word offsets of stream accesses within their record, in access
        // order (same counting as the legacy interpreter).
        let mut in_seen = vec![0u32; kernel.inputs().len()];
        let mut out_seen = vec![0u32; kernel.outputs().len()];

        let mut prologue = Vec::new();
        let mut body = Vec::new();
        let mut uses_sp = false;

        for (i, op) in ops.iter().enumerate() {
            let dst = i as u32;
            let arg = |j: usize| op.args[j].0;
            let aty = |j: usize| kernel.ty(op.args[j]);
            // The legacy interpreter's dynamic-dispatch failure value.
            let fault = Instr::Fault {
                at: dst,
                expected: Ty::F32,
                found: op.args.first().map_or(Ty::I32, |&a| kernel.ty(a)),
            };
            use Opcode::*;
            let ins = match &op.opcode {
                Const(s) => {
                    prologue.push(Instr::ConstBits {
                        dst,
                        bits: bits_of(*s),
                    });
                    continue;
                }
                Param(idx, _) => {
                    prologue.push(Instr::Param { dst, idx: *idx });
                    continue;
                }
                ClusterId => {
                    prologue.push(Instr::ClusterId { dst });
                    continue;
                }
                ClusterCount => {
                    prologue.push(Instr::ClusterCount { dst });
                    continue;
                }
                IterIndex => Instr::IterIndex { dst },
                Recur(_) => Instr::LoadRecur {
                    dst,
                    slot: recur_slot[i],
                },
                Read(s) => {
                    let offset = in_seen[s.index()];
                    in_seen[s.index()] += 1;
                    Instr::Read {
                        dst,
                        stream: s.0,
                        width: kernel.inputs()[s.index()].record_width,
                        offset,
                    }
                }
                Write(s) => {
                    let offset = out_seen[s.index()];
                    out_seen[s.index()] += 1;
                    Instr::Write {
                        src: arg(0),
                        stream: s.0,
                        width: kernel.outputs()[s.index()].record_width,
                        offset,
                    }
                }
                CondRead(s) => {
                    in_seen[s.index()] += 1;
                    Instr::CondRead {
                        dst,
                        pred: arg(0),
                        stream: s.0,
                    }
                }
                CondWrite(s) => {
                    out_seen[s.index()] += 1;
                    Instr::CondWrite {
                        pred: arg(0),
                        src: arg(1),
                        stream: s.0,
                    }
                }
                SpRead(ty) => {
                    uses_sp = true;
                    Instr::SpRead {
                        dst,
                        addr: arg(0),
                        ty: *ty,
                    }
                }
                SpWrite => {
                    uses_sp = true;
                    Instr::SpWrite {
                        at: dst,
                        addr: arg(0),
                        src: arg(1),
                        ty: aty(1),
                    }
                }
                Comm => Instr::Comm {
                    dst,
                    data: arg(0),
                    src: arg(1),
                },
                Add | Sub | Mul | Div | Min | Max if aty(0) != aty(1) => fault,
                Add => match aty(0) {
                    Ty::I32 => Instr::AddI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::AddF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Sub => match aty(0) {
                    Ty::I32 => Instr::SubI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::SubF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Mul => match aty(0) {
                    Ty::I32 => Instr::MulI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::MulF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Div => match aty(0) {
                    Ty::I32 => Instr::DivI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::DivF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Min => match aty(0) {
                    Ty::I32 => Instr::MinI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::MinF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Max => match aty(0) {
                    Ty::I32 => Instr::MaxI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::MaxF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Sqrt if aty(0) == Ty::F32 => Instr::Sqrt { dst, a: arg(0) },
                Floor if aty(0) == Ty::F32 => Instr::Floor { dst, a: arg(0) },
                Neg => match aty(0) {
                    Ty::I32 => Instr::NegI { dst, a: arg(0) },
                    Ty::F32 => Instr::NegF { dst, a: arg(0) },
                },
                Abs => match aty(0) {
                    Ty::I32 => Instr::AbsI { dst, a: arg(0) },
                    Ty::F32 => Instr::AbsF { dst, a: arg(0) },
                },
                And | Or | Xor | Shl | Shr if aty(0) != Ty::I32 || aty(1) != Ty::I32 => fault,
                And => Instr::And {
                    dst,
                    a: arg(0),
                    b: arg(1),
                },
                Or => Instr::Or {
                    dst,
                    a: arg(0),
                    b: arg(1),
                },
                Xor => Instr::Xor {
                    dst,
                    a: arg(0),
                    b: arg(1),
                },
                Shl => Instr::Shl {
                    dst,
                    a: arg(0),
                    b: arg(1),
                },
                Shr => Instr::Shr {
                    dst,
                    a: arg(0),
                    b: arg(1),
                },
                Eq | Ne if aty(0) != aty(1) => {
                    // Legacy `scalar_eq` on mixed types is a constant
                    // (false), not an error; hoist the constant.
                    prologue.push(Instr::ConstBits {
                        dst,
                        bits: u32::from(matches!(op.opcode, Ne)),
                    });
                    continue;
                }
                Eq => match aty(0) {
                    Ty::I32 => Instr::EqI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::EqF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Ne => match aty(0) {
                    Ty::I32 => Instr::NeI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::NeF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Lt | Le if aty(0) != aty(1) => fault,
                Lt => match aty(0) {
                    Ty::I32 => Instr::LtI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::LtF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                Le => match aty(0) {
                    Ty::I32 => Instr::LeI {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                    Ty::F32 => Instr::LeF {
                        dst,
                        a: arg(0),
                        b: arg(1),
                    },
                },
                // Builder-validated kernels always have an i32 condition,
                // so `is_true` reduces to `bits != 0`.
                Select => Instr::Select {
                    dst,
                    cond: arg(0),
                    a: arg(1),
                    b: arg(2),
                },
                ItoF if aty(0) == Ty::I32 => Instr::ItoF { dst, a: arg(0) },
                FtoI if aty(0) == Ty::F32 => Instr::FtoI { dst, a: arg(0) },
                Sqrt | Floor | ItoF | FtoI => fault,
            };
            body.push(ins);
        }

        Self {
            kernel: kernel.clone(),
            prologue,
            body,
            recurs,
            n_vals: n,
            uses_sp,
        }
    }

    /// The kernel this tape was compiled from.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Number of instructions executed once per kernel call (hoisted
    /// iteration-invariant ops).
    pub fn hoisted_len(&self) -> usize {
        self.prologue.len()
    }

    /// Number of instructions executed every SIMD iteration.
    pub fn loop_len(&self) -> usize {
        self.body.len()
    }

    /// Executes the tape, inferring the iteration count from the first
    /// plain input stream. Drop-in equivalent of [`crate::execute`].
    ///
    /// # Errors
    ///
    /// As [`crate::execute`].
    pub fn execute(
        &self,
        params: &[Scalar],
        inputs: &[Vec<Scalar>],
        cfg: &ExecConfig,
    ) -> Result<Vec<Vec<Scalar>>, IrError> {
        let opts = ExecOptions {
            params,
            sp_init: None,
            iterations: None,
        };
        self.execute_with(&opts, inputs, cfg)
    }

    /// Executes the tape for an explicit number of SIMD iterations.
    ///
    /// # Errors
    ///
    /// As [`crate::execute_iters`].
    pub fn execute_iters(
        &self,
        params: &[Scalar],
        inputs: &[Vec<Scalar>],
        iterations: usize,
        cfg: &ExecConfig,
    ) -> Result<Vec<Vec<Scalar>>, IrError> {
        let opts = ExecOptions {
            params,
            sp_init: None,
            iterations: Some(iterations),
        };
        self.execute_with(&opts, inputs, cfg)
    }

    /// Executes the tape with full [`ExecOptions`]. Drop-in equivalent of
    /// [`crate::execute_with`].
    ///
    /// # Errors
    ///
    /// As [`crate::execute_with`].
    pub fn execute_with(
        &self,
        opts: &ExecOptions<'_>,
        inputs: &[Vec<Scalar>],
        cfg: &ExecConfig,
    ) -> Result<Vec<Vec<Scalar>>, IrError> {
        let mut exec_span = stream_trace::span("tape", "execute");
        exec_span.arg("kernel", self.kernel.name());
        let result = self.execute_with_inner(opts, inputs, cfg, &mut exec_span);
        if let Err(e) = &result {
            note_runtime_error(e);
        }
        result
    }

    fn execute_with_inner(
        &self,
        opts: &ExecOptions<'_>,
        inputs: &[Vec<Scalar>],
        cfg: &ExecConfig,
        exec_span: &mut stream_trace::Span,
    ) -> Result<Vec<Vec<Scalar>>, IrError> {
        let iterations = match opts.iterations {
            Some(n) => n,
            None => infer_iterations_decls(self.kernel.inputs(), inputs, cfg)?,
        };
        if inputs.len() != self.kernel.inputs().len() {
            return Err(IrError::WrongInputCount {
                expected: self.kernel.inputs().len(),
                found: inputs.len(),
            });
        }
        if opts.params.len() != self.kernel.param_tys().len() {
            return Err(IrError::WrongInputCount {
                expected: self.kernel.param_tys().len(),
                found: opts.params.len(),
            });
        }
        for (i, (&ty, p)) in self.kernel.param_tys().iter().zip(opts.params).enumerate() {
            if p.ty() != ty {
                return Err(IrError::TypeMismatch {
                    at: ValueId(i as u32),
                    expected: ty,
                    found: p.ty(),
                });
            }
        }
        if cfg.clusters == 0 {
            // Degenerate no-lane config: let the oracle define behavior.
            stream_trace::count("tape.fallback", 1);
            exec_span.arg("fallback", "zero_clusters");
            return execute_with_legacy(&self.kernel, opts, inputs, cfg);
        }

        // Convert inputs to untagged bit lanes. The legacy interpreter
        // types stream words dynamically; if any word disagrees with its
        // declaration, it — not the tape — defines the behavior.
        let mut in_bits: Vec<Vec<u32>> = Vec::with_capacity(inputs.len());
        for (decl, words) in self.kernel.inputs().iter().zip(inputs) {
            let mut bits = Vec::with_capacity(words.len());
            for &w in words {
                if w.ty() != decl.ty {
                    stream_trace::count("tape.fallback", 1);
                    exec_span.arg("fallback", "ill_typed_input");
                    return execute_with_legacy(&self.kernel, opts, inputs, cfg);
                }
                bits.push(bits_of(w));
            }
            in_bits.push(bits);
        }

        let mut sp: Vec<Option<Scalar>> = if self.uses_sp || opts.sp_init.is_some() {
            vec![None; cfg.sp_words * cfg.clusters]
        } else {
            Vec::new()
        };
        if let Some(init) = opts.sp_init {
            for (addr, &word) in init.iter().enumerate() {
                if addr >= cfg.sp_words {
                    return Err(IrError::SpOutOfBounds {
                        at: ValueId(0),
                        addr: addr as i32,
                        capacity: cfg.sp_words,
                    });
                }
                for c in 0..cfg.clusters {
                    sp[c * cfg.sp_words + addr] = Some(word);
                }
            }
        }

        self.run(iterations, opts.params, &in_bits, &mut sp, cfg)
    }

    fn run(
        &self,
        iterations: usize,
        params: &[Scalar],
        in_bits: &[Vec<u32>],
        sp: &mut [Option<Scalar>],
        cfg: &ExecConfig,
    ) -> Result<Vec<Vec<Scalar>>, IrError> {
        let mut run_span = stream_trace::span("tape", "run");
        run_span.arg("iterations", iterations);
        run_span.arg("clusters", cfg.clusters);
        let c = cfg.clusters;
        let mut vals = vec![0u32; self.n_vals * c];
        let mut recur = vec![0u32; self.recurs.len() * c];
        for (slot, r) in self.recurs.iter().enumerate() {
            recur[slot * c..slot * c + c].fill(r.init_bits);
        }
        let mut cond_cursor = vec![0usize; in_bits.len()];
        let params_bits: Vec<u32> = params.iter().map(|&p| bits_of(p)).collect();
        let mut out_bits: Vec<Vec<u32>> = self
            .kernel
            .outputs()
            .iter()
            .map(|d| {
                let words = iterations * c * d.record_width as usize;
                if d.conditional {
                    Vec::with_capacity(words)
                } else {
                    vec![0u32; words]
                }
            })
            .collect();

        for ins in &self.prologue {
            step(
                ins,
                0,
                c,
                cfg.sp_words,
                &mut vals,
                &recur,
                &params_bits,
                in_bits,
                &mut out_bits,
                sp,
                &mut cond_cursor,
            )?;
        }
        for iter in 0..iterations {
            for ins in &self.body {
                step(
                    ins,
                    iter,
                    c,
                    cfg.sp_words,
                    &mut vals,
                    &recur,
                    &params_bits,
                    in_bits,
                    &mut out_bits,
                    sp,
                    &mut cond_cursor,
                )?;
            }
            for (slot, r) in self.recurs.iter().enumerate() {
                let src = r.next as usize * c;
                recur[slot * c..slot * c + c].copy_from_slice(&vals[src..src + c]);
            }
        }

        Ok(out_bits
            .iter()
            .zip(self.kernel.outputs())
            .map(|(bits, decl)| bits.iter().map(|&b| scalar_of(b, decl.ty)).collect())
            .collect())
    }
}

/// Classifies an execution error into the trace registry: bounds-style
/// errors (a stream or scratchpad access outside its extent) vs. faults
/// (type confusion, bad comm source, division by zero).
fn note_runtime_error(e: &IrError) {
    let name = match e {
        IrError::StreamExhausted { .. } | IrError::SpOutOfBounds { .. } => "tape.bounds_error",
        IrError::TypeMismatch { .. } | IrError::BadCommSource { .. } | IrError::DivideByZero(_) => {
            "tape.fault"
        }
        _ => return,
    };
    stream_trace::count(name, 1);
}

/// Executes one tape instruction across all `c` lanes.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn step(
    ins: &Instr,
    iter: usize,
    c: usize,
    sp_words: usize,
    vals: &mut [u32],
    recur: &[u32],
    params: &[u32],
    in_bits: &[Vec<u32>],
    out_bits: &mut [Vec<u32>],
    sp: &mut [Option<Scalar>],
    cond_cursor: &mut [usize],
) -> Result<(), IrError> {
    match *ins {
        Instr::ConstBits { dst, bits } => fill(vals, c, dst, bits),
        Instr::Param { dst, idx } => fill(vals, c, dst, params[idx as usize]),
        Instr::IterIndex { dst } => fill(vals, c, dst, iter as i32 as u32),
        Instr::ClusterId { dst } => {
            let d = dst as usize * c;
            for (lane, v) in vals[d..d + c].iter_mut().enumerate() {
                *v = lane as i32 as u32;
            }
        }
        Instr::ClusterCount { dst } => fill(vals, c, dst, c as i32 as u32),
        Instr::LoadRecur { dst, slot } => {
            let d = dst as usize * c;
            let s = slot as usize * c;
            vals[d..d + c].copy_from_slice(&recur[s..s + c]);
        }
        Instr::Read {
            dst,
            stream,
            width,
            offset,
        } => {
            let s = &in_bits[stream as usize];
            let w = width as usize;
            let first = (iter * c) * w + offset as usize;
            // Lane indices increase with the cluster id; checking the last
            // lane hoists the per-lane bounds check.
            if first + (c - 1) * w >= s.len() {
                return Err(IrError::StreamExhausted {
                    stream: StreamId(stream),
                    iteration: iter,
                });
            }
            let d = dst as usize * c;
            for (lane, v) in vals[d..d + c].iter_mut().enumerate() {
                *v = s[first + lane * w];
            }
        }
        Instr::Write {
            src,
            stream,
            width,
            offset,
        } => {
            let out = &mut out_bits[stream as usize];
            let w = width as usize;
            let first = (iter * c) * w + offset as usize;
            let s = src as usize * c;
            for (lane, &v) in vals[s..s + c].iter().enumerate() {
                out[first + lane * w] = v;
            }
        }
        Instr::CondRead { dst, pred, stream } => {
            let s = &in_bits[stream as usize];
            let cur = &mut cond_cursor[stream as usize];
            let (dstl, preds) = split2(vals, c, dst, pred);
            for (d, &p) in dstl.iter_mut().zip(preds) {
                *d = if p != 0 {
                    match s.get(*cur) {
                        Some(&w) => {
                            *cur += 1;
                            w
                        }
                        None => {
                            return Err(IrError::StreamExhausted {
                                stream: StreamId(stream),
                                iteration: iter,
                            })
                        }
                    }
                } else {
                    0
                };
            }
        }
        Instr::CondWrite { pred, src, stream } => {
            let out = &mut out_bits[stream as usize];
            let p = pred as usize * c;
            let s = src as usize * c;
            for lane in 0..c {
                if vals[p + lane] != 0 {
                    out.push(vals[s + lane]);
                }
            }
        }
        Instr::SpRead { dst, addr, ty } => {
            let (dstl, addrs) = split2(vals, c, dst, addr);
            for (lane, (d, &ab)) in dstl.iter_mut().zip(addrs).enumerate() {
                let a = ab as i32;
                if a < 0 || a as usize >= sp_words {
                    return Err(IrError::SpOutOfBounds {
                        at: ValueId(dst),
                        addr: a,
                        capacity: sp_words,
                    });
                }
                let stored = sp[lane * sp_words + a as usize].unwrap_or(Scalar::zero(ty));
                if stored.ty() != ty {
                    return Err(IrError::TypeMismatch {
                        at: ValueId(dst),
                        expected: ty,
                        found: stored.ty(),
                    });
                }
                *d = bits_of(stored);
            }
        }
        Instr::SpWrite { at, addr, src, ty } => {
            let a0 = addr as usize * c;
            let s0 = src as usize * c;
            for lane in 0..c {
                let a = vals[a0 + lane] as i32;
                if a < 0 || a as usize >= sp_words {
                    return Err(IrError::SpOutOfBounds {
                        at: ValueId(at),
                        addr: a,
                        capacity: sp_words,
                    });
                }
                sp[lane * sp_words + a as usize] = Some(scalar_of(vals[s0 + lane], ty));
            }
        }
        Instr::Comm { dst, data, src } => {
            let (dstl, datas, srcs) = split3(vals, c, dst, data, src);
            for (d, &sb) in dstl.iter_mut().zip(srcs) {
                let si = sb as i32;
                if si < 0 || si as usize >= c {
                    return Err(IrError::BadCommSource {
                        at: ValueId(dst),
                        src: si,
                        clusters: c,
                    });
                }
                *d = datas[si as usize];
            }
        }
        Instr::AddI { dst, a, b } => bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x.wrapping_add(y)),
        Instr::AddF { dst, a, b } => bin_f!(vals, c, dst, a, b, |x: f32, y: f32| x + y),
        Instr::SubI { dst, a, b } => bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x.wrapping_sub(y)),
        Instr::SubF { dst, a, b } => bin_f!(vals, c, dst, a, b, |x: f32, y: f32| x - y),
        Instr::MulI { dst, a, b } => bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x.wrapping_mul(y)),
        Instr::MulF { dst, a, b } => bin_f!(vals, c, dst, a, b, |x: f32, y: f32| x * y),
        Instr::DivI { dst, a, b } => {
            let (dstl, xs, ys) = split3(vals, c, dst, a, b);
            for ((d, &x), &y) in dstl.iter_mut().zip(xs).zip(ys) {
                let y = y as i32;
                if y == 0 {
                    return Err(IrError::DivideByZero(ValueId(dst)));
                }
                *d = (x as i32).wrapping_div(y) as u32;
            }
        }
        Instr::DivF { dst, a, b } => bin_f!(vals, c, dst, a, b, |x: f32, y: f32| x / y),
        Instr::Sqrt { dst, a } => un_f!(vals, c, dst, a, |x: f32| x.sqrt()),
        Instr::MinI { dst, a, b } => bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x.min(y)),
        Instr::MinF { dst, a, b } => bin_f!(vals, c, dst, a, b, |x: f32, y: f32| x.min(y)),
        Instr::MaxI { dst, a, b } => bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x.max(y)),
        Instr::MaxF { dst, a, b } => bin_f!(vals, c, dst, a, b, |x: f32, y: f32| x.max(y)),
        Instr::NegI { dst, a } => un_i!(vals, c, dst, a, |x: i32| x.wrapping_neg()),
        Instr::NegF { dst, a } => un_f!(vals, c, dst, a, |x: f32| -x),
        Instr::AbsI { dst, a } => un_i!(vals, c, dst, a, |x: i32| x.wrapping_abs()),
        Instr::AbsF { dst, a } => un_f!(vals, c, dst, a, |x: f32| x.abs()),
        Instr::Floor { dst, a } => un_f!(vals, c, dst, a, |x: f32| x.floor()),
        Instr::And { dst, a, b } => bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x & y),
        Instr::Or { dst, a, b } => bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x | y),
        Instr::Xor { dst, a, b } => bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x ^ y),
        Instr::Shl { dst, a, b } => {
            bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x
                .wrapping_shl(y as u32))
        }
        Instr::Shr { dst, a, b } => {
            bin_i!(vals, c, dst, a, b, |x: i32, y: i32| x
                .wrapping_shr(y as u32))
        }
        Instr::EqI { dst, a, b } => cmp_i!(vals, c, dst, a, b, |x: i32, y: i32| x == y),
        Instr::EqF { dst, a, b } => cmp_f!(vals, c, dst, a, b, |x: f32, y: f32| x == y),
        Instr::NeI { dst, a, b } => cmp_i!(vals, c, dst, a, b, |x: i32, y: i32| x != y),
        Instr::NeF { dst, a, b } => cmp_f!(vals, c, dst, a, b, |x: f32, y: f32| x != y),
        Instr::LtI { dst, a, b } => cmp_i!(vals, c, dst, a, b, |x: i32, y: i32| x < y),
        Instr::LtF { dst, a, b } => cmp_f!(vals, c, dst, a, b, |x: f32, y: f32| x < y),
        Instr::LeI { dst, a, b } => cmp_i!(vals, c, dst, a, b, |x: i32, y: i32| x <= y),
        Instr::LeF { dst, a, b } => cmp_f!(vals, c, dst, a, b, |x: f32, y: f32| x <= y),
        Instr::Select { dst, cond, a, b } => {
            let (lo, hi) = vals.split_at_mut(dst as usize * c);
            let conds = &lo[cond as usize * c..cond as usize * c + c];
            let xs = &lo[a as usize * c..a as usize * c + c];
            let ys = &lo[b as usize * c..b as usize * c + c];
            for (((d, &cv), &x), &y) in hi[..c].iter_mut().zip(conds).zip(xs).zip(ys) {
                *d = if cv != 0 { x } else { y };
            }
        }
        Instr::ItoF { dst, a } => {
            let (dstl, xs) = split2(vals, c, dst, a);
            for (d, &x) in dstl.iter_mut().zip(xs) {
                *d = ((x as i32) as f32).to_bits();
            }
        }
        Instr::FtoI { dst, a } => {
            let (dstl, xs) = split2(vals, c, dst, a);
            for (d, &x) in dstl.iter_mut().zip(xs) {
                *d = (f32::from_bits(x) as i32) as u32;
            }
        }
        Instr::Fault {
            at,
            expected,
            found,
        } => {
            return Err(IrError::TypeMismatch {
                at: ValueId(at),
                expected,
                found,
            })
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute_legacy, execute_with, KernelBuilder};

    fn cfg(c: usize) -> ExecConfig {
        ExecConfig::with_clusters(c)
    }

    /// A kernel exercising recurrences, COMM, scratchpad, conditional
    /// streams, and both type families at once.
    fn busy_kernel() -> Kernel {
        let mut b = KernelBuilder::new("busy");
        let si = b.in_stream(Ty::I32);
        let sf = b.in_stream(Ty::F32);
        let out_f = b.out_stream(Ty::F32);
        let out_c = b.out_stream(Ty::I32);
        b.require_sp(8);
        let p = b.param(Ty::F32);
        let x = b.read(si);
        let f = b.read(sf);
        let acc = b.recurrence(Scalar::I32(0));
        let sum = b.add(acc, x);
        b.bind_next(acc, sum);
        let cid = b.cluster_id();
        let cc = b.cluster_count();
        let one = b.const_i(1);
        let nxt = b.add(cid, one);
        let m = b.sub(cc, one);
        let src = b.and(nxt, m); // (cid + 1) & (C - 1): C must be a power of 2
        let rot = b.comm(x, src);
        let seven = b.const_i(7);
        let addr = b.and(x, seven);
        b.sp_write(addr, f);
        let g = b.sp_read(addr, Ty::F32);
        let xf = b.itof(rot);
        let y = b.mul(xf, p);
        let z = b.add(y, g);
        let az = b.abs(z);
        let r = b.sqrt(az);
        b.write(out_f, r);
        let odd = b.and(sum, one);
        b.cond_write(out_c, odd, sum);
        b.finish().unwrap()
    }

    fn busy_inputs(iters: usize, c: usize) -> Vec<Vec<Scalar>> {
        let n = iters * c;
        let ints: Vec<Scalar> = (0..n)
            .map(|i| Scalar::I32((i * 7 % 23) as i32 - 5))
            .collect();
        let floats: Vec<Scalar> = (0..n).map(|i| Scalar::F32(i as f32 * 0.25 - 3.0)).collect();
        vec![ints, floats]
    }

    #[test]
    fn tape_matches_legacy_on_busy_kernel() {
        let k = busy_kernel();
        let tape = Tape::compile(&k);
        for c in [1usize, 2, 4, 8] {
            let inputs = busy_inputs(6, c);
            let params = [Scalar::F32(1.5)];
            let want = execute_legacy(&k, &params, &inputs, &cfg(c)).unwrap();
            let got = tape.execute(&params, &inputs, &cfg(c)).unwrap();
            assert_eq!(got, want, "C={c}");
        }
    }

    #[test]
    fn execute_routes_through_tape_and_matches_oracle() {
        let k = busy_kernel();
        let inputs = busy_inputs(4, 4);
        let params = [Scalar::F32(-0.75)];
        let want = execute_legacy(&k, &params, &inputs, &cfg(4)).unwrap();
        let got = crate::execute(&k, &params, &inputs, &cfg(4)).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn iteration_invariant_ops_are_hoisted() {
        let k = busy_kernel();
        let tape = Tape::compile(&k);
        // Consts, the param, cluster id/count never re-execute per iteration.
        assert!(tape.hoisted_len() >= 5, "{}", tape.hoisted_len());
        assert_eq!(tape.hoisted_len() + tape.loop_len(), k.ops().len());
    }

    #[test]
    fn errors_match_legacy() {
        // Integer divide by zero.
        let mut b = KernelBuilder::new("divz");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let zero = b.const_i(0);
        let q = b.div(x, zero);
        b.write(out, q);
        let k = b.finish().unwrap();
        let input: Vec<Scalar> = (0..8).map(Scalar::I32).collect();
        let want = execute_legacy(&k, &[], std::slice::from_ref(&input), &cfg(8)).unwrap_err();
        let got = Tape::compile(&k)
            .execute(&[], &[input], &cfg(8))
            .unwrap_err();
        assert_eq!(got, want);

        // Stream exhaustion under an explicit iteration count.
        let mut b = KernelBuilder::new("exhaust");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        b.write(out, x);
        let k = b.finish().unwrap();
        let input: Vec<Scalar> = (0..8).map(Scalar::I32).collect();
        let tape = Tape::compile(&k);
        let got = tape
            .execute_iters(&[], std::slice::from_ref(&input), 3, &cfg(4))
            .unwrap_err();
        assert_eq!(
            got,
            IrError::StreamExhausted {
                stream: StreamId(0),
                iteration: 2
            }
        );

        // Scratchpad out of bounds.
        let mut b = KernelBuilder::new("oob");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let addr = b.const_i(10_000);
        b.sp_write(addr, x);
        let y = b.sp_read(addr, Ty::I32);
        b.write(out, y);
        let k = b.finish().unwrap();
        let input: Vec<Scalar> = (0..8).map(Scalar::I32).collect();
        let want = execute_legacy(&k, &[], std::slice::from_ref(&input), &cfg(8)).unwrap_err();
        let got = Tape::compile(&k)
            .execute(&[], &[input], &cfg(8))
            .unwrap_err();
        assert_eq!(got, want);

        // Bad COMM source.
        let mut b = KernelBuilder::new("badcomm");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let src = b.const_i(99);
        let v = b.comm(x, src);
        b.write(out, v);
        let k = b.finish().unwrap();
        let input: Vec<Scalar> = (0..8).map(Scalar::I32).collect();
        let want = execute_legacy(&k, &[], std::slice::from_ref(&input), &cfg(8)).unwrap_err();
        let got = Tape::compile(&k)
            .execute(&[], &[input], &cfg(8))
            .unwrap_err();
        assert_eq!(got, want);
    }

    #[test]
    fn ill_typed_input_words_fall_back_to_the_oracle() {
        // Declared i32, fed f32: the legacy interpreter's dynamic typing
        // passes the words through a plain copy kernel untouched.
        let mut b = KernelBuilder::new("id");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        b.write(out, x);
        let k = b.finish().unwrap();
        let input: Vec<Scalar> = (0..8).map(|i| Scalar::F32(i as f32)).collect();
        let want = execute_legacy(&k, &[], std::slice::from_ref(&input), &cfg(8)).unwrap();
        let got = Tape::compile(&k).execute(&[], &[input], &cfg(8)).unwrap();
        assert_eq!(got, want);
        assert_eq!(got[0][3], Scalar::F32(3.0));
    }

    #[test]
    fn fallback_counter_fires_exactly_once_per_wholesale_fallback() {
        // Both wholesale-fallback triggers (ill-typed input words, zero
        // clusters) bump `tape.fallback` exactly once per execute, and the
        // fallen-back result is the oracle's, bit for bit. One test covers
        // both triggers: it is the only test in this crate toggling the
        // process-global trace flag, so it needs no cross-test lock.
        let mut b = KernelBuilder::new("id");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        b.write(out, x);
        let k = b.finish().unwrap();
        let tape = Tape::compile(&k);
        let fallback = stream_trace::counter("tape.fallback");

        stream_trace::enable();

        // Ill-typed input words: declared i32, fed f32.
        let ill: Vec<Scalar> = (0..8).map(|i| Scalar::F32(i as f32)).collect();
        let before = fallback.get();
        let got = tape.execute(&[], std::slice::from_ref(&ill), &cfg(8));
        assert_eq!(fallback.get(), before + 1, "ill-typed fallback count");
        assert_eq!(
            got,
            execute_legacy(&k, &[], std::slice::from_ref(&ill), &cfg(8))
        );

        // Zero clusters: the degenerate no-lane config. Iterations must be
        // explicit — inference already rejects C=0 before the fallback, on
        // both paths, via the shared helper.
        let well: Vec<Scalar> = (0..8).map(Scalar::I32).collect();
        let opts = ExecOptions {
            params: &[],
            sp_init: None,
            iterations: Some(1),
        };
        let before = fallback.get();
        let got = tape.execute_with(&opts, std::slice::from_ref(&well), &cfg(0));
        assert_eq!(fallback.get(), before + 1, "zero-cluster fallback count");
        assert_eq!(
            got,
            execute_with(&k, &opts, std::slice::from_ref(&well), &cfg(0))
        );

        // A well-typed run at a sane config takes the tape path: no bump.
        let before = fallback.get();
        tape.execute(&[], std::slice::from_ref(&well), &cfg(8))
            .unwrap();
        assert_eq!(fallback.get(), before, "tape path must not count");

        stream_trace::disable();
        let _ = stream_trace::take_events();
    }

    #[test]
    fn sp_init_round_trips_through_options() {
        let mut b = KernelBuilder::new("table");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::F32);
        b.require_sp(4);
        let x = b.read(s);
        let three = b.const_i(3);
        let addr = b.and(x, three);
        let v = b.sp_read(addr, Ty::F32);
        b.write(out, v);
        let k = b.finish().unwrap();
        let table = [
            Scalar::F32(10.0),
            Scalar::F32(20.0),
            Scalar::F32(30.0),
            Scalar::F32(40.0),
        ];
        let input: Vec<Scalar> = (0..8).map(Scalar::I32).collect();
        let opts = ExecOptions {
            params: &[],
            sp_init: Some(&table),
            iterations: None,
        };
        let want = execute_with(&k, &opts, std::slice::from_ref(&input), &cfg(4)).unwrap();
        let got = Tape::compile(&k)
            .execute_with(&opts, &[input], &cfg(4))
            .unwrap();
        assert_eq!(got, want);
        assert_eq!(got[0][2], Scalar::F32(30.0));
    }

    #[test]
    fn zero_iterations_yield_empty_outputs() {
        let k = busy_kernel();
        let outs = Tape::compile(&k)
            .execute(&[Scalar::F32(0.0)], &[vec![], vec![]], &cfg(8))
            .unwrap();
        assert!(outs.iter().all(Vec::is_empty));
    }

    #[test]
    fn negative_zero_and_nan_semantics_match_legacy() {
        // -0.0 is falsy (bits are nonzero!) and NaN != NaN; both must flow
        // through Eq/Ne and Select exactly as the tagged interpreter does.
        let mut b = KernelBuilder::new("ieee");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let eq = b.eq(x, x);
        let zero = b.const_f(0.0);
        let isz = b.eq(x, zero);
        let seven = b.const_i(7);
        let nine = b.const_i(9);
        let pick = b.select(isz, seven, nine);
        let r = b.add(eq, pick);
        b.write(out, r);
        let k = b.finish().unwrap();
        let input = vec![
            Scalar::F32(f32::NAN),
            Scalar::F32(-0.0),
            Scalar::F32(0.0),
            Scalar::F32(1.0),
        ];
        let want = execute_legacy(&k, &[], std::slice::from_ref(&input), &cfg(4)).unwrap();
        let got = Tape::compile(&k).execute(&[], &[input], &cfg(4)).unwrap();
        assert_eq!(got, want);
        // NaN: eq=0, not zero -> 9; -0.0: eq=1, == 0.0 -> 7 (i.e. 8).
        let ints: Vec<i32> = got[0].iter().map(|s| s.as_i32().unwrap()).collect();
        assert_eq!(ints, vec![9, 8, 8, 10]);
    }
}
