//! Error types for kernel construction, validation, and execution.

use crate::{StreamId, Ty, ValueId};
use std::error::Error;
use std::fmt;

/// Errors raised while building, validating, or executing a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// Two operands (or an operand and an expected type) disagree.
    TypeMismatch {
        /// The op where the mismatch occurred.
        at: ValueId,
        /// The expected type.
        expected: Ty,
        /// The type found.
        found: Ty,
    },
    /// A recurrence was never bound to a next-iteration value.
    UnboundRecurrence(ValueId),
    /// A kernel input stream ran out of data during execution.
    StreamExhausted {
        /// The exhausted stream.
        stream: StreamId,
        /// The iteration at which it happened.
        iteration: usize,
    },
    /// Input stream length is not a whole number of records.
    RaggedStream {
        /// The offending stream.
        stream: StreamId,
        /// Its length in words.
        words: usize,
        /// The kernel's record width for it.
        record_width: usize,
    },
    /// A scratchpad access fell outside the scratchpad.
    SpOutOfBounds {
        /// The op performing the access.
        at: ValueId,
        /// The address used.
        addr: i32,
        /// Scratchpad capacity in words.
        capacity: usize,
    },
    /// A COMM operation named a cluster outside `0..C`.
    BadCommSource {
        /// The op performing the communication.
        at: ValueId,
        /// The source cluster index computed at runtime.
        src: i32,
        /// The cluster count.
        clusters: usize,
    },
    /// Division by zero (integer).
    DivideByZero(ValueId),
    /// The number of input streams supplied does not match the kernel.
    WrongInputCount {
        /// Streams the kernel declares.
        expected: usize,
        /// Streams supplied.
        found: usize,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::TypeMismatch {
                at,
                expected,
                found,
            } => write!(f, "type mismatch at v{}: expected {expected}, found {found}", at.0),
            IrError::UnboundRecurrence(v) => {
                write!(f, "recurrence v{} was never bound to a next value", v.0)
            }
            IrError::StreamExhausted { stream, iteration } => write!(
                f,
                "input stream s{} exhausted at iteration {iteration}",
                stream.0
            ),
            IrError::RaggedStream {
                stream,
                words,
                record_width,
            } => write!(
                f,
                "input stream s{} has {words} words, not a multiple of its {record_width}-word records",
                stream.0
            ),
            IrError::SpOutOfBounds { at, addr, capacity } => write!(
                f,
                "scratchpad access at v{} out of bounds: address {addr}, capacity {capacity}",
                at.0
            ),
            IrError::BadCommSource { at, src, clusters } => write!(
                f,
                "comm at v{} names cluster {src}, but the machine has {clusters}",
                at.0
            ),
            IrError::DivideByZero(v) => write!(f, "integer divide by zero at v{}", v.0),
            IrError::WrongInputCount { expected, found } => write!(
                f,
                "kernel declares {expected} input streams but {found} were supplied"
            ),
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = IrError::StreamExhausted {
            stream: StreamId(3),
            iteration: 7,
        };
        assert_eq!(e.to_string(), "input stream s3 exhausted at iteration 7");
        let e = IrError::DivideByZero(ValueId(9));
        assert!(e.to_string().contains("v9"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<IrError>();
    }
}
