//! Kernels: straight-line SIMD loop bodies over streams, and the builder
//! used to construct them (the KernelC equivalent).

use crate::{IrError, Op, Opcode, Scalar, StreamDir, StreamId, Ty, ValueId};
use std::collections::BTreeMap;
use std::fmt;
use stream_machine::OpClass;

/// Declaration of one kernel stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamDecl {
    /// Word type of every element word in the stream.
    pub ty: Ty,
    /// Words accessed per loop iteration (the record width). Computed from
    /// the kernel body at [`KernelBuilder::finish`].
    pub record_width: u32,
    /// Whether this stream is accessed conditionally (compacting access
    /// through the intercluster switch).
    pub conditional: bool,
}

/// A compiled-from-source kernel: the body of one stream-program kernel's
/// inner loop, executed SIMD across all clusters.
///
/// Build one with [`KernelBuilder`]; run it with
/// [`execute`](crate::execute); schedule it with the `stream-sched` crate.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    name: String,
    ops: Vec<Op>,
    types: Vec<Ty>,
    inputs: Vec<StreamDecl>,
    outputs: Vec<StreamDecl>,
    recur_next: BTreeMap<ValueId, ValueId>,
    sp_words: u32,
    param_tys: Vec<Ty>,
}

impl Kernel {
    /// The kernel's name (used in reports and Table 2/4 rows).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ops of the loop body, in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The static type of a value.
    pub fn ty(&self, v: ValueId) -> Ty {
        self.types[v.index()]
    }

    /// Input stream declarations.
    pub fn inputs(&self) -> &[StreamDecl] {
        &self.inputs
    }

    /// Output stream declarations.
    pub fn outputs(&self) -> &[StreamDecl] {
        &self.outputs
    }

    /// Scratchpad words this kernel requires per cluster.
    pub fn sp_words(&self) -> u32 {
        self.sp_words
    }

    /// The declared types of the kernel's uniform scalar parameters, in
    /// declaration order.
    pub fn param_tys(&self) -> &[Ty] {
        &self.param_tys
    }

    /// The bound next-iteration value for a recurrence op.
    pub fn recur_next(&self, recurrence: ValueId) -> Option<ValueId> {
        self.recur_next.get(&recurrence).copied()
    }

    /// All `(recurrence, next)` pairs — the loop-carried dependences.
    pub fn recurrences(&self) -> impl Iterator<Item = (ValueId, ValueId)> + '_ {
        self.recur_next.iter().map(|(&r, &n)| (r, n))
    }

    /// The scheduling class of an op (`None` for free ops).
    pub fn class_of(&self, v: ValueId) -> Option<OpClass> {
        let op = &self.ops[v.index()];
        let arg_tys: Vec<Ty> = op.args.iter().map(|&a| self.ty(a)).collect();
        op.opcode.class(self.ty(v), &arg_tys)
    }

    /// Per-iteration operation statistics — one Table 2 row.
    pub fn stats(&self) -> KernelStats {
        let mut by_class: BTreeMap<OpClass, u32> = BTreeMap::new();
        for i in 0..self.ops.len() {
            if let Some(class) = self.class_of(ValueId(i as u32)) {
                *by_class.entry(class).or_insert(0) += 1;
            }
        }
        let count = |c: OpClass| by_class.get(&c).copied().unwrap_or(0);
        let cond = count(OpClass::CondStream);
        KernelStats {
            alu_ops: by_class
                .iter()
                .filter(|(c, _)| c.is_alu_op())
                .map(|(_, n)| n)
                .sum(),
            srf_accesses: count(OpClass::SbRead) + count(OpClass::SbWrite) + cond,
            comms: count(OpClass::Comm) + cond,
            sp_accesses: count(OpClass::SpRead) + count(OpClass::SpWrite),
            by_class,
        }
    }

    /// A human-readable listing of the kernel body, one op per line with
    /// its scheduling class.
    ///
    /// # Examples
    ///
    /// ```
    /// use stream_ir::{KernelBuilder, Ty};
    ///
    /// let mut b = KernelBuilder::new("demo");
    /// let s = b.in_stream(Ty::F32);
    /// let o = b.out_stream(Ty::F32);
    /// let x = b.read(s);
    /// let y = b.mul(x, x);
    /// b.write(o, y);
    /// let k = b.finish()?;
    /// assert!(k.dump().contains("Mul"));
    /// # Ok::<(), stream_ir::IrError>(())
    /// ```
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "kernel {} ({} in, {} out, {} params, {} sp words)",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.param_tys.len(),
            self.sp_words
        );
        for (i, op) in self.ops.iter().enumerate() {
            let v = ValueId(i as u32);
            let args: Vec<String> = op.args.iter().map(ToString::to_string).collect();
            let class = self
                .class_of(v)
                .map(|c| c.to_string())
                .unwrap_or_else(|| "free".to_string());
            let _ = writeln!(
                out,
                "  {v}: {ty} = {opcode:?}({args}) [{class}]",
                ty = self.types[i],
                opcode = op.opcode,
                args = args.join(", ")
            );
        }
        for (r, n) in self.recurrences() {
            let _ = writeln!(out, "  loop: {r} <- {n}");
        }
        out
    }

    /// Program-order accesses to each input (`.0`) and output (`.1`) stream.
    /// The scheduler uses this to keep same-stream pops ordered.
    pub fn stream_access_order(&self) -> (Vec<Vec<ValueId>>, Vec<Vec<ValueId>>) {
        let mut ins: Vec<Vec<ValueId>> = vec![Vec::new(); self.inputs.len()];
        let mut outs: Vec<Vec<ValueId>> = vec![Vec::new(); self.outputs.len()];
        for (i, op) in self.ops.iter().enumerate() {
            if let Some((s, dir)) = op.opcode.stream() {
                match dir {
                    StreamDir::Input => ins[s.index()].push(ValueId(i as u32)),
                    StreamDir::Output => outs[s.index()].push(ValueId(i as u32)),
                }
            }
        }
        (ins, outs)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "kernel {} ({} ops: {} ALU, {} SRF, {} COMM, {} SP)",
            self.name,
            self.ops.len(),
            s.alu_ops,
            s.srf_accesses,
            s.comms,
            s.sp_accesses
        )
    }
}

/// Per-iteration operation counts — the measurements behind Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelStats {
    /// Operations executing on ALUs (the paper's "ALU Ops" column and the
    /// numerator of all GOPS figures).
    pub alu_ops: u32,
    /// SRF accesses: plain stream reads/writes plus conditional-stream
    /// accesses.
    pub srf_accesses: u32,
    /// Intercluster communications: COMM ops plus conditional-stream
    /// accesses (which route through the intercluster switch).
    pub comms: u32,
    /// Scratchpad accesses.
    pub sp_accesses: u32,
    /// Raw per-class counts.
    pub by_class: BTreeMap<OpClass, u32>,
}

impl KernelStats {
    /// Accesses per ALU op, the parenthesized ratios in Table 2.
    pub fn per_alu_op(&self, count: u32) -> f64 {
        f64::from(count) / f64::from(self.alu_ops.max(1))
    }
}

/// Incremental, type-checked construction of a [`Kernel`].
///
/// Arithmetic methods panic on type errors — a kernel with mismatched types
/// is a programming bug in the kernel, not a runtime condition. Structural
/// problems that can only be judged once the body is complete (unbound
/// recurrences, stream shapes) are reported by [`KernelBuilder::finish`].
///
/// # Examples
///
/// ```
/// use stream_ir::{KernelBuilder, Ty};
///
/// // out[i] = a[i] * a[i] + 1.0
/// let mut b = KernelBuilder::new("square_plus_one");
/// let a = b.in_stream(Ty::F32);
/// let out = b.out_stream(Ty::F32);
/// let x = b.read(a);
/// let sq = b.mul(x, x);
/// let one = b.const_f(1.0);
/// let y = b.add(sq, one);
/// b.write(out, y);
/// let kernel = b.finish()?;
/// assert_eq!(kernel.stats().alu_ops, 2);
/// # Ok::<(), stream_ir::IrError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    ops: Vec<Op>,
    types: Vec<Ty>,
    inputs: Vec<(Ty, Option<bool>)>,
    outputs: Vec<(Ty, Option<bool>)>,
    recur_next: BTreeMap<ValueId, Option<ValueId>>,
    sp_words: u32,
    param_tys: Vec<Ty>,
}

impl KernelBuilder {
    /// Starts a new kernel.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ops: Vec::new(),
            types: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            recur_next: BTreeMap::new(),
            sp_words: 0,
            param_tys: Vec::new(),
        }
    }

    /// Declares a uniform scalar parameter of type `ty`, set per invocation.
    pub fn param(&mut self, ty: Ty) -> ValueId {
        let idx = self.param_tys.len() as u32;
        self.param_tys.push(ty);
        self.push(Opcode::Param(idx, ty), vec![], ty)
    }

    /// Declares an input stream of `ty` words.
    pub fn in_stream(&mut self, ty: Ty) -> StreamId {
        self.inputs.push((ty, None));
        StreamId(self.inputs.len() as u32 - 1)
    }

    /// Declares an output stream of `ty` words.
    pub fn out_stream(&mut self, ty: Ty) -> StreamId {
        self.outputs.push((ty, None));
        StreamId(self.outputs.len() as u32 - 1)
    }

    /// Declares that the kernel uses `words` of per-cluster scratchpad.
    pub fn require_sp(&mut self, words: u32) {
        self.sp_words = self.sp_words.max(words);
    }

    fn push(&mut self, opcode: Opcode, args: Vec<ValueId>, ty: Ty) -> ValueId {
        debug_assert_eq!(opcode.arity(), args.len());
        self.ops.push(Op { opcode, args });
        self.types.push(ty);
        ValueId(self.ops.len() as u32 - 1)
    }

    fn ty(&self, v: ValueId) -> Ty {
        self.types[v.index()]
    }

    fn require_ty(&self, v: ValueId, ty: Ty, ctx: &str) {
        assert!(
            self.ty(v) == ty,
            "{}: {} has type {}, expected {}",
            ctx,
            v,
            self.ty(v),
            ty
        );
    }

    fn require_same(&self, a: ValueId, b: ValueId, ctx: &str) -> Ty {
        assert!(
            self.ty(a) == self.ty(b),
            "{}: operand types differ ({}: {}, {}: {})",
            ctx,
            a,
            self.ty(a),
            b,
            self.ty(b)
        );
        self.ty(a)
    }

    fn require_value(&self, v: ValueId, ctx: &str) {
        assert!(v.index() < self.ops.len(), "{ctx}: {v} is not defined yet");
        assert!(
            self.ops[v.index()].opcode.produces_value(),
            "{ctx}: {v} does not produce a value"
        );
    }

    /// Emits a constant.
    pub fn constant(&mut self, value: Scalar) -> ValueId {
        let ty = value.ty();
        self.push(Opcode::Const(value), vec![], ty)
    }

    /// Emits an i32 constant.
    pub fn const_i(&mut self, value: i32) -> ValueId {
        self.constant(Scalar::I32(value))
    }

    /// Emits an f32 constant.
    pub fn const_f(&mut self, value: f32) -> ValueId {
        self.constant(Scalar::F32(value))
    }

    /// The global loop-iteration index (i32).
    pub fn iter_index(&mut self) -> ValueId {
        self.push(Opcode::IterIndex, vec![], Ty::I32)
    }

    /// This cluster's index (i32).
    pub fn cluster_id(&mut self) -> ValueId {
        self.push(Opcode::ClusterId, vec![], Ty::I32)
    }

    /// The cluster count `C` (i32).
    pub fn cluster_count(&mut self) -> ValueId {
        self.push(Opcode::ClusterCount, vec![], Ty::I32)
    }

    /// Declares a loop-carried value initialized to `init`. Bind its
    /// next-iteration value with [`KernelBuilder::bind_next`] before
    /// finishing.
    pub fn recurrence(&mut self, init: Scalar) -> ValueId {
        let ty = init.ty();
        let v = self.push(Opcode::Recur(init), vec![], ty);
        self.recur_next.insert(v, None);
        v
    }

    /// Binds `next` as the value `recurrence` takes on the following
    /// iteration.
    ///
    /// # Panics
    ///
    /// Panics if `recurrence` is not an unbound recurrence or if the types
    /// differ.
    pub fn bind_next(&mut self, recurrence: ValueId, next: ValueId) {
        self.require_value(next, "bind_next");
        let slot = self
            .recur_next
            .get_mut(&recurrence)
            .unwrap_or_else(|| panic!("bind_next: {recurrence} is not a recurrence"));
        assert!(slot.is_none(), "bind_next: {recurrence} already bound");
        assert!(
            self.types[recurrence.index()] == self.types[next.index()],
            "bind_next: recurrence {recurrence} is {}, next {next} is {}",
            self.types[recurrence.index()],
            self.types[next.index()]
        );
        *slot = Some(next);
    }

    fn binary(&mut self, opcode: Opcode, a: ValueId, b: ValueId, ctx: &str) -> ValueId {
        self.require_value(a, ctx);
        self.require_value(b, ctx);
        let ty = self.require_same(a, b, ctx);
        self.push(opcode, vec![a, b], ty)
    }

    fn binary_int(&mut self, opcode: Opcode, a: ValueId, b: ValueId, ctx: &str) -> ValueId {
        self.require_value(a, ctx);
        self.require_value(b, ctx);
        self.require_ty(a, Ty::I32, ctx);
        self.require_ty(b, Ty::I32, ctx);
        self.push(opcode, vec![a, b], Ty::I32)
    }

    fn compare(&mut self, opcode: Opcode, a: ValueId, b: ValueId, ctx: &str) -> ValueId {
        self.require_value(a, ctx);
        self.require_value(b, ctx);
        self.require_same(a, b, ctx);
        self.push(opcode, vec![a, b], Ty::I32)
    }

    /// `a + b`.
    pub fn add(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Opcode::Add, a, b, "add")
    }

    /// `a - b`.
    pub fn sub(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Opcode::Sub, a, b, "sub")
    }

    /// `a * b`.
    pub fn mul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Opcode::Mul, a, b, "mul")
    }

    /// `a / b`.
    pub fn div(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Opcode::Div, a, b, "div")
    }

    /// `min(a, b)`.
    pub fn min(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Opcode::Min, a, b, "min")
    }

    /// `max(a, b)`.
    pub fn max(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(Opcode::Max, a, b, "max")
    }

    /// `sqrt(a)` (f32).
    pub fn sqrt(&mut self, a: ValueId) -> ValueId {
        self.require_value(a, "sqrt");
        self.require_ty(a, Ty::F32, "sqrt");
        self.push(Opcode::Sqrt, vec![a], Ty::F32)
    }

    /// `-a`.
    pub fn neg(&mut self, a: ValueId) -> ValueId {
        self.require_value(a, "neg");
        let ty = self.ty(a);
        self.push(Opcode::Neg, vec![a], ty)
    }

    /// `|a|`.
    pub fn abs(&mut self, a: ValueId) -> ValueId {
        self.require_value(a, "abs");
        let ty = self.ty(a);
        self.push(Opcode::Abs, vec![a], ty)
    }

    /// `floor(a)` (f32).
    pub fn floor(&mut self, a: ValueId) -> ValueId {
        self.require_value(a, "floor");
        self.require_ty(a, Ty::F32, "floor");
        self.push(Opcode::Floor, vec![a], Ty::F32)
    }

    /// Bitwise `a & b` (i32).
    pub fn and(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary_int(Opcode::And, a, b, "and")
    }

    /// Bitwise `a | b` (i32).
    pub fn or(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary_int(Opcode::Or, a, b, "or")
    }

    /// Bitwise `a ^ b` (i32).
    pub fn xor(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary_int(Opcode::Xor, a, b, "xor")
    }

    /// `a << b` (i32).
    pub fn shl(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary_int(Opcode::Shl, a, b, "shl")
    }

    /// `a >> b` (arithmetic, i32).
    pub fn shr(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary_int(Opcode::Shr, a, b, "shr")
    }

    /// `a == b` -> i32 0/1.
    pub fn eq(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.compare(Opcode::Eq, a, b, "eq")
    }

    /// `a != b` -> i32 0/1.
    pub fn ne(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.compare(Opcode::Ne, a, b, "ne")
    }

    /// `a < b` -> i32 0/1.
    pub fn lt(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.compare(Opcode::Lt, a, b, "lt")
    }

    /// `a <= b` -> i32 0/1.
    pub fn le(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.compare(Opcode::Le, a, b, "le")
    }

    /// `cond ? a : b` (cond is i32).
    pub fn select(&mut self, cond: ValueId, a: ValueId, b: ValueId) -> ValueId {
        self.require_value(cond, "select");
        self.require_value(a, "select");
        self.require_value(b, "select");
        self.require_ty(cond, Ty::I32, "select");
        let ty = self.require_same(a, b, "select");
        self.push(Opcode::Select, vec![cond, a, b], ty)
    }

    /// Convert i32 -> f32.
    pub fn itof(&mut self, a: ValueId) -> ValueId {
        self.require_value(a, "itof");
        self.require_ty(a, Ty::I32, "itof");
        self.push(Opcode::ItoF, vec![a], Ty::F32)
    }

    /// Convert f32 -> i32 (truncating).
    pub fn ftoi(&mut self, a: ValueId) -> ValueId {
        self.require_value(a, "ftoi");
        self.require_ty(a, Ty::F32, "ftoi");
        self.push(Opcode::FtoI, vec![a], Ty::I32)
    }

    /// Reads the next word of this cluster's record from input stream `s`.
    pub fn read(&mut self, s: StreamId) -> ValueId {
        let (ty, _) = self.inputs[s.index()];
        self.mark_stream(s, StreamDir::Input, false);
        self.push(Opcode::Read(s), vec![], ty)
    }

    /// Writes `v` as the next word of this cluster's record on output
    /// stream `s`.
    pub fn write(&mut self, s: StreamId, v: ValueId) {
        self.require_value(v, "write");
        let (ty, _) = self.outputs[s.index()];
        self.require_ty(v, ty, "write");
        self.mark_stream(s, StreamDir::Output, false);
        self.push(Opcode::Write(s), vec![v], ty);
    }

    /// Conditional read: clusters whose `pred` is nonzero pop successive
    /// elements of `s` in cluster order; inactive clusters receive zero.
    pub fn cond_read(&mut self, s: StreamId, pred: ValueId) -> ValueId {
        self.require_value(pred, "cond_read");
        self.require_ty(pred, Ty::I32, "cond_read");
        let (ty, _) = self.inputs[s.index()];
        self.mark_stream(s, StreamDir::Input, true);
        self.push(Opcode::CondRead(s), vec![pred], ty)
    }

    /// Conditional write: clusters whose `pred` is nonzero append `v` to
    /// `s` in cluster order.
    pub fn cond_write(&mut self, s: StreamId, pred: ValueId, v: ValueId) {
        self.require_value(pred, "cond_write");
        self.require_value(v, "cond_write");
        self.require_ty(pred, Ty::I32, "cond_write");
        let (ty, _) = self.outputs[s.index()];
        self.require_ty(v, ty, "cond_write");
        self.mark_stream(s, StreamDir::Output, true);
        self.push(Opcode::CondWrite(s), vec![pred, v], ty);
    }

    fn mark_stream(&mut self, s: StreamId, dir: StreamDir, conditional: bool) {
        let decl = match dir {
            StreamDir::Input => &mut self.inputs[s.index()],
            StreamDir::Output => &mut self.outputs[s.index()],
        };
        match decl.1 {
            None => decl.1 = Some(conditional),
            Some(prev) => assert!(
                prev == conditional,
                "stream {s} mixes plain and conditional access"
            ),
        }
    }

    /// Reads scratchpad word `addr` (i32 address) as a `ty` value.
    pub fn sp_read(&mut self, addr: ValueId, ty: Ty) -> ValueId {
        self.require_value(addr, "sp_read");
        self.require_ty(addr, Ty::I32, "sp_read");
        self.push(Opcode::SpRead(ty), vec![addr], ty)
    }

    /// Writes `v` to scratchpad word `addr`.
    pub fn sp_write(&mut self, addr: ValueId, v: ValueId) {
        self.require_value(addr, "sp_write");
        self.require_value(v, "sp_write");
        self.require_ty(addr, Ty::I32, "sp_write");
        let ty = self.ty(v);
        self.push(Opcode::SpWrite, vec![addr, v], ty);
    }

    /// Intercluster communication: every cluster receives `data` from
    /// cluster `src` (an i32 computed per cluster, `0..C`).
    pub fn comm(&mut self, data: ValueId, src: ValueId) -> ValueId {
        self.require_value(data, "comm");
        self.require_value(src, "comm");
        self.require_ty(src, Ty::I32, "comm");
        let ty = self.ty(data);
        self.push(Opcode::Comm, vec![data, src], ty)
    }

    /// Finishes the kernel, running structural validation.
    ///
    /// # Errors
    ///
    /// Returns an error if a recurrence is unbound, a conditional stream has
    /// a record wider than one word, or a declared stream is never accessed.
    pub fn finish(self) -> Result<Kernel, IrError> {
        // Resolve recurrences.
        let mut recur_next = BTreeMap::new();
        for (&r, &next) in &self.recur_next {
            match next {
                Some(n) => {
                    recur_next.insert(r, n);
                }
                None => return Err(IrError::UnboundRecurrence(r)),
            }
        }

        // Compute record widths from access counts.
        let mut in_width = vec![0u32; self.inputs.len()];
        let mut out_width = vec![0u32; self.outputs.len()];
        for op in &self.ops {
            if let Some((s, dir)) = op.opcode.stream() {
                match dir {
                    StreamDir::Input => in_width[s.index()] += 1,
                    StreamDir::Output => out_width[s.index()] += 1,
                }
            }
        }

        let build_decls = |decls: &[(Ty, Option<bool>)], widths: &[u32]| -> Vec<StreamDecl> {
            decls
                .iter()
                .zip(widths)
                .map(|(&(ty, conditional), &record_width)| StreamDecl {
                    ty,
                    record_width,
                    conditional: conditional.unwrap_or(false),
                })
                .collect()
        };

        let kernel = Kernel {
            name: self.name,
            ops: self.ops,
            types: self.types,
            inputs: build_decls(&self.inputs, &in_width),
            outputs: build_decls(&self.outputs, &out_width),
            recur_next,
            sp_words: self.sp_words,
            param_tys: self.param_tys,
        };
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn saxpy() -> Kernel {
        // out = a*x + y, all f32.
        let mut b = KernelBuilder::new("saxpy");
        let x = b.in_stream(Ty::F32);
        let y = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let a = b.const_f(2.5);
        let xv = b.read(x);
        let yv = b.read(y);
        let ax = b.mul(a, xv);
        let r = b.add(ax, yv);
        b.write(out, r);
        b.finish().unwrap()
    }

    #[test]
    fn saxpy_shape() {
        let k = saxpy();
        assert_eq!(k.inputs().len(), 2);
        assert_eq!(k.outputs().len(), 1);
        assert_eq!(k.inputs()[0].record_width, 1);
        assert_eq!(k.outputs()[0].record_width, 1);
        assert!(!k.inputs()[0].conditional);
    }

    #[test]
    fn saxpy_stats() {
        let s = saxpy().stats();
        assert_eq!(s.alu_ops, 2); // mul + add
        assert_eq!(s.srf_accesses, 3); // 2 reads + 1 write
        assert_eq!(s.comms, 0);
        assert_eq!(s.sp_accesses, 0);
        assert!((s.per_alu_op(s.srf_accesses) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn class_of_distinguishes_types() {
        let k = saxpy();
        // v3 = mul (f32) -> FloatMul, v4 = add -> FloatAdd.
        assert_eq!(k.class_of(ValueId(3)), Some(OpClass::FloatMul));
        assert_eq!(k.class_of(ValueId(4)), Some(OpClass::FloatAdd));
        // The constant is free.
        assert_eq!(k.class_of(ValueId(0)), None);
    }

    #[test]
    fn recurrence_must_be_bound() {
        let mut b = KernelBuilder::new("acc");
        let s = b.in_stream(Ty::F32);
        let acc = b.recurrence(Scalar::F32(0.0));
        let x = b.read(s);
        let _sum = b.add(acc, x);
        // forgot bind_next
        let err = b.finish().unwrap_err();
        assert_eq!(err, IrError::UnboundRecurrence(acc));
    }

    #[test]
    fn bound_recurrence_round_trips() {
        let mut b = KernelBuilder::new("acc");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let acc = b.recurrence(Scalar::F32(0.0));
        let x = b.read(s);
        let sum = b.add(acc, x);
        b.bind_next(acc, sum);
        b.write(out, sum);
        let k = b.finish().unwrap();
        assert_eq!(k.recur_next(acc), Some(sum));
        assert_eq!(k.recurrences().count(), 1);
    }

    #[test]
    #[should_panic(expected = "operand types differ")]
    fn type_mismatch_panics_at_build_time() {
        let mut b = KernelBuilder::new("bad");
        let i = b.const_i(1);
        let f = b.const_f(1.0);
        let _ = b.add(i, f);
    }

    #[test]
    #[should_panic(expected = "does not produce a value")]
    fn using_a_write_as_operand_panics() {
        let mut b = KernelBuilder::new("bad");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        b.write(out, x);
        // The write op is the last value id.
        let w = ValueId(1);
        let _ = b.add(w, w);
    }

    #[test]
    #[should_panic(expected = "mixes plain and conditional")]
    fn mixed_stream_access_panics() {
        let mut b = KernelBuilder::new("bad");
        let s = b.in_stream(Ty::I32);
        let _plain = b.read(s);
        let p = b.const_i(1);
        let _cond = b.cond_read(s, p);
    }

    #[test]
    fn multiple_conditional_accesses_are_legal() {
        // Variable-rate kernels (like the rasterizer) append several times
        // per iteration; each conditional access is an independent pop.
        let mut b = KernelBuilder::new("multi");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let p = b.const_i(1);
        b.cond_write(out, p, x);
        b.cond_write(out, p, x);
        let k = b.finish().unwrap();
        assert!(k.outputs()[0].conditional);
        assert_eq!(k.outputs()[0].record_width, 2);
    }

    #[test]
    fn multi_word_records_counted() {
        let mut b = KernelBuilder::new("wide");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let a = b.read(s);
        let c = b.read(s);
        let r = b.add(a, c);
        b.write(out, r);
        let k = b.finish().unwrap();
        assert_eq!(k.inputs()[0].record_width, 2);
        let (ins, outs) = k.stream_access_order();
        assert_eq!(ins[0].len(), 2);
        assert_eq!(outs[0].len(), 1);
    }

    #[test]
    fn display_summarizes() {
        let k = saxpy();
        let s = k.to_string();
        assert!(s.contains("saxpy"));
        assert!(s.contains("2 ALU"));
    }

    #[test]
    fn comm_and_sp_counted_in_stats() {
        let mut b = KernelBuilder::new("mix");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        b.require_sp(16);
        let x = b.read(s);
        let cid = b.cluster_id();
        let v = b.comm(x, cid);
        let addr = b.const_i(3);
        b.sp_write(addr, v);
        let y = b.sp_read(addr, Ty::I32);
        b.write(out, y);
        let k = b.finish().unwrap();
        let st = k.stats();
        assert_eq!(st.comms, 1);
        assert_eq!(st.sp_accesses, 2);
        assert_eq!(k.sp_words(), 16);
    }
}
