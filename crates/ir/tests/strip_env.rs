//! Own-process checks of `STREAM_TAPE_STRIPS` handling. The override is
//! read once per process through a `OnceLock`, so each case re-executes
//! this test binary with a different value and asserts on the child's
//! planner behavior and (in debug builds) its stderr diagnostics —
//! out-of-range or unrecognized values must be *reported and ignored*,
//! never silently clamped.

use std::process::Command;
use stream_ir::{probe_planned_strips, KernelBuilder, Tape, Ty};

fn eligible_tape() -> Tape {
    let mut b = KernelBuilder::new("copy");
    let s = b.in_stream(Ty::I32);
    let out = b.out_stream(Ty::I32);
    let x = b.read(s);
    b.write(out, x);
    Tape::compile(&b.finish().unwrap())
}

fn rerun_self(strips_value: &str, expect: &str) -> std::process::Output {
    let exe = std::env::current_exe().expect("test binary path");
    Command::new(exe)
        .args(["strip_override_env_handling", "--exact", "--nocapture"])
        .env("STREAM_TAPE_STRIPS", strips_value)
        .env("STRIP_ENV_EXPECT", expect)
        .output()
        .expect("re-running the test binary")
}

#[test]
fn strip_override_env_handling() {
    // Child mode: STREAM_TAPE_STRIPS is already set; probe the planner.
    if let Ok(expect) = std::env::var("STRIP_ENV_EXPECT") {
        let tape = eligible_tape();
        let strips = probe_planned_strips(&tape, 1 << 20, 4);
        match expect.as_str() {
            "count" => {
                // The parent asked for 3 strips; honored whenever this
                // host's permit pool can cover 2 extra workers.
                let max = stream_pool::global().available() + 1;
                if max >= 3 {
                    assert_eq!(strips, 3, "exact numeric override must be honored");
                } else {
                    assert_eq!(strips, 1, "underprovisioned host must reject, not clamp");
                }
            }
            "ignored" => {
                // The override was invalid: Auto planning resumed, which
                // on this workload always strips if any permit is free.
                assert!(strips >= 1);
                assert_ne!(strips, 99999, "out-of-range count must not be used");
            }
            other => panic!("unknown expectation {other:?}"),
        }
        return;
    }

    // Parent mode: drive one child process per env value.
    let ok = rerun_self("3", "count");
    assert!(
        ok.status.success(),
        "numeric override child failed:\n{}",
        String::from_utf8_lossy(&ok.stderr)
    );

    for (value, needle) in [
        ("0", "out of range"),
        ("99999", "out of range"),
        ("sideways", "unrecognized"),
    ] {
        let out = rerun_self(value, "ignored");
        assert!(
            out.status.success(),
            "child with STREAM_TAPE_STRIPS={value} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        if cfg!(debug_assertions) {
            assert!(
                stderr.contains(needle),
                "STREAM_TAPE_STRIPS={value} must be diagnosed with {needle:?}, got:\n{stderr}"
            );
        }
    }
}
