//! End-to-end differential tests for the native (tier-3) tape backend.
//!
//! The in-process tests assert bit-exact agreement between the legacy
//! oracle, the interpreter tiers, and forced-native execution. The
//! process-wide counters (`native_stats`) and the environment overrides
//! (`STREAM_TAPE_NATIVE`, `STREAM_TAPE_RUSTC`) are read once per process,
//! so those cases re-execute this test binary with a controlled
//! environment — the same own-process pattern as `strip_env.rs` — and
//! assert on the child's exact counters and diagnostics.

use std::process::Command;
use stream_ir::{
    execute_with_legacy, native_stats, ExecConfig, ExecOptions, Kernel, KernelBuilder, NativeMode,
    Scalar, StripMode, Tape, Ty,
};

fn cfg(c: usize) -> ExecConfig {
    ExecConfig::with_clusters(c)
}

fn opts(params: &[Scalar]) -> ExecOptions<'_> {
    ExecOptions {
        params,
        sp_init: None,
        iterations: None,
    }
}

/// `a*x + y` over f32 streams: fused multiply-add shapes, strip-eligible.
fn saxpy() -> Kernel {
    let mut b = KernelBuilder::new("saxpy");
    let a = b.param(Ty::F32);
    let xs = b.in_stream(Ty::F32);
    let ys = b.in_stream(Ty::F32);
    let out = b.out_stream(Ty::F32);
    let x = b.read(xs);
    let y = b.read(ys);
    let ax = b.mul(a, x);
    let r = b.add(ax, y);
    b.write(out, r);
    b.finish().unwrap()
}

/// Recurrence + scratchpad + inter-cluster comm + a conditional output:
/// every stateful feature the native body must reproduce exactly.
fn busy() -> Kernel {
    let mut b = KernelBuilder::new("busy");
    let xs = b.in_stream(Ty::I32);
    let plain_out = b.out_stream(Ty::I32);
    let cond_out = b.out_stream(Ty::I32);
    b.require_sp(4);
    let x = b.read(xs);
    let acc = b.recurrence(Scalar::I32(1));
    let sum = b.add(acc, x);
    b.bind_next(acc, sum);
    let three = b.const_i(3);
    let addr = b.and(x, three);
    let prev = b.sp_read(addr, Ty::I32);
    let stored = b.add(prev, x);
    b.sp_write(addr, stored);
    // Rotate each cluster's running sum to its left neighbor.
    let cid = b.cluster_id();
    let one = b.const_i(1);
    let zero = b.const_i(0);
    let cc = b.cluster_count();
    let nxt = b.add(cid, one);
    let in_range = b.lt(nxt, cc);
    let src = b.select(in_range, nxt, zero);
    let rot = b.comm(sum, src);
    let r1 = b.add(rot, stored);
    b.write(plain_out, r1);
    let is_odd = b.and(x, one);
    b.cond_write(cond_out, is_odd, sum);
    b.finish().unwrap()
}

/// Integer division whose divisor stream can carry a zero.
fn divider() -> Kernel {
    let mut b = KernelBuilder::new("divider");
    let num = b.in_stream(Ty::I32);
    let den = b.in_stream(Ty::I32);
    let out = b.out_stream(Ty::I32);
    let n = b.read(num);
    let d = b.read(den);
    let q = b.div(n, d);
    b.write(out, q);
    b.finish().unwrap()
}

fn i32s(vals: impl IntoIterator<Item = i32>) -> Vec<Scalar> {
    vals.into_iter().map(Scalar::I32).collect()
}

fn f32s(vals: impl IntoIterator<Item = f32>) -> Vec<Scalar> {
    vals.into_iter().map(Scalar::F32).collect()
}

fn saxpy_inputs(iters: usize, c: usize) -> Vec<Vec<Scalar>> {
    let n = iters * c;
    vec![
        f32s((0..n).map(|i| (i as f32).mul_add(0.37, -4.0))),
        f32s((0..n).map(|i| 1.0 - i as f32 * 0.11)),
    ]
}

fn busy_inputs(iters: usize, c: usize) -> Vec<Vec<Scalar>> {
    vec![i32s(
        (0..iters * c).map(|i| (i as i32).wrapping_mul(2654435761u32 as i32) >> 3),
    )]
}

/// Forced-native execution must agree with the legacy oracle bit-for-bit,
/// at every cluster count, on both value results and error results.
#[test]
fn force_native_matches_legacy() {
    let sk = saxpy();
    let bk = busy();
    let st = Tape::compile(&sk).with_native_mode(NativeMode::Force);
    let bt = Tape::compile(&bk).with_native_mode(NativeMode::Force);
    let params = [Scalar::F32(2.5)];
    for c in [1usize, 3, 4, 8, 16] {
        let si = saxpy_inputs(7, c);
        let want = execute_with_legacy(&sk, &opts(&params), &si, &cfg(c)).unwrap();
        assert_eq!(
            st.execute(&params, &si, &cfg(c)).unwrap(),
            want,
            "saxpy c={c}"
        );

        let bi = busy_inputs(9, c);
        let want = execute_with_legacy(&bk, &opts(&[]), &bi, &cfg(c)).unwrap();
        assert_eq!(bt.execute(&[], &bi, &cfg(c)).unwrap(), want, "busy c={c}");
    }
}

/// A forced-strip clone of a forced-native tape must stay bit-identical to
/// the serial schedule (the strips call the same compiled module with
/// per-strip iteration windows).
#[test]
fn forced_strips_stay_bit_identical() {
    let k = saxpy();
    let tape = Tape::compile(&k).with_native_mode(NativeMode::Force);
    let forced = tape.clone().with_strip_mode(StripMode::Force);
    let params = [Scalar::F32(-1.125)];
    for c in [1usize, 4, 8] {
        let inputs = saxpy_inputs(23, c);
        let serial = tape.execute(&params, &inputs, &cfg(c)).unwrap();
        let striped = forced.execute(&params, &inputs, &cfg(c)).unwrap();
        assert_eq!(serial, striped, "c={c}");
    }
}

/// Errors must carry the same values and the same (earliest) iteration as
/// the oracle: stream exhaustion past the end of input, and a mid-stream
/// divide-by-zero, serial and strip-parallel.
#[test]
fn native_errors_match_legacy() {
    let sk = saxpy();
    let st = Tape::compile(&sk).with_native_mode(NativeMode::Force);
    let forced = st.clone().with_strip_mode(StripMode::Force);
    let params = [Scalar::F32(0.5)];
    for c in [1usize, 4, 8] {
        let inputs = saxpy_inputs(6, c);
        let o = ExecOptions {
            params: &params,
            sp_init: None,
            iterations: Some(9),
        };
        let want = execute_with_legacy(&sk, &o, &inputs, &cfg(c));
        assert!(want.is_err(), "starved run must fail");
        assert_eq!(st.execute_with(&o, &inputs, &cfg(c)), want, "serial c={c}");
        assert_eq!(
            forced.execute_with(&o, &inputs, &cfg(c)),
            want,
            "strips c={c}"
        );
    }

    let dk = divider();
    let dt = Tape::compile(&dk).with_native_mode(NativeMode::Force);
    for c in [1usize, 4] {
        let num = i32s((0..8 * c as i32).map(|i| i * 3 + 1));
        let den = i32s((0..8 * c as i32).map(|i| if i == 5 { 0 } else { i + 1 }));
        let inputs = vec![num, den];
        let want = execute_with_legacy(&dk, &opts(&[]), &inputs, &cfg(c));
        assert!(want.is_err(), "divide by zero must fail");
        assert_eq!(dt.execute(&[], &inputs, &cfg(c)), want, "c={c}");
    }

    // The busy kernel is not strip-eligible; starve it too (recurrence +
    // scratchpad state must be exact up to the failing iteration).
    let bk = busy();
    let bt = Tape::compile(&bk).with_native_mode(NativeMode::Force);
    for c in [1usize, 3] {
        let inputs = busy_inputs(4, c);
        let o = ExecOptions {
            params: &[],
            sp_init: None,
            iterations: Some(6),
        };
        let want = execute_with_legacy(&bk, &o, &inputs, &cfg(c));
        assert!(want.is_err());
        assert_eq!(bt.execute_with(&o, &inputs, &cfg(c)), want, "c={c}");
    }
}

/// Drives one child process per environment configuration and asserts its
/// exact counters (the overrides and stats are per-process one-shots).
#[test]
fn native_env_and_counters() {
    if let Ok(mode) = std::env::var("NATIVE_ENV_CHILD") {
        child(&mode);
        return;
    }

    let run = |mode: &str, envs: &[(&str, &str)]| {
        let exe = std::env::current_exe().expect("test binary path");
        let mut cmd = Command::new(exe);
        cmd.args(["native_env_and_counters", "--exact", "--nocapture"])
            .env("NATIVE_ENV_CHILD", mode);
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let out = cmd.output().expect("re-running the test binary");
        assert!(
            out.status.success(),
            "child mode {mode} failed:\nstdout:\n{}\nstderr:\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stderr).into_owned()
    };

    // Forced native: one rustc invocation per distinct tape, reused across
    // cluster counts, repeat executes, and strip-mode clones.
    run("force", &[]);

    // STREAM_TAPE_NATIVE=off: a hot Auto tape must never build.
    run("off", &[("STREAM_TAPE_NATIVE", "off")]);

    // STREAM_TAPE_NATIVE=on: an Auto tape builds at first execute.
    run("on", &[("STREAM_TAPE_NATIVE", "on")]);

    // Auto with no override: cold tapes interpret, hot tapes build.
    run("warmup", &[]);

    // Sabotaged toolchain: results identical, fallback diagnosed once.
    let stderr = run(
        "sabotage",
        &[("STREAM_TAPE_RUSTC", "/nonexistent/stream-rustc")],
    );
    assert!(
        stderr.contains("native backend fallback"),
        "sabotaged child must diagnose the fallback, got:\n{stderr}"
    );

    // Persistent tier: a second process over the same store rehydrates the
    // artifact instead of re-invoking rustc.
    let store = std::env::temp_dir().join(format!("stream-native-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let store_str = store.to_str().expect("utf-8 temp path");
    run("disk-cold", &[("NATIVE_ENV_STORE", store_str)]);
    run("disk-warm", &[("NATIVE_ENV_STORE", store_str)]);
    let _ = std::fs::remove_dir_all(&store);
}

fn child(mode: &str) {
    let k = saxpy();
    let params = [Scalar::F32(3.0)];
    match mode {
        "force" => {
            let tape = Tape::compile(&k).with_native_mode(NativeMode::Force);
            let striped = tape.clone().with_strip_mode(StripMode::Force);
            for c in [1usize, 8] {
                let inputs = saxpy_inputs(11, c);
                let want = execute_with_legacy(&k, &opts(&params), &inputs, &cfg(c)).unwrap();
                for _ in 0..3 {
                    assert_eq!(tape.execute(&params, &inputs, &cfg(c)).unwrap(), want);
                    assert_eq!(striped.execute(&params, &inputs, &cfg(c)).unwrap(), want);
                }
            }
            let s = native_stats();
            assert_eq!(s.compiles, 1, "one distinct tape, one rustc invocation");
            assert_eq!(s.fallbacks, 0);
            assert_eq!(s.disk_hits, 0, "no persistent tier attached");
        }
        "off" => {
            let tape = Tape::compile(&k); // NativeMode::Auto
            hot_loop(&tape, &k, &params);
            let s = native_stats();
            assert_eq!(s.compiles, 0, "off override must never build");
            assert_eq!(s.fallbacks, 0);
        }
        "on" => {
            let tape = Tape::compile(&k);
            let c = 8;
            let inputs = saxpy_inputs(4, c);
            let want = execute_with_legacy(&k, &opts(&params), &inputs, &cfg(c)).unwrap();
            assert_eq!(tape.execute(&params, &inputs, &cfg(c)).unwrap(), want);
            let s = native_stats();
            assert_eq!(s.compiles, 1, "on override builds at first execute");
            assert_eq!(s.fallbacks, 0);
        }
        "warmup" => {
            let tape = Tape::compile(&k);
            let c = 8;
            // Cold: a few small executes stay interpreted.
            let inputs = saxpy_inputs(4, c);
            for _ in 0..3 {
                tape.execute(&params, &inputs, &cfg(c)).unwrap();
            }
            assert_eq!(native_stats().compiles, 0, "cold tape must not build");
            hot_loop(&tape, &k, &params);
            let s = native_stats();
            assert_eq!(s.compiles, 1, "hot tape must build exactly once");
            assert_eq!(s.fallbacks, 0);
        }
        "sabotage" => {
            let tape = Tape::compile(&k).with_native_mode(NativeMode::Force);
            for c in [1usize, 8] {
                let inputs = saxpy_inputs(11, c);
                let want = execute_with_legacy(&k, &opts(&params), &inputs, &cfg(c)).unwrap();
                assert_eq!(tape.execute(&params, &inputs, &cfg(c)).unwrap(), want);
            }
            let s = native_stats();
            assert_eq!(s.compiles, 0, "sabotaged rustc cannot have built");
            assert_eq!(s.fallbacks, 1, "fallback is diagnosed and counted once");
        }
        "disk-cold" | "disk-warm" => {
            let store = std::env::var("NATIVE_ENV_STORE").expect("store path");
            assert!(stream_ir::attach_native_disk(store.as_ref()).expect("attach store"));
            let tape = Tape::compile(&k).with_native_mode(NativeMode::Force);
            let c = 8;
            let inputs = saxpy_inputs(11, c);
            let want = execute_with_legacy(&k, &opts(&params), &inputs, &cfg(c)).unwrap();
            assert_eq!(tape.execute(&params, &inputs, &cfg(c)).unwrap(), want);
            let s = native_stats();
            assert_eq!(s.fallbacks, 0);
            if mode == "disk-cold" {
                assert_eq!((s.compiles, s.disk_hits), (1, 0), "cold store must compile");
            } else {
                assert_eq!(
                    (s.compiles, s.disk_hits),
                    (0, 1),
                    "warm restart must rehydrate without invoking rustc"
                );
            }
        }
        other => panic!("unknown child mode {other:?}"),
    }
}

/// Executes enough big calls that Auto mode's warm-up gate opens.
fn hot_loop(tape: &Tape, k: &Kernel, params: &[Scalar]) {
    let c = 8;
    let inputs = saxpy_inputs(1024, c);
    let want = execute_with_legacy(k, &opts(params), &inputs, &cfg(c)).unwrap();
    for _ in 0..20 {
        assert_eq!(tape.execute(params, &inputs, &cfg(c)).unwrap(), want);
    }
}
