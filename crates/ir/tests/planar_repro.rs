//! Regression cases for the planar tape layout: kernels whose mixed
//! single-use/multi-use reads once miscompiled under `planar: true`,
//! each checked bit-exact against the legacy interpreter.

use stream_ir::{execute_legacy, ExecConfig, KernelBuilder, Scalar, Tape, TapeConfig, Ty};

#[test]
fn mixed_planarity_read2() {
    let mut b = KernelBuilder::new("mixed");
    let sa = b.in_stream(Ty::I32);
    let sb = b.in_stream(Ty::I32);
    let out = b.out_stream(Ty::I32);
    let ra = b.read(sa); // 2 uses -> stays plain Read
    let rb = b.read(sb); // 2 uses -> stays plain Read
    let rb2 = b.read(sb); // single use -> fused into BinRL(sb)
    let t = b.add(ra, ra);
    let u = b.add(rb, rb);
    let v = b.add(rb2, t);
    let w1 = b.add(u, v);
    b.write(out, w1);
    let k = b.finish().unwrap();

    let n = 8usize;
    let a_in: Vec<Scalar> = (0..n as i32).map(Scalar::I32).collect();
    // sb is read twice per iteration (record width 2), so it needs
    // 2 * n words for the same iteration count as sa.
    let b_in: Vec<Scalar> = (0..2 * n as i32).map(|i| Scalar::I32(i * 10)).collect();
    let inputs = vec![a_in, b_in];
    let cfg = ExecConfig::with_clusters(4);
    let want = execute_legacy(&k, &[], &inputs, &cfg).unwrap();

    let planar = Tape::compile_with(
        &k,
        TapeConfig {
            planar: true,
            ..TapeConfig::default()
        },
    );
    let got = planar.execute(&[], &inputs, &cfg);
    assert_eq!(got, Ok(want));
}
