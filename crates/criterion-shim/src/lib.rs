#![warn(missing_docs)]
//! A minimal, dependency-free stand-in for the [`criterion`] benchmark
//! harness so `cargo bench` works in network-isolated environments.
//!
//! Each `bench_function` call runs its routine `sample_size` times (after
//! one warm-up) and prints the mean wall-clock time. There are no
//! statistical analyses, plots, or baselines — install the real crate for
//! those. The API surface mirrors the subset this workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility and
/// otherwise ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Drives one benchmark's iterations.
pub struct Bencher {
    samples: u32,
    /// Mean duration of one routine call, filled in by `iter`/`iter_batched`.
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, running one warm-up call then `sample_size` timed
    /// calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.samples.max(1));
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = Some(total / self.samples.max(1));
    }
}

fn run_one(label: &str, samples: u32, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        mean: None,
    };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("bench {label:<48} {mean:>12.2?}/iter ({samples} samples)"),
        None => println!("bench {label:<48} (no measurement recorded)"),
    }
}

/// The benchmark registry and runner.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Configures `criterion_group!`-level defaults (API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    /// Accepted for API compatibility; the shim always runs exactly
    /// `sample_size` samples regardless of target measurement time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Registers and immediately runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.as_ref()),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_a_mean() {
        let mut b = Bencher {
            samples: 3,
            mean: None,
        };
        b.iter(|| 2 + 2);
        assert!(b.mean.is_some());
    }

    #[test]
    fn iter_batched_records_a_mean() {
        let mut b = Bencher {
            samples: 3,
            mean: None,
        };
        b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(b.mean.is_some());
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).bench_function("one", |b| b.iter(|| 1));
        g.finish();
        c.bench_function("two", |b| b.iter(|| 2));
    }
}
