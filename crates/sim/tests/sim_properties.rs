//! Property-based tests of the timing engine: random stream programs never
//! panic, obey causality, and respond monotonically to resources.

use proptest::prelude::*;
use stream_ir::{KernelBuilder, Ty};
use stream_machine::{Machine, SystemParams};
use stream_sched::CompiledKernel;
use stream_sim::{simulate, ProgramBuilder, StreamProgram, StreamVar};

fn work_kernel(machine: &Machine, flops: usize) -> CompiledKernel {
    let mut kb = KernelBuilder::new("work");
    let s = kb.in_stream(Ty::F32);
    let o = kb.out_stream(Ty::F32);
    let x = kb.read(s);
    let mut acc = x;
    for _ in 0..flops {
        acc = kb.add(acc, x);
    }
    kb.write(o, acc);
    CompiledKernel::compile_default(&kb.finish().unwrap(), machine).unwrap()
}

/// A random but well-formed program: a chain of load -> kernel -> ...
/// with occasional stores, sized to fit the baseline SRF.
fn random_program(machine: &Machine, script: &[u8]) -> StreamProgram {
    let kernel = work_kernel(machine, 8);
    let mut p = ProgramBuilder::new();
    let mut live: Vec<StreamVar> = Vec::new();
    for &op in script {
        match op % 4 {
            0 | 1 => {
                let words = 64 * (1 + u64::from(op % 8));
                live.push(p.load(format!("l{op}"), words));
            }
            2 => {
                if let Some(&src) = live.last() {
                    let words = 256u64;
                    let outs = p.kernel(&kernel, &[src], &[words], words);
                    live.push(outs[0]);
                }
            }
            _ => {
                if let Some(src) = live.pop() {
                    p.store(src);
                }
            }
        }
        if live.len() > 8 {
            // Keep the resident set bounded.
            let src = live.remove(0);
            p.store(src);
        }
    }
    for src in live {
        p.store(src);
    }
    p.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random programs simulate without error and respect causality: every
    /// instruction ends after it starts, and total time covers them all.
    #[test]
    fn random_programs_are_causal(script in proptest::collection::vec(any::<u8>(), 1..40)) {
        let machine = Machine::baseline();
        let program = random_program(&machine, &script);
        let r = simulate(&program, &machine, &SystemParams::paper_2007()).unwrap();
        for t in &r.timeline {
            prop_assert!(t.end >= t.start);
            prop_assert!(t.end <= r.cycles);
        }
        prop_assert!(r.peak_srf_words <= machine.srf_total_words());
    }

    /// Faster memory never makes a program slower.
    #[test]
    fn memory_bandwidth_is_monotone(script in proptest::collection::vec(any::<u8>(), 1..32)) {
        let machine = Machine::baseline();
        let program = random_program(&machine, &script);
        let slow = SystemParams {
            memory_words_per_cycle: 2.0,
            ..SystemParams::paper_2007()
        };
        let fast = SystemParams {
            memory_words_per_cycle: 8.0,
            ..SystemParams::paper_2007()
        };
        let r_slow = simulate(&program, &machine, &slow).unwrap();
        let r_fast = simulate(&program, &machine, &fast).unwrap();
        prop_assert!(r_fast.cycles <= r_slow.cycles);
    }

    /// A faster host issue channel never slows a program down.
    #[test]
    fn host_bandwidth_is_monotone(script in proptest::collection::vec(any::<u8>(), 1..32)) {
        let machine = Machine::baseline();
        let program = random_program(&machine, &script);
        let slow = SystemParams {
            host_bytes_per_cycle: 1.0,
            ..SystemParams::paper_2007()
        };
        let fast = SystemParams {
            host_bytes_per_cycle: 8.0,
            ..SystemParams::paper_2007()
        };
        let r_slow = simulate(&program, &machine, &slow).unwrap();
        let r_fast = simulate(&program, &machine, &fast).unwrap();
        prop_assert!(r_fast.cycles <= r_slow.cycles);
    }

    /// Busy accounting never exceeds wall-clock integrals: kernel busy time
    /// fits in total time (kernels serialize on one microcontroller).
    #[test]
    fn busy_time_is_conservative(script in proptest::collection::vec(any::<u8>(), 1..40)) {
        let machine = Machine::baseline();
        let program = random_program(&machine, &script);
        let r = simulate(&program, &machine, &SystemParams::paper_2007()).unwrap();
        prop_assert!(r.kernel_busy <= r.cycles);
        prop_assert!(r.memory_busy <= r.cycles);
        prop_assert!(r.cluster_utilization() <= 1.0 + 1e-9);
    }

    /// Lengthening a stream never shortens a kernel call.
    #[test]
    fn call_cycles_monotone_in_records(records in 1u64..100_000) {
        let machine = Machine::baseline();
        let k = work_kernel(&machine, 8);
        prop_assert!(k.call_cycles(records) <= k.call_cycles(records + 64));
        prop_assert!(k.inner_loop_cycles(records) <= k.call_cycles(records));
    }
}
