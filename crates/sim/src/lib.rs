#![warn(missing_docs)]
//! Stream-level cycle simulator for stream processors.
//!
//! Reproduces the timing methodology of the paper's Section 5 application
//! evaluation: applications are [`StreamProgram`]s — host-issued sequences
//! of memory loads/stores and kernel invocations over SRF-resident streams —
//! timed by [`simulate`] against:
//!
//! * a **streaming memory system** (16 GB/s bandwidth server with 55-cycle
//!   latency),
//! * a **host channel** (2 GB/s stream-instruction issue),
//! * the **cluster array** (kernels serialize on the microcontroller; each
//!   call is costed from its compiled modulo schedule, including pipeline
//!   fill, software-pipeline priming and drain — the short-stream effects
//!   of Section 5.3),
//! * the **SRF capacity** (programs whose working set exceeds it must
//!   strip-mine; the simulator reports the overflow).
//!
//! Functional results come from executing the same kernels in the
//! `stream-ir` interpreter; this crate is deliberately timing-only, so
//! applications pair a functional pass with a timing pass over identical
//! stream structures.

mod engine;
mod program;

pub use engine::{fits_in_srf, simulate, Bottleneck, InstrTiming, SimError, SimReport};
pub use program::{AccessPattern, ProgramBuilder, StreamInstr, StreamProgram, StreamVar};
