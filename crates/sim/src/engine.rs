//! The stream-level timing engine: a scoreboarded stream controller over a
//! bandwidth/latency memory system, an in-order host issue channel, and the
//! SIMD cluster array (Section 5's simulated system: 1 GHz, 16 GB/s memory,
//! 2 GB/s host channel).
//!
//! Memory transfers overlap kernel execution (the paper's application-level
//! concurrency); kernels serialize on the single microcontroller; SRF
//! residency is checked against the machine's capacity — programs that
//! exceed it must strip-mine or spill, which is an application decision.

use crate::{AccessPattern, StreamInstr, StreamProgram, StreamVar};
use std::error::Error;
use std::fmt;
use stream_machine::{Machine, SystemParams};

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program's peak SRF residency exceeds the machine's capacity.
    SrfOverflow {
        /// Peak resident words.
        peak: u64,
        /// SRF capacity in words.
        capacity: u64,
    },
    /// An instruction consumed a stream that was never produced.
    UseBeforeDef(StreamVar),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SrfOverflow { peak, capacity } => write!(
                f,
                "srf overflow: peak residency {peak} words exceeds capacity {capacity}"
            ),
            SimError::UseBeforeDef(s) => write!(f, "stream {s} used before definition"),
        }
    }
}

impl Error for SimError {}

/// Start/completion times of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrTiming {
    /// Cycle the instruction began executing.
    pub start: u64,
    /// Cycle its results became available.
    pub end: u64,
}

/// The outcome of simulating one stream program.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total execution time in cycles.
    pub cycles: u64,
    /// Cycles the cluster array was running kernels.
    pub kernel_busy: u64,
    /// Cycles the memory channel moved data.
    pub memory_busy: u64,
    /// Peak SRF residency in words.
    pub peak_srf_words: u64,
    /// Total ALU operations executed.
    pub alu_ops: u64,
    /// Cycles the host channel spent issuing stream instructions.
    pub host_busy: u64,
    /// Per-instruction timeline.
    pub timeline: Vec<InstrTiming>,
}

impl SimReport {
    /// Sustained GOPS at `clock_ghz` (ALU operations only, matching the
    /// paper's accounting).
    pub fn gops(&self, clock_ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.alu_ops as f64 * clock_ghz / self.cycles as f64
    }

    /// Fraction of time the cluster array was busy.
    pub fn cluster_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.kernel_busy as f64 / self.cycles as f64
    }

    /// Which resource dominated this run.
    pub fn bottleneck(&self) -> Bottleneck {
        let k = self.kernel_busy;
        let m = self.memory_busy;
        let h = self.host_busy;
        if k >= m && k >= h {
            Bottleneck::Clusters
        } else if m >= h {
            Bottleneck::Memory
        } else {
            Bottleneck::Host
        }
    }

    /// A one-line summary of where the time went.
    pub fn summary(&self) -> String {
        format!(
            "{} cycles ({:?}-bound): clusters {:.0}%, memory {:.0}%, host {:.0}%; peak SRF {} words",
            self.cycles,
            self.bottleneck(),
            100.0 * self.kernel_busy as f64 / self.cycles.max(1) as f64,
            100.0 * self.memory_busy as f64 / self.cycles.max(1) as f64,
            100.0 * self.host_busy as f64 / self.cycles.max(1) as f64,
            self.peak_srf_words
        )
    }
}

/// The resource that bounded a simulation (largest busy time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Kernel execution on the cluster array.
    Clusters,
    /// External memory bandwidth.
    Memory,
    /// Host stream-instruction issue.
    Host,
}

/// Simulates `program` on `machine` under `system` parameters.
///
/// # Errors
///
/// Returns [`SimError::SrfOverflow`] if the program's working set exceeds
/// the SRF (the caller should strip-mine), or
/// [`SimError::UseBeforeDef`] for malformed programs.
pub fn simulate(
    program: &StreamProgram,
    machine: &Machine,
    system: &SystemParams,
) -> Result<SimReport, SimError> {
    // This engine is analytic (one scoreboard pass over the instruction
    // list, not a per-cycle loop), so one span covers the whole call; stall
    // causes accumulate in plain locals and reach the trace registry once,
    // at the end.
    let mut sim_span = stream_trace::span("sim", "simulate");
    sim_span.arg("instrs", program.instrs().len());
    let mut stalls = [0u64; 4]; // host, data, memory, clusters

    let n_streams = program.stream_count();
    // Completion time of each stream's producer, and the producing/last-
    // consuming instruction indices for residency intervals.
    let mut ready: Vec<Option<u64>> = vec![None; n_streams];
    let mut produced_at: Vec<Option<u64>> = vec![None; n_streams];
    let mut last_use_end: Vec<u64> = vec![0; n_streams];

    let issue_cycles = system.host_issue_cycles();
    let mut issue_done = 0u64;
    let mut mem_bw_free = 0u64;
    let mut clusters_free = 0u64;
    let mut kernel_busy = 0u64;
    let mut memory_busy = 0u64;
    let mut timeline = Vec::with_capacity(program.instrs().len());

    for instr in program.instrs() {
        issue_done += issue_cycles;
        let timing = match instr {
            StreamInstr::Resident { dst, .. } => {
                ready[dst.0 as usize] = Some(0);
                produced_at[dst.0 as usize] = Some(0);
                InstrTiming { start: 0, end: 0 }
            }
            StreamInstr::Load {
                dst,
                words,
                pattern,
                ..
            } => {
                let start = issue_done.max(mem_bw_free);
                stalls[if start == issue_done { 0 } else { 2 }] += 1;
                let bw = transfer_cycles(*words, *pattern, system);
                let end = start + u64::from(system.memory_latency_cycles) + bw;
                mem_bw_free = start + bw;
                memory_busy += bw;
                ready[dst.0 as usize] = Some(end);
                produced_at[dst.0 as usize] = Some(start);
                last_use_end[dst.0 as usize] = last_use_end[dst.0 as usize].max(end);
                InstrTiming { start, end }
            }
            StreamInstr::Store { src, pattern } => {
                let data = ready
                    .get(src.0 as usize)
                    .copied()
                    .flatten()
                    .ok_or(SimError::UseBeforeDef(*src))?;
                let start = issue_done.max(data).max(mem_bw_free);
                stalls[if start == issue_done {
                    0
                } else if start == data {
                    1
                } else {
                    2
                }] += 1;
                let words = program.size(*src);
                let bw = transfer_cycles(words, *pattern, system);
                let end = start + u64::from(system.memory_latency_cycles) + bw;
                mem_bw_free = start + bw;
                memory_busy += bw;
                last_use_end[src.0 as usize] = last_use_end[src.0 as usize].max(end);
                InstrTiming { start, end }
            }
            StreamInstr::Kernel {
                kernel,
                inputs,
                outputs,
                records,
            } => {
                let mut data_ready = 0u64;
                for s in inputs {
                    let r = ready
                        .get(s.0 as usize)
                        .copied()
                        .flatten()
                        .ok_or(SimError::UseBeforeDef(*s))?;
                    data_ready = data_ready.max(r);
                }
                let start = issue_done.max(data_ready).max(clusters_free);
                stalls[if start == issue_done {
                    0
                } else if start == data_ready {
                    1
                } else {
                    3
                }] += 1;
                let dur = kernel.call_cycles(*records);
                let end = start + dur;
                clusters_free = end;
                kernel_busy += dur;
                for s in inputs {
                    last_use_end[s.0 as usize] = last_use_end[s.0 as usize].max(end);
                }
                for (s, _) in outputs {
                    ready[s.0 as usize] = Some(end);
                    produced_at[s.0 as usize] = Some(start);
                    last_use_end[s.0 as usize] = last_use_end[s.0 as usize].max(end);
                }
                InstrTiming { start, end }
            }
        };
        timeline.push(timing);
    }

    let cycles = timeline.iter().map(|t| t.end).max().unwrap_or(0);
    let host_busy = issue_cycles * program.instrs().len() as u64;

    // SRF residency sweep: each produced stream occupies its words from
    // producer start to its last use.
    let mut events: Vec<(u64, i64)> = Vec::new();
    for s in 0..n_streams {
        if let Some(start) = produced_at[s] {
            let words = program.size(StreamVar(s as u32)) as i64;
            let end = last_use_end[s].max(start + 1);
            events.push((start, words));
            events.push((end, -words));
        }
    }
    events.sort_unstable_by_key(|&(t, delta)| (t, delta));
    let mut resident = 0i64;
    let mut peak = 0i64;
    for (_, delta) in events {
        resident += delta;
        peak = peak.max(resident);
    }
    let peak = peak as u64;
    let capacity = machine.srf_total_words();
    if peak > capacity {
        sim_span.arg("error", "srf_overflow");
        return Err(SimError::SrfOverflow { peak, capacity });
    }

    sim_span.arg("cycles", cycles);
    stream_trace::count("sim.stall.host", stalls[0]);
    stream_trace::count("sim.stall.data", stalls[1]);
    stream_trace::count("sim.stall.memory", stalls[2]);
    stream_trace::count("sim.stall.clusters", stalls[3]);
    stream_trace::record("sim.cycles", cycles);

    Ok(SimReport {
        cycles,
        kernel_busy,
        memory_busy,
        peak_srf_words: peak,
        alu_ops: program.total_alu_ops(),
        host_busy,
        timeline,
    })
}

/// Bandwidth-occupancy cycles of one transfer: peak bandwidth derated by
/// the access pattern's sustainable fraction (memory access scheduling
/// keeps sequential streams near peak; strided and random accesses lose
/// row-buffer locality).
fn transfer_cycles(words: u64, pattern: AccessPattern, system: &SystemParams) -> u64 {
    let efficiency = match pattern {
        AccessPattern::Sequential => 1.0,
        AccessPattern::Strided => 0.6,
        AccessPattern::Random => 0.3,
    };
    ((words as f64) / (system.memory_words_per_cycle * efficiency)).ceil() as u64
}

/// True if a working set of `words` fits in `machine`'s SRF with
/// double-buffering headroom `slack` (0.0 = exact fit, 0.5 = use at most
/// half). Applications use this to pick strip sizes.
pub fn fits_in_srf(machine: &Machine, words: u64, slack: f64) -> bool {
    let capacity = machine.srf_total_words() as f64;
    (words as f64) <= capacity * (1.0 - slack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use stream_ir::{KernelBuilder, Ty};
    use stream_sched::CompiledKernel;

    fn work_kernel(machine: &Machine, flops: usize) -> CompiledKernel {
        let mut kb = KernelBuilder::new("work");
        let s = kb.in_stream(Ty::F32);
        let o = kb.out_stream(Ty::F32);
        let x = kb.read(s);
        let mut acc = x;
        for _ in 0..flops {
            acc = kb.add(acc, x);
        }
        kb.write(o, acc);
        CompiledKernel::compile_default(&kb.finish().unwrap(), machine).unwrap()
    }

    fn simple_program(machine: &Machine, words: u64, flops: usize) -> StreamProgram {
        let k = work_kernel(machine, flops);
        let mut p = ProgramBuilder::new();
        let a = p.load("in", words);
        let outs = p.kernel(&k, &[a], &[words], words);
        p.store(outs[0]);
        p.finish()
    }

    #[test]
    fn pipeline_runs_and_reports() {
        let m = Machine::baseline();
        let prog = simple_program(&m, 4096, 10);
        let r = simulate(&prog, &m, &SystemParams::paper_2007()).unwrap();
        assert!(r.cycles > 0);
        assert_eq!(r.timeline.len(), 3);
        assert!(r.kernel_busy > 0 && r.memory_busy > 0);
        assert!(r.gops(1.0) > 0.0);
        assert!(r.cluster_utilization() <= 1.0);
    }

    #[test]
    fn dependencies_serialize() {
        let m = Machine::baseline();
        let prog = simple_program(&m, 4096, 10);
        let r = simulate(&prog, &m, &SystemParams::paper_2007()).unwrap();
        // Kernel starts only after the load's data arrives.
        assert!(r.timeline[1].start >= r.timeline[0].end);
        assert!(r.timeline[2].start >= r.timeline[1].end);
    }

    #[test]
    fn memory_latency_is_charged() {
        let m = Machine::baseline();
        let prog = simple_program(&m, 400, 2);
        let r = simulate(&prog, &m, &SystemParams::paper_2007()).unwrap();
        // Load: >= 55 latency + 100 bandwidth cycles.
        let load = r.timeline[0];
        assert!(load.end - load.start >= 155);
    }

    #[test]
    fn more_clusters_speed_up_kernel_bound_programs() {
        let big = Machine::paper(stream_vlsi::Shape::new(64, 5));
        let small = Machine::baseline();
        // A compute-heavy kernel so the program is cluster-bound rather
        // than memory-bound (an unstripped single pass cannot overlap its
        // own load/compute/store).
        let words = 1 << 13;
        let ps = simple_program(&small, words, 200);
        let pb = simple_program(&big, words, 200);
        let rs = simulate(&ps, &small, &SystemParams::paper_2007()).unwrap();
        let rb = simulate(&pb, &big, &SystemParams::paper_2007()).unwrap();
        let speedup = rs.cycles as f64 / rb.cycles as f64;
        assert!(speedup > 3.0, "speedup {speedup}");
    }

    #[test]
    fn srf_overflow_is_detected() {
        let m = Machine::baseline(); // 44_000 words
        let prog = simple_program(&m, 40_000, 2); // in + out = 80_000 live
        let err = simulate(&prog, &m, &SystemParams::paper_2007()).unwrap_err();
        assert!(matches!(err, SimError::SrfOverflow { .. }));
    }

    #[test]
    fn use_before_def_is_detected() {
        let m = Machine::baseline();
        let k = work_kernel(&m, 2);
        let mut p = ProgramBuilder::new();
        let ghost = StreamVar(7);
        let _ = p.load("x", 64); // stream 0
        let _o = p.kernel(&k, &[ghost], &[64], 64);
        let err = simulate(&p.finish(), &m, &SystemParams::paper_2007());
        assert!(err.is_err());
    }

    #[test]
    fn loads_overlap_kernels() {
        // load A; kernel over A; load B (independent) — B's transfer should
        // overlap the kernel, so total < strict serialization.
        let m = Machine::baseline();
        let k = work_kernel(&m, 40);
        let words = 1 << 12;
        let mut p = ProgramBuilder::new();
        let a = p.load("a", words);
        let outs = p.kernel(&k, &[a], &[words], words);
        let b = p.load("b", words);
        let outs2 = p.kernel(&k, &[b], &[words], words);
        p.store(outs[0]);
        p.store(outs2[0]);
        let r = simulate(&p.finish(), &m, &SystemParams::paper_2007()).unwrap();
        // Second load starts while the first kernel runs.
        assert!(r.timeline[2].start < r.timeline[1].end);
    }

    #[test]
    fn bottleneck_identifies_the_busiest_resource() {
        let m = Machine::baseline();
        // Compute-bound: long kernel over resident-ish data.
        let compute = simple_program(&m, 1 << 12, 200);
        let r = simulate(&compute, &m, &SystemParams::paper_2007()).unwrap();
        assert_eq!(r.bottleneck(), Bottleneck::Clusters);
        assert!(r.summary().contains("Clusters"));
        // Memory-bound: trivial kernel over a big transfer.
        let memory = simple_program(&m, 1 << 12, 1);
        let r = simulate(&memory, &m, &SystemParams::paper_2007()).unwrap();
        assert_eq!(r.bottleneck(), Bottleneck::Memory);
        assert!(r.host_busy > 0);
    }

    #[test]
    fn resident_streams_cost_nothing_but_occupy_srf() {
        let m = Machine::baseline();
        let k = work_kernel(&m, 4);
        let mut p = ProgramBuilder::new();
        let a = p.resident(4096);
        let outs = p.kernel(&k, &[a], &[4096], 4096);
        p.store(outs[0]);
        let r = simulate(&p.finish(), &m, &SystemParams::paper_2007()).unwrap();
        // The resident declaration is free; the kernel can start as soon as
        // the host has issued it.
        assert_eq!(r.timeline[0].end, 0);
        assert!(r.peak_srf_words >= 8192);
    }

    #[test]
    fn access_patterns_derate_bandwidth() {
        let m = Machine::baseline();
        let sys = SystemParams::paper_2007();
        let k = work_kernel(&m, 2);
        let run = |pattern: crate::AccessPattern| -> u64 {
            let mut p = ProgramBuilder::new();
            let a = p.load_patterned("in", 4096, pattern);
            let outs = p.kernel(&k, &[a], &[4096], 4096);
            p.store_patterned(outs[0], pattern);
            simulate(&p.finish(), &m, &sys).unwrap().cycles
        };
        let seq = run(crate::AccessPattern::Sequential);
        let strided = run(crate::AccessPattern::Strided);
        let random = run(crate::AccessPattern::Random);
        assert!(seq < strided, "{seq} vs {strided}");
        assert!(strided < random, "{strided} vs {random}");
    }

    #[test]
    fn fits_in_srf_helper() {
        let m = Machine::baseline();
        assert!(fits_in_srf(&m, 10_000, 0.5));
        assert!(!fits_in_srf(&m, 43_000, 0.5));
        assert!(fits_in_srf(&m, 43_000, 0.0));
    }
}
