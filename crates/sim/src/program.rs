//! Stream programs: the StreamC-level representation the simulator times.
//!
//! A stream program is an ordered list of stream instructions — memory
//! loads/stores and kernel invocations over SRF-resident streams — exactly
//! what the host processor issues to the stream controller (Section 2.2).

use std::fmt;
use stream_sched::CompiledKernel;

/// The DRAM access pattern of a memory transfer. The streaming memory
/// system (Rixner et al., "Memory access scheduling") sustains near-peak
/// bandwidth on sequential streams, less on strided ones, and a fraction on
/// random gathers; the simulator derates bandwidth accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessPattern {
    /// Unit-stride burst (row-buffer friendly).
    #[default]
    Sequential,
    /// Fixed-stride record gather (partial row reuse).
    Strided,
    /// Data-dependent gather/scatter (row-buffer hostile).
    Random,
}

/// Identifies an SRF-resident stream within one program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamVar(pub u32);

impl fmt::Display for StreamVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One stream instruction.
// Kernel invocations carry their compiled schedule, which dwarfs the other
// variants; programs hold few instructions relative to their cost, so the
// padding is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum StreamInstr {
    /// Declare a stream already resident in the SRF at time zero (no
    /// transfer cost, but it occupies capacity). The paper's FFT results
    /// assume "input data already in the SRF".
    Resident {
        /// The pre-resident stream.
        dst: StreamVar,
        /// Its size in words.
        words: u64,
    },
    /// Transfer `words` from external memory into SRF stream `dst`.
    Load {
        /// Destination stream.
        dst: StreamVar,
        /// Transfer size in words.
        words: u64,
        /// Label for reports.
        label: String,
        /// DRAM access pattern.
        pattern: AccessPattern,
    },
    /// Transfer an SRF stream back to external memory.
    Store {
        /// Source stream.
        src: StreamVar,
        /// DRAM access pattern.
        pattern: AccessPattern,
    },
    /// Run a compiled kernel over input streams, producing output streams.
    Kernel {
        /// The compiled kernel (timing comes from its schedule).
        kernel: CompiledKernel,
        /// SRF streams consumed.
        inputs: Vec<StreamVar>,
        /// SRF streams produced, with their sizes in words.
        outputs: Vec<(StreamVar, u64)>,
        /// Stream records processed (loop trip count = records / (C*U)).
        records: u64,
    },
}

/// A complete stream program plus stream metadata.
#[derive(Debug, Clone, Default)]
pub struct StreamProgram {
    instrs: Vec<StreamInstr>,
    /// Size in words of each stream variable.
    sizes: Vec<u64>,
}

impl StreamProgram {
    /// The instructions, in host issue order.
    pub fn instrs(&self) -> &[StreamInstr] {
        &self.instrs
    }

    /// Size in words of `s`.
    pub fn size(&self, s: StreamVar) -> u64 {
        self.sizes[s.0 as usize]
    }

    /// Number of stream variables.
    pub fn stream_count(&self) -> usize {
        self.sizes.len()
    }

    /// Total ALU operations the program performs (records x per-record ALU
    /// ops of each kernel) — the numerator of sustained GOPS.
    pub fn total_alu_ops(&self) -> u64 {
        self.instrs
            .iter()
            .map(|i| match i {
                StreamInstr::Kernel {
                    kernel, records, ..
                } => {
                    // alu ops per record = per-cluster-per-cycle * ii /
                    // unroll ... simpler: stats were captured at compile
                    // time via alu_ops_per_cycle_per_cluster * ii / unroll.
                    let per_record = kernel.alu_ops_per_cycle_per_cluster()
                        * f64::from(kernel.ii())
                        / f64::from(kernel.unroll_factor());
                    (per_record * *records as f64).round() as u64
                }
                _ => 0,
            })
            .sum()
    }

    /// Total words moved to/from external memory.
    pub fn total_memory_words(&self) -> u64 {
        self.instrs
            .iter()
            .map(|i| match i {
                StreamInstr::Load { words, .. } => *words,
                StreamInstr::Store { src, .. } => self.size(*src),
                StreamInstr::Kernel { .. } | StreamInstr::Resident { .. } => 0,
            })
            .sum()
    }
}

/// Incremental construction of a [`StreamProgram`].
///
/// # Examples
///
/// ```
/// use stream_sim::ProgramBuilder;
/// use stream_machine::Machine;
/// use stream_sched::CompiledKernel;
/// use stream_ir::{KernelBuilder, Ty};
///
/// let machine = Machine::baseline();
/// let mut kb = KernelBuilder::new("copy");
/// let s = kb.in_stream(Ty::I32);
/// let o = kb.out_stream(Ty::I32);
/// let x = kb.read(s);
/// kb.write(o, x);
/// let kernel = CompiledKernel::compile_default(&kb.finish()?, &machine)?;
///
/// let mut p = ProgramBuilder::new();
/// let input = p.load("pixels", 4096);
/// let out = p.kernel(&kernel, &[input], &[4096], 4096);
/// p.store(out[0]);
/// let program = p.finish();
/// assert_eq!(program.instrs().len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    program: StreamProgram,
}

impl ProgramBuilder {
    /// Starts an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    fn new_stream(&mut self, words: u64) -> StreamVar {
        self.program.sizes.push(words);
        StreamVar(self.program.sizes.len() as u32 - 1)
    }

    /// Declares a stream already resident in the SRF (no transfer cost).
    pub fn resident(&mut self, words: u64) -> StreamVar {
        let dst = self.new_stream(words);
        self.program
            .instrs
            .push(StreamInstr::Resident { dst, words });
        dst
    }

    /// Loads `words` from memory into a new stream (sequential pattern).
    pub fn load(&mut self, label: impl Into<String>, words: u64) -> StreamVar {
        self.load_patterned(label, words, AccessPattern::Sequential)
    }

    /// Loads `words` with an explicit DRAM access pattern.
    pub fn load_patterned(
        &mut self,
        label: impl Into<String>,
        words: u64,
        pattern: AccessPattern,
    ) -> StreamVar {
        let dst = self.new_stream(words);
        self.program.instrs.push(StreamInstr::Load {
            dst,
            words,
            label: label.into(),
            pattern,
        });
        dst
    }

    /// Runs `kernel` over `inputs`, producing one stream per entry of
    /// `output_words`; `records` is the stream length in records.
    pub fn kernel(
        &mut self,
        kernel: &CompiledKernel,
        inputs: &[StreamVar],
        output_words: &[u64],
        records: u64,
    ) -> Vec<StreamVar> {
        let outputs: Vec<(StreamVar, u64)> = output_words
            .iter()
            .map(|&w| (self.new_stream(w), w))
            .collect();
        let vars: Vec<StreamVar> = outputs.iter().map(|&(v, _)| v).collect();
        self.program.instrs.push(StreamInstr::Kernel {
            kernel: kernel.clone(),
            inputs: inputs.to_vec(),
            outputs,
            records,
        });
        vars
    }

    /// Stores a stream back to memory (sequential pattern).
    pub fn store(&mut self, src: StreamVar) {
        self.store_patterned(src, AccessPattern::Sequential);
    }

    /// Stores a stream with an explicit DRAM access pattern.
    pub fn store_patterned(&mut self, src: StreamVar, pattern: AccessPattern) {
        self.program
            .instrs
            .push(StreamInstr::Store { src, pattern });
    }

    /// Finishes the program.
    pub fn finish(self) -> StreamProgram {
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_ir::{KernelBuilder, Ty};
    use stream_machine::Machine;

    fn copy_kernel() -> CompiledKernel {
        let mut kb = KernelBuilder::new("copy");
        let s = kb.in_stream(Ty::I32);
        let o = kb.out_stream(Ty::I32);
        let x = kb.read(s);
        let y = kb.add(x, x);
        kb.write(o, y);
        CompiledKernel::compile_default(&kb.finish().unwrap(), &Machine::baseline()).unwrap()
    }

    #[test]
    fn builder_assigns_stream_ids() {
        let k = copy_kernel();
        let mut p = ProgramBuilder::new();
        let a = p.load("a", 100);
        let outs = p.kernel(&k, &[a], &[100, 50], 100);
        p.store(outs[0]);
        let prog = p.finish();
        assert_eq!(prog.stream_count(), 3);
        assert_eq!(prog.size(a), 100);
        assert_eq!(prog.size(outs[1]), 50);
    }

    #[test]
    fn totals_account_memory_and_alu() {
        let k = copy_kernel();
        let mut p = ProgramBuilder::new();
        let a = p.load("a", 256);
        let outs = p.kernel(&k, &[a], &[256], 256);
        p.store(outs[0]);
        let prog = p.finish();
        assert_eq!(prog.total_memory_words(), 512);
        // One i32 add per record.
        assert_eq!(prog.total_alu_ops(), 256);
    }
}
