//! The verifier's own operation-latency table.
//!
//! This table is maintained independently of `stream-machine`'s internal
//! `base_latency` so that the two can drift apart and the drift be *caught*
//! (diagnostic E106) instead of silently propagating into every schedule.
//! Values are the Imagine prototype latencies the paper schedules with.

use std::collections::BTreeMap;
use stream_machine::{FuKind, Machine, OpClass};

/// Base (pre-pipelining-adjustment) latency per scheduling class.
///
/// The default table covers every class; [`LatencyTable::without`] removes
/// entries so tests can exercise the missing-latency diagnostic (E008).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyTable {
    entries: BTreeMap<OpClass, u32>,
}

impl Default for LatencyTable {
    fn default() -> Self {
        let entries = [
            (OpClass::IntAlu, 2),
            (OpClass::Logic, 1),
            (OpClass::IntMul, 4),
            (OpClass::FloatAdd, 4),
            (OpClass::FloatMul, 4),
            (OpClass::FloatDiv, 17),
            (OpClass::Select, 1),
            (OpClass::SpRead, 2),
            (OpClass::SpWrite, 1),
            (OpClass::Comm, 1),
            (OpClass::CondStream, 2),
            (OpClass::SbRead, 3),
            (OpClass::SbWrite, 1),
        ]
        .into_iter()
        .collect();
        Self { entries }
    }
}

impl LatencyTable {
    /// The base latency of `class`, if the table knows it.
    pub fn get(&self, class: OpClass) -> Option<u32> {
        self.entries.get(&class).copied()
    }

    /// This table minus `class` — for exercising E008.
    pub fn without(mut self, class: OpClass) -> Self {
        self.entries.remove(&class);
        self
    }

    /// The full latency of `class` on `machine`: the base from this table
    /// plus the machine's switch-derived pipeline stages, re-deriving the
    /// Section 5.1 adjustment rule rather than calling
    /// [`Machine::latency`].
    pub fn expected(&self, class: OpClass, machine: &Machine) -> Option<u32> {
        let base = self.get(class)?;
        let extra = match class.fu_kind() {
            // Results crossing the intracluster switch pay its extra stages.
            FuKind::Alu | FuKind::Scratchpad => machine.extra_intracluster_stages(),
            // COMM-kind ops traverse the pipelined intercluster switch.
            FuKind::Comm => machine.intercluster_cycles(),
            // Stream reads come back through the intracluster switch;
            // writes head outward and pay nothing.
            FuKind::SbPort => match class {
                OpClass::SbRead => machine.extra_intracluster_stages(),
                _ => 0,
            },
        };
        Some(base + extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_every_class() {
        let t = LatencyTable::default();
        for c in OpClass::ALL {
            assert!(t.get(c).is_some(), "missing {c}");
        }
    }

    #[test]
    fn without_removes_one_class() {
        let t = LatencyTable::default().without(OpClass::FloatDiv);
        assert_eq!(t.get(OpClass::FloatDiv), None);
        assert!(t.get(OpClass::FloatAdd).is_some());
    }

    #[test]
    fn expected_matches_machine_on_the_baseline() {
        let m = Machine::baseline();
        let t = LatencyTable::default();
        for c in OpClass::ALL {
            assert_eq!(t.expected(c, &m), Some(m.latency(c)), "class {c}");
        }
    }
}
