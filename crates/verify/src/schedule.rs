//! Independent verification of modulo schedules.
//!
//! Given a dependence graph, an initiation interval, per-node start times,
//! and the machine, [`verify_schedule`] re-derives — with its own code
//! paths, not the scheduler's — per-modulo-slot resource usage, dependence
//! slack, the ResMII/RecMII lower bounds, and steady-state register
//! pressure, and reports every violation with a stable code.

use crate::{Code, LatencyTable, Report};
use stream_machine::{FuKind, Machine, OpClass};

/// Whether an edge carries a value or only orders two operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// True data dependence; the value occupies a register until its last
    /// consumer reads it.
    Data,
    /// Ordering constraint only (stream pop order, scratchpad order).
    Order,
}

/// One scheduled operation, as the verifier sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedNode {
    /// The operation's scheduling class.
    pub class: OpClass,
    /// The latency the scheduler believed this operation has.
    pub latency: u32,
}

/// One dependence: `to` may start no earlier than
/// `t(from) + latency - II * distance`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Minimum separation in cycles.
    pub latency: u32,
    /// Iteration distance (0 = same iteration).
    pub distance: u32,
    /// Data or ordering edge.
    pub kind: DepKind,
}

/// The dependence graph a schedule is checked against. The scheduler
/// converts its own graph into this mirror form, keeping the verifier free
/// of any dependence on the scheduler crate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepGraph {
    /// Schedulable operations.
    pub nodes: Vec<SchedNode>,
    /// Dependences between them.
    pub edges: Vec<DepEdge>,
}

/// The verifier's own class-to-functional-unit mapping, mirroring the
/// cluster organization of Figure 3 rather than calling
/// [`OpClass::fu_kind`].
fn required_unit(class: OpClass) -> FuKind {
    match class {
        OpClass::IntAlu
        | OpClass::Logic
        | OpClass::IntMul
        | OpClass::FloatAdd
        | OpClass::FloatMul
        | OpClass::FloatDiv
        | OpClass::Select => FuKind::Alu,
        OpClass::SpRead | OpClass::SpWrite => FuKind::Scratchpad,
        OpClass::Comm | OpClass::CondStream => FuKind::Comm,
        OpClass::SbRead | OpClass::SbWrite => FuKind::SbPort,
    }
}

fn unit_index(kind: FuKind) -> usize {
    match kind {
        FuKind::Alu => 0,
        FuKind::Scratchpad => 1,
        FuKind::Comm => 2,
        FuKind::SbPort => 3,
    }
}

/// Resource-constrained MII, recomputed from scratch: for each
/// functional-unit kind, `ceil(demand / available)`.
pub fn res_mii(graph: &DepGraph, machine: &Machine) -> u32 {
    let mut demand = [0u32; 4];
    for n in &graph.nodes {
        demand[unit_index(required_unit(n.class))] += 1;
    }
    FuKind::ALL
        .iter()
        .map(|&k| demand[unit_index(k)].div_ceil(machine.fu_count(k).max(1)))
        .max()
        .unwrap_or(1)
        .max(1)
}

/// Recurrence-constrained MII, recomputed from scratch: the smallest `ii`
/// such that every dependence cycle satisfies
/// `sum(latency) <= ii * sum(distance)` (binary search over a
/// positive-cycle feasibility check).
pub fn rec_mii(graph: &DepGraph) -> u32 {
    let hi: u64 = graph.edges.iter().map(|e| u64::from(e.latency)).sum();
    let (mut lo, mut hi) = (1u64, hi.max(1));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if ii_feasible(graph, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo as u32
}

/// True when no dependence cycle has positive weight under
/// `latency - ii * distance` edge weights (longest-path relaxation; a
/// positive cycle keeps relaxing past `n` rounds).
fn ii_feasible(graph: &DepGraph, ii: u64) -> bool {
    let n = graph.nodes.len();
    let mut dist = vec![0i64; n];
    for _ in 0..n {
        let mut changed = false;
        for e in &graph.edges {
            let w = i64::from(e.latency) - (ii as i64) * i64::from(e.distance);
            if dist[e.from] + w > dist[e.to] {
                dist[e.to] = dist[e.from] + w;
                changed = true;
            }
        }
        if !changed {
            return true;
        }
    }
    false
}

/// Steady-state MaxLive, recomputed from scratch: each value is live from
/// its definition to its last data consumer (`t(to) + ii * distance`); in
/// steady state the copy from iteration `k` is shifted by `k * ii`, so a
/// lifetime of `s` cycles contributes `floor(s/ii)` registers to every
/// phase plus one more to `s mod ii` consecutive phases.
pub fn max_live(graph: &DepGraph, ii: u32, times: &[u32]) -> u32 {
    if ii == 0 || times.len() != graph.nodes.len() || times.is_empty() {
        return 0;
    }
    let ii_ = i64::from(ii);
    // live[p] accumulated via a wrapped difference array for the +1 bands.
    let mut base = 0i64;
    let mut diff = vec![0i64; ii as usize + 1];
    for (i, _) in graph.nodes.iter().enumerate() {
        let def = i64::from(times[i]);
        let mut last = def + 1;
        for e in graph.edges.iter().filter(|e| e.from == i) {
            if e.kind == DepKind::Data {
                last = last.max(i64::from(times[e.to]) + ii_ * i64::from(e.distance));
            }
        }
        let span = last - def + 1; // live cycles, inclusive of def and last
        base += span / ii_;
        let rem = (span % ii_) as usize;
        if rem > 0 {
            let start = (def % ii_) as usize;
            let end = start + rem;
            if end <= ii as usize {
                diff[start] += 1;
                diff[end] -= 1;
            } else {
                diff[start] += 1;
                diff[ii as usize] -= 1;
                diff[0] += 1;
                diff[end - ii as usize] -= 1;
            }
        }
    }
    let mut best = 0i64;
    let mut running = 0i64;
    for &d in diff.iter().take(ii as usize) {
        running += d;
        best = best.max(base + running);
    }
    best as u32
}

/// Verifies `times`/`ii` against `graph` on `machine` with the default
/// latency table. See [`verify_schedule_with_table`].
pub fn verify_schedule(graph: &DepGraph, ii: u32, times: &[u32], machine: &Machine) -> Report {
    verify_schedule_with_table(graph, ii, times, machine, &LatencyTable::default())
}

/// Verifies a modulo schedule, reporting every violation:
///
/// * **E105** — zero initiation interval,
/// * **E104** — shape mismatches (times length, edge endpoints),
/// * **E008 / E106** — classes missing from `table`, or node/data-edge
///   latencies disagreeing with the independently derived machine latency,
/// * **E101** — modulo-slot functional-unit oversubscription,
/// * **E102** — violated dependence edges,
/// * **E103** — `ii` below the recomputed `max(ResMII, RecMII)`,
/// * **W101** — steady-state MaxLive above the LRF register capacity.
pub fn verify_schedule_with_table(
    graph: &DepGraph,
    ii: u32,
    times: &[u32],
    machine: &Machine,
    table: &LatencyTable,
) -> Report {
    let mut report = Report::new();
    if ii == 0 {
        report.push(Code::ZeroIi, "initiation interval is zero", None);
        return report;
    }
    if times.len() != graph.nodes.len() {
        report.push(
            Code::ShapeMismatch,
            format!(
                "schedule has {} start times for {} nodes",
                times.len(),
                graph.nodes.len()
            ),
            None,
        );
        return report;
    }
    for (i, e) in graph.edges.iter().enumerate() {
        if e.from >= graph.nodes.len() || e.to >= graph.nodes.len() {
            report.push(
                Code::ShapeMismatch,
                format!("edge {i} ({} -> {}) leaves the node range", e.from, e.to),
                None,
            );
            return report;
        }
    }

    // Latency cross-check against the verifier's own table.
    for (i, n) in graph.nodes.iter().enumerate() {
        match table.expected(n.class, machine) {
            None => report.push(
                Code::MissingLatency,
                format!("node {i}: class {} has no latency-table entry", n.class),
                None,
            ),
            Some(expected) if expected != n.latency => report.push(
                Code::LatencyDrift,
                format!(
                    "node {i}: class {} scheduled with latency {}, table derives {}",
                    n.class, n.latency, expected
                ),
                None,
            ),
            Some(_) => {}
        }
    }
    for (i, e) in graph.edges.iter().enumerate() {
        if e.kind == DepKind::Data && e.latency != graph.nodes[e.from].latency {
            report.push(
                Code::LatencyDrift,
                format!(
                    "data edge {i} ({} -> {}) carries latency {}, its producer has {}",
                    e.from, e.to, e.latency, graph.nodes[e.from].latency
                ),
                None,
            );
        }
    }

    // Per-modulo-slot resource usage, re-derived from scratch.
    let mut usage = vec![[0u32; 4]; ii as usize];
    for (i, n) in graph.nodes.iter().enumerate() {
        let slot = (times[i] % ii) as usize;
        usage[slot][unit_index(required_unit(n.class))] += 1;
    }
    for (slot, row) in usage.iter().enumerate() {
        for &kind in &FuKind::ALL {
            let used = row[unit_index(kind)];
            let cap = machine.fu_count(kind);
            if used > cap {
                report.push(
                    Code::SlotOversubscribed,
                    format!("modulo slot {slot} issues {used} {kind} ops, machine has {cap}"),
                    None,
                );
            }
        }
    }

    // Every dependence edge: t(to) + ii*distance >= t(from) + latency.
    for (i, e) in graph.edges.iter().enumerate() {
        let produced = i64::from(times[e.from]) + i64::from(e.latency);
        let needed = i64::from(times[e.to]) + i64::from(ii) * i64::from(e.distance);
        if produced > needed {
            report.push(
                Code::DependenceViolated,
                format!(
                    "edge {i}: t({}) + {} = {} > t({}) + {}*{} = {}",
                    e.from, e.latency, produced, e.to, ii, e.distance, needed
                ),
                None,
            );
        }
    }

    // The II must respect both independently recomputed lower bounds.
    let res = res_mii(graph, machine);
    let rec = rec_mii(graph);
    let mii = res.max(rec).max(1);
    if ii < mii {
        report.push(
            Code::IiBelowMii,
            format!("II {ii} below max(ResMII {res}, RecMII {rec}) = {mii}"),
            None,
        );
    }

    // LRF pressure: legal but worth flagging.
    let live = max_live(graph, ii, times);
    let cap = machine.register_capacity();
    if live > cap {
        report.push(
            Code::RegisterPressure,
            format!("steady-state MaxLive {live} exceeds LRF capacity {cap}"),
            None,
        );
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::baseline()
    }

    fn alu_node(m: &Machine) -> SchedNode {
        SchedNode {
            class: OpClass::IntAlu,
            latency: m.latency(OpClass::IntAlu),
        }
    }

    #[test]
    fn empty_graph_is_clean() {
        let g = DepGraph::default();
        let r = verify_schedule(&g, 1, &[], &machine());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn legal_chain_is_clean() {
        let m = machine();
        let n = alu_node(&m);
        let g = DepGraph {
            nodes: vec![n, n],
            edges: vec![DepEdge {
                from: 0,
                to: 1,
                latency: n.latency,
                distance: 0,
                kind: DepKind::Data,
            }],
        };
        let r = verify_schedule(&g, 1, &[0, 2], &m);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn res_mii_counts_per_kind() {
        let m = machine();
        let g = DepGraph {
            nodes: vec![alu_node(&m); 11],
            edges: vec![],
        };
        assert_eq!(res_mii(&g, &m), 3); // ceil(11 / 5 ALUs)
    }

    #[test]
    fn rec_mii_finds_cycle_bound() {
        let m = machine();
        let n = alu_node(&m);
        let g = DepGraph {
            nodes: vec![n, n],
            edges: vec![
                DepEdge {
                    from: 0,
                    to: 1,
                    latency: 2,
                    distance: 0,
                    kind: DepKind::Data,
                },
                DepEdge {
                    from: 1,
                    to: 0,
                    latency: 2,
                    distance: 1,
                    kind: DepKind::Data,
                },
            ],
        };
        // 4 cycles of latency per 1 iteration of distance.
        assert_eq!(rec_mii(&g), 4);
    }

    #[test]
    fn max_live_counts_rotating_copies() {
        let m = machine();
        let n = alu_node(&m);
        // One value consumed 7 cycles after definition at II 2: lifetime 8
        // cycles inclusive -> 4 copies live in every phase.
        let g = DepGraph {
            nodes: vec![n, n],
            edges: vec![DepEdge {
                from: 0,
                to: 1,
                latency: 2,
                distance: 0,
                kind: DepKind::Data,
            }],
        };
        let live = max_live(&g, 2, &[0, 7]);
        // v0 spans [0,7] (4 copies per phase), v1 spans [7,8] (1 copy).
        assert_eq!(live, 5);
    }

    #[test]
    fn order_edges_do_not_hold_registers() {
        let m = machine();
        let n = alu_node(&m);
        let g = DepGraph {
            nodes: vec![n, n],
            edges: vec![DepEdge {
                from: 0,
                to: 1,
                latency: 1,
                distance: 0,
                kind: DepKind::Order,
            }],
        };
        // Both values live only their minimal 2 cycles.
        assert_eq!(max_live(&g, 4, &[0, 1]), 2);
    }
}
