//! Lint pass over built [`Kernel`]s: structural re-checks the builder is
//! supposed to enforce (so a builder regression is caught here), plus the
//! warnings the builder deliberately allows — dead values and unused
//! streams.
//!
//! Spans point into the kernel's [`stream_ir::to_text`] serialization,
//! whose line layout is deterministic: the `kernel` header, one `in` line
//! per input, one `out` line per output, an `sp` line when scratchpad is
//! used, then one op line per value in program order.

use crate::{Code, LatencyTable, Report, Span};
use stream_ir::{Kernel, Op, Opcode, StreamId, Ty, ValueId};

fn header_lines(kernel: &Kernel) -> usize {
    1 + kernel.inputs().len() + kernel.outputs().len() + usize::from(kernel.sp_words() > 0)
}

/// The line of `v`'s op in `to_text(kernel)`.
pub fn span_of_value(kernel: &Kernel, v: ValueId) -> Span {
    Span::line((header_lines(kernel) + 1 + v.index()) as u32)
}

/// The line of input stream `s`'s declaration in `to_text(kernel)`.
pub fn span_of_input(_kernel: &Kernel, s: StreamId) -> Span {
    Span::line((2 + s.index()) as u32)
}

/// The line of output stream `s`'s declaration in `to_text(kernel)`.
pub fn span_of_output(kernel: &Kernel, s: StreamId) -> Span {
    Span::line((2 + kernel.inputs().len() + s.index()) as u32)
}

/// Lints `kernel` with the default latency table.
pub fn lint_kernel(kernel: &Kernel) -> Report {
    lint_kernel_with_table(kernel, &LatencyTable::default())
}

/// Lints `kernel`: re-checks definition order (E001), operand value-ness
/// (E005), the full typing rules (E002, E009), recurrence bindings (E006,
/// E007), latency-table coverage (E008), and warns on dead values (W001)
/// and unused streams (W002, W003).
pub fn lint_kernel_with_table(kernel: &Kernel, table: &LatencyTable) -> Report {
    let mut report = Report::new();
    let ops = kernel.ops();

    for (i, op) in ops.iter().enumerate() {
        let v = ValueId(i as u32);
        let span = Some(span_of_value(kernel, v));
        if op.args.len() != op.opcode.arity() {
            report.push(
                Code::TypeMismatch,
                format!(
                    "{v}: {:?} expects {} operand(s), has {}",
                    op.opcode,
                    op.opcode.arity(),
                    op.args.len()
                ),
                span,
            );
            continue;
        }
        let mut operands_ok = true;
        for &a in &op.args {
            if a.index() >= i {
                report.push(
                    Code::UndefinedValue,
                    format!("{v}: operand {a} is not defined before use"),
                    span,
                );
                operands_ok = false;
            } else if !ops[a.index()].opcode.produces_value() {
                report.push(
                    Code::NoValueOperand,
                    format!("{v}: operand {a} produces no value"),
                    span,
                );
                operands_ok = false;
            }
        }
        if !operands_ok {
            continue;
        }
        if let Some((code, msg)) = check_op_types(kernel, v, op) {
            report.push(code, msg, span);
        }
        if let Some(class) = kernel.class_of(v) {
            if table.get(class).is_none() {
                report.push(
                    Code::MissingLatency,
                    format!("{v}: class {class} has no latency-table entry"),
                    span,
                );
            }
        }
    }

    check_recurrences(kernel, &mut report);
    check_dead_values(kernel, &mut report);
    check_stream_usage(kernel, &mut report);
    report
}

/// One opcode's typing rule, re-stated independently of the builder.
fn check_op_types(kernel: &Kernel, v: ValueId, op: &Op) -> Option<(Code, String)> {
    use Opcode::*;
    let ty = |a: ValueId| kernel.ty(a);
    let rt = kernel.ty(v);
    let a = &op.args;
    let mismatch = |msg: String| Some((Code::TypeMismatch, format!("{v}: {msg}")));
    let in_decl = |s: StreamId| kernel.inputs().get(s.index());
    let out_decl = |s: StreamId| kernel.outputs().get(s.index());
    let unknown = |s: StreamId, dir: &str| {
        Some((
            Code::UnknownStream,
            format!("{v}: {dir} stream {s} is not declared"),
        ))
    };

    match &op.opcode {
        Const(s) if rt != s.ty() => mismatch(format!("const of {} typed {rt}", s.ty())),
        Param(_, t) if rt != *t => mismatch(format!("param of {t} typed {rt}")),
        IterIndex | ClusterId | ClusterCount if rt != Ty::I32 => {
            mismatch(format!("index op typed {rt}, must be i32"))
        }
        Recur(init) => {
            if rt != init.ty() {
                return mismatch(format!("recurrence init {} typed {rt}", init.ty()));
            }
            match kernel.recur_next(v) {
                None => Some((
                    Code::RecurrenceBinding,
                    format!("{v}: recurrence has no bound next value"),
                )),
                Some(n) if ty(n) != rt => {
                    mismatch(format!("recurrence {rt} bound to {n} of {}", ty(n)))
                }
                Some(_) => None,
            }
        }
        Add | Sub | Mul | Div | Min | Max => {
            if ty(a[0]) != ty(a[1]) {
                mismatch(format!("operands {} vs {}", ty(a[0]), ty(a[1])))
            } else if rt != ty(a[0]) {
                mismatch(format!("result {rt}, operands {}", ty(a[0])))
            } else {
                None
            }
        }
        Neg | Abs if rt != ty(a[0]) => mismatch(format!("result {rt}, operand {}", ty(a[0]))),
        Sqrt | Floor if ty(a[0]) != Ty::F32 || rt != Ty::F32 => {
            mismatch(format!("f32-only op on {} -> {rt}", ty(a[0])))
        }
        And | Or | Xor | Shl | Shr
            if ty(a[0]) != Ty::I32 || ty(a[1]) != Ty::I32 || rt != Ty::I32 =>
        {
            mismatch(format!(
                "integer op on {} and {} -> {rt}",
                ty(a[0]),
                ty(a[1])
            ))
        }
        Eq | Ne | Lt | Le => {
            if ty(a[0]) != ty(a[1]) {
                mismatch(format!("compare of {} vs {}", ty(a[0]), ty(a[1])))
            } else if rt != Ty::I32 {
                mismatch(format!("compare result typed {rt}, must be i32"))
            } else {
                None
            }
        }
        Select => {
            if ty(a[0]) != Ty::I32 {
                mismatch(format!("select condition is {}, must be i32", ty(a[0])))
            } else if ty(a[1]) != ty(a[2]) || rt != ty(a[1]) {
                mismatch(format!("select arms {} vs {} -> {rt}", ty(a[1]), ty(a[2])))
            } else {
                None
            }
        }
        ItoF if ty(a[0]) != Ty::I32 || rt != Ty::F32 => {
            mismatch(format!("itof on {} -> {rt}", ty(a[0])))
        }
        FtoI if ty(a[0]) != Ty::F32 || rt != Ty::I32 => {
            mismatch(format!("ftoi on {} -> {rt}", ty(a[0])))
        }
        Read(s) => match in_decl(*s) {
            None => unknown(*s, "input"),
            Some(d) if rt != d.ty => mismatch(format!("read of {} stream typed {rt}", d.ty)),
            Some(_) => None,
        },
        Write(s) => match out_decl(*s) {
            None => unknown(*s, "output"),
            Some(d) if ty(a[0]) != d.ty => {
                mismatch(format!("write of {} to {} stream", ty(a[0]), d.ty))
            }
            Some(_) => None,
        },
        CondRead(s) => match in_decl(*s) {
            None => unknown(*s, "input"),
            Some(_) if ty(a[0]) != Ty::I32 => {
                mismatch(format!("cond_rd predicate is {}", ty(a[0])))
            }
            Some(d) if rt != d.ty => mismatch(format!("cond_rd of {} typed {rt}", d.ty)),
            Some(_) => None,
        },
        CondWrite(s) => match out_decl(*s) {
            None => unknown(*s, "output"),
            Some(_) if ty(a[0]) != Ty::I32 => {
                mismatch(format!("cond_wr predicate is {}", ty(a[0])))
            }
            Some(d) if ty(a[1]) != d.ty => {
                mismatch(format!("cond_wr of {} to {} stream", ty(a[1]), d.ty))
            }
            Some(_) => None,
        },
        SpRead(t) => {
            if ty(a[0]) != Ty::I32 {
                mismatch(format!("sp_rd address is {}, must be i32", ty(a[0])))
            } else if rt != *t {
                mismatch(format!("sp_rd of {t} typed {rt}"))
            } else {
                None
            }
        }
        SpWrite if ty(a[0]) != Ty::I32 => {
            mismatch(format!("sp_wr address is {}, must be i32", ty(a[0])))
        }
        Comm => {
            if ty(a[1]) != Ty::I32 {
                mismatch(format!("comm source cluster is {}, must be i32", ty(a[1])))
            } else if rt != ty(a[0]) {
                mismatch(format!("comm of {} typed {rt}", ty(a[0])))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// E007: a recurrence whose next-chain never leaves the recurrence ops —
/// it carries a zero-latency "dependence" with no scheduled producer.
fn check_recurrences(kernel: &Kernel, report: &mut Report) {
    for (r, _) in kernel.recurrences() {
        let mut cur = r;
        let mut hops = 0usize;
        while let Some(next) = kernel.recur_next(cur) {
            if !matches!(kernel.ops()[next.index()].opcode, Opcode::Recur(_)) {
                break;
            }
            hops += 1;
            if next == r || hops > kernel.ops().len() {
                report.push(
                    Code::DegenerateRecurrence,
                    format!("{r}: recurrence next-chain cycles through recurrences only"),
                    Some(span_of_value(kernel, r)),
                );
                break;
            }
            cur = next;
        }
    }
}

/// Ops whose only observable effect is their result value.
fn is_pure(opcode: &Opcode) -> bool {
    !matches!(
        opcode,
        Opcode::Read(_)
            | Opcode::CondRead(_)
            | Opcode::Write(_)
            | Opcode::CondWrite(_)
            | Opcode::SpWrite
    )
}

/// W001: pure values never consumed by any op or recurrence binding.
fn check_dead_values(kernel: &Kernel, report: &mut Report) {
    let mut used = vec![false; kernel.ops().len()];
    for op in kernel.ops() {
        for &a in &op.args {
            if let Some(slot) = used.get_mut(a.index()) {
                *slot = true;
            }
        }
    }
    for (_, n) in kernel.recurrences() {
        if let Some(slot) = used.get_mut(n.index()) {
            *slot = true;
        }
    }
    for (i, op) in kernel.ops().iter().enumerate() {
        let v = ValueId(i as u32);
        if op.opcode.produces_value() && is_pure(&op.opcode) && !used[i] {
            report.push(
                Code::DeadValue,
                format!("{v}: {:?} result is never used", op.opcode),
                Some(span_of_value(kernel, v)),
            );
        }
    }
}

/// W002/W003: declared streams with no accesses (record width zero).
fn check_stream_usage(kernel: &Kernel, report: &mut Report) {
    for (i, decl) in kernel.inputs().iter().enumerate() {
        if decl.record_width == 0 {
            let s = StreamId(i as u32);
            report.push(
                Code::UnusedInput,
                format!("input stream {s} is never read"),
                Some(span_of_input(kernel, s)),
            );
        }
    }
    for (i, decl) in kernel.outputs().iter().enumerate() {
        if decl.record_width == 0 {
            let s = StreamId(i as u32);
            report.push(
                Code::UnusedOutput,
                format!("output stream {s} is never written"),
                Some(span_of_output(kernel, s)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_ir::{parse_kernel, to_text, KernelBuilder, Scalar};
    use stream_machine::OpClass;

    fn saxpy() -> Kernel {
        let mut b = KernelBuilder::new("saxpy");
        let xs = b.in_stream(Ty::F32);
        let ys = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let a = b.const_f(2.0);
        let x = b.read(xs);
        let y = b.read(ys);
        let ax = b.mul(a, x);
        let r = b.add(ax, y);
        b.write(out, r);
        b.finish().unwrap()
    }

    #[test]
    fn clean_kernel_lints_clean() {
        let r = lint_kernel(&saxpy());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn spans_point_at_to_text_lines() {
        let k = saxpy();
        let text = to_text(&k);
        let lines: Vec<&str> = text.lines().collect();
        let span = span_of_value(&k, ValueId(3)); // the mul
        assert!(lines[span.line as usize - 1].contains("mul"));
        let span = span_of_input(&k, StreamId(1));
        assert!(lines[span.line as usize - 1].starts_with("in"));
        let span = span_of_output(&k, StreamId(0));
        assert!(lines[span.line as usize - 1].starts_with("out"));
    }

    #[test]
    fn dead_value_warns_at_its_line() {
        let mut b = KernelBuilder::new("dead");
        let s = b.in_stream(Ty::I32);
        let out = b.out_stream(Ty::I32);
        let x = b.read(s);
        let _unused = b.add(x, x);
        let y = b.add(x, x);
        b.write(out, y);
        let k = b.finish().unwrap();
        let r = lint_kernel(&k);
        assert!(!r.has_errors());
        assert_eq!(r.count(Code::DeadValue), 1);
        let d = &r.diagnostics()[0];
        assert_eq!(d.span, Some(span_of_value(&k, ValueId(1))));
    }

    #[test]
    fn unused_streams_warn() {
        let mut b = KernelBuilder::new("unused");
        let s = b.in_stream(Ty::I32);
        let _ghost_in = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::I32);
        let _ghost_out = b.out_stream(Ty::F32);
        let x = b.read(s);
        b.write(out, x);
        let k = b.finish().unwrap();
        let r = lint_kernel(&k);
        assert!(r.has(Code::UnusedInput));
        assert!(r.has(Code::UnusedOutput));
    }

    #[test]
    fn degenerate_recurrence_cycle_is_an_error() {
        let mut b = KernelBuilder::new("spin");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        let r1 = b.recurrence(Scalar::F32(0.0));
        let r2 = b.recurrence(Scalar::F32(0.0));
        b.bind_next(r1, r2);
        b.bind_next(r2, r1);
        let x = b.read(s);
        let y = b.add(x, r1);
        b.write(out, y);
        let k = b.finish().unwrap();
        let r = lint_kernel(&k);
        assert!(r.has(Code::DegenerateRecurrence), "{r}");
    }

    #[test]
    fn missing_latency_entry_is_reported() {
        let k = saxpy();
        let table = LatencyTable::default().without(OpClass::FloatMul);
        let r = lint_kernel_with_table(&k, &table);
        assert_eq!(r.count(Code::MissingLatency), 1);
    }

    #[test]
    fn parsed_kernels_lint_like_built_ones() {
        let k = saxpy();
        let back = parse_kernel(&to_text(&k)).unwrap();
        assert_eq!(lint_kernel(&k), lint_kernel(&back));
    }
}
