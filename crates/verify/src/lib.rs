//! Independent static verification and lint layer.
//!
//! The scheduler (`stream-sched`) *constructs* modulo schedules; this crate
//! *checks* them, re-deriving every legality condition from scratch so a
//! scheduler bug cannot vouch for itself:
//!
//! - [`verify_schedule`] re-counts per-modulo-slot functional-unit usage,
//!   re-checks every dependence edge against
//!   `t(to) + II·distance ≥ t(from) + latency`, recomputes ResMII and
//!   RecMII independently, and re-derives steady-state register pressure
//!   (diagnostics `E101`–`E106`, `W101`).
//! - [`lint_kernel`] re-checks the structural and typing invariants of a
//!   built [`stream_ir::Kernel`] and warns about dead values and unused
//!   streams (`E00x`, `W00x`).
//! - [`lint_text`] lints the textual kernel format leniently, reporting
//!   every problem with line *and column* spans instead of stopping at the
//!   first like `parse_kernel`.
//!
//! All checkers return a [`Report`] of [`Diagnostic`]s with stable
//! [`Code`]s cataloged in `docs/lint_codes.md`. The crate deliberately
//! depends only on `stream-ir` and `stream-machine` — never on the
//! scheduler it checks — and keeps its own [`LatencyTable`] so latency
//! drift between the scheduler and the machine model is *caught* (`E106`)
//! rather than inherited.

#![warn(missing_docs)]

mod diag;
mod latency;
mod lint;
mod schedule;
mod text_lint;

pub use diag::{Code, Diagnostic, Report, Severity, Span};
pub use latency::LatencyTable;
pub use lint::{lint_kernel, lint_kernel_with_table, span_of_input, span_of_output, span_of_value};
pub use schedule::{
    max_live, rec_mii, res_mii, verify_schedule, verify_schedule_with_table, DepEdge, DepGraph,
    DepKind, SchedNode,
};
pub use text_lint::lint_text;
