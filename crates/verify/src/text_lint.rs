//! A lenient linter over the textual kernel format.
//!
//! Unlike [`stream_ir::parse_kernel`], which stops at the first problem,
//! [`lint_text`] keeps going: malformed producers poison their result so
//! one mistake yields one diagnostic instead of a cascade, and every
//! finding carries a line *and column* span. It accepts exactly the
//! grammar `to_text` emits and reports the same structural rules the
//! builder enforces, plus the dead-value and unused-stream warnings.

use crate::{Code, Report, Span};
use stream_ir::Ty;

/// What a `vN` line left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// A well-typed value.
    Value(Ty),
    /// A write: occupies an id but produces nothing.
    NoValue,
    /// A malformed producer; uses of it are silently accepted to avoid
    /// cascading diagnostics.
    Poison,
}

#[derive(Debug)]
struct ValInfo {
    slot: Slot,
    /// Eligible for W001 when never used.
    pure: bool,
    used: bool,
    line: u32,
    /// `Some` for `recur` lines: the bound next value, once a `loop` line
    /// binds it.
    recur_next: Option<Option<usize>>,
}

#[derive(Debug)]
struct StreamInfo {
    ty: Ty,
    used: bool,
    ok: bool,
    line: u32,
}

struct Tok<'a> {
    text: &'a str,
    col: u32,
}

fn tokenize(line: &str) -> Vec<Tok<'_>> {
    let mut toks = Vec::new();
    let mut start = None;
    for (i, c) in line.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = start.take() {
                toks.push(Tok {
                    text: &line[s..i],
                    col: s as u32 + 1,
                });
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        toks.push(Tok {
            text: &line[s..],
            col: s as u32 + 1,
        });
    }
    toks
}

struct Linter {
    report: Report,
    inputs: Vec<StreamInfo>,
    outputs: Vec<StreamInfo>,
    values: Vec<ValInfo>,
}

impl Linter {
    fn push(&mut self, code: Code, msg: impl Into<String>, line: u32, col: u32) {
        self.report.push(code, msg, Some(Span { line, col }));
    }

    fn parse_ty(&mut self, tok: Option<&Tok<'_>>, line: u32, fallback_col: u32) -> Option<Ty> {
        match tok.map(|t| t.text) {
            Some("i32") => Some(Ty::I32),
            Some("f32") => Some(Ty::F32),
            Some(other) => {
                let col = tok.map_or(fallback_col, |t| t.col);
                self.push(
                    Code::Syntax,
                    format!("expected type, found `{other}`"),
                    line,
                    col,
                );
                None
            }
            None => {
                self.push(Code::Syntax, "expected type", line, fallback_col);
                None
            }
        }
    }

    fn parse_scalar(&mut self, toks: &[Tok<'_>], line: u32, fallback_col: u32) -> Option<Ty> {
        let ty = self.parse_ty(toks.first(), line, fallback_col)?;
        let Some(lit) = toks.get(1) else {
            self.push(Code::Syntax, "expected literal", line, fallback_col);
            return None;
        };
        let ok = match ty {
            Ty::I32 => lit.text.parse::<i32>().is_ok(),
            Ty::F32 => lit.text.parse::<f32>().is_ok(),
        };
        if !ok {
            self.push(
                Code::Syntax,
                format!("bad {ty} literal `{}`", lit.text),
                line,
                lit.col,
            );
            return None;
        }
        Some(ty)
    }

    /// Resolves an operand token to its slot index, reporting E010/E001 as
    /// appropriate. Marks the value used.
    fn operand_index(
        &mut self,
        tok: Option<&Tok<'_>>,
        line: u32,
        fallback_col: u32,
    ) -> Option<usize> {
        let Some(tok) = tok else {
            self.push(Code::Syntax, "missing operand", line, fallback_col);
            return None;
        };
        let Some(idx) = tok
            .text
            .strip_prefix('v')
            .and_then(|d| d.parse::<usize>().ok())
        else {
            self.push(
                Code::Syntax,
                format!("expected value id, found `{}`", tok.text),
                line,
                tok.col,
            );
            return None;
        };
        if idx >= self.values.len() {
            self.push(
                Code::UndefinedValue,
                format!("v{idx} is not defined before this use"),
                line,
                tok.col,
            );
            return None;
        }
        self.values[idx].used = true;
        Some(idx)
    }

    /// Resolves an operand to its type: `None` means "don't check further"
    /// (missing, undefined, or poisoned), with the diagnostic already
    /// reported where one is due.
    fn operand_ty(&mut self, tok: Option<&Tok<'_>>, line: u32, fallback_col: u32) -> Option<Ty> {
        let idx = self.operand_index(tok, line, fallback_col)?;
        match self.values[idx].slot {
            Slot::Value(ty) => Some(ty),
            Slot::Poison => None,
            Slot::NoValue => {
                let col = tok.map_or(fallback_col, |t| t.col);
                self.push(
                    Code::NoValueOperand,
                    format!("v{idx} produces no value"),
                    line,
                    col,
                );
                None
            }
        }
    }

    /// Requires `ty(tok) == want` when both sides are known.
    fn expect_ty(&mut self, tok: Option<&Tok<'_>>, want: Ty, what: &str, line: u32, col: u32) {
        if let Some(got) = self.operand_ty(tok, line, col) {
            if got != want {
                let at = tok.map_or(col, |t| t.col);
                self.push(
                    Code::TypeMismatch,
                    format!("{what} is {got}, must be {want}"),
                    line,
                    at,
                );
            }
        }
    }

    fn stream(
        &mut self,
        tok: Option<&Tok<'_>>,
        dir: &str,
        line: u32,
        fallback_col: u32,
    ) -> Option<usize> {
        let Some(tok) = tok else {
            self.push(Code::Syntax, "expected stream id", line, fallback_col);
            return None;
        };
        let Some(idx) = tok
            .text
            .strip_prefix('s')
            .and_then(|d| d.parse::<usize>().ok())
        else {
            self.push(
                Code::Syntax,
                format!("expected stream id, found `{}`", tok.text),
                line,
                tok.col,
            );
            return None;
        };
        let decls = if dir == "input" {
            &mut self.inputs
        } else {
            &mut self.outputs
        };
        match decls.get_mut(idx) {
            Some(info) => {
                info.used = true;
                Some(idx)
            }
            None => {
                self.push(
                    Code::UnknownStream,
                    format!("{dir} stream s{idx} is not declared"),
                    line,
                    tok.col,
                );
                None
            }
        }
    }

    fn op_line(&mut self, toks: &[Tok<'_>], line: u32) {
        let id_tok = &toks[0];
        match id_tok
            .text
            .strip_prefix('v')
            .and_then(|d| d.parse::<usize>().ok())
        {
            None => {
                self.push(
                    Code::Syntax,
                    format!("expected `vN = <op> ...`, found `{}`", id_tok.text),
                    line,
                    id_tok.col,
                );
                return;
            }
            Some(idx) if idx != self.values.len() => {
                self.push(
                    Code::NonDenseIds,
                    format!(
                        "value ids must be dense: expected v{}, found v{idx}",
                        self.values.len()
                    ),
                    line,
                    id_tok.col,
                );
                // Recover: treat the line as defining the next dense id.
            }
            Some(_) => {}
        }
        if toks.get(1).map(|t| t.text) != Some("=") || toks.len() < 3 {
            self.push(Code::Syntax, "expected `vN = <op> ...`", line, id_tok.col);
            self.values.push(ValInfo {
                slot: Slot::Poison,
                pure: true,
                used: false,
                line,
                recur_next: None,
            });
            return;
        }
        let op = &toks[2];
        let rest = &toks[3..];
        let end_col = op.col + op.text.len() as u32;
        let mut recur_next = None;
        let mut pure = true;

        let slot = match op.text {
            "const" => match self.parse_scalar(rest, line, end_col) {
                Some(ty) => Slot::Value(ty),
                None => Slot::Poison,
            },
            "recur" => {
                recur_next = Some(None);
                match self.parse_scalar(rest, line, end_col) {
                    Some(ty) => Slot::Value(ty),
                    None => Slot::Poison,
                }
            }
            "param" => match self.parse_ty(rest.first(), line, end_col) {
                Some(ty) => Slot::Value(ty),
                None => Slot::Poison,
            },
            "iter" | "cid" | "nclusters" => Slot::Value(Ty::I32),
            "read" => {
                pure = false;
                match self.stream(rest.first(), "input", line, end_col) {
                    Some(s) => Slot::Value(self.inputs[s].ty),
                    None => Slot::Poison,
                }
            }
            "write" => {
                pure = false;
                let s = self.stream(rest.first(), "output", line, end_col);
                match (s, self.operand_ty(rest.get(1), line, end_col)) {
                    (Some(s), Some(got)) if got != self.outputs[s].ty => {
                        let want = self.outputs[s].ty;
                        let col = rest.get(1).map_or(end_col, |t| t.col);
                        self.push(
                            Code::TypeMismatch,
                            format!("write of {got} to {want} stream s{s}"),
                            line,
                            col,
                        );
                    }
                    _ => {}
                }
                Slot::NoValue
            }
            "cond_rd" => {
                pure = false;
                let s = self.stream(rest.first(), "input", line, end_col);
                self.expect_ty(rest.get(1), Ty::I32, "cond_rd predicate", line, end_col);
                match s {
                    Some(s) => Slot::Value(self.inputs[s].ty),
                    None => Slot::Poison,
                }
            }
            "cond_wr" => {
                pure = false;
                let s = self.stream(rest.first(), "output", line, end_col);
                self.expect_ty(rest.get(1), Ty::I32, "cond_wr predicate", line, end_col);
                match (s, self.operand_ty(rest.get(2), line, end_col)) {
                    (Some(s), Some(got)) if got != self.outputs[s].ty => {
                        let want = self.outputs[s].ty;
                        let col = rest.get(2).map_or(end_col, |t| t.col);
                        self.push(
                            Code::TypeMismatch,
                            format!("cond_wr of {got} to {want} stream s{s}"),
                            line,
                            col,
                        );
                    }
                    _ => {}
                }
                Slot::NoValue
            }
            "sp_rd" => {
                let ty = self.parse_ty(rest.first(), line, end_col);
                self.expect_ty(rest.get(1), Ty::I32, "sp_rd address", line, end_col);
                match ty {
                    Some(ty) => Slot::Value(ty),
                    None => Slot::Poison,
                }
            }
            "sp_wr" => {
                pure = false;
                self.expect_ty(rest.first(), Ty::I32, "sp_wr address", line, end_col);
                self.operand_ty(rest.get(1), line, end_col);
                Slot::NoValue
            }
            "comm" => {
                let data = self.operand_ty(rest.first(), line, end_col);
                self.expect_ty(rest.get(1), Ty::I32, "comm source cluster", line, end_col);
                match data {
                    Some(ty) => Slot::Value(ty),
                    None => Slot::Poison,
                }
            }
            "select" => {
                self.expect_ty(rest.first(), Ty::I32, "select condition", line, end_col);
                let a = self.operand_ty(rest.get(1), line, end_col);
                let b = self.operand_ty(rest.get(2), line, end_col);
                match (a, b) {
                    (Some(x), Some(y)) if x != y => {
                        let col = rest.get(2).map_or(end_col, |t| t.col);
                        self.push(
                            Code::TypeMismatch,
                            format!("select arms are {x} vs {y}"),
                            line,
                            col,
                        );
                        Slot::Value(x)
                    }
                    (Some(x), _) => Slot::Value(x),
                    _ => Slot::Poison,
                }
            }
            "sqrt" | "floor" => {
                self.expect_ty(rest.first(), Ty::F32, op.text, line, end_col);
                Slot::Value(Ty::F32)
            }
            "neg" | "abs" => match self.operand_ty(rest.first(), line, end_col) {
                Some(ty) => Slot::Value(ty),
                None => Slot::Poison,
            },
            "itof" => {
                self.expect_ty(rest.first(), Ty::I32, "itof operand", line, end_col);
                Slot::Value(Ty::F32)
            }
            "ftoi" => {
                self.expect_ty(rest.first(), Ty::F32, "ftoi operand", line, end_col);
                Slot::Value(Ty::I32)
            }
            "add" | "sub" | "mul" | "div" | "min" | "max" => {
                let a = self.operand_ty(rest.first(), line, end_col);
                let b = self.operand_ty(rest.get(1), line, end_col);
                match (a, b) {
                    (Some(x), Some(y)) if x != y => {
                        let col = rest.get(1).map_or(end_col, |t| t.col);
                        self.push(
                            Code::TypeMismatch,
                            format!("{} operands are {x} vs {y}", op.text),
                            line,
                            col,
                        );
                        Slot::Value(x)
                    }
                    (Some(x), _) => Slot::Value(x),
                    (_, Some(y)) => Slot::Value(y),
                    _ => Slot::Poison,
                }
            }
            "and" | "or" | "xor" | "shl" | "shr" => {
                self.expect_ty(rest.first(), Ty::I32, op.text, line, end_col);
                self.expect_ty(rest.get(1), Ty::I32, op.text, line, end_col);
                Slot::Value(Ty::I32)
            }
            "eq" | "ne" | "lt" | "le" => {
                let a = self.operand_ty(rest.first(), line, end_col);
                let b = self.operand_ty(rest.get(1), line, end_col);
                if let (Some(x), Some(y)) = (a, b) {
                    if x != y {
                        let col = rest.get(1).map_or(end_col, |t| t.col);
                        self.push(
                            Code::TypeMismatch,
                            format!("{} compares {x} vs {y}", op.text),
                            line,
                            col,
                        );
                    }
                }
                Slot::Value(Ty::I32)
            }
            other => {
                self.push(
                    Code::UnknownOpcode,
                    format!("unknown opcode `{other}`"),
                    line,
                    op.col,
                );
                Slot::Poison
            }
        };

        self.values.push(ValInfo {
            slot,
            pure,
            used: false,
            line,
            recur_next,
        });
    }

    fn loop_line(&mut self, toks: &[Tok<'_>], line: u32) {
        if toks.len() < 4 || toks[2].text != "<-" {
            self.push(Code::Syntax, "expected `loop vR <- vN`", line, toks[0].col);
            return;
        }
        let r = self.operand_index(Some(&toks[1]), line, toks[1].col);
        let n = self.operand_index(Some(&toks[3]), line, toks[3].col);
        let Some(r) = r else { return };
        if self.values[r].recur_next.is_none() {
            self.push(
                Code::RecurrenceBinding,
                format!("v{r} is not a recurrence"),
                line,
                toks[1].col,
            );
            return;
        }
        if self.values[r].recur_next == Some(None) {
            self.values[r].recur_next = Some(n);
        } else {
            self.push(
                Code::RecurrenceBinding,
                format!("recurrence v{r} is bound twice"),
                line,
                toks[1].col,
            );
            return;
        }
        if let Some(n) = n {
            if let (Slot::Value(rt), Slot::Value(nt)) = (self.values[r].slot, self.values[n].slot) {
                if rt != nt {
                    self.push(
                        Code::TypeMismatch,
                        format!("recurrence v{r} is {rt}, next v{n} is {nt}"),
                        line,
                        toks[3].col,
                    );
                }
            }
        }
    }

    fn finish(mut self) -> Report {
        // E006: recurrences never bound by a `loop` line.
        for i in 0..self.values.len() {
            if self.values[i].recur_next == Some(None) {
                let line = self.values[i].line;
                self.push(
                    Code::RecurrenceBinding,
                    format!("recurrence v{i} has no `loop` binding"),
                    line,
                    1,
                );
            }
        }
        // E007: next-chains that never leave the recurrence ops.
        for i in 0..self.values.len() {
            if self.values[i].recur_next.is_none() {
                continue;
            }
            let mut cur = i;
            let mut hops = 0usize;
            while let Some(Some(next)) = self.values[cur].recur_next {
                hops += 1;
                if next == i || hops > self.values.len() {
                    let line = self.values[i].line;
                    self.push(
                        Code::DegenerateRecurrence,
                        format!("recurrence v{i} next-chain cycles through recurrences only"),
                        line,
                        1,
                    );
                    break;
                }
                cur = next;
            }
        }
        // W001: pure, value-producing, never used.
        for (i, v) in self.values.iter().enumerate() {
            if matches!(v.slot, Slot::Value(_)) && v.pure && !v.used {
                self.report.push(
                    Code::DeadValue,
                    format!("v{i} is never used"),
                    Some(Span {
                        line: v.line,
                        col: 1,
                    }),
                );
            }
        }
        // W002/W003: well-formed stream declarations never accessed.
        for (i, s) in self.inputs.iter().enumerate() {
            if s.ok && !s.used {
                self.report.push(
                    Code::UnusedInput,
                    format!("input stream s{i} is never read"),
                    Some(Span::line(s.line)),
                );
            }
        }
        for (i, s) in self.outputs.iter().enumerate() {
            if s.ok && !s.used {
                self.report.push(
                    Code::UnusedOutput,
                    format!("output stream s{i} is never written"),
                    Some(Span::line(s.line)),
                );
            }
        }
        self.report
    }
}

/// Lints kernel text leniently: reports *all* problems it can find, with
/// line and column spans, instead of stopping at the first like
/// [`stream_ir::parse_kernel`]. A text that parses cleanly lints with no
/// errors; the converse does not hold (lint recovery is approximate).
pub fn lint_text(text: &str) -> Report {
    let mut l = Linter {
        report: Report::new(),
        inputs: Vec::new(),
        outputs: Vec::new(),
        values: Vec::new(),
    };

    for (i, raw) in text.lines().enumerate() {
        let line_no = i as u32 + 1;
        let stripped = raw.split('#').next().unwrap_or("");
        let toks = tokenize(stripped);
        if toks.is_empty() {
            continue;
        }
        match toks[0].text {
            "kernel" => {
                if toks.len() < 2 {
                    l.push(
                        Code::Syntax,
                        "expected `kernel <name>`",
                        line_no,
                        toks[0].col,
                    );
                }
            }
            "in" | "out" => {
                let is_in = toks[0].text == "in";
                let ty = l.parse_ty(toks.get(1), line_no, toks[0].col);
                let info = StreamInfo {
                    ty: ty.unwrap_or(Ty::I32),
                    used: false,
                    ok: ty.is_some(),
                    line: line_no,
                };
                if is_in {
                    l.inputs.push(info);
                } else {
                    l.outputs.push(info);
                }
            }
            "sp" => {
                if toks
                    .get(1)
                    .and_then(|t| t.text.parse::<u32>().ok())
                    .is_none()
                {
                    l.push(Code::Syntax, "expected `sp <words>`", line_no, toks[0].col);
                }
            }
            "loop" => l.loop_line(&toks, line_no),
            _ => l.op_line(&toks, line_no),
        }
    }

    l.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_text_lints_clean() {
        let text = "\
kernel saxpy
in f32
in f32
out f32
v0 = param f32
v1 = read s0
v2 = read s1
v3 = mul v0 v1
v4 = add v3 v2
v5 = write s0 v4
";
        let r = lint_text(text);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn round_trip_of_built_kernel_is_clean() {
        use stream_ir::{to_text, KernelBuilder, Scalar};
        let mut b = KernelBuilder::new("acc");
        let s = b.in_stream(Ty::F32);
        let out = b.out_stream(Ty::F32);
        b.require_sp(8);
        let acc = b.recurrence(Scalar::F32(0.0));
        let x = b.read(s);
        let sum = b.add(acc, x);
        b.bind_next(acc, sum);
        let addr = b.const_i(3);
        b.sp_write(addr, sum);
        let y = b.sp_read(addr, Ty::F32);
        let cid = b.cluster_id();
        let z = b.comm(y, cid);
        b.write(out, z);
        let k = b.finish().unwrap();
        let r = lint_text(&to_text(&k));
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn one_bad_producer_does_not_cascade() {
        // v1's opcode is unknown; its uses must not produce more errors.
        let text = "\
kernel bad
in f32
out f32
v0 = read s0
v1 = frobnicate v0
v2 = add v1 v0
v3 = write s0 v2
";
        let r = lint_text(text);
        assert_eq!(r.count(Code::UnknownOpcode), 1);
        assert_eq!(r.error_count(), 1, "{r}");
        let d = &r.diagnostics()[0];
        assert_eq!(d.span.unwrap().line, 5);
        assert_eq!(d.span.unwrap().col, 6);
    }

    #[test]
    fn reports_multiple_problems_with_columns() {
        let text = "\
kernel bad
in f32
v0 = read s0
v1 = add v0 v9
v2 = write s3 v1
";
        let r = lint_text(text);
        assert!(r.has(Code::UndefinedValue), "{r}");
        assert!(r.has(Code::UnknownStream), "{r}");
        // v9 sits at column 13 of line 4.
        let undef = r
            .diagnostics()
            .iter()
            .find(|d| d.code == Code::UndefinedValue)
            .unwrap();
        assert_eq!(undef.span.unwrap(), Span { line: 4, col: 13 });
    }

    #[test]
    fn non_dense_ids_recover() {
        let text = "\
kernel bad
in i32
out i32
v0 = read s0
v7 = add v0 v0
v2 = write s0 v1
";
        let r = lint_text(text);
        assert_eq!(r.count(Code::NonDenseIds), 1, "{r}");
        // The adds still define dense slots, so `v1` resolves.
        assert!(!r.has(Code::UndefinedValue), "{r}");
    }

    #[test]
    fn type_mismatches_are_reported() {
        let text = "\
kernel bad
in f32
in i32
out f32
v0 = read s0
v1 = read s1
v2 = add v0 v1
v3 = and v0 v0
v4 = write s0 v2
";
        let r = lint_text(text);
        assert!(r.count(Code::TypeMismatch) >= 2, "{r}");
    }

    #[test]
    fn recurrence_problems_are_reported() {
        let unbound = "\
kernel bad
in f32
out f32
v0 = recur f32 0.0
v1 = read s0
v2 = add v0 v1
v3 = write s0 v2
";
        assert!(lint_text(unbound).has(Code::RecurrenceBinding));

        let not_a_recur = "\
kernel bad
in f32
out f32
v0 = read s0
v1 = add v0 v0
v2 = write s0 v1
loop v0 <- v1
";
        assert!(lint_text(not_a_recur).has(Code::RecurrenceBinding));

        let cycle = "\
kernel bad
in f32
out f32
v0 = recur f32 0.0
v1 = recur f32 0.0
v2 = read s0
v3 = add v2 v0
v4 = write s0 v3
loop v0 <- v1
loop v1 <- v0
";
        assert!(lint_text(cycle).has(Code::DegenerateRecurrence));
    }

    #[test]
    fn syntax_problems_are_e010() {
        let r = lint_text("kernel\nin q32\nsp many\nv0 = const f32 abc\n");
        assert_eq!(r.count(Code::Syntax), 4, "{r}");
    }

    #[test]
    fn dead_values_and_unused_streams_warn() {
        let text = "\
kernel lazy
in i32
in f32
out i32
out f32
v0 = read s0
v1 = const i32 9
v2 = write s0 v0
";
        let r = lint_text(text);
        assert!(!r.has_errors(), "{r}");
        assert_eq!(r.count(Code::DeadValue), 1);
        assert!(r.has(Code::UnusedInput));
        assert!(r.has(Code::UnusedOutput));
    }
}
